//! The paper's qualitative claims, as executable assertions.
//!
//! Each test names the section of the paper it checks. These are the
//! "shape" guarantees behind the figure harnesses in `polaroct-bench`.

use polaroct::baselines::{PackageContext, PackageOutcome};
use polaroct::cluster::memory::MemoryModel;
use polaroct::prelude::*;

fn node12() -> ClusterSpec {
    ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(12))
}

fn hybrid12() -> ClusterSpec {
    let m = MachineSpec::lonestar4();
    ClusterSpec::new(m, Placement::hybrid_per_socket(12, &m))
}

#[test]
fn claim_abstract_under_one_percent_error() {
    // Abstract: "less than 1% error w.r.t. the naive exact algorithm".
    let mol = polaroct::molecule::synth::protein("p", 600, 11);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = DriverConfig::default();
    let naive = run_naive(&sys, &params, &cfg).unwrap();
    for r in [
        run_serial(&sys, &params, &cfg).unwrap(),
        run_oct_cilk(&sys, &params, &cfg, 12).unwrap(),
        run_oct_mpi(&sys, &params, &cfg, &node12(), WorkDivision::NodeNode).unwrap(),
        run_oct_hybrid(&sys, &params, &cfg, &hybrid12()).unwrap(),
    ] {
        let err = ((r.energy_kcal - naive.energy_kcal) / naive.energy_kcal).abs();
        assert!(err < 0.01, "{}: {err}", r.name);
    }
}

#[test]
fn claim_s4b_memory_replication_ratio() {
    // §V.B: 12x1 uses ~5.86x the per-node memory of 2x6.
    let mm = MemoryModel::new(680 << 20);
    let ratio = mm.replication_ratio(&node12(), &hybrid12());
    assert!((ratio - 5.86).abs() < 0.4, "replication ratio {ratio}");
}

#[test]
fn claim_s4a_node_division_error_constant_in_p() {
    // §IV.A: node-based division's error does not change with P.
    let mol = polaroct::molecule::synth::protein("p", 350, 13);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = DriverConfig::default();
    let energies: Vec<f64> = [1usize, 3, 8, 12]
        .iter()
        .map(|&p| {
            run_oct_mpi(
                &sys,
                &params,
                &cfg,
                &ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p)),
                WorkDivision::NodeNode,
            )
            .unwrap()
            .energy_kcal
        })
        .collect();
    for e in &energies[1..] {
        assert!(((e - energies[0]) / energies[0]).abs() < 1e-12);
    }
}

#[test]
fn claim_s5d_tinker_energy_seventy_percent() {
    // Fig. 9: "Energy values reported by Tinker were around 70% of the
    // naive energy."
    let mol = polaroct::molecule::synth::protein("p", 800, 17);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = DriverConfig::default();
    let naive = run_naive(&sys, &params, &cfg).unwrap();
    let tinker = polaroct::baselines::tinker::Tinker::default()
        .run(&mol, &PackageContext::new(node12()));
    use polaroct::baselines::GbPackage as _;
    let e = tinker.report().expect("tinker fits at 800 atoms").energy_kcal;
    let ratio = e / naive.energy_kcal;
    assert!((0.55..0.85).contains(&ratio), "Tinker/naive = {ratio}, expected ≈0.7");
}

#[test]
fn claim_s5d_oom_thresholds() {
    // §V.D: Tinker fails above ~12k atoms, GBr6 above ~13k, on a 24 GB
    // node — while the octree code and Amber keep working.
    use polaroct::baselines::GbPackage as _;
    let ctx = PackageContext::new(node12());
    // 13,100 atoms: above Tinker's wall, below GBr6's.
    let mol = polaroct::molecule::synth::protein("big", 13_100, 19);
    let tinker = polaroct::baselines::tinker::Tinker::default().run(&mol, &ctx);
    assert!(matches!(tinker, PackageOutcome::OutOfMemory { .. }), "Tinker should OOM at 13.1k");
    let gbr6 = polaroct::baselines::gbr6::GBr6.run(&mol, &ctx);
    assert!(gbr6.report().is_some(), "GBr6 should still fit at 13.1k");
    // 14,000 atoms: above both.
    let mol14 = polaroct::molecule::synth::protein("bigger", 14_000, 19);
    assert!(matches!(
        polaroct::baselines::gbr6::GBr6.run(&mol14, &ctx),
        PackageOutcome::OutOfMemory { .. }
    ));
    // Amber still runs at 14k.
    assert!(polaroct::baselines::amber::Amber::default().run(&mol14, &ctx).report().is_some());
}

#[test]
fn claim_s5f_octree_dominates_amber_at_scale() {
    // §V.F shape: on a large hollow capsid, OCT_MPI beats the Amber-class
    // baseline by a large factor on the same 12 cores.
    use polaroct::baselines::GbPackage as _;
    let mol = polaroct::molecule::synth::capsid("mini-cmv", 20_000, 23);
    let params = ApproxParams::default().with_math(MathMode::Approx);
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = DriverConfig::default();
    let oct = run_oct_mpi(&sys, &params, &cfg, &node12(), WorkDivision::NodeNode).unwrap();
    let amber = polaroct::baselines::amber::Amber::default()
        .run(&mol, &PackageContext::new(node12()));
    let amber_t = amber.report().unwrap().time;
    let speedup = amber_t / oct.time;
    assert!(speedup > 5.0, "OCT_MPI only {speedup:.1}x over Amber at 20k atoms");
}

#[test]
fn claim_s2_octree_space_independent_of_epsilon() {
    // §II: octree size does not change with the approximation parameter
    // (unlike nblists, which grow cubically with the cutoff).
    let mol = polaroct::molecule::synth::protein("p", 1_000, 29);
    let params_a = ApproxParams::default().with_eps(0.1, 0.1);
    let params_b = ApproxParams::default().with_eps(0.9, 0.9);
    let sys_a = GbSystem::prepare(&mol, &params_a);
    let sys_b = GbSystem::prepare(&mol, &params_b);
    assert_eq!(sys_a.memory_bytes(), sys_b.memory_bytes());

    let nb_small = polaroct::baselines::NbList::build(&mol, 6.0);
    let nb_large = polaroct::baselines::NbList::build(&mol, 18.0);
    assert!(nb_large.memory_bytes() > 5 * nb_small.memory_bytes());
}

#[test]
fn claim_fig5_scaling_with_cores() {
    // More cores => less simulated time, for both drivers.
    let mol = polaroct::molecule::synth::capsid("cap", 30_000, 31);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = DriverConfig::default();
    let m = MachineSpec::lonestar4();
    let t12 = run_oct_mpi(
        &sys,
        &params,
        &cfg,
        &ClusterSpec::new(m, Placement::distributed(12)),
        WorkDivision::NodeNode,
    )
    .unwrap()
    .time;
    let t144 = run_oct_mpi(
        &sys,
        &params,
        &cfg,
        &ClusterSpec::new(m, Placement::distributed(144)),
        WorkDivision::NodeNode,
    )
    .unwrap()
    .time;
    assert!(t144 < t12, "144 cores ({t144}) should beat 12 ({t12})");
    let h12 =
        run_oct_hybrid(&sys, &params, &cfg, &ClusterSpec::new(m, Placement::hybrid_per_socket(12, &m))).unwrap().time;
    let h144 =
        run_oct_hybrid(&sys, &params, &cfg, &ClusterSpec::new(m, Placement::hybrid_per_socket(144, &m))).unwrap().time;
    assert!(h144 < h12);
}
