//! Cross-crate integration: the full pipeline from synthetic molecule to
//! energy, exercised through the public meta-crate API.

use polaroct::prelude::*;

fn small_system(n: usize, seed: u64) -> (polaroct::molecule::Molecule, GbSystem) {
    let mol = polaroct::molecule::synth::protein("itest", n, seed);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    (mol, sys)
}

#[test]
fn pipeline_produces_physical_energy() {
    let (_, sys) = small_system(300, 1);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();
    let r = run_serial(&sys, &params, &cfg).unwrap();
    // Polarization energy of a neutral protein: negative, finite, and in
    // a physically plausible range (a few kcal/mol per atom).
    assert!(r.energy_kcal < 0.0);
    assert!(r.energy_kcal > -100.0 * 300.0);
    assert_eq!(r.born_radii.len(), 300);
    for &b in &r.born_radii {
        assert!((1.0..=1000.0).contains(&b), "Born radius {b}");
    }
}

#[test]
fn surface_to_octree_payload_consistency() {
    // Quadrature weights must survive the Morton permutation: total
    // surface area is identical before and after prepare().
    let mol = polaroct::molecule::synth::protein("area", 200, 2);
    let params = ApproxParams::default();
    let quad = polaroct::surface::surface_quadrature(&mol, params.surface);
    let sys = GbSystem::prepare(&mol, &params);
    let direct: f64 = quad.weights.iter().sum();
    let permuted: f64 = sys.q_weight.iter().sum();
    assert!((direct - permuted).abs() < 1e-9 * direct);
}

#[test]
fn energy_invariant_under_rigid_motion() {
    // E_pol depends only on internal geometry: translating + rotating the
    // whole molecule must not change it beyond roundoff-level wiggle from
    // different octree cells.
    use polaroct::geom::transform::Rotation;
    use polaroct::geom::{Transform, Vec3};
    let mol = polaroct::molecule::synth::protein("rigid", 250, 3);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();
    let e0 = run_serial(&GbSystem::prepare(&mol, &params), &params, &cfg).unwrap().energy_kcal;
    let t = Transform::about_pivot(
        Rotation::about_axis(Vec3::new(1.0, 2.0, 3.0), 1.234),
        mol.centroid(),
        Vec3::new(100.0, -50.0, 20.0),
    );
    let moved = mol.transformed(&t);
    let e1 = run_serial(&GbSystem::prepare(&moved, &params), &params, &cfg).unwrap().energy_kcal;
    // Two error sources separate here. The octree approximation is
    // pose-local — each pose must track ITS OWN naive (exact-quadrature)
    // reference within the ε tolerance. The surface quadrature itself,
    // however, is discretized on a pose-dependent grid and drifts a few
    // percent under rotation (measured ≈2.4% for this molecule), so the
    // pose-to-pose comparison only gets a quadrature-level bound.
    let n0 = run_naive(&GbSystem::prepare(&mol, &params), &params, &cfg).unwrap().energy_kcal;
    let n1 = run_naive(&GbSystem::prepare(&moved, &params), &params, &cfg).unwrap().energy_kcal;
    assert!(
        ((e0 - n0) / n0).abs() < 0.01,
        "original pose off its naive reference: {e0} vs {n0}"
    );
    assert!(
        ((e1 - n1) / n1).abs() < 0.01,
        "moved pose off its naive reference: {e1} vs {n1}"
    );
    assert!(
        ((e0 - e1) / e0).abs() < 0.05,
        "rigid motion changed E_pol beyond quadrature drift: {e0} vs {e1}"
    );
}

#[test]
fn complex_energy_is_not_sum_of_parts() {
    // Bringing a ligand next to a receptor changes burial: E(complex) !=
    // E(receptor) + E(ligand) — the docking signal the paper motivates.
    let receptor = polaroct::molecule::synth::protein("r", 400, 5);
    let ligand = polaroct::molecule::synth::ligand("l", 30, 6);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();
    let e_r = run_serial(&GbSystem::prepare(&receptor, &params), &params, &cfg).unwrap().energy_kcal;
    let e_l = run_serial(&GbSystem::prepare(&ligand, &params), &params, &cfg).unwrap().energy_kcal;

    let mut complex = receptor.clone();
    // Dock the ligand touching the receptor surface.
    let shift = receptor.bbox().circumradius() + 2.0;
    let t = polaroct::geom::Transform::translation(
        receptor.centroid() + polaroct::geom::Vec3::new(shift, 0.0, 0.0) - ligand.centroid(),
    );
    complex.extend_from(&ligand.transformed(&t));
    let e_c = run_serial(&GbSystem::prepare(&complex, &params), &params, &cfg).unwrap().energy_kcal;
    let delta = e_c - e_r - e_l;
    assert!(delta.abs() > 1e-3, "binding ΔE unexpectedly zero");
}

#[test]
fn io_roundtrip_preserves_energy() {
    let mol = polaroct::molecule::synth::ligand("io", 40, 7);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();
    let e0 = run_serial(&GbSystem::prepare(&mol, &params), &params, &cfg).unwrap().energy_kcal;

    let mut buf = Vec::new();
    polaroct::molecule::io::xyzrq::write(&mol, &mut buf).unwrap();
    let back = polaroct::molecule::io::xyzrq::read("io", buf.as_slice()).unwrap();
    let e1 = run_serial(&GbSystem::prepare(&back, &params), &params, &cfg).unwrap().energy_kcal;
    // xyzrq stores 6 decimals; energies agree to ~1e-4 relative.
    assert!(((e0 - e1) / e0).abs() < 1e-4, "{e0} vs {e1}");
}

#[test]
fn preprocessing_is_reusable_across_epsilon() {
    // §IV.C step 1: "Once the octrees have been built, we can approximate
    // for any ε without reconstructing them."
    let (_, sys) = small_system(300, 9);
    let cfg = DriverConfig::default();
    let naive = run_naive(&sys, &ApproxParams::default(), &cfg).unwrap();
    for eps in [0.1, 0.5, 0.9] {
        let params = ApproxParams::default().with_eps(0.9, eps);
        let r = run_serial(&sys, &params, &cfg).unwrap();
        let err = ((r.energy_kcal - naive.energy_kcal) / naive.energy_kcal).abs();
        assert!(err < 0.01, "eps={eps}: err {err}");
    }
}
