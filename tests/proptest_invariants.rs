//! Property-based tests of cross-crate invariants.

use polaroct::prelude::*;
use proptest::prelude::*;

fn run_energy(mol: &polaroct::molecule::Molecule, params: &ApproxParams) -> RunReport {
    let sys = GbSystem::prepare(mol, params);
    run_serial(&sys, params, &DriverConfig::default()).unwrap()
}

proptest! {
    // Keep case counts modest: each case builds a surface + two octrees.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn energy_always_negative_and_finite(n in 20usize..150, seed in 0u64..1000) {
        let mol = polaroct::molecule::synth::protein("pp", n, seed);
        let r = run_energy(&mol, &ApproxParams::default());
        prop_assert!(r.energy_kcal.is_finite());
        prop_assert!(r.energy_kcal < 0.0);
    }

    #[test]
    fn born_radii_bounded_below_by_intrinsic(n in 20usize..120, seed in 0u64..1000) {
        let mol = polaroct::molecule::synth::protein("pb", n, seed);
        let params = ApproxParams::default();
        let r = run_energy(&mol, &params);
        for (i, &b) in r.born_radii.iter().enumerate() {
            prop_assert!(b >= mol.radii[i] - 1e-12, "atom {i}: {b} < {}", mol.radii[i]);
        }
    }

    #[test]
    fn translation_leaves_energy_unchanged(
        n in 20usize..100,
        seed in 0u64..500,
        dx in -50.0f64..50.0,
        dy in -50.0f64..50.0,
        dz in -50.0f64..50.0,
    ) {
        // Pure translations keep the octree decomposition congruent, so
        // the approximation is identical up to floating-point noise.
        let mol = polaroct::molecule::synth::protein("pt", n, seed);
        let params = ApproxParams::default();
        let e0 = run_energy(&mol, &params).energy_kcal;
        let moved = mol.transformed(&polaroct::geom::Transform::translation(
            polaroct::geom::Vec3::new(dx, dy, dz),
        ));
        let e1 = run_energy(&moved, &params).energy_kcal;
        // Translation re-quantizes the Morton grid, so the two runs use
        // different (but equally valid) octree decompositions; they may
        // differ by up to ~2x the ε-level approximation error.
        prop_assert!(((e0 - e1) / e0).abs() < 1e-2, "{e0} vs {e1}");
    }

    #[test]
    fn charge_scaling_scales_energy_quadratically(n in 20usize..80, seed in 0u64..500) {
        // E_pol is a quadratic form in the charges: q -> 2q gives 4E.
        let mol = polaroct::molecule::synth::protein("pq", n, seed);
        let params = ApproxParams::default();
        let e1 = run_energy(&mol, &params).energy_kcal;
        let mut scaled = mol.clone();
        for q in &mut scaled.charges {
            *q *= 2.0;
        }
        let e4 = run_energy(&scaled, &params).energy_kcal;
        prop_assert!(((e4 - 4.0 * e1) / e4).abs() < 1e-9, "{e4} vs 4*{e1}");
    }

    #[test]
    fn mpi_energy_matches_serial_for_any_p(n in 30usize..120, seed in 0u64..300, p in 1usize..9) {
        let mol = polaroct::molecule::synth::protein("pm", n, seed);
        let params = ApproxParams::default();
        let sys = GbSystem::prepare(&mol, &params);
        let cfg = DriverConfig::default();
        let serial = run_serial(&sys, &params, &cfg).unwrap().energy_kcal;
        let cluster = ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p));
        let mpi = run_oct_mpi(&sys, &params, &cfg, &cluster, WorkDivision::NodeNode)
            .unwrap()
            .energy_kcal;
        prop_assert!(((serial - mpi) / serial).abs() < 1e-10, "{serial} vs {mpi} at P={p}");
    }
}
