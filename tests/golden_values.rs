//! Golden-value regression: the committed `tests/golden/*.golden`
//! snapshots must match freshly computed ones bit-for-bit.
//!
//! A failure here means the physics output moved — the energy bits or
//! the Born-radii digest changed for a bundled example molecule. If the
//! change is intentional, regenerate with `cargo xtask bless` and
//! commit the diff; if not, you have a regression.

use polaroct::golden::{cases, golden_dir, snapshot};

#[test]
fn golden_snapshots_match_committed_files() {
    for c in cases() {
        let path = golden_dir().join(format!("{}.golden", c.name));
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run `cargo xtask bless` to create it",
                path.display()
            )
        });
        let fresh = snapshot(c.name, &(c.make)());
        assert_eq!(
            fresh, committed,
            "golden mismatch for case `{}`:\n--- fresh ---\n{fresh}\n--- committed ({}) ---\n{committed}\n\
             if this change is intentional, run `cargo xtask bless` and commit the diff",
            c.name,
            path.display()
        );
    }
}

#[test]
fn golden_dir_has_no_stale_files() {
    let expected: Vec<String> = cases().iter().map(|c| format!("{}.golden", c.name)).collect();
    let entries = std::fs::read_dir(golden_dir()).expect("tests/golden exists");
    for entry in entries {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            expected.contains(&name),
            "stale file tests/golden/{name}: no golden case produces it; delete it or add the case"
        );
    }
}
