//! Golden-value regression: the committed `tests/golden/*.golden`
//! snapshots must match freshly computed ones bit-for-bit.
//!
//! A failure here means the physics output moved — the energy bits or
//! the Born-radii digest changed for a bundled example molecule, either
//! in the full serial pipeline (`<case>.golden`) or in the incremental
//! delta engine's pinned perturbation script (`<case>_delta.golden`).
//! If the change is intentional, regenerate with `cargo xtask bless`
//! and commit the diff; if not, you have a regression.

use polaroct::golden::{
    cases, golden_dir, golden_file_names, snapshot, snapshot_delta, snapshot_delta_entry_impl,
    snapshot_delta_impl,
};

fn read_committed(file: &str) -> String {
    let path = golden_dir().join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `cargo xtask bless` to create it",
            path.display()
        )
    })
}

#[test]
fn golden_snapshots_match_committed_files() {
    for c in cases() {
        let file = format!("{}.golden", c.name);
        let committed = read_committed(&file);
        let fresh = snapshot(c.name, &(c.make)());
        assert_eq!(
            fresh, committed,
            "golden mismatch for case `{}` ({file}):\n--- fresh ---\n{fresh}\n--- committed ---\n{committed}\n\
             if this change is intentional, run `cargo xtask bless` and commit the diff",
            c.name,
        );
    }
}

#[test]
fn delta_snapshots_match_committed_files() {
    for c in cases() {
        let file = format!("{}_delta.golden", c.name);
        let committed = read_committed(&file);
        let fresh = snapshot_delta(c.name, &(c.make)());
        assert_eq!(
            fresh, committed,
            "delta golden mismatch for case `{}` ({file}):\n--- fresh ---\n{fresh}\n--- committed ---\n{committed}\n\
             if this change is intentional, run `cargo xtask bless` and commit the diff",
            c.name,
        );
    }
}

/// The committed delta snapshots must certify that the pinned script was
/// actually served incrementally: no query rebuilt, and every query left
/// chunks in the cache (`chunks_redone < total_chunks`).
#[test]
fn delta_goldens_certify_incremental_service() {
    for c in cases() {
        let committed = read_committed(&format!("{}_delta.golden", c.name));
        let value = |key: &str| -> String {
            committed
                .lines()
                .find_map(|l| l.strip_prefix(key))
                .unwrap_or_else(|| panic!("missing {key} in {}_delta.golden", c.name))
                .trim()
                .to_owned()
        };
        for qi in 0..3 {
            assert_eq!(
                value(&format!("query{qi}_rebuilt:")),
                "false",
                "case {} query {qi} fell off the incremental path",
                c.name
            );
            let cached: u64 = value(&format!("query{qi}_chunks_cached:")).parse().unwrap();
            let redone: u64 = value(&format!("query{qi}_chunks_redone:")).parse().unwrap();
            assert!(
                cached > 0,
                "case {} query {qi} cached no chunks (redone {redone})",
                c.name
            );
        }
        assert_eq!(value("base_energy_bits:"), value("reverted_energy_bits:"));
        assert_eq!(value("base_born_fnv1a:"), value("reverted_born_fnv1a:"));
    }
}

/// The committed batch sections must certify that the pinned 4-query
/// batch was served through the entry-granular overlay path: every
/// query redid strictly fewer entries than the total, at least one, and
/// the batch left the base state bit-identical.
#[test]
fn delta_goldens_certify_batch_service() {
    for c in cases() {
        let committed = read_committed(&format!("{}_delta.golden", c.name));
        let value = |key: &str| -> String {
            committed
                .lines()
                .find_map(|l| l.strip_prefix(key))
                .unwrap_or_else(|| panic!("missing {key} in {}_delta.golden", c.name))
                .trim()
                .to_owned()
        };
        let total_entries: u64 = value("total_entries:").parse().unwrap();
        for qi in 0..4 {
            let redone: u64 = value(&format!("batch{qi}_entries_redone:"))
                .parse()
                .unwrap();
            assert!(
                redone > 0 && redone < total_entries,
                "case {} batch query {qi}: {redone} of {total_entries} entries redone \
                 is not a partial-recompute service",
                c.name
            );
        }
        assert_eq!(
            value("base_energy_bits:"),
            value("post_batch_energy_bits:"),
            "case {}: the batch mutated the base energy",
            c.name
        );
        assert_eq!(
            value("base_born_fnv1a:"),
            value("post_batch_born_fnv1a:"),
            "case {}: the batch mutated the base Born radii",
            c.name
        );
    }
}

/// Recall: a deliberately stale cached chunk must change the snapshot —
/// i.e. the committed-file diff *would catch* a broken cache, not just
/// bless whatever the engine produces. Runs on the smallest case.
#[test]
fn delta_golden_catches_a_stale_cached_chunk() {
    let c = &cases()[0];
    let committed = read_committed(&format!("{}_delta.golden", c.name));
    let broken = snapshot_delta_impl(c.name, &(c.make)(), Some(1e-3));
    assert_ne!(
        broken, committed,
        "a corrupted chunk cache reproduced the committed snapshot — the golden diff has no recall"
    );
}

/// Entry-granular recall: corrupting a *single cached entry span* — the
/// smallest unit the entry-granular cache manages — must also change
/// the snapshot. This is strictly stronger than the whole-cache test
/// above: it proves per-entry staleness cannot hide inside an otherwise
/// clean chunk.
#[test]
fn delta_golden_catches_a_stale_cached_entry() {
    let c = &cases()[0];
    let committed = read_committed(&format!("{}_delta.golden", c.name));
    let broken = snapshot_delta_entry_impl(c.name, &(c.make)(), 0, 1e-3);
    assert_ne!(
        broken, committed,
        "a single corrupted entry span reproduced the committed snapshot — \
         the golden diff has no entry-level recall"
    );
}

#[test]
fn golden_dir_has_no_stale_files() {
    let expected = golden_file_names();
    let entries = std::fs::read_dir(golden_dir()).expect("tests/golden exists");
    for entry in entries {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            expected.contains(&name),
            "stale file tests/golden/{name}: no golden case produces it; delete it or add the case"
        );
    }
}
