//! `cargo xtask analyze`: the project-invariant linter.
//!
//! A deliberately simple, line-based static analyzer (no `syn`, no
//! network, no nightly) that enforces the workspace's cross-cutting
//! invariants — the ones `rustc`/clippy cannot express:
//!
//! * **unsafe-safety-comment** — every `unsafe` occurrence carries a
//!   `// SAFETY:` comment on the same line or in the contiguous
//!   comment/attribute block immediately above it.
//! * **unsafe-forbidden** — `unsafe` appears only in the allowlisted
//!   crate (`crates/sched`); every crate root carries
//!   `#![forbid(unsafe_code)]` (the allowlisted crate may use `deny`
//!   with per-site `allow`).
//! * **no-panic-paths** — the fault-tolerance-critical modules
//!   (`cluster::comm`, `cluster::runner`, `cluster::transport`,
//!   `cluster::wire`, `cluster::proc`, `core::drivers`,
//!   `core::procexec`) must not
//!   `unwrap`/`expect`/`panic!`: a worker that panics where the design
//!   says "return a typed error" silently converts a recoverable fault
//!   into a rank loss. Documented exceptions are waived with
//!   `// PANIC-OK: <reason>`.
//! * **hash-iter-accumulation** — iterating a `HashMap`/`HashSet` while
//!   accumulating (`+=`, `.sum()`, `.fold(`) is order-nondeterministic
//!   and breaks the bitwise-reproducibility contract of the energy
//!   pipeline. Waive with `// DETERMINISM-OK: <reason>`.
//! * **float-reduction-blessing** — inside closures handed to the
//!   parallel primitives (`.run(`, `.try_map(`, `spawn(`), `+=` into a
//!   variable captured from outside the closure is a scheduling-order-
//!   dependent reduction; those belong in the blessed deterministic
//!   paths (`sched::reduce`, `core::soa`). Waive with
//!   `// DETERMINISM-OK: <reason>`.
//!
//! The scanner strips comments and string literals before matching
//! (via the `lintir` lexer), and skips `#[cfg(test)]` regions for the
//! panic-path rule, so the rules fire on code, not prose.
//!
//! On top of the per-line rules, the workspace run executes the four
//! **interprocedural passes** from `crates/lintir` (`PA` panic
//! reachability, `DL` deadline boundedness, `WP` wire-protocol
//! totality, `DT` determinism dataflow) and compares their diagnostics
//! against the checked-in ratchet baseline (`xtask/analyze.baseline`):
//! new findings — or stale pins — fail the run. `--format json` emits
//! the full machine-readable report; `--bless-baseline` regenerates
//! the pin set. Exit status is non-zero iff legacy findings or ratchet
//! drift exist.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as reported (repo-relative when walking the workspace).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to a file, derived from its workspace-relative
/// path by [`classify`] (tests construct it directly for fixtures).
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Module on the fault-tolerance path: panicking is a bug.
    pub no_panic: bool,
    /// Blessed deterministic-reduction file: float `+=` allowed.
    pub blessed_float: bool,
    /// Crate root: must carry `#![forbid(unsafe_code)]` (or `deny` if
    /// `unsafe_allowed`).
    pub crate_root: bool,
    /// Member of the audited-unsafe allowlist (`crates/sched`).
    pub unsafe_allowed: bool,
}

/// Modules where `unwrap`/`expect`/`panic!` indicate a broken
/// fault-tolerance contract.
const NO_PANIC_FILES: &[&str] = &[
    "crates/bench/src/bin/delta_scan.rs",
    "crates/bench/src/bin/kernel_throughput.rs",
    "crates/bench/src/bin/list_reuse.rs",
    "crates/cluster/src/comm.rs",
    "crates/cluster/src/proc.rs",
    "crates/cluster/src/runner.rs",
    "crates/cluster/src/transport.rs",
    "crates/cluster/src/wire.rs",
    "crates/core/src/delta.rs",
    "crates/core/src/delta/batch.rs",
    "crates/core/src/drivers.rs",
    "crates/core/src/lists.rs",
    "crates/core/src/procexec.rs",
    "crates/core/src/soa.rs",
    "crates/core/src/system.rs",
    "crates/octree/src/build.rs",
    "crates/octree/src/parallel.rs",
];

/// Files allowed to contain scheduling-order float accumulation (the
/// deterministic reduction implementations themselves).
const BLESSED_FLOAT_FILES: &[&str] = &["crates/sched/src/reduce.rs", "crates/core/src/soa.rs"];

/// Crates allowed to contain `unsafe` (with per-site SAFETY comments).
const UNSAFE_ALLOWLIST: &[&str] = &["crates/sched/"];

/// Derive the applicable rules from a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let rel = rel.replace('\\', "/");
    let crate_root = rel.ends_with("/src/lib.rs")
        || rel == "src/lib.rs"
        || rel.contains("/src/bin/")
        || rel.starts_with("src/bin/")
        || rel == "xtask/src/main.rs";
    FileClass {
        no_panic: NO_PANIC_FILES.iter().any(|f| rel == *f),
        blessed_float: BLESSED_FLOAT_FILES.iter().any(|f| rel == *f),
        crate_root,
        unsafe_allowed: UNSAFE_ALLOWLIST.iter().any(|p| rel.starts_with(p)),
    }
}

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// `src` with comments and string/char literals blanked out (line
/// structure preserved), so token matching sees only code.
///
/// Delegates to the real lexer in [`lintir::lex`]: unlike the old
/// hand-rolled state machine this handles raw strings with hashes,
/// `'a` lifetime ticks vs char literals (including `b'x'` and `'\''`),
/// nested `/* /* */ */` block comments, and strings spanning lines.
pub fn strip_source(src: &str) -> Vec<String> {
    lintir::strip_source(src)
}

fn is_word_boundary(c: Option<char>) -> bool {
    !matches!(c, Some(ch) if ch.is_alphanumeric() || ch == '_')
}

/// Does `line` contain `word` as a standalone token?
fn has_token(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before = line[..at].chars().last();
        let after = line[at + word.len()..].chars().next();
        if is_word_boundary(before) && is_word_boundary(after) {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// 1-based line numbers covered by `#[cfg(test)]`-gated items.
pub fn cfg_test_lines(stripped: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; stripped.len()];
    let mut idx = 0;
    while idx < stripped.len() {
        if stripped[idx].contains("#[cfg(test)]") {
            // Find the opening brace of the gated item, then match it.
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = idx;
            'outer: while j < stripped.len() {
                for c in stripped[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            let end = j.min(stripped.len() - 1);
            for flag in in_test.iter_mut().take(end + 1).skip(idx) {
                *flag = true;
            }
            idx = end + 1;
        } else {
            idx += 1;
        }
    }
    in_test
}

/// Is line `i` (0-based) waived by `marker` on the same line or the
/// line above?
fn waived(raw_lines: &[&str], i: usize, marker: &str) -> bool {
    raw_lines[i].contains(marker) || (i > 0 && raw_lines[i - 1].contains(marker))
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn rule_unsafe(
    rel: &str,
    raw: &[&str],
    stripped: &[String],
    class: &FileClass,
    out: &mut Vec<Finding>,
) {
    for (i, line) in stripped.iter().enumerate() {
        if !has_token(line, "unsafe") {
            continue;
        }
        // Attribute mentions (`#![deny(unsafe_code)]` etc.) are hygiene,
        // not unsafe code.
        if line.contains("unsafe_code") {
            continue;
        }
        if !class.unsafe_allowed {
            out.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "unsafe-forbidden",
                message: "`unsafe` outside the audited allowlist (crates/sched); \
                          move the code there or make it safe"
                    .to_string(),
            });
            continue;
        }
        // Accept `// SAFETY:` on the same line or anywhere in the
        // contiguous comment/attribute block immediately above (long
        // safety arguments are encouraged, not penalized).
        let mut documented = raw[i].contains("SAFETY:");
        let mut j = i;
        while !documented && j > 0 {
            j -= 1;
            let t = raw[j].trim_start();
            if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") || t.is_empty() {
                documented = t.contains("SAFETY:");
                if documented {
                    break;
                }
            } else {
                break;
            }
        }
        if !documented {
            out.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "unsafe-safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment on the same line \
                          or in the comment block immediately above"
                    .to_string(),
            });
        }
    }
}

fn rule_crate_root(rel: &str, src: &str, class: &FileClass, out: &mut Vec<Finding>) {
    if !class.crate_root {
        return;
    }
    let has_forbid = src.contains("#![forbid(unsafe_code)]");
    let has_deny = src.contains("#![deny(unsafe_code)]");
    let ok = has_forbid || (class.unsafe_allowed && has_deny);
    if !ok {
        out.push(Finding {
            file: rel.to_string(),
            line: 1,
            rule: "unsafe-attr",
            message: if class.unsafe_allowed {
                "crate root must carry #![deny(unsafe_code)] (allowlisted) or \
                 #![forbid(unsafe_code)]"
                    .to_string()
            } else {
                "crate root must carry #![forbid(unsafe_code)]".to_string()
            },
        });
    }
}

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn rule_no_panic(
    rel: &str,
    raw: &[&str],
    stripped: &[String],
    in_test: &[bool],
    class: &FileClass,
    out: &mut Vec<Finding>,
) {
    if !class.no_panic {
        return;
    }
    for (i, line) in stripped.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let Some(tok) = PANIC_TOKENS.iter().find(|t| line.contains(**t)) else {
            continue;
        };
        if waived(raw, i, "PANIC-OK:") {
            continue;
        }
        out.push(Finding {
            file: rel.to_string(),
            line: i + 1,
            rule: "no-panic-paths",
            message: format!(
                "`{tok}` on a fault-tolerance path; return a typed error \
                 (CommError/RankError) or waive with `// PANIC-OK: <reason>`"
            ),
        });
    }
}

/// Variable names bound to `HashMap`/`HashSet` in this file (local
/// `let`s and struct fields alike — matching is name-based).
fn hash_container_names(stripped: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for line in stripped {
        if !(line.contains("HashMap") || line.contains("HashSet")) {
            continue;
        }
        // `let [mut] name ... = HashMap::...` / `name: HashMap<...>`
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                names.push(name);
                continue;
            }
        }
        if let Some(colon) = line.find(':') {
            let after = line[colon + 1..]
                .trim_start()
                .trim_start_matches('&')
                .trim_start_matches("mut ");
            if after.starts_with("HashMap") || after.starts_with("HashSet") {
                let name: String = line[..colon]
                    .trim_end()
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty() {
                    names.push(name);
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// End line (0-based, inclusive) of the brace-block opened at or after
/// `start`.
fn block_end(stripped: &[String], start: usize) -> usize {
    let mut depth = 0usize;
    let mut opened = false;
    let mut j = start;
    while j < stripped.len() {
        for c in stripped[j].chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    stripped.len().saturating_sub(1)
}

fn rule_hash_iteration(
    rel: &str,
    raw: &[&str],
    stripped: &[String],
    out: &mut Vec<Finding>,
) {
    let names = hash_container_names(stripped);
    if names.is_empty() {
        return;
    }
    let iter_methods = [".iter()", ".values()", ".keys()", ".drain(", ".into_iter()"];
    for (i, line) in stripped.iter().enumerate() {
        let touches = |name: &str| {
            has_token(line, name)
                && (iter_methods.iter().any(|m| line.contains(m))
                    || line.trim_start().starts_with("for "))
        };
        let Some(name) = names.iter().find(|n| touches(n)) else {
            continue;
        };
        if waived(raw, i, "DETERMINISM-OK:") {
            continue;
        }
        let accumulating = if line.trim_start().starts_with("for ") {
            let end = block_end(stripped, i);
            stripped[i..=end].iter().any(|l| l.contains("+="))
        } else {
            // Iterator chain: look at this statement (to the `;`).
            let mut j = i;
            let mut found = false;
            loop {
                let l = &stripped[j];
                if l.contains("+=") || l.contains(".sum") || l.contains(".fold(") || l.contains(".product") {
                    found = true;
                    break;
                }
                if l.contains(';') || j + 1 >= stripped.len() || j > i + 10 {
                    break;
                }
                j += 1;
            }
            found
        };
        if accumulating {
            out.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "hash-iter-accumulation",
                message: format!(
                    "accumulation over `{name}` (HashMap/HashSet) iterates in \
                     nondeterministic order; use a BTreeMap/sorted keys or waive \
                     with `// DETERMINISM-OK: <reason>`"
                ),
            });
        }
    }
}

/// Calls that hand a closure to the parallel runtime; `+=` on captured
/// variables inside them is a scheduling-order-dependent reduction.
const PARALLEL_CALLS: &[&str] = &[".run(", ".try_map(", "spawn("];

fn rule_float_reduction(
    rel: &str,
    raw: &[&str],
    stripped: &[String],
    class: &FileClass,
    out: &mut Vec<Finding>,
) {
    if class.blessed_float {
        return;
    }
    for (i, line) in stripped.iter().enumerate() {
        if !PARALLEL_CALLS.iter().any(|c| line.contains(*c)) {
            continue;
        }
        // The closure region: from the call line to the end of its
        // paren group (approximated by the statement's brace block when
        // the call spans lines).
        let end = block_end(stripped, i);
        for j in i..=end.min(stripped.len() - 1) {
            let l = &stripped[j];
            let Some(pos) = l.find("+=") else { continue };
            // Identify the accumulator name left of `+=`.
            let lhs: String = l[..pos]
                .trim_end()
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            if lhs.is_empty() {
                continue;
            }
            // Declared inside the region (local accumulator, loop var,
            // or closure parameter)? Then it is per-task state — fine.
            let local = stripped[i..=j].iter().any(|r| {
                has_token(r, &format!("let {lhs}"))
                    || has_token(r, &format!("let mut {lhs}"))
                    || has_token(r, &format!("for {lhs}"))
                    || r.contains(&format!("|{lhs}|"))
                    || r.contains(&format!("|{lhs},"))
                    || r.contains(&format!(", {lhs}|"))
                    || r.contains(&format!(",{lhs}|"))
            });
            if local || waived(raw, j, "DETERMINISM-OK:") {
                continue;
            }
            out.push(Finding {
                file: rel.to_string(),
                line: j + 1,
                rule: "float-reduction-blessing",
                message: format!(
                    "`{lhs} +=` on a variable captured by a parallel closure: \
                     scheduling-order-dependent reduction; use the blessed \
                     deterministic paths (sched::reduce / core::soa) or waive \
                     with `// DETERMINISM-OK: <reason>`"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Lint one file's source under the given class. `rel` is used for
/// reporting only.
pub fn lint_source(rel: &str, src: &str, class: &FileClass) -> Vec<Finding> {
    let raw: Vec<&str> = src.lines().collect();
    let stripped = strip_source(src);
    let in_test = cfg_test_lines(&stripped);
    let mut out = Vec::new();
    rule_unsafe(rel, &raw, &stripped, class, &mut out);
    rule_crate_root(rel, src, class, &mut out);
    rule_no_panic(rel, &raw, &stripped, &in_test, class, &mut out);
    rule_hash_iteration(rel, &raw, &stripped, &mut out);
    rule_float_reduction(rel, &raw, &stripped, class, &mut out);
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "fixtures" | "related") {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint every `.rs` file under `root` (skipping `target/`, `.git/`,
/// test `fixtures/`).
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let class = classify(&rel);
        findings.extend(lint_source(&rel, &src, &class));
    }
    findings
}

/// Workspace-relative location of the interprocedural ratchet baseline.
pub const BASELINE_REL: &str = "xtask/analyze.baseline";

/// Run the interprocedural passes on the workspace and compare against
/// the checked-in ratchet baseline. Returns `(diagnostics, drifts)`.
pub fn interprocedural(root: &Path) -> std::io::Result<(Vec<lintir::Diagnostic>, Vec<lintir::Drift>)> {
    let ws = lintir::Workspace::load(root)?;
    let diags = lintir::analyze(&ws, &lintir::Config::default());
    let baseline_text =
        std::fs::read_to_string(root.join(BASELINE_REL)).unwrap_or_default();
    let baseline = lintir::parse_baseline(&baseline_text);
    let drifts = lintir::ratchet(&diags, &baseline);
    Ok((diags, drifts))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Full-report JSON: legacy per-line findings, interprocedural pass
/// diagnostics, and ratchet drift (CI uploads this as an artifact).
pub fn report_json(
    legacy: &[Finding],
    diags: &[lintir::Diagnostic],
    drifts: &[lintir::Drift],
) -> String {
    let mut out = String::from("{\n  \"legacy\": [\n");
    for (i, f) in legacy.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}{}\n",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            if i + 1 < legacy.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"passes\": ");
    // lintir renders its own array; indent it two spaces for cosmetics.
    let passes = lintir::to_json(diags);
    out.push_str(passes.trim_end());
    out.push_str(",\n  \"drift\": [\n");
    for (i, d) in drifts.iter().enumerate() {
        let (kind, key, have, pinned) = match d {
            lintir::Drift::New { key, have, pinned } => ("new", key, have, pinned),
            lintir::Drift::Stale { key, have, pinned } => ("stale", key, have, pinned),
        };
        out.push_str(&format!(
            "    {{\"kind\":\"{}\",\"key\":\"{}\",\"have\":{},\"pinned\":{}}}{}\n",
            kind,
            json_escape(key),
            have,
            pinned,
            if i + 1 < drifts.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// CLI entry: lint the workspace root (or explicit paths) and print
/// findings; non-zero exit iff blocking findings or ratchet drift.
///
/// Flags: `--format json` emits the machine-readable report on stdout;
/// `--bless-baseline` rewrites `xtask/analyze.baseline` from the
/// current diagnostics (use only to shrink the pin set or after
/// review — CI treats any drift, new *or* stale, as a failure).
pub fn run(args: &[String]) -> ExitCode {
    let mut format_json = false;
    let mut bless_baseline = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(|s| s.as_str()) {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("--format expects `json` or `text`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--format=json" => format_json = true,
            "--format=text" => format_json = false,
            "--bless-baseline" => bless_baseline = true,
            _ => paths.push(a.clone()),
        }
    }

    // Explicit-path mode: legacy per-file linting only (used for quick
    // one-file checks; the interprocedural passes need the workspace).
    if !paths.is_empty() {
        let mut findings = Vec::new();
        for a in &paths {
            let path = PathBuf::from(a);
            let Ok(src) = std::fs::read_to_string(&path) else {
                eprintln!("cannot read {a}");
                return ExitCode::FAILURE;
            };
            let class = classify(a);
            findings.extend(lint_source(a, &src, &class));
        }
        findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for f in &findings {
            println!("{f}");
        }
        return if findings.is_empty() {
            println!("xtask analyze: clean");
            ExitCode::SUCCESS
        } else {
            println!("xtask analyze: {} finding(s)", findings.len());
            ExitCode::FAILURE
        };
    }

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).parent().map(|p| p.to_path_buf()).unwrap_or_default())
        .unwrap_or_else(|_| PathBuf::from("."));

    let mut legacy = lint_workspace(&root);
    legacy.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let (diags, drifts) = match interprocedural(&root) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("xtask analyze: failed to load workspace: {e}");
            return ExitCode::FAILURE;
        }
    };

    if bless_baseline {
        let text = lintir::to_baseline(&diags);
        if let Err(e) = std::fs::write(root.join(BASELINE_REL), &text) {
            eprintln!("cannot write {BASELINE_REL}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: blessed {} finding(s) into {BASELINE_REL}",
            diags.len()
        );
    }
    let drifts = if bless_baseline { Vec::new() } else { drifts };

    if format_json {
        print!("{}", report_json(&legacy, &diags, &drifts));
    } else {
        for f in &legacy {
            println!("{f}");
        }
        for d in &drifts {
            match d {
                lintir::Drift::New { key, have, pinned } => println!(
                    "ratchet: NEW finding `{key}` ({have} now vs {pinned} pinned) — fix it \
                     or waive at the site"
                ),
                lintir::Drift::Stale { key, have, pinned } => println!(
                    "ratchet: STALE pin `{key}` ({have} now vs {pinned} pinned) — rerun \
                     `cargo xtask analyze --bless-baseline` to shrink the baseline"
                ),
            }
        }
        if !drifts.is_empty() {
            // Show full context for drifted keys (call paths included).
            let drift_keys: Vec<&str> = drifts
                .iter()
                .map(|d| match d {
                    lintir::Drift::New { key, .. } | lintir::Drift::Stale { key, .. } => {
                        key.as_str()
                    }
                })
                .collect();
            let detailed: Vec<lintir::Diagnostic> = diags
                .iter()
                .filter(|d| drift_keys.contains(&d.key().as_str()))
                .cloned()
                .collect();
            print!("{}", lintir::to_text(&detailed));
        }
    }

    let blocking = legacy.len() + drifts.len();
    if blocking == 0 {
        if !format_json {
            println!(
                "xtask analyze: clean ({} interprocedural finding(s) pinned in baseline)",
                diags.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !format_json {
            println!(
                "xtask analyze: {} legacy finding(s), {} ratchet drift(s)",
                legacy.len(),
                drifts.len()
            );
        }
        ExitCode::FAILURE
    }
}
