//! Workspace automation entry point (`cargo xtask <command>`).

#![forbid(unsafe_code)]

use std::process::ExitCode;
use xtask::analyze;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze::run(&args.collect::<Vec<_>>()),
        Some("bless") => bless(),
        Some(other) => {
            eprintln!("unknown xtask command: {other}");
            eprintln!(
                "usage: cargo xtask <analyze [--format json|text] [--bless-baseline] [paths...] | bless>"
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask <analyze [--format json|text] [--bless-baseline] [paths...] | bless>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Regenerate the golden-value fixtures (`tests/golden/*.golden`) by
/// delegating to the root crate's `bless_golden` binary. Shelling out
/// keeps xtask free of workspace dependencies (it must build even when
/// the numeric crates are broken, so `analyze` stays usable).
fn bless() -> ExitCode {
    let status = std::process::Command::new(env!("CARGO"))
        .args(["run", "--release", "-p", "polaroct", "--bin", "bless_golden"])
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(s) => {
            eprintln!("bless_golden exited with {s}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("failed to launch bless_golden: {e}");
            ExitCode::FAILURE
        }
    }
}
