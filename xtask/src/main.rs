//! Workspace automation entry point (`cargo xtask <command>`).

#![forbid(unsafe_code)]

use std::process::ExitCode;
use xtask::analyze;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze::run(&args.collect::<Vec<_>>()),
        Some(other) => {
            eprintln!("unknown xtask command: {other}");
            eprintln!("usage: cargo xtask analyze [paths...]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask analyze [paths...]");
            ExitCode::FAILURE
        }
    }
}
