//! Workspace automation library (see `src/main.rs` for the CLI).
//!
//! The linter lives in [`analyze`] so the integration tests can drive
//! individual rules against fixture files without shelling out.

#![forbid(unsafe_code)]

pub mod analyze;
