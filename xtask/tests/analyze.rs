//! Self-tests for `cargo xtask analyze`: each fixture seeds specific
//! violations and the linter must flag exactly the marked file:line
//! pairs — no more (precision), no fewer (recall). The final test runs
//! the real workspace and demands a clean bill, which is what makes the
//! CI gate trustworthy.

use std::path::PathBuf;
use xtask::analyze::{classify, lint_source, lint_workspace, FileClass, Finding};

fn findings_of(src: &str, class: &FileClass) -> Vec<(usize, &'static str)> {
    lint_source("fixture.rs", src, class)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn missing_safety_comments_are_flagged_in_the_allowlisted_crate() {
    let src = include_str!("fixtures/missing_safety.rs");
    let class = FileClass {
        unsafe_allowed: true,
        ..FileClass::default()
    };
    assert_eq!(
        findings_of(src, &class),
        vec![(5, "unsafe-safety-comment"), (31, "unsafe-safety-comment")],
    );
}

#[test]
fn unsafe_outside_the_allowlist_is_flagged_regardless_of_comments() {
    let src = include_str!("fixtures/unsafe_outside_allowlist.rs");
    assert_eq!(
        findings_of(src, &FileClass::default()),
        vec![(7, "unsafe-forbidden")],
    );
}

#[test]
fn panic_paths_are_flagged_with_waivers_and_tests_exempt() {
    let src = include_str!("fixtures/panic_paths.rs");
    let class = FileClass {
        no_panic: true,
        ..FileClass::default()
    };
    assert_eq!(
        findings_of(src, &class),
        vec![
            (5, "no-panic-paths"),
            (9, "no-panic-paths"),
            (14, "no-panic-paths"),
        ],
    );
}

#[test]
fn panic_tokens_do_not_fire_without_the_no_panic_class() {
    let src = include_str!("fixtures/panic_paths.rs");
    assert_eq!(findings_of(src, &FileClass::default()), vec![]);
}

#[test]
fn hash_iteration_accumulation_is_flagged() {
    let src = include_str!("fixtures/hash_iter.rs");
    assert_eq!(
        findings_of(src, &FileClass::default()),
        vec![(8, "hash-iter-accumulation"), (15, "hash-iter-accumulation")],
    );
}

#[test]
fn captured_float_accumulators_in_parallel_closures_are_flagged() {
    let src = include_str!("fixtures/float_reduction.rs");
    assert_eq!(
        findings_of(src, &FileClass::default()),
        vec![(7, "float-reduction-blessing")],
    );
}

#[test]
fn blessed_files_may_reduce_floats() {
    let src = include_str!("fixtures/float_reduction.rs");
    let class = FileClass {
        blessed_float: true,
        ..FileClass::default()
    };
    assert_eq!(findings_of(src, &class), vec![]);
}

#[test]
fn crate_roots_must_carry_the_unsafe_attr() {
    let src = include_str!("fixtures/missing_forbid.rs");
    let class = FileClass {
        crate_root: true,
        ..FileClass::default()
    };
    assert_eq!(findings_of(src, &class), vec![(1, "unsafe-attr")]);
    // The allowlisted crate may settle for deny + per-site allows.
    let deny_src = "#![deny(unsafe_code)]\npub fn f() {}\n";
    let allowlisted = FileClass {
        crate_root: true,
        unsafe_allowed: true,
        ..FileClass::default()
    };
    assert_eq!(findings_of(deny_src, &allowlisted), vec![]);
    assert_eq!(
        findings_of(deny_src, &class),
        vec![(1, "unsafe-attr")],
        "deny is not enough outside the allowlist"
    );
}

#[test]
fn classify_knows_the_project_layout() {
    assert!(classify("crates/cluster/src/comm.rs").no_panic);
    assert!(classify("crates/cluster/src/wire.rs").no_panic);
    assert!(classify("crates/cluster/src/proc.rs").no_panic);
    assert!(classify("crates/cluster/src/transport.rs").no_panic);
    assert!(classify("crates/core/src/procexec.rs").no_panic);
    assert!(classify("crates/core/src/drivers.rs").no_panic);
    assert!(classify("crates/octree/src/build.rs").no_panic);
    assert!(classify("crates/octree/src/parallel.rs").no_panic);
    assert!(!classify("crates/core/src/energy.rs").no_panic);
    assert!(classify("crates/sched/src/reduce.rs").blessed_float);
    assert!(classify("crates/sched/src/pool.rs").unsafe_allowed);
    assert!(!classify("crates/core/src/soa.rs").unsafe_allowed);
    assert!(classify("crates/core/src/lib.rs").crate_root);
    assert!(!classify("crates/core/src/lib_helpers.rs").crate_root);
}

/// The teeth of the CI gate: the actual workspace must be clean. If a
/// rule fires here, either the code regressed or the rule needs a
/// documented waiver at the site — not a weaker linter.
#[test]
fn the_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the workspace root")
        .to_path_buf();
    let findings: Vec<Finding> = lint_workspace(&root);
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Same teeth for the interprocedural passes: the workspace analysis
/// must match the checked-in ratchet baseline exactly — no new
/// findings (fix or waive at the site), no stale pins (re-bless with
/// `cargo xtask analyze --bless-baseline` after review).
#[test]
fn the_workspace_passes_are_ratcheted_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the workspace root")
        .to_path_buf();
    let (_diags, drifts) =
        xtask::analyze::interprocedural(&root).expect("workspace sources load");
    assert!(
        drifts.is_empty(),
        "ratchet drift against xtask/analyze.baseline:\n{}",
        drifts.iter().map(|d| format!("  {d:?}")).collect::<Vec<_>>().join("\n")
    );
}
