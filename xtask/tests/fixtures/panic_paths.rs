//! Fixture: panic-capable calls on a fault-tolerance path.
//! Expected: no-panic-paths at the lines marked FLAG below.

pub fn bare_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // FLAG line 5
}

pub fn expect_call(x: Option<u32>) -> u32 {
    x.expect("present") // FLAG line 9
}

pub fn explicit_panic(flag: bool) {
    if flag {
        panic!("boom"); // FLAG line 14
    }
}

pub fn waived(x: Option<u32>) -> u32 {
    // PANIC-OK: documented facade contract — absence is a caller bug.
    x.unwrap()
}

pub fn waived_same_line(x: Option<u32>) -> u32 {
    x.unwrap() // PANIC-OK: covered by construction one line up
}

pub fn mentions_in_string() -> &'static str {
    "calling .unwrap() here would panic!(...)" // inside a literal: not code
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3); // in cfg(test): allowed
    }
}
