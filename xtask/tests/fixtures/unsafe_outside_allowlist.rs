//! Fixture: unsafe in a crate that is not on the audited allowlist.
//! Expected: unsafe-forbidden at the line marked FLAG, even though a
//! SAFETY comment is present (the comment cannot waive the allowlist).

pub fn sneaky(p: *mut u8) {
    // SAFETY: a comment does not move the crate onto the allowlist.
    unsafe { p.write(0) }; // FLAG line 7
}

pub fn mentions_the_attr_only() {
    // Talking about #![forbid(unsafe_code)] in an attribute position is
    // hygiene, not unsafe code:
    #![allow(unused)]
}
