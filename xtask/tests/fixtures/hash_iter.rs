//! Fixture: accumulation over HashMap/HashSet iteration order.
//! Expected: hash-iter-accumulation at the lines marked FLAG below.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn bad_sum(weights: &HashMap<usize, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, w) in weights.iter() { // FLAG line 8
        total += w;
    }
    total
}

pub fn bad_chain(seen: &HashSet<u64>) -> u64 {
    seen.iter().copied().sum() // FLAG line 15
}

pub fn waived_sum(weights: &HashMap<usize, f64>) -> f64 {
    let mut total = 0.0;
    // DETERMINISM-OK: integer-exact values; order cannot change the sum.
    for (_k, w) in weights.iter() {
        total += w;
    }
    total
}

pub fn ordered_is_fine(ordered: &BTreeMap<usize, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, w) in ordered.iter() {
        total += w;
    }
    total
}

pub fn non_accumulating_iteration(weights: &HashMap<usize, f64>) -> usize {
    weights.iter().filter(|(_, w)| **w > 0.0).count()
}
