//! Fixture: a crate root with no unsafe_code hygiene attribute.
//! Expected: unsafe-attr at line 1 when linted as a crate root.

pub fn hello() -> u32 {
    42
}
