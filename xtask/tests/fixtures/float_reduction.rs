//! Fixture: scheduling-order-dependent reductions in parallel closures.
//! Expected: float-reduction-blessing at the lines marked FLAG below.

pub fn shared_accumulator(pool: &Pool, xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    pool.run(xs.len(), |i| {
        acc += xs[i]; // FLAG line 7: captured accumulator
    });
    acc
}

pub fn local_accumulator_is_fine(pool: &Pool, xs: &[f64]) -> Vec<f64> {
    pool.try_map(xs.len(), |i| {
        let mut part = 0.0;
        part += xs[i]; // local: per-task state, deterministic
        part
    })
}

pub fn waived_accumulator(pool: &Pool, xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    pool.run(xs.len(), |i| {
        // DETERMINISM-OK: guarded by a lock and integer-exact.
        acc += xs[i];
    });
    acc
}

pub struct Pool;
impl Pool {
    pub fn run(&self, _n: usize, _f: impl FnMut(usize)) {}
    pub fn try_map(&self, _n: usize, _f: impl FnMut(usize) -> f64) -> Vec<f64> {
        Vec::new()
    }
}
