//! Fixture: unsafe hygiene violations (linted as an allowlisted file).
//! Expected: unsafe-safety-comment at the lines marked FLAG below.

pub fn undocumented(p: *mut u8) {
    unsafe { p.write(0) }; // FLAG line 5: no SAFETY comment anywhere near
}

pub fn documented(p: *mut u8) {
    // SAFETY: caller passes a valid, exclusively-owned pointer.
    unsafe { p.write(1) };
}

pub fn documented_long_block(p: *mut u8) {
    // SAFETY: the justification may be long — this block stretches well
    // past five lines and must still count, because the rule accepts
    // the whole contiguous comment block above the unsafe keyword:
    // the pointer is valid for writes (freshly allocated by the
    // caller), it is not aliased for the duration of this call, and
    // the write does not overlap any other access because the caller
    // holds the unique handle.
    #[allow(unsafe_code)]
    unsafe {
        p.write(2)
    };
}

pub fn stale_comment_does_not_count(p: *mut u8) {
    // SAFETY: this comment is separated from the unsafe block by code,
    // so it does not document it.
    let x = 1u8;
    unsafe { p.write(x) }; // FLAG line 31
}
