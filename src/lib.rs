//! # polaroct
//!
//! Octree-based hybrid distributed-shared-memory approximation of
//! **Generalized Born polarization energy** — a from-scratch Rust
//! reproduction of *"Polarization Energy on a Cluster of Multicores"*
//! (Tithi & Chowdhury, SC 2012).
//!
//! This meta-crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `polaroct-geom` | vectors, AABBs, Morton codes, rigid transforms, fast approximate math |
//! | [`molecule`] | `polaroct-molecule` | SoA molecules, element tables, PQR/xyzrq I/O, synthetic ZDock/capsid/ligand generators |
//! | [`surface`] | `polaroct-surface` | icosphere triangulation, Dunavant quadrature, exposed-surface sampling |
//! | [`octree`] | `polaroct-octree` | Morton-ordered linear octree with node aggregates |
//! | [`sched`] | `polaroct-sched` | Chase–Lev work-stealing pool + makespan simulator |
//! | [`cluster`] | `polaroct-cluster` | simulated MPI: collectives, cost model, memory accounting |
//! | [`core`] | `polaroct-core` | `APPROX-INTEGRALS`, `APPROX-E_pol`, the four drivers of Table II |
//! | [`baselines`] | `polaroct-baselines` | Amber/Gromacs/NAMD/Tinker/GBr⁶ analogs over an nblist substrate |
//!
//! ## Quickstart
//!
//! ```
//! use polaroct::prelude::*;
//!
//! // A small synthetic protein (or read one via polaroct::molecule::io).
//! let mol = polaroct::molecule::synth::protein("demo", 500, 42);
//!
//! // Preprocess: surface sampling + both octrees (reusable across ε).
//! let params = ApproxParams::default(); // ε = 0.9 / 0.9, exact math
//! let sys = GbSystem::prepare(&mol, &params);
//!
//! // Serial octree run… (drivers validate inputs and return `Result`)
//! let cfg = DriverConfig::default();
//! let report = run_serial(&sys, &params, &cfg).unwrap();
//! assert!(report.energy_kcal < 0.0);
//!
//! // …and the paper's hybrid run on a simulated 12-node cluster.
//! let machine = MachineSpec::lonestar4();
//! let cluster = ClusterSpec::new(machine, Placement::hybrid_per_socket(144, &machine));
//! let hybrid = run_oct_hybrid(&sys, &params, &cfg, &cluster).unwrap();
//! assert!((hybrid.energy_kcal - report.energy_kcal).abs() / report.energy_kcal.abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod golden;

pub use polaroct_baselines as baselines;
pub use polaroct_cluster as cluster;
pub use polaroct_core as core;
pub use polaroct_geom as geom;
pub use polaroct_molecule as molecule;
pub use polaroct_octree as octree;
pub use polaroct_sched as sched;
pub use polaroct_surface as surface;

/// The names most programs need.
pub mod prelude {
    pub use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
    pub use polaroct_cluster::fault::{phase, FaultPlan, FtPolicy};
    pub use polaroct_core::drivers::{
        fork_join_makespan, run_naive, run_oct_cilk, run_oct_hybrid, run_oct_hybrid_ft,
        run_oct_mpi, run_oct_mpi_ft, run_oct_threads, run_oct_threads_ft, run_serial,
        validate_system, DriverConfig, DriverError, FtConfig, PhaseTimes, RecoveryMode,
        RunOutcome, RunReport,
    };
    pub use polaroct_core::{ApproxParams, GbSystem, WorkDivision};
    pub use polaroct_geom::fastmath::MathMode;
    pub use polaroct_molecule::{Atom, Element, Molecule};
    pub use polaroct_surface::SurfaceParams;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_runs_end_to_end() {
        let mol = polaroct_molecule::synth::ligand("l", 30, 1);
        let params = ApproxParams::default();
        let sys = GbSystem::prepare(&mol, &params);
        let r = run_serial(&sys, &params, &DriverConfig::default()).unwrap();
        assert!(r.energy_kcal.is_finite());
        assert!(r.energy_kcal < 0.0);
    }
}
