//! Golden-value regression fixtures: exact-bits snapshots of `E_pol`
//! and an FNV-1a digest of the Born radii for a fixed set of bundled
//! example molecules.
//!
//! The snapshots live in `tests/golden/*.golden` and are compared by
//! **exact string diff** in `tests/golden_values.rs` — any change to
//! the numerics, the octree layout, the surface sampler, or the
//! traversal order shows up as a failed diff with both strings printed.
//! To accept an intentional change, regenerate with `cargo xtask bless`
//! (which runs the `bless_golden` binary) and review the diff in git.
//!
//! Snapshot contents are pure functions of the molecule and
//! `ApproxParams::default()`: the energy as both decimal and raw IEEE
//! bits (hex), the Born-radii digest (FNV-1a over the f64 bit patterns,
//! in original atom order), and the input sizes so a generator change
//! is distinguishable from a numeric change.

use polaroct_cluster::comm::checksum;
use polaroct_core::drivers::DriverConfig;
use polaroct_core::{run_serial, ApproxParams, DeltaEngine, GbSystem, Perturbation};
use polaroct_geom::Vec3;
use polaroct_molecule::{synth, Molecule};
use std::path::PathBuf;

/// One golden case: a deterministic synthetic molecule.
pub struct GoldenCase {
    /// File-safe case name (`tests/golden/<name>.golden`).
    pub name: &'static str,
    /// Builds the molecule (must be deterministic).
    pub make: fn() -> Molecule,
}

/// The bundled example molecules covered by the suite: a small ligand,
/// a mid-size globular protein, and a hollow capsid shell — the three
/// synthetic geometries the paper's evaluation draws on, at sizes small
/// enough to keep the tier-1 suite fast.
pub fn cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            name: "ligand_60",
            make: || synth::ligand("golden-ligand", 60, 0x11AD),
        },
        GoldenCase {
            name: "protein_800",
            make: || synth::protein("golden-protein", 800, 0xA11CE),
        },
        GoldenCase {
            name: "capsid_1500",
            make: || synth::capsid("golden-capsid", 1_500, 0xCAB51D),
        },
    ]
}

/// Directory holding the committed `.golden` files.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Render the snapshot for one molecule: run the serial octree driver
/// under default parameters and format the exact results.
pub fn snapshot(name: &str, mol: &Molecule) -> String {
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(mol, &params);
    let report = run_serial(&sys, &params, &DriverConfig::default())
        .expect("golden molecules are valid inputs");
    let radii_digest = checksum(&report.born_radii);
    format!(
        "case: {name}\n\
         atoms: {}\n\
         qpoints: {}\n\
         energy_kcal: {:.17e}\n\
         energy_kcal_bits: 0x{:016x}\n\
         born_radii_fnv1a: 0x{radii_digest:016x}\n",
        sys.n_atoms(),
        sys.n_qpoints(),
        report.energy_kcal,
        report.energy_kcal.to_bits(),
    )
}

/// Verlet skin for the delta snapshots (Å): generous enough that the
/// pinned ~0.1 Å script stays on the incremental path.
pub const DELTA_SKIN: f64 = 0.8;

/// One step of the pinned [`delta_script`]: move `atom` by `disp`,
/// optionally also setting one charge.
pub type DeltaStep = (usize, Vec3, Option<(usize, f64)>);

/// The pinned perturbation script for [`snapshot_delta`]: three queries,
/// each moving one size-scaled atom by ~0.1 Å, the second also mutating
/// one charge. Returned as `(atom, displacement, Option<(atom, charge)>)`.
pub fn delta_script(n: usize) -> [DeltaStep; 3] {
    [
        (n / 7, Vec3::new(0.10, -0.08, 0.05), None),
        (n / 3, Vec3::new(-0.07, 0.10, -0.04), Some((n / 2, 1.75))),
        (2 * n / 3, Vec3::new(0.06, 0.05, -0.10), None),
    ]
}

/// The pinned batch for the `batch` section of the delta snapshots:
/// four independent queries scored against the restored base state
/// through [`DeltaEngine::apply_batch`]. Same shape as [`delta_script`]
/// but distinct atoms/amplitudes, so the batch lines pin different bits
/// than the sequential ones.
pub fn batch_script(n: usize) -> [DeltaStep; 4] {
    [
        (n / 5, Vec3::new(0.08, 0.06, -0.09), None),
        (n / 2, Vec3::new(-0.05, 0.09, 0.07), Some((n / 4, -1.25))),
        (3 * n / 4, Vec3::new(0.09, -0.06, 0.04), None),
        (n / 9, Vec3::new(-0.04, -0.08, 0.10), Some((2 * n / 3, 0.5))),
    ]
}

/// Render the incremental-engine snapshot for one molecule: drive a
/// [`DeltaEngine`] through the pinned [`delta_script`], recording exact
/// energy bits and the chunk-cache accounting per query, then revert the
/// whole chain and record the restored bits (which must equal the base).
pub fn snapshot_delta(name: &str, mol: &Molecule) -> String {
    snapshot_delta_impl(name, mol, None)
}

/// [`snapshot_delta`] with an optional cache corruption injected before
/// the script runs — the recall test uses this to prove a deliberately
/// stale cached chunk changes the snapshot (and would therefore be
/// caught by the committed-file diff).
#[doc(hidden)]
pub fn snapshot_delta_impl(name: &str, mol: &Molecule, corrupt: Option<f64>) -> String {
    snapshot_delta_with(name, mol, |eng| {
        if let Some(delta) = corrupt {
            eng.debug_corrupt_cached_born_outputs(delta);
        }
    })
}

/// [`snapshot_delta`] with exactly one cached Born *entry* span
/// corrupted — the entry-granular recall test uses this to prove the
/// committed-file diff catches staleness at the smallest unit the
/// entry-granular cache manages.
#[doc(hidden)]
pub fn snapshot_delta_entry_impl(name: &str, mol: &Molecule, entry: usize, delta: f64) -> String {
    snapshot_delta_with(name, mol, |eng| {
        eng.debug_corrupt_cached_born_entry(entry, delta);
    })
}

fn snapshot_delta_with(
    name: &str,
    mol: &Molecule,
    corrupt: impl FnOnce(&mut DeltaEngine),
) -> String {
    let params = ApproxParams::default();
    let mut eng = DeltaEngine::new(mol, &params, DELTA_SKIN);
    corrupt(&mut eng);
    let n = mol.len();
    let mut out = format!(
        "case: {name}_delta\n\
         atoms: {n}\n\
         skin: {DELTA_SKIN}\n\
         total_chunks: {}\n\
         base_energy_bits: 0x{:016x}\n\
         base_born_fnv1a: 0x{:016x}\n",
        eng.total_chunks(),
        eng.energy_kcal().to_bits(),
        eng.born_digest(),
    );
    for (qi, (atom, d, charge)) in delta_script(n).iter().enumerate() {
        let mut p = Perturbation::default().move_atom(*atom, eng.positions()[*atom] + *d);
        if let Some((ca, q)) = charge {
            p = p.set_charge(*ca, *q);
        }
        let eval = eng.apply_perturbation(&p, None);
        out += &format!(
            "query{qi}_energy_bits: 0x{:016x}\n\
             query{qi}_chunks_redone: {}\n\
             query{qi}_chunks_cached: {}\n\
             query{qi}_rebuilt: {}\n",
            eval.energy_kcal.to_bits(),
            eval.chunks_redone,
            eval.chunks_cached,
            eval.rebuilt,
        );
    }
    while eng.revert(None) {}
    out += &format!(
        "reverted_energy_bits: 0x{:016x}\n\
         reverted_born_fnv1a: 0x{:016x}\n",
        eng.energy_kcal().to_bits(),
        eng.born_digest(),
    );

    // Batch section: the pinned 4-query batch against the restored base
    // (every query's bits must equal a sequential apply+revert of the
    // same query — the engine's contract — so these lines also pin the
    // overlay path). `entries_redone` pins the entry-granular dirtiness
    // protocol; the post-batch lines prove the base survived untouched.
    let batch: Vec<Perturbation> = batch_script(n)
        .iter()
        .map(|(atom, d, charge)| {
            let mut p = Perturbation::default().move_atom(*atom, eng.positions()[*atom] + *d);
            if let Some((ca, q)) = charge {
                p = p.set_charge(*ca, *q);
            }
            p
        })
        .collect();
    out += &format!("total_entries: {}\n", eng.total_entries());
    for (qi, eval) in eng.apply_batch(&batch, None).iter().enumerate() {
        out += &format!(
            "batch{qi}_energy_bits: 0x{:016x}\n\
             batch{qi}_entries_redone: {}\n\
             batch{qi}_chunks_redone: {}\n",
            eval.energy_kcal.to_bits(),
            eval.entries_redone,
            eval.chunks_redone,
        );
    }
    out += &format!(
        "post_batch_energy_bits: 0x{:016x}\n\
         post_batch_born_fnv1a: 0x{:016x}\n",
        eng.energy_kcal().to_bits(),
        eng.born_digest(),
    );
    out
}

/// Every file name the golden suite owns (without computing snapshots).
pub fn golden_file_names() -> Vec<String> {
    cases()
        .iter()
        .flat_map(|c| [format!("{}.golden", c.name), format!("{}_delta.golden", c.name)])
        .collect()
}

/// Snapshot every case — the full-pipeline snapshot and the incremental
/// delta snapshot per molecule. Returns `(file_name, contents)` pairs.
pub fn snapshot_all() -> Vec<(String, String)> {
    cases()
        .iter()
        .flat_map(|c| {
            let mol = (c.make)();
            [
                (format!("{}.golden", c.name), snapshot(c.name, &mol)),
                (
                    format!("{}_delta.golden", c.name),
                    snapshot_delta(c.name, &mol),
                ),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        for c in cases() {
            let a = (c.make)();
            let b = (c.make)();
            assert_eq!(a.positions, b.positions, "case {}", c.name);
            assert_eq!(a.charges, b.charges, "case {}", c.name);
        }
    }

    #[test]
    fn case_names_are_file_safe_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in cases() {
            assert!(
                c.name
                    .chars()
                    .all(|ch| ch.is_ascii_alphanumeric() || ch == '_'),
                "name {:?} not file-safe",
                c.name
            );
            assert!(seen.insert(c.name), "duplicate case name {:?}", c.name);
        }
    }

    #[test]
    fn snapshot_is_reproducible() {
        let c = &cases()[0];
        let mol = (c.make)();
        assert_eq!(snapshot(c.name, &mol), snapshot(c.name, &mol));
    }

    #[test]
    fn delta_snapshot_is_reproducible_and_restores_base_bits() {
        let c = &cases()[0];
        let mol = (c.make)();
        let s = snapshot_delta(c.name, &mol);
        assert_eq!(s, snapshot_delta(c.name, &mol));
        // The revert chain must land back on the base bits.
        let field = |key: &str| {
            s.lines()
                .find_map(|l| l.strip_prefix(key))
                .unwrap_or_else(|| panic!("missing {key} in:\n{s}"))
                .trim()
                .to_owned()
        };
        assert_eq!(field("base_energy_bits:"), field("reverted_energy_bits:"));
        assert_eq!(field("base_born_fnv1a:"), field("reverted_born_fnv1a:"));
        // The batch section must leave the base untouched too.
        assert_eq!(field("base_energy_bits:"), field("post_batch_energy_bits:"));
        assert_eq!(field("base_born_fnv1a:"), field("post_batch_born_fnv1a:"));
    }

    #[test]
    fn delta_snapshot_batch_section_matches_sequential_applies() {
        // The pinned batch lines must equal what a sequential
        // apply → revert loop over the same queries records — the
        // overlay path cannot pin different bits than the engine's
        // sequential contract.
        let c = &cases()[0];
        let mol = (c.make)();
        let s = snapshot_delta(c.name, &mol);
        let mut eng = DeltaEngine::new(&mol, &ApproxParams::default(), DELTA_SKIN);
        let n = mol.len();
        for (qi, (atom, d, charge)) in batch_script(n).iter().enumerate() {
            let mut p = Perturbation::default().move_atom(*atom, eng.positions()[*atom] + *d);
            if let Some((ca, q)) = charge {
                p = p.set_charge(*ca, *q);
            }
            let eval = eng.apply_perturbation(&p, None);
            assert!(eng.revert(None));
            let want = format!(
                "batch{qi}_energy_bits: 0x{:016x}",
                eval.energy_kcal.to_bits()
            );
            assert!(
                s.lines().any(|l| l == want),
                "batch query {qi}: snapshot missing line {want:?} in:\n{s}"
            );
            let want = format!("batch{qi}_entries_redone: {}", eval.entries_redone);
            assert!(
                s.lines().any(|l| l == want),
                "batch query {qi}: snapshot missing line {want:?}"
            );
        }
    }

    #[test]
    fn file_names_cover_snapshot_all() {
        let names = golden_file_names();
        // Cheap consistency check against the expensive generator's
        // naming scheme: one plain + one delta file per case.
        assert_eq!(names.len(), cases().len() * 2);
        for c in cases() {
            assert!(names.contains(&format!("{}.golden", c.name)));
            assert!(names.contains(&format!("{}_delta.golden", c.name)));
        }
    }
}
