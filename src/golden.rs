//! Golden-value regression fixtures: exact-bits snapshots of `E_pol`
//! and an FNV-1a digest of the Born radii for a fixed set of bundled
//! example molecules.
//!
//! The snapshots live in `tests/golden/*.golden` and are compared by
//! **exact string diff** in `tests/golden_values.rs` — any change to
//! the numerics, the octree layout, the surface sampler, or the
//! traversal order shows up as a failed diff with both strings printed.
//! To accept an intentional change, regenerate with `cargo xtask bless`
//! (which runs the `bless_golden` binary) and review the diff in git.
//!
//! Snapshot contents are pure functions of the molecule and
//! `ApproxParams::default()`: the energy as both decimal and raw IEEE
//! bits (hex), the Born-radii digest (FNV-1a over the f64 bit patterns,
//! in original atom order), and the input sizes so a generator change
//! is distinguishable from a numeric change.

use polaroct_cluster::comm::checksum;
use polaroct_core::drivers::DriverConfig;
use polaroct_core::{run_serial, ApproxParams, GbSystem};
use polaroct_molecule::{synth, Molecule};
use std::path::PathBuf;

/// One golden case: a deterministic synthetic molecule.
pub struct GoldenCase {
    /// File-safe case name (`tests/golden/<name>.golden`).
    pub name: &'static str,
    /// Builds the molecule (must be deterministic).
    pub make: fn() -> Molecule,
}

/// The bundled example molecules covered by the suite: a small ligand,
/// a mid-size globular protein, and a hollow capsid shell — the three
/// synthetic geometries the paper's evaluation draws on, at sizes small
/// enough to keep the tier-1 suite fast.
pub fn cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            name: "ligand_60",
            make: || synth::ligand("golden-ligand", 60, 0x11AD),
        },
        GoldenCase {
            name: "protein_800",
            make: || synth::protein("golden-protein", 800, 0xA11CE),
        },
        GoldenCase {
            name: "capsid_1500",
            make: || synth::capsid("golden-capsid", 1_500, 0xCAB51D),
        },
    ]
}

/// Directory holding the committed `.golden` files.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Render the snapshot for one molecule: run the serial octree driver
/// under default parameters and format the exact results.
pub fn snapshot(name: &str, mol: &Molecule) -> String {
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(mol, &params);
    let report = run_serial(&sys, &params, &DriverConfig::default())
        .expect("golden molecules are valid inputs");
    let radii_digest = checksum(&report.born_radii);
    format!(
        "case: {name}\n\
         atoms: {}\n\
         qpoints: {}\n\
         energy_kcal: {:.17e}\n\
         energy_kcal_bits: 0x{:016x}\n\
         born_radii_fnv1a: 0x{radii_digest:016x}\n",
        sys.n_atoms(),
        sys.n_qpoints(),
        report.energy_kcal,
        report.energy_kcal.to_bits(),
    )
}

/// Snapshot every case. Returns `(file_name, contents)` pairs.
pub fn snapshot_all() -> Vec<(String, String)> {
    cases()
        .iter()
        .map(|c| {
            let mol = (c.make)();
            (format!("{}.golden", c.name), snapshot(c.name, &mol))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        for c in cases() {
            let a = (c.make)();
            let b = (c.make)();
            assert_eq!(a.positions, b.positions, "case {}", c.name);
            assert_eq!(a.charges, b.charges, "case {}", c.name);
        }
    }

    #[test]
    fn case_names_are_file_safe_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in cases() {
            assert!(
                c.name
                    .chars()
                    .all(|ch| ch.is_ascii_alphanumeric() || ch == '_'),
                "name {:?} not file-safe",
                c.name
            );
            assert!(seen.insert(c.name), "duplicate case name {:?}", c.name);
        }
    }

    #[test]
    fn snapshot_is_reproducible() {
        let c = &cases()[0];
        let mol = (c.make)();
        assert_eq!(snapshot(c.name, &mol), snapshot(c.name, &mol));
    }
}
