//! `polaroct` — command-line interface to the library.
//!
//! ```text
//! polaroct gen     --kind protein|capsid|ligand --atoms N [--seed S] [--out FILE]
//! polaroct energy  FILE [--driver naive|serial|cilk|mpi|hybrid] [--cores N]
//!                  [--eps-born X] [--eps-epol X] [--approx-math]
//! polaroct radii   FILE [--eps X]          # print Born radii
//! polaroct info    FILE                    # molecule statistics
//! polaroct suite                           # list the ZDock-like suite
//! ```
//!
//! Input files are `.xyzrq` or `.pqr` (extension-sniffed). Argument
//! parsing is hand-rolled (no CLI dependency) and unit-tested below.

#![forbid(unsafe_code)]

use polaroct::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  polaroct gen    --kind protein|capsid|ligand --atoms N [--seed S] [--out FILE]
  polaroct energy FILE [--driver naive|serial|cilk|mpi|hybrid] [--cores N]
                  [--eps-born X] [--eps-epol X] [--approx-math]
  polaroct radii  FILE [--eps X]
  polaroct info   FILE
  polaroct suite";

/// Minimal flag parser: `--key value` pairs plus positionals and boolean
/// flags from `bools`.
fn parse_flags<'a>(
    args: &'a [String],
    bools: &[&str],
) -> Result<(Vec<&'a str>, std::collections::HashMap<String, String>), String> {
    let mut pos = Vec::new();
    let mut map = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(key) = a.strip_prefix("--") {
            if bools.contains(&key) {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                map.insert(key.to_string(), v.clone());
                i += 2;
            }
        } else {
            pos.push(a);
            i += 1;
        }
    }
    Ok((pos, map))
}

fn load(path: &str) -> Result<polaroct::molecule::Molecule, String> {
    let m = if path.ends_with(".pqr") {
        polaroct::molecule::io::pqr::read_file(path)
    } else {
        polaroct::molecule::io::xyzrq::read_file(path)
    };
    m.map_err(|e| format!("reading {path}: {e}"))
}

fn run(args: &[String]) -> Result<String, String> {
    let cmd = args.first().map(|s| s.as_str()).ok_or("missing subcommand")?;
    let rest = &args[1..];
    match cmd {
        "gen" => cmd_gen(rest),
        "energy" => cmd_energy(rest),
        "radii" => cmd_radii(rest),
        "info" => cmd_info(rest),
        "suite" => cmd_suite(),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_gen(args: &[String]) -> Result<String, String> {
    let (_, flags) = parse_flags(args, &[])?;
    let kind = flags.get("kind").map(String::as_str).unwrap_or("protein");
    let atoms: usize = flags
        .get("atoms")
        .ok_or("--atoms required")?
        .parse()
        .map_err(|_| "bad --atoms")?;
    let seed: u64 =
        flags.get("seed").map(|s| s.parse().map_err(|_| "bad --seed")).transpose()?.unwrap_or(42);
    let mol = match kind {
        "protein" => polaroct::molecule::synth::protein("generated", atoms, seed),
        "capsid" => polaroct::molecule::synth::capsid("generated", atoms, seed),
        "ligand" => polaroct::molecule::synth::ligand("generated", atoms, seed),
        other => return Err(format!("unknown --kind {other:?}")),
    };
    match flags.get("out") {
        Some(path) => {
            polaroct::molecule::io::xyzrq::write_file(&mol, path)
                .map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!("wrote {} atoms to {path}\n", mol.len()))
        }
        None => {
            let mut buf = Vec::new();
            polaroct::molecule::io::xyzrq::write(&mol, &mut buf).map_err(|e| e.to_string())?;
            Ok(String::from_utf8(buf).unwrap())
        }
    }
}

fn cmd_energy(args: &[String]) -> Result<String, String> {
    let (pos, flags) = parse_flags(args, &["approx-math"])?;
    let path = pos.first().ok_or("energy needs an input file")?;
    let mol = load(path)?;
    let mut params = ApproxParams::default();
    if let Some(e) = flags.get("eps-born") {
        params.eps_born = e.parse().map_err(|_| "bad --eps-born")?;
    }
    if let Some(e) = flags.get("eps-epol") {
        params.eps_epol = e.parse().map_err(|_| "bad --eps-epol")?;
    }
    if flags.contains_key("approx-math") {
        params.math = MathMode::Approx;
    }
    let cores: usize = flags
        .get("cores")
        .map(|s| s.parse().map_err(|_| "bad --cores"))
        .transpose()?
        .unwrap_or(12);
    let driver = flags.get("driver").map(String::as_str).unwrap_or("serial");

    let sys = GbSystem::prepare(&mol, &params);
    let cfg = DriverConfig::default();
    let machine = MachineSpec::lonestar4();
    let r = match driver {
        "naive" => run_naive(&sys, &params, &cfg),
        "serial" => run_serial(&sys, &params, &cfg),
        "cilk" => run_oct_cilk(&sys, &params, &cfg, cores),
        "mpi" => run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &ClusterSpec::new(machine, Placement::distributed(cores)),
            WorkDivision::NodeNode,
        ),
        "hybrid" => run_oct_hybrid(
            &sys,
            &params,
            &cfg,
            &ClusterSpec::new(machine, Placement::hybrid_per_socket(cores, &machine)),
        ),
        other => return Err(format!("unknown --driver {other:?}")),
    }
    .map_err(|e| e.to_string())?;
    Ok(format!(
        "molecule: {} ({} atoms, {} q-points)\ndriver: {}\nE_pol = {:.4} kcal/mol\nsimulated time: {:.6} s on {} core(s)\n",
        mol.name,
        sys.n_atoms(),
        sys.n_qpoints(),
        r.name,
        r.energy_kcal,
        r.time,
        r.cores
    ))
}

fn cmd_radii(args: &[String]) -> Result<String, String> {
    let (pos, flags) = parse_flags(args, &[])?;
    let path = pos.first().ok_or("radii needs an input file")?;
    let mol = load(path)?;
    let mut params = ApproxParams::default();
    if let Some(e) = flags.get("eps") {
        params.eps_born = e.parse().map_err(|_| "bad --eps")?;
    }
    let sys = GbSystem::prepare(&mol, &params);
    let (born, _) =
        polaroct::core::born::born_radii_octree(&sys, params.eps_born, params.math);
    let orig = sys.to_original_atom_order(&born);
    let mut out = String::from("# atom\tintrinsic_A\tborn_A\n");
    for (i, b) in orig.iter().enumerate() {
        out.push_str(&format!("{i}\t{:.3}\t{:.4}\n", mol.radii[i], b));
    }
    Ok(out)
}

fn cmd_info(args: &[String]) -> Result<String, String> {
    let (pos, _) = parse_flags(args, &[])?;
    let path = pos.first().ok_or("info needs an input file")?;
    let mol = load(path)?;
    let bbox = mol.bbox();
    let ext = bbox.extent();
    let sys = GbSystem::prepare(&mol, &ApproxParams::default());
    Ok(format!(
        "name: {}\natoms: {}\nnet charge: {:+.4} e\nbounding box: {:.1} x {:.1} x {:.1} A\nsurface quadrature points: {} ({:.1}/atom)\natoms octree: {}\nmemory (one replica): {:.2} MB\n",
        mol.name,
        mol.len(),
        mol.net_charge(),
        ext.x,
        ext.y,
        ext.z,
        sys.n_qpoints(),
        sys.n_qpoints() as f64 / mol.len() as f64,
        sys.atoms.stats(),
        sys.memory_bytes() as f64 / (1 << 20) as f64
    ))
}

fn cmd_suite() -> Result<String, String> {
    let mut out = String::from("# id\tatoms\tseed\n");
    for e in polaroct::molecule::synth::zdock_suite() {
        out.push_str(&format!("{}\t{}\t{}\n", e.name, e.n_atoms, e.seed));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_mixed() {
        let args = sv(&["file.xyzrq", "--driver", "mpi", "--approx-math", "--cores", "24"]);
        let (pos, flags) = parse_flags(&args, &["approx-math"]).unwrap();
        assert_eq!(pos, vec!["file.xyzrq"]);
        assert_eq!(flags.get("driver").unwrap(), "mpi");
        assert_eq!(flags.get("cores").unwrap(), "24");
        assert_eq!(flags.get("approx-math").unwrap(), "true");
    }

    #[test]
    fn parse_flags_missing_value() {
        let args = sv(&["--driver"]);
        assert!(parse_flags(&args, &[]).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&sv(&["frobnicate"])).is_err());
        assert!(run(&sv(&[])).is_err());
    }

    #[test]
    fn suite_lists_84() {
        let out = cmd_suite().unwrap();
        assert_eq!(out.lines().count(), 85); // header + 84
        assert!(out.contains("Z84"));
    }

    #[test]
    fn gen_to_stdout_and_energy_roundtrip() {
        let out = run(&sv(&["gen", "--kind", "ligand", "--atoms", "25", "--seed", "7"])).unwrap();
        assert!(out.lines().count() > 25);
        // Write to a temp file and compute its energy.
        let dir = std::env::temp_dir().join("polaroct_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lig.xyzrq");
        std::fs::write(&path, &out).unwrap();
        let e = run(&sv(&["energy", path.to_str().unwrap(), "--driver", "serial"])).unwrap();
        assert!(e.contains("E_pol ="));
        let info = run(&sv(&["info", path.to_str().unwrap()])).unwrap();
        assert!(info.contains("atoms: 25"));
        let radii = run(&sv(&["radii", path.to_str().unwrap()])).unwrap();
        assert_eq!(radii.lines().count(), 26);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_rejects_bad_kind() {
        assert!(run(&sv(&["gen", "--kind", "spaceship", "--atoms", "10"])).is_err());
        assert!(run(&sv(&["gen", "--kind", "protein"])).is_err()); // no atoms
    }
}
