//! Regenerate the golden-value fixtures in `tests/golden/`.
//!
//! Run via `cargo xtask bless` (or directly:
//! `cargo run --release -p polaroct --bin bless_golden`). Overwrites
//! every `<case>.golden` file with a freshly computed snapshot; review
//! the resulting git diff before committing — a blessed change to these
//! files is a deliberate statement that the numerics moved.

#![forbid(unsafe_code)]

use polaroct::golden::{golden_dir, snapshot_all};

fn main() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for (file, contents) in snapshot_all() {
        let path = dir.join(&file);
        std::fs::write(&path, &contents).expect("write golden file");
        println!("blessed {}", path.display());
    }
}
