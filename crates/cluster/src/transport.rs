//! The transport abstraction under the FT collectives.
//!
//! [`crate::comm::Communicator`] implements the two-round fault-tolerant
//! collective protocol against this trait, so the *protocol* (gather with
//! per-rank timeouts, checksum verification, round-robin recovery,
//! rank-order folding) is written once and runs unchanged over two very
//! different fabrics:
//!
//! * [`crate::comm::CommFabric`] — the in-process channel star (ranks are
//!   threads of one process; a "kill" is a thread that stops
//!   participating);
//! * [`crate::proc::ProcFabric`] / [`crate::proc::WorkerEndpoint`] — real
//!   OS worker processes connected over Unix-domain sockets with
//!   length-prefixed, FNV-1a-checksummed frames (a "kill" is a literal
//!   `SIGKILL` delivered by the kernel).
//!
//! The trait is deliberately star-shaped, mirroring the protocol: the
//! root calls `root_recv`/`root_send` toward members, members call
//! `member_send`/`member_recv` toward the root. An implementation may
//! serve only one side (a worker process holds a single socket to the
//! root and has no business receiving member traffic); calling the other
//! side's methods returns [`TransportError::Closed`].
//!
//! Every receive takes an explicit timeout and every error is typed —
//! the collectives' no-deadlock guarantee rests on implementations never
//! blocking without a bound.

use crate::fault::{FtPolicy, FtReport, RecoverMode};
use std::fmt;
use std::time::Duration;

/// Member-to-root protocol messages.
#[derive(Clone, Debug)]
pub enum UpMsg {
    /// A collective contribution: sender's clock, checksum, payload.
    Data { t: f64, crc: u64, payload: Vec<f64> },
    /// Reply to a [`DownMsg::Recover`]: regenerated contributions, keyed
    /// by the lost rank they stand in for.
    Recovered { parts: Vec<(usize, Vec<f64>)> },
}

/// Root-to-member protocol messages.
#[derive(Clone, Debug)]
pub enum DownMsg {
    /// Recovery round: regenerate these lost ranks' contributions (may be
    /// empty — still reply, it keeps the round structure in lock-step).
    Recover { assignments: Vec<(usize, RecoverMode)> },
    /// Collective completed: synchronized exit time, this rank's reply,
    /// and what fault handling was needed.
    Final { max_entry: f64, reply: Vec<f64>, report: FtReport },
    /// Collective cannot complete; return an error instead of hanging.
    Abort { cause: String },
}

/// Why a transport operation failed. The communicator maps these onto
/// [`crate::comm::CommError`] with the collective's name attached.
#[derive(Clone, Debug, PartialEq)]
pub enum TransportError {
    /// Nothing arrived within the window.
    Timeout { waited: Duration },
    /// The peer is gone: channel disconnected, socket EOF/reset, or no
    /// connection was ever established for that rank.
    Closed { detail: String },
    /// A frame arrived but could not be decoded (truncated, oversized,
    /// checksum mismatch, non-finite float, unknown tag). The stream can
    /// no longer be trusted.
    Frame { detail: String },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout { waited } => write!(f, "timed out after {waited:?}"),
            TransportError::Closed { detail } => write!(f, "connection closed: {detail}"),
            TransportError::Frame { detail } => write!(f, "bad frame: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A star-shaped message fabric connecting rank 0 (the root) to every
/// other rank, with shared peer-liveness flags.
pub trait Transport: Send + Sync {
    /// Number of ranks (including the root).
    fn size(&self) -> usize;

    /// The fault-tolerance policy every rank of this fabric follows.
    fn policy(&self) -> FtPolicy;

    /// Short human-readable label ("channel" / "process") for reports.
    fn label(&self) -> &'static str;

    /// Is `rank` known dead?
    fn is_dead(&self, rank: usize) -> bool;

    /// Mark `rank` dead so later collectives skip it instantly instead of
    /// re-paying the detection timeout.
    fn mark_dead(&self, rank: usize);

    /// Ranks currently known dead.
    fn dead_ranks(&self) -> Vec<usize> {
        (0..self.size()).filter(|&r| self.is_dead(r)).collect()
    }

    /// Root side: wait up to `timeout` for a protocol message from `from`.
    fn root_recv(&self, from: usize, timeout: Duration) -> Result<UpMsg, TransportError>;

    /// Root side: ship `msg` to `to`. Must not block indefinitely; a full
    /// or broken link is an error (the root marks the rank dead).
    fn root_send(&self, to: usize, msg: DownMsg) -> Result<(), TransportError>;

    /// Member side: ship this rank's `msg` to the root.
    fn member_send(&self, rank: usize, msg: UpMsg) -> Result<(), TransportError>;

    /// Member side: wait up to `timeout` for the root's next message.
    fn member_recv(&self, rank: usize, timeout: Duration) -> Result<DownMsg, TransportError>;
}
