//! Wire format for the multi-process transport.
//!
//! Every message crosses the socket as one **frame**:
//!
//! ```text
//! [ body_len: u32 LE ][ kind: u8 ][ body: body_len bytes ][ crc: u64 LE ]
//! ```
//!
//! `crc` is FNV-1a over the kind byte followed by the body, so neither
//! the payload nor the frame's type can be silently corrupted.
//! `body_len` is bounded by [`MAX_FRAME`]; an oversized header is a
//! typed error before any allocation happens.
//!
//! Connections open with a versioned handshake: the worker sends
//! [`Hello`] (magic, wire version, rank, pid), the supervisor answers
//! with [`Welcome`] (magic, version, communicator size, the
//! [`FtPolicy`] every rank must follow). A magic or version mismatch is
//! a typed [`WireError`], never a misparse.
//!
//! Decoding is hardened by construction: every getter checks remaining
//! length ([`WireError::Truncated`]), protocol floats are rejected when
//! non-finite ([`WireError::NonFinite`]), unknown tags are errors, and a
//! fully-decoded body must be fully consumed ([`WireError::Trailing`]).
//! Nothing in this module panics on malformed input.

use crate::fault::{FaultKind, FaultPlan, FtPolicy, FtReport, RecoverMode};
use crate::transport::{DownMsg, UpMsg};
use std::fmt;
use std::time::Duration;

/// Protocol magic ("PLRW"): rejects a stray connection immediately.
pub const MAGIC: u32 = 0x504C_5257;

/// Wire protocol version; bumped on any frame-layout change.
pub const WIRE_VERSION: u16 = 1;

/// Upper bound on one frame's body, far above any real payload (a
/// 6000-atom allgather is < 1 MiB). A header announcing more than this
/// is corruption, not data.
pub const MAX_FRAME: usize = 1 << 26;

/// Frame header bytes on the wire: u32 body length + u8 kind.
pub const HEADER_LEN: usize = 5;

/// Frame trailer bytes on the wire: u64 FNV-1a checksum.
pub const TRAILER_LEN: usize = 8;

/// Frame kinds.
pub mod kind {
    /// Worker → supervisor: versioned handshake open.
    pub const HELLO: u8 = 1;
    /// Supervisor → worker: handshake accept + run parameters.
    pub const WELCOME: u8 = 2;
    /// Supervisor → worker: the serialized job.
    pub const JOB: u8 = 3;
    /// Worker → supervisor: job decoded and validated, entering SPMD.
    pub const READY: u8 = 4;
    /// Worker → supervisor: job rejected (e.g. `validate_system` failed).
    pub const WORKER_ERR: u8 = 5;
    /// Member → root: collective contribution ([`crate::transport::UpMsg::Data`]).
    pub const UP_DATA: u8 = 6;
    /// Member → root: recovery reply ([`crate::transport::UpMsg::Recovered`]).
    pub const UP_RECOVERED: u8 = 7;
    /// Root → member: recovery assignments.
    pub const DOWN_RECOVER: u8 = 8;
    /// Root → member: collective result.
    pub const DOWN_FINAL: u8 = 9;
    /// Root → member: collective aborted.
    pub const DOWN_ABORT: u8 = 10;
    /// Worker → supervisor: rank body finished (ok flag + ops + clock).
    pub const DONE: u8 = 11;
}

/// Typed decode failure. All variants are recoverable by the reader in
/// the sense that they surface as errors instead of panics; none leave
/// the stream in a trustworthy state.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// Body ended before the field being read.
    Truncated { what: &'static str, wanted: usize, have: usize },
    /// Header announced a body larger than [`MAX_FRAME`].
    Oversized { len: usize },
    /// Frame checksum mismatch.
    Checksum { want: u64, got: u64 },
    /// Handshake magic mismatch.
    BadMagic { got: u32 },
    /// Handshake protocol-version mismatch.
    VersionMismatch { ours: u16, theirs: u16 },
    /// A tag byte no decoder recognizes.
    BadTag { what: &'static str, tag: u8 },
    /// A protocol float was NaN or infinite.
    NonFinite { what: &'static str },
    /// Bytes left over after a complete decode.
    Trailing { extra: usize },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 { what: &'static str },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, wanted, have } => {
                write!(f, "truncated frame: {what} needs {wanted} byte(s), {have} left")
            }
            WireError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Checksum { want, got } => {
                write!(f, "frame checksum mismatch: want {want:#018x}, got {got:#018x}")
            }
            WireError::BadMagic { got } => {
                write!(f, "bad handshake magic {got:#010x} (want {MAGIC:#010x})")
            }
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "wire version mismatch: ours {ours}, theirs {theirs}")
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::NonFinite { what } => write!(f, "non-finite float in {what}"),
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete decode")
            }
            WireError::BadUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte-level FNV-1a (the same hash the collectives use over f64 bit
/// patterns, applied to raw frame bytes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn frame_crc(kind: u8, body: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h ^= kind as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    for &b in body {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assemble a complete frame (header + body + checksum trailer).
pub fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + TRAILER_LEN);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(body);
    out.extend_from_slice(&frame_crc(kind, body).to_le_bytes());
    out
}

/// Parse a frame header: returns `(kind, body_len)` with the size cap
/// enforced before the caller allocates anything.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize), WireError> {
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    Ok((header[4], len))
}

/// Verify a received frame's checksum trailer.
pub fn check_frame(kind: u8, body: &[u8], got: u64) -> Result<(), WireError> {
    let want = frame_crc(kind, body);
    if want != got {
        return Err(WireError::Checksum { want, got });
    }
    Ok(())
}

/// Append-only body encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Raw bit pattern — encoding never rejects; decoding decides whether
    /// non-finite values are acceptable for the field.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    pub fn put_usizes(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor-based body decoder; every getter is length-checked.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decoding is complete only if every byte was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(WireError::Trailing { extra }),
        }
    }

    fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what, wanted: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(what, 1)?[0])
    }

    pub fn get_u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(what, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(what, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(what, 8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| WireError::Truncated {
            what,
            wanted: usize::MAX,
            have: self.remaining(),
        })
    }

    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        Ok(self.get_u8(what)? != 0)
    }

    /// Raw bit pattern (for data payloads whose validity is the
    /// application's business, e.g. molecule coordinates headed for
    /// `validate_system`).
    pub fn get_f64_raw(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Protocol float: rejected when NaN or infinite.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        let v = self.get_f64_raw(what)?;
        if !v.is_finite() {
            return Err(WireError::NonFinite { what });
        }
        Ok(v)
    }

    /// A count prefix that is about to drive an allocation: checked
    /// against the bytes actually remaining so a corrupt length cannot
    /// trigger a huge reservation.
    fn get_count(&mut self, what: &'static str, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.get_usize(what)?;
        let need = n.saturating_mul(elem_bytes);
        if need > self.remaining() {
            return Err(WireError::Truncated { what, wanted: need, have: self.remaining() });
        }
        Ok(n)
    }

    pub fn get_f64s(&mut self, what: &'static str) -> Result<Vec<f64>, WireError> {
        let n = self.get_count(what, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64(what)?);
        }
        Ok(out)
    }

    /// Raw-bit-pattern variant of [`Dec::get_f64s`].
    pub fn get_f64s_raw(&mut self, what: &'static str) -> Result<Vec<f64>, WireError> {
        let n = self.get_count(what, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64_raw(what)?);
        }
        Ok(out)
    }

    pub fn get_usizes(&mut self, what: &'static str) -> Result<Vec<usize>, WireError> {
        let n = self.get_count(what, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_usize(what)?);
        }
        Ok(out)
    }

    pub fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.get_count(what, 1)?;
        let bytes = self.take(what, n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }
}

// ---- handshake messages ----

/// Worker → supervisor handshake open.
#[derive(Clone, Debug, PartialEq)]
pub struct Hello {
    pub version: u16,
    pub rank: usize,
    pub pid: u32,
}

pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u32(MAGIC);
    e.put_u16(h.version);
    e.put_usize(h.rank);
    e.put_u32(h.pid);
    e.into_bytes()
}

pub fn decode_hello(body: &[u8]) -> Result<Hello, WireError> {
    let mut d = Dec::new(body);
    let magic = d.get_u32("hello.magic")?;
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = d.get_u16("hello.version")?;
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch { ours: WIRE_VERSION, theirs: version });
    }
    let rank = d.get_usize("hello.rank")?;
    let pid = d.get_u32("hello.pid")?;
    d.finish()?;
    Ok(Hello { version, rank, pid })
}

/// Supervisor → worker handshake accept: communicator size plus the
/// [`FtPolicy`] every rank of the run must follow.
#[derive(Clone, Debug, PartialEq)]
pub struct Welcome {
    pub version: u16,
    pub size: usize,
    pub policy: FtPolicy,
}

pub fn encode_welcome(w: &Welcome) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u32(MAGIC);
    e.put_u16(w.version);
    e.put_usize(w.size);
    e.put_u64(w.policy.timeout.as_millis() as u64);
    e.put_u32(w.policy.max_retries);
    e.put_bool(w.policy.allow_degraded);
    e.into_bytes()
}

pub fn decode_welcome(body: &[u8]) -> Result<Welcome, WireError> {
    let mut d = Dec::new(body);
    let magic = d.get_u32("welcome.magic")?;
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = d.get_u16("welcome.version")?;
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch { ours: WIRE_VERSION, theirs: version });
    }
    let size = d.get_usize("welcome.size")?;
    let timeout = Duration::from_millis(d.get_u64("welcome.timeout_ms")?);
    let max_retries = d.get_u32("welcome.max_retries")?;
    let allow_degraded = d.get_bool("welcome.allow_degraded")?;
    d.finish()?;
    Ok(Welcome {
        version,
        size,
        policy: FtPolicy { timeout, max_retries, allow_degraded },
    })
}

// ---- FT protocol messages ----

fn put_recover_mode(e: &mut Enc, m: RecoverMode) {
    e.put_u8(match m {
        RecoverMode::Exact => 0,
        RecoverMode::Degraded => 1,
    });
}

fn get_recover_mode(d: &mut Dec<'_>) -> Result<RecoverMode, WireError> {
    match d.get_u8("recover_mode")? {
        0 => Ok(RecoverMode::Exact),
        1 => Ok(RecoverMode::Degraded),
        tag => Err(WireError::BadTag { what: "recover_mode", tag }),
    }
}

pub fn put_report(e: &mut Enc, r: &FtReport) {
    e.put_usizes(&r.dead);
    e.put_usizes(&r.recovered);
    e.put_usizes(&r.degraded);
    e.put_u32(r.retries);
    e.put_usize(r.exits.len());
    for (rank, status) in &r.exits {
        e.put_usize(*rank);
        e.put_str(status);
    }
}

pub fn get_report(d: &mut Dec<'_>) -> Result<FtReport, WireError> {
    let dead = d.get_usizes("report.dead")?;
    let recovered = d.get_usizes("report.recovered")?;
    let degraded = d.get_usizes("report.degraded")?;
    let retries = d.get_u32("report.retries")?;
    let n_exits = d.get_count("report.exits", 9)?;
    let mut exits = Vec::with_capacity(n_exits);
    for _ in 0..n_exits {
        let rank = d.get_usize("report.exits.rank")?;
        let status = d.get_str("report.exits.status")?;
        exits.push((rank, status));
    }
    Ok(FtReport { dead, recovered, degraded, retries, exits })
}

/// Encode an [`UpMsg`] as `(frame_kind, body)`.
pub fn encode_up(msg: &UpMsg) -> (u8, Vec<u8>) {
    let mut e = Enc::new();
    match msg {
        UpMsg::Data { t, crc, payload } => {
            e.put_f64(*t);
            e.put_u64(*crc);
            e.put_f64s(payload);
            (kind::UP_DATA, e.into_bytes())
        }
        UpMsg::Recovered { parts } => {
            e.put_usize(parts.len());
            for (lost, payload) in parts {
                e.put_usize(*lost);
                e.put_f64s(payload);
            }
            (kind::UP_RECOVERED, e.into_bytes())
        }
    }
}

/// Decode an [`UpMsg`] from a frame of kind `UP_DATA` / `UP_RECOVERED`.
pub fn decode_up(frame_kind: u8, body: &[u8]) -> Result<UpMsg, WireError> {
    let mut d = Dec::new(body);
    let msg = match frame_kind {
        kind::UP_DATA => {
            let t = d.get_f64("up.t")?;
            let crc = d.get_u64("up.crc")?;
            let payload = d.get_f64s("up.payload")?;
            UpMsg::Data { t, crc, payload }
        }
        kind::UP_RECOVERED => {
            let n = d.get_count("up.parts", 16)?;
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                let lost = d.get_usize("up.parts.rank")?;
                let payload = d.get_f64s("up.parts.payload")?;
                parts.push((lost, payload));
            }
            UpMsg::Recovered { parts }
        }
        tag => return Err(WireError::BadTag { what: "up message", tag }),
    };
    d.finish()?;
    Ok(msg)
}

/// Encode a [`DownMsg`] as `(frame_kind, body)`.
pub fn encode_down(msg: &DownMsg) -> (u8, Vec<u8>) {
    let mut e = Enc::new();
    match msg {
        DownMsg::Recover { assignments } => {
            e.put_usize(assignments.len());
            for (lost, mode) in assignments {
                e.put_usize(*lost);
                put_recover_mode(&mut e, *mode);
            }
            (kind::DOWN_RECOVER, e.into_bytes())
        }
        DownMsg::Final { max_entry, reply, report } => {
            e.put_f64(*max_entry);
            e.put_f64s(reply);
            put_report(&mut e, report);
            (kind::DOWN_FINAL, e.into_bytes())
        }
        DownMsg::Abort { cause } => {
            e.put_str(cause);
            (kind::DOWN_ABORT, e.into_bytes())
        }
    }
}

/// Decode a [`DownMsg`] from a frame of kind `DOWN_*`.
pub fn decode_down(frame_kind: u8, body: &[u8]) -> Result<DownMsg, WireError> {
    let mut d = Dec::new(body);
    let msg = match frame_kind {
        kind::DOWN_RECOVER => {
            let n = d.get_count("down.assignments", 9)?;
            let mut assignments = Vec::with_capacity(n);
            for _ in 0..n {
                let lost = d.get_usize("down.assignments.rank")?;
                let mode = get_recover_mode(&mut d)?;
                assignments.push((lost, mode));
            }
            DownMsg::Recover { assignments }
        }
        kind::DOWN_FINAL => {
            let max_entry = d.get_f64("down.max_entry")?;
            let reply = d.get_f64s("down.reply")?;
            let report = get_report(&mut d)?;
            DownMsg::Final { max_entry, reply, report }
        }
        kind::DOWN_ABORT => {
            let cause = d.get_str("down.cause")?;
            DownMsg::Abort { cause }
        }
        tag => return Err(WireError::BadTag { what: "down message", tag }),
    };
    d.finish()?;
    Ok(msg)
}

// ---- fault plans (shipped with the job so workers fire the same faults) ----

fn put_fault_kind(e: &mut Enc, k: FaultKind) {
    match k {
        FaultKind::Kill => e.put_u8(0),
        FaultKind::Delay { virtual_s, real_ms } => {
            e.put_u8(1);
            e.put_f64(virtual_s);
            e.put_u64(real_ms);
        }
        FaultKind::DropPayload => e.put_u8(2),
        FaultKind::CorruptPayload => e.put_u8(3),
        FaultKind::PanicRank => e.put_u8(4),
        FaultKind::PanicWorker => e.put_u8(5),
        FaultKind::KillMidSend => e.put_u8(6),
    }
}

fn get_fault_kind(d: &mut Dec<'_>) -> Result<FaultKind, WireError> {
    match d.get_u8("fault_kind")? {
        0 => Ok(FaultKind::Kill),
        1 => {
            let virtual_s = d.get_f64("fault.virtual_s")?;
            let real_ms = d.get_u64("fault.real_ms")?;
            Ok(FaultKind::Delay { virtual_s, real_ms })
        }
        2 => Ok(FaultKind::DropPayload),
        3 => Ok(FaultKind::CorruptPayload),
        4 => Ok(FaultKind::PanicRank),
        5 => Ok(FaultKind::PanicWorker),
        6 => Ok(FaultKind::KillMidSend),
        tag => Err(WireError::BadTag { what: "fault_kind", tag }),
    }
}

pub fn put_fault_plan(e: &mut Enc, plan: &FaultPlan) {
    e.put_u64(plan.seed());
    e.put_usize(plan.len());
    for (rank, phase, k) in plan.entries() {
        e.put_usize(rank);
        e.put_u32(phase);
        put_fault_kind(e, k);
    }
}

pub fn get_fault_plan(d: &mut Dec<'_>) -> Result<FaultPlan, WireError> {
    let seed = d.get_u64("plan.seed")?;
    let n = d.get_count("plan.entries", 13)?;
    let mut plan = FaultPlan::new(seed);
    for _ in 0..n {
        let rank = d.get_usize("plan.rank")?;
        let phase = d.get_u32("plan.phase")?;
        let k = get_fault_kind(d)?;
        plan = plan.with_entry(rank, phase, k);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_up(msg: &UpMsg) -> UpMsg {
        let (k, body) = encode_up(msg);
        decode_up(k, &body).unwrap()
    }

    fn roundtrip_down(msg: &DownMsg) -> DownMsg {
        let (k, body) = encode_down(msg);
        decode_down(k, &body).unwrap()
    }

    #[test]
    fn up_data_roundtrips_bit_exactly() {
        let payload = vec![1.5, -0.0, 3.25e-300, f64::MIN_POSITIVE];
        let msg = UpMsg::Data { t: 12.5, crc: 0xDEAD_BEEF, payload: payload.clone() };
        match roundtrip_up(&msg) {
            UpMsg::Data { t, crc, payload: p } => {
                assert_eq!(t.to_bits(), 12.5f64.to_bits());
                assert_eq!(crc, 0xDEAD_BEEF);
                let want: Vec<u64> = payload.iter().map(|v| v.to_bits()).collect();
                let got: Vec<u64> = p.iter().map(|v| v.to_bits()).collect();
                assert_eq!(want, got);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn up_recovered_roundtrips() {
        let msg = UpMsg::Recovered { parts: vec![(3, vec![1.0, 2.0]), (5, vec![])] };
        match roundtrip_up(&msg) {
            UpMsg::Recovered { parts } => {
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[0].0, 3);
                assert_eq!(parts[0].1, vec![1.0, 2.0]);
                assert_eq!(parts[1], (5, vec![]));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn down_variants_roundtrip() {
        let recover = DownMsg::Recover {
            assignments: vec![(1, RecoverMode::Exact), (4, RecoverMode::Degraded)],
        };
        assert!(matches!(
            roundtrip_down(&recover),
            DownMsg::Recover { assignments } if assignments
                == vec![(1, RecoverMode::Exact), (4, RecoverMode::Degraded)]
        ));

        let report = FtReport {
            dead: vec![2],
            recovered: vec![2],
            degraded: vec![],
            retries: 1,
            exits: vec![(2, "killed by signal 9 (SIGKILL)".into())],
        };
        let fin = DownMsg::Final { max_entry: 4.5, reply: vec![9.0], report: report.clone() };
        match roundtrip_down(&fin) {
            DownMsg::Final { max_entry, reply, report: r } => {
                assert_eq!(max_entry, 4.5);
                assert_eq!(reply, vec![9.0]);
                assert_eq!(r, report);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let abort = DownMsg::Abort { cause: "retries exhausted".into() };
        assert!(matches!(
            roundtrip_down(&abort),
            DownMsg::Abort { cause } if cause == "retries exhausted"
        ));
    }

    #[test]
    fn hello_welcome_roundtrip_and_reject_mismatches() {
        let h = Hello { version: WIRE_VERSION, rank: 3, pid: 4242 };
        assert_eq!(decode_hello(&encode_hello(&h)).unwrap(), h);

        // Wrong magic.
        let mut bad = encode_hello(&h);
        bad[0] ^= 0xFF;
        assert!(matches!(decode_hello(&bad), Err(WireError::BadMagic { .. })));

        // Wrong version.
        let mut bad = encode_hello(&h);
        bad[4] ^= 0xFF;
        assert!(matches!(decode_hello(&bad), Err(WireError::VersionMismatch { .. })));

        let w = Welcome {
            version: WIRE_VERSION,
            size: 4,
            policy: FtPolicy {
                timeout: Duration::from_millis(750),
                max_retries: 3,
                allow_degraded: false,
            },
        };
        let got = decode_welcome(&encode_welcome(&w)).unwrap();
        assert_eq!(got.size, 4);
        assert_eq!(got.policy.timeout, Duration::from_millis(750));
        assert_eq!(got.policy.max_retries, 3);
        assert!(!got.policy.allow_degraded);
    }

    #[test]
    fn truncated_body_is_a_typed_error_not_a_panic() {
        let (k, body) = encode_up(&UpMsg::Data { t: 1.0, crc: 7, payload: vec![1.0, 2.0] });
        for cut in 0..body.len() {
            let err = decode_up(k, &body[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (k, mut body) = encode_up(&UpMsg::Data { t: 1.0, crc: 7, payload: vec![] });
        body.push(0);
        assert!(matches!(decode_up(k, &body), Err(WireError::Trailing { extra: 1 })));
    }

    #[test]
    fn corrupt_length_prefix_cannot_drive_a_huge_allocation() {
        let mut e = Enc::new();
        e.put_f64(1.0);
        e.put_u64(7);
        e.put_usize(usize::MAX / 2); // claims ~2^62 payload elements
        let body = e.into_bytes();
        assert!(matches!(
            decode_up(kind::UP_DATA, &body),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn non_finite_protocol_float_is_rejected() {
        let mut e = Enc::new();
        e.put_f64(f64::NAN); // up.t
        e.put_u64(7);
        e.put_f64s(&[]);
        assert!(matches!(
            decode_up(kind::UP_DATA, &e.into_bytes()),
            Err(WireError::NonFinite { what: "up.t" })
        ));

        let mut e = Enc::new();
        e.put_f64(1.0);
        e.put_u64(7);
        e.put_f64s(&[1.0, f64::INFINITY]);
        assert!(matches!(
            decode_up(kind::UP_DATA, &e.into_bytes()),
            Err(WireError::NonFinite { what: "up.payload" })
        ));
    }

    #[test]
    fn frame_checksum_catches_any_single_bit_flip() {
        let body = encode_hello(&Hello { version: WIRE_VERSION, rank: 1, pid: 1 });
        let f = frame(kind::HELLO, &body);
        let (k, len) = parse_header(&[f[0], f[1], f[2], f[3], f[4]]).unwrap();
        assert_eq!(k, kind::HELLO);
        assert_eq!(len, body.len());

        // Pristine frame verifies.
        let crc = u64::from_le_bytes(f[f.len() - 8..].try_into().unwrap());
        check_frame(k, &f[HEADER_LEN..f.len() - 8], crc).unwrap();

        // Any bit flip in kind or body fails the checksum.
        for byte in HEADER_LEN - 1..f.len() - 8 {
            let mut bad = f.clone();
            bad[byte] ^= 1;
            let res = check_frame(bad[4], &bad[HEADER_LEN..bad.len() - 8], crc);
            assert!(matches!(res, Err(WireError::Checksum { .. })), "flip at {byte}");
        }
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let bad = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let header = [bad[0], bad[1], bad[2], bad[3], kind::JOB];
        assert!(matches!(parse_header(&header), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn fault_plan_roundtrips_with_all_kinds() {
        let plan = FaultPlan::new(99)
            .kill(1, 2)
            .delay(2, 4, 0.5)
            .drop_payload(3, 3)
            .corrupt_payload(1, 5)
            .panic_rank(2, 6)
            .panic_worker(3, 2)
            .kill_mid_send(1, 7);
        let mut e = Enc::new();
        put_fault_plan(&mut e, &plan);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let got = get_fault_plan(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(got.seed(), plan.seed());
        assert_eq!(got.len(), plan.len());
        let a: Vec<_> = plan.entries().collect();
        let b: Vec<_> = got.entries().collect();
        assert_eq!(a, b);
    }
}
