//! Memory-replication accounting and cache-pressure slowdown.
//!
//! §IV.B of the paper: "as k independent processes (distributed) use k
//! times more memory than used by one process with k threads (shared), at
//! some point, the distributed-shared-memory algorithm should outperform
//! the distributed-memory algorithm. This happens when the input becomes
//! so large that the ks data does not fit into the shared-cache/main
//! memory or incurs severe memory overhead (page fault/cache misses)".
//!
//! §V.B measures it: on one BTV node, 2×6 hybrid used 1.4 GB where 12×1
//! pure MPI used 8.2 GB (5.86×).
//!
//! [`MemoryModel`] reproduces both: per-node footprints from replication
//! counts, and a smooth compute-slowdown factor once the per-core working
//! set spills the L3 share (and a steeper one when a node exceeds DRAM).

use crate::machine::ClusterSpec;

/// Memory accounting for one run configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Bytes of molecule + octree + surface data one process replica
    /// holds.
    pub bytes_per_process: usize,
    /// Fixed per-process runtime overhead (MPI buffers, allocator, ...).
    pub runtime_overhead: usize,
}

impl MemoryModel {
    pub fn new(bytes_per_process: usize) -> Self {
        // MVAPICH2-era MPI processes carried ~20 MB of buffers/runtime.
        MemoryModel { bytes_per_process, runtime_overhead: 20 << 20 }
    }

    /// Total bytes on one node: every process replicates the data (the
    /// paper's "distribute only the work" variant — each process has all
    /// the data).
    pub fn bytes_per_node(&self, cluster: &ClusterSpec) -> usize {
        cluster.processes_per_node() * (self.bytes_per_process + self.runtime_overhead)
    }

    /// Replication ratio of configuration `a` vs `b` on the same machine
    /// (e.g. 12×1 vs 2×6 ⇒ ~5.86 with overheads counted).
    pub fn replication_ratio(&self, a: &ClusterSpec, b: &ClusterSpec) -> f64 {
        self.bytes_per_node(a) as f64 / self.bytes_per_node(b) as f64
    }

    /// True when a node exceeds its DRAM: the run fails like Tinker/GBr⁶
    /// do in §V.D ("run out of memory").
    pub fn out_of_memory(&self, cluster: &ClusterSpec) -> bool {
        self.bytes_per_node(cluster) > cluster.machine.dram_per_node
    }

    /// Compute-time multiplier from cache/memory pressure.
    ///
    /// Per-core working set `w = bytes_per_process / threads_per_process`
    /// (threads share one replica — the hybrid advantage). While `w` fits
    /// the core's L3 share the factor is 1; beyond it the factor grows
    /// logarithmically (cache-miss regime); if the node spills DRAM the
    /// factor jumps steeply (page-fault regime).
    pub fn slowdown(&self, cluster: &ClusterSpec) -> f64 {
        let per_core =
            self.bytes_per_process as f64 / cluster.placement.threads_per_process as f64;
        let l3 = cluster.l3_per_core() as f64;
        let mut factor = 1.0;
        if per_core > l3 {
            // Each doubling beyond the L3 share costs ~12% more time —
            // a DRAM-bandwidth-bound streaming kernel's typical penalty.
            factor += 0.12 * (per_core / l3).log2();
        }
        let node_bytes = self.bytes_per_node(cluster) as f64;
        let dram = cluster.machine.dram_per_node as f64;
        if node_bytes > dram {
            // Paging: each doubling beyond DRAM costs 4x.
            factor *= 4.0f64.powf((node_bytes / dram).log2().max(0.0) + 1.0);
        }
        factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ClusterSpec, MachineSpec, Placement};

    fn ls4() -> MachineSpec {
        MachineSpec::lonestar4()
    }

    #[test]
    fn replication_ratio_reproduces_5_86x() {
        // §V.B: BTV on one node; hybrid replica ≈ 680 MB so that
        // 2 × (680 MB + 20 MB) = 1.4 GB, 12 × 700 MB = 8.2 GB (5.86×).
        let bytes = 680 << 20;
        let mm = MemoryModel::new(bytes);
        let mpi = ClusterSpec::new(ls4(), Placement::distributed(12));
        let hyb = ClusterSpec::new(ls4(), Placement::hybrid_per_socket(12, &ls4()));
        let node_mpi = mm.bytes_per_node(&mpi) as f64 / (1u64 << 30) as f64;
        let node_hyb = mm.bytes_per_node(&hyb) as f64 / (1u64 << 30) as f64;
        assert!((node_hyb - 1.37).abs() < 0.1, "hybrid/node {node_hyb} GB");
        assert!((node_mpi - 8.2).abs() < 0.5, "mpi/node {node_mpi} GB");
        let ratio = mm.replication_ratio(&mpi, &hyb);
        assert!((ratio - 6.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn small_data_no_slowdown() {
        let mm = MemoryModel::new(1 << 20); // 1 MB
        let c = ClusterSpec::new(ls4(), Placement::distributed(12));
        assert_eq!(mm.slowdown(&c), 1.0);
        assert!(!mm.out_of_memory(&c));
    }

    #[test]
    fn hybrid_reduces_slowdown_for_large_data() {
        let mm = MemoryModel::new(512 << 20);
        let mpi = ClusterSpec::new(ls4(), Placement::distributed(12));
        let hyb = ClusterSpec::new(ls4(), Placement::hybrid_per_socket(12, &ls4()));
        assert!(
            mm.slowdown(&mpi) > mm.slowdown(&hyb),
            "replication must cost more: {} vs {}",
            mm.slowdown(&mpi),
            mm.slowdown(&hyb)
        );
    }

    #[test]
    fn oom_detection() {
        let mm = MemoryModel::new(3 << 30); // 3 GB/process
        let mpi12 = ClusterSpec::new(ls4(), Placement::distributed(12));
        assert!(mm.out_of_memory(&mpi12)); // 36 GB > 24 GB
        let hyb = ClusterSpec::new(ls4(), Placement::hybrid_per_socket(12, &ls4()));
        assert!(!mm.out_of_memory(&hyb)); // 6 GB < 24 GB
    }

    #[test]
    fn paging_slowdown_is_steep() {
        let mm = MemoryModel::new(3 << 30);
        let mpi12 = ClusterSpec::new(ls4(), Placement::distributed(12));
        assert!(mm.slowdown(&mpi12) > 4.0);
    }

    #[test]
    fn slowdown_monotone_in_data_size() {
        let c = ClusterSpec::new(ls4(), Placement::distributed(12));
        let mut last = 0.0;
        for mb in [1usize, 8, 64, 512, 4096] {
            let s = MemoryModel::new(mb << 20).slowdown(&c);
            assert!(s >= last, "slowdown not monotone at {mb} MB");
            last = s;
        }
    }
}
