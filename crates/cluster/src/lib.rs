//! # polaroct-cluster
//!
//! A simulated MPI substrate: the "cluster of multicores" in the paper's
//! title, reproduced as an in-process SPMD runtime with a calibrated
//! virtual-time model.
//!
//! ## Why a simulator
//!
//! The paper ran on TACC Lonestar4 (12 nodes × 2 sockets × 6 Westmere
//! cores, QDR InfiniBand, MVAPICH2). This reproduction runs on whatever
//! host builds it — possibly a single core — so the *algorithms* execute
//! for real (every rank runs the real Rust kernels over real data, and all
//! energies are bit-exact regardless of the timing model), while *time* is
//! virtual:
//!
//! * compute time is derived from kernel operation counts × per-op costs
//!   calibrated by microbenchmark ([`calib`]),
//! * intra-node multithreading is priced by the work-stealing makespan
//!   simulator from `polaroct-sched`,
//! * communication is priced by the per-collective cost formulas of Grama
//!   et al., *Introduction to Parallel Computing* — the very reference the
//!   paper cites for its Step 3/5/7 cost analysis ([`costmodel`]),
//! * memory-replication pressure (the §V.B 1.4 GB vs 8.2 GB story) is
//!   tracked by [`memory`] and converted into a compute slowdown once a
//!   node's per-core working set spills its L3 share.
//!
//! ## Components
//!
//! * [`machine`] — machine/cluster descriptions (Lonestar4 preset =
//!   Table I).
//! * [`comm`] — [`comm::Communicator`]: rank-to-rank collectives
//!   (Allreduce, Allgatherv, Reduce, Bcast, Barrier) over in-process
//!   channels, carrying virtual clocks so collectives synchronize
//!   simulated time exactly like real MPI barriers do.
//! * [`runner`] — [`runner::run_spmd`] launches `P` ranks as threads and
//!   returns each rank's result + clock.
//! * [`simtime`] — per-rank virtual clocks and op-count accounting.
//! * [`calib`] — measures this host's ns/op for the energy kernels so
//!   virtual seconds are anchored to real hardware.
//! * [`noise`] — run-to-run jitter model for the min/max-of-20-runs plots
//!   (Fig. 6).
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]) and
//!   the fault-tolerance policy/report types backing the `_ft`
//!   collectives and [`runner::run_spmd_ft`].
//! * [`transport`] — the [`transport::Transport`] trait the FT
//!   collectives run over: the in-process channel fabric and the
//!   multi-process socket fabric are interchangeable behind it.
//! * [`wire`] — length-prefixed, FNV-1a-checksummed frame format and
//!   hardened encoders/decoders for the socket fabric (versioned
//!   `HELLO`/`WELCOME` handshake; truncation/corruption → typed
//!   [`wire::WireError`], never a panic).
//! * [`proc`] (unix) — real OS worker processes over Unix domain
//!   sockets: [`proc::Supervisor`] (spawn/handshake/reap, exit-status
//!   capture — a `Kill` fault is a literal SIGKILL), [`proc::ProcFabric`]
//!   (root side) and [`proc::WorkerEndpoint`] (member side).

#![forbid(unsafe_code)]

pub mod calib;
pub mod comm;
pub mod costmodel;
pub mod fault;
pub mod machine;
pub mod memory;
pub mod noise;
#[cfg(unix)]
pub mod proc;
pub mod runner;
pub mod simtime;
pub mod trace;
pub mod transport;
pub mod wire;

pub use calib::KernelCosts;
pub use comm::{CommError, CommFabric, Communicator, Recovery};
pub use costmodel::CommCostModel;
pub use fault::{die_sigkill, FaultKind, FaultPlan, FtPolicy, FtReport, KillMode, RecoverMode};
pub use machine::{ClusterSpec, MachineSpec, Placement};
pub use memory::MemoryModel;
pub use noise::NoiseModel;
#[cfg(unix)]
pub use proc::{ProcError, ProcFabric, Supervisor, WorkerEndpoint};
pub use runner::{run_spmd, run_spmd_ft, FtSpmdResult, RankContext, RankError, SpmdResult};
pub use simtime::SimClock;
pub use transport::{DownMsg, Transport, TransportError, UpMsg};
pub use wire::WireError;
