//! Run-to-run variability model for the min/max-of-20-runs scalability
//! plot (Fig. 6).
//!
//! On a shared cluster, compute time jitters a little (OS noise, turbo)
//! and communication time jitters a lot (network contention grows with
//! the number of communicating processes). The paper plots the *minimum
//! and maximum* of 20 runs per configuration and observes that
//! OCT_MPI+CILK's minimum beats OCT_MPI's minimum past 180 cores while its
//! maximum never does — a signature of comm-jitter amplitude scaling with
//! process count. This model reproduces that mechanism.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Multiplicative jitter model.
#[derive(Clone, Copy, Debug)]
pub struct NoiseModel {
    /// RNG seed (runs are deterministic per (seed, key, run index)).
    pub seed: u64,
    /// Std-dev of compute jitter (fraction of compute time; ~1–2% on
    /// dedicated nodes).
    pub compute_sigma: f64,
    /// Base std-dev of communication jitter per communicating process
    /// pair-log (network contention; grows with log P).
    pub comm_sigma_base: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel { seed: 0xA05E, compute_sigma: 0.015, comm_sigma_base: 0.10 }
    }
}

impl NoiseModel {
    /// Sample `runs` total times for a configuration with the given
    /// compute/comm split and process count. Jitter is one-sided (delays
    /// only): the deterministic base time is the best case, like a real
    /// minimum-of-N measurement converging to the noise floor.
    pub fn sample_runs(
        &self,
        compute: f64,
        comm: f64,
        processes: usize,
        runs: usize,
        key: u64,
    ) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ key.wrapping_mul(0x9E37_79B9));
        let comm_sigma = self.comm_sigma_base * (processes.max(2) as f64).log2();
        (0..runs)
            .map(|_| {
                let jc: f64 = half_normal(&mut rng) * self.compute_sigma;
                let jm: f64 = half_normal(&mut rng) * comm_sigma;
                compute * (1.0 + jc) + comm * (1.0 + jm)
            })
            .collect()
    }

    /// Convenience: (min, max) of `runs` samples.
    pub fn min_max(
        &self,
        compute: f64,
        comm: f64,
        processes: usize,
        runs: usize,
        key: u64,
    ) -> (f64, f64) {
        let samples = self.sample_runs(compute, comm, processes, runs, key);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        (min, max)
    }
}

/// |N(0,1)| via Box–Muller.
fn half_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    ((-2.0 * u1.ln()).sqrt() * u2.cos()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_never_beat_the_base_time() {
        let nm = NoiseModel::default();
        let runs = nm.sample_runs(1.0, 0.2, 64, 50, 7);
        for &t in &runs {
            assert!(t >= 1.2 - 1e-12, "sample {t} below base");
        }
    }

    #[test]
    fn deterministic_per_key() {
        let nm = NoiseModel::default();
        assert_eq!(nm.sample_runs(1.0, 0.1, 12, 20, 1), nm.sample_runs(1.0, 0.1, 12, 20, 1));
        assert_ne!(nm.sample_runs(1.0, 0.1, 12, 20, 1), nm.sample_runs(1.0, 0.1, 12, 20, 2));
    }

    #[test]
    fn comm_jitter_grows_with_processes() {
        let nm = NoiseModel::default();
        let spread = |p: usize| {
            let (min, max) = nm.min_max(1.0, 1.0, p, 200, 3);
            max - min
        };
        assert!(spread(144) > spread(4), "jitter must widen with P");
    }

    #[test]
    fn min_max_are_ordered_and_bracket_samples() {
        let nm = NoiseModel::default();
        let (min, max) = nm.min_max(2.0, 0.5, 24, 20, 9);
        assert!(min <= max);
        assert!(min >= 2.5);
    }

    #[test]
    fn pure_compute_has_tight_spread() {
        let nm = NoiseModel::default();
        let (min, max) = nm.min_max(1.0, 0.0, 144, 20, 4);
        assert!(max / min < 1.1, "compute-only spread should be small: {min}..{max}");
    }
}
