//! Communication cost model.
//!
//! The paper's §IV.C analysis prices collectives from Table 4.1 of Grama,
//! Karypis, Kumar & Gupta, *Introduction to Parallel Computing* (its
//! reference [12]): a message of `m` words costs `t_s + t_w·m` per hop,
//! and tree/recursive-doubling collectives cost `log P` rounds. We use the
//! same formulas with bytes instead of words.

use crate::machine::ClusterSpec;

/// Per-collective virtual-time costs for a given cluster+placement.
#[derive(Clone, Copy, Debug)]
pub struct CommCostModel {
    /// Startup latency per message (s).
    pub t_s: f64,
    /// Per-byte transfer time (s/B).
    pub t_w: f64,
    /// Number of communicating processes.
    pub procs: usize,
}

impl CommCostModel {
    pub fn for_cluster(cluster: &ClusterSpec) -> Self {
        let (t_s, t_w) = cluster.effective_latency();
        CommCostModel { t_s, t_w, procs: cluster.placement.processes }
    }

    #[inline]
    fn log2p(&self) -> f64 {
        (self.procs.max(2) as f64).log2().ceil()
    }

    /// `MPI_Barrier`: `t_s · log P` (dissemination barrier).
    pub fn barrier(&self) -> f64 {
        if self.procs <= 1 {
            return 0.0;
        }
        self.t_s * self.log2p()
    }

    /// `MPI_Bcast` of `bytes`: `(t_s + t_w·m) log P` (binomial tree).
    pub fn bcast(&self, bytes: usize) -> f64 {
        if self.procs <= 1 {
            return 0.0;
        }
        (self.t_s + self.t_w * bytes as f64) * self.log2p()
    }

    /// `MPI_Allreduce` of `bytes`: `(t_s + t_w·m) log P` (recursive
    /// doubling — Grama Table 4.1, all-reduce row).
    pub fn allreduce(&self, bytes: usize) -> f64 {
        if self.procs <= 1 {
            return 0.0;
        }
        (self.t_s + self.t_w * bytes as f64) * self.log2p()
    }

    /// `MPI_Allgatherv` where the *total* gathered payload is
    /// `total_bytes`: `t_s log P + t_w · m · (P−1)` with `m` the per-rank
    /// share — i.e. `t_s log P + t_w · total · (P−1)/P` (recursive
    /// doubling all-gather). This is the paper's Step 3/5 term
    /// `t_s log P + t_w (M/P)(P−1)`.
    pub fn allgatherv(&self, total_bytes: usize) -> f64 {
        if self.procs <= 1 {
            return 0.0;
        }
        let per_rank = total_bytes as f64 / self.procs as f64;
        self.t_s * self.log2p() + self.t_w * per_rank * (self.procs - 1) as f64
    }

    /// `MPI_Reduce` of `bytes` to the root: `(t_s + t_w·m) log P`.
    pub fn reduce(&self, bytes: usize) -> f64 {
        self.bcast(bytes)
    }

    /// Point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: usize) -> f64 {
        self.t_s + self.t_w * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ClusterSpec, MachineSpec, Placement};

    fn model(procs: usize) -> CommCostModel {
        let m = MachineSpec::lonestar4();
        CommCostModel::for_cluster(&ClusterSpec::new(m, Placement::distributed(procs)))
    }

    #[test]
    fn single_process_communicates_for_free() {
        let c = model(1);
        assert_eq!(c.barrier(), 0.0);
        assert_eq!(c.allreduce(1024), 0.0);
        assert_eq!(c.allgatherv(1024), 0.0);
        assert_eq!(c.bcast(1024), 0.0);
    }

    #[test]
    fn costs_grow_with_procs() {
        let small = model(12); // single node => intra latency
        let large = model(144);
        assert!(large.allreduce(8192) > small.allreduce(8192));
        assert!(large.barrier() > small.barrier());
    }

    #[test]
    fn costs_grow_with_bytes() {
        let c = model(24);
        assert!(c.allreduce(1 << 20) > c.allreduce(1 << 10));
        assert!(c.allgatherv(1 << 20) > c.allgatherv(1 << 10));
    }

    #[test]
    fn allreduce_matches_formula() {
        let c = model(32);
        let m = 4096usize;
        let expected = (c.t_s + c.t_w * m as f64) * 5.0; // log2 32 = 5
        assert!((c.allreduce(m) - expected).abs() < 1e-15);
    }

    #[test]
    fn allgatherv_bandwidth_term_dominates_for_large_payloads() {
        let c = model(64);
        let big = 100 << 20; // 100 MB total
        let cost = c.allgatherv(big);
        let bw_term = c.t_w * (big as f64 / 64.0) * 63.0;
        assert!((cost - bw_term) / cost < 0.10, "latency should be a minor term");
    }

    #[test]
    fn p2p_is_latency_plus_bandwidth() {
        let c = model(2);
        assert!((c.p2p(1000) - (c.t_s + 1000.0 * c.t_w)).abs() < 1e-18);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let single = model(12);
        let multi = model(24);
        // Same byte count, 13+ ranks forces inter-node constants.
        assert!(multi.p2p(1 << 16) > single.p2p(1 << 16));
    }
}
