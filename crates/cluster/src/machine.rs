//! Machine and cluster descriptions.
//!
//! [`MachineSpec::lonestar4`] encodes Table I of the paper:
//!
//! | Attribute | Property |
//! |---|---|
//! | Processors | 3.33 GHz hexa-core Intel Westmere |
//! | Cores/node | 12 (2 sockets × 6) |
//! | RAM | 24 GB, 1333 MHz |
//! | Interconnect | InfiniBand, fat-tree, 40 Gb/s |
//! | Cache | 12 MB L3, 256 KB L2, 64 KB L1 |
//! | MPI | MVAPICH2/1.6 |

/// One compute node's hardware.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    pub name: &'static str,
    pub sockets: usize,
    pub cores_per_socket: usize,
    /// Shared L3 per socket (bytes).
    pub l3_per_socket: usize,
    /// DRAM per node (bytes).
    pub dram_per_node: usize,
    /// MPI startup latency between nodes (seconds) — Grama's `t_s`.
    pub t_s_inter: f64,
    /// Per-byte transfer time between nodes (seconds/byte) — `t_w`.
    pub t_w_inter: f64,
    /// Startup latency between processes on one node (shared memory).
    pub t_s_intra: f64,
    /// Per-byte time within a node.
    pub t_w_intra: f64,
}

impl MachineSpec {
    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// The paper's Lonestar4 node (Table I).
    ///
    /// `t_w` values are standard QDR InfiniBand / shared-memory bandwidth
    /// figures. `t_s` here is **not** the wire latency (~1–2 µs): it is
    /// the effective per-stage cost of an MVAPICH2/1.6-era collective as
    /// the application experiences it — software stack, rendezvous
    /// protocol and synchronization skew included — calibrated so the
    /// small-molecule comm/compute balance matches §V.C's observation
    /// that "for small molecules the communication cost dominated
    /// computation cost" with crossover near 2,500 atoms.
    pub fn lonestar4() -> MachineSpec {
        MachineSpec {
            name: "Lonestar4 (Westmere 3.33GHz, 12 cores/node)",
            sockets: 2,
            cores_per_socket: 6,
            l3_per_socket: 12 << 20,
            dram_per_node: 24 << 30,
            t_s_inter: 3.0e-4,
            t_w_inter: 0.25e-9,
            t_s_intra: 2.0e-4,
            t_w_intra: 0.08e-9,
        }
    }
}

/// How SPMD ranks and their threads are laid onto nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Number of MPI processes `P`.
    pub processes: usize,
    /// Threads per process `p` (1 ⇒ pure distributed; >1 ⇒ hybrid).
    pub threads_per_process: usize,
}

impl Placement {
    pub fn new(processes: usize, threads_per_process: usize) -> Self {
        // PANIC-OK: precondition assert — an empty placement is a caller bug.
        assert!(processes >= 1 && threads_per_process >= 1);
        Placement { processes, threads_per_process }
    }

    /// Pure distributed layout (the paper's OCT_MPI: 12 ranks/node).
    pub fn distributed(total_cores: usize) -> Self {
        Placement::new(total_cores, 1)
    }

    /// The paper's hybrid layout on Lonestar4: one process per socket,
    /// 6 threads each (§V.A: "we launched one process with 6 threads on
    /// each socket").
    pub fn hybrid_per_socket(total_cores: usize, machine: &MachineSpec) -> Self {
        let p = machine.cores_per_socket;
        assert!(total_cores.is_multiple_of(p), "cores {total_cores} not divisible by socket width {p}");
        Placement::new(total_cores / p, p)
    }

    /// Total cores used.
    pub fn total_cores(&self) -> usize {
        self.processes * self.threads_per_process
    }
}

/// A cluster: homogeneous nodes of `machine`, enough to host a placement.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    pub machine: MachineSpec,
    pub placement: Placement,
}

impl ClusterSpec {
    pub fn new(machine: MachineSpec, placement: Placement) -> Self {
        ClusterSpec { machine, placement }
    }

    /// Nodes needed for the placement (ceil of cores / cores-per-node).
    pub fn nodes(&self) -> usize {
        self.placement.total_cores().div_ceil(self.machine.cores_per_node())
    }

    /// MPI processes living on each node.
    pub fn processes_per_node(&self) -> usize {
        self.placement.processes.div_ceil(self.nodes())
    }

    /// True when every rank fits on a single node (all-intra-node
    /// communication).
    pub fn single_node(&self) -> bool {
        self.nodes() == 1
    }

    /// Effective `t_s`/`t_w` for collectives: intra-node constants when
    /// the job fits on one node, otherwise the inter-node constants (the
    /// long pole in a fat-tree collective is the inter-node hop).
    pub fn effective_latency(&self) -> (f64, f64) {
        if self.single_node() {
            (self.machine.t_s_intra, self.machine.t_w_intra)
        } else {
            (self.machine.t_s_inter, self.machine.t_w_inter)
        }
    }

    /// L3 cache share per *core* in bytes.
    pub fn l3_per_core(&self) -> usize {
        self.machine.l3_per_socket / self.machine.cores_per_socket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lonestar4_matches_table1() {
        let m = MachineSpec::lonestar4();
        assert_eq!(m.cores_per_node(), 12);
        assert_eq!(m.l3_per_socket, 12 * 1024 * 1024);
        assert_eq!(m.dram_per_node, 24 * 1024 * 1024 * 1024);
    }

    #[test]
    fn placement_layouts() {
        let m = MachineSpec::lonestar4();
        let d = Placement::distributed(144);
        assert_eq!(d.processes, 144);
        assert_eq!(d.threads_per_process, 1);
        let h = Placement::hybrid_per_socket(144, &m);
        assert_eq!(h.processes, 24);
        assert_eq!(h.threads_per_process, 6);
        assert_eq!(h.total_cores(), 144);
    }

    #[test]
    fn node_counting() {
        let m = MachineSpec::lonestar4();
        assert_eq!(ClusterSpec::new(m, Placement::distributed(12)).nodes(), 1);
        assert_eq!(ClusterSpec::new(m, Placement::distributed(144)).nodes(), 12);
        assert_eq!(ClusterSpec::new(m, Placement::distributed(13)).nodes(), 2);
    }

    #[test]
    fn processes_per_node() {
        let m = MachineSpec::lonestar4();
        let mpi = ClusterSpec::new(m, Placement::distributed(144));
        assert_eq!(mpi.processes_per_node(), 12);
        let hyb = ClusterSpec::new(m, Placement::hybrid_per_socket(144, &m));
        assert_eq!(hyb.processes_per_node(), 2);
    }

    #[test]
    fn latency_selection() {
        let m = MachineSpec::lonestar4();
        let single = ClusterSpec::new(m, Placement::distributed(12));
        assert!(single.single_node());
        assert_eq!(single.effective_latency().0, m.t_s_intra);
        let multi = ClusterSpec::new(m, Placement::distributed(24));
        assert!(!multi.single_node());
        assert_eq!(multi.effective_latency().0, m.t_s_inter);
    }

    #[test]
    fn l3_share() {
        let m = MachineSpec::lonestar4();
        let c = ClusterSpec::new(m, Placement::distributed(12));
        assert_eq!(c.l3_per_core(), 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic]
    fn hybrid_requires_divisible_cores() {
        let m = MachineSpec::lonestar4();
        let _ = Placement::hybrid_per_socket(13, &m);
    }
}
