//! The multi-process transport: real OS worker processes over
//! Unix-domain sockets.
//!
//! Topology mirrors the in-process star: the **supervisor** (the process
//! that calls [`Supervisor::launch`]) plays rank 0 and owns one socket
//! per worker; each **worker** process plays one member rank over a
//! single socket back to the supervisor ([`WorkerEndpoint`]).
//!
//! Lifecycle:
//!
//! 1. `launch` binds a fresh Unix listener in a private temp directory,
//!    spawns one child per member rank (the caller builds the `Command` —
//!    typically a re-exec of the current binary with rank/socket env
//!    vars), and runs a deadline-bounded accept loop;
//! 2. each worker connects and sends [`crate::wire::Hello`] (magic +
//!    version + rank); the supervisor validates and replies
//!    [`crate::wire::Welcome`] (size + [`FtPolicy`]);
//! 3. the application layer ships a `JOB` frame per rank and waits for
//!    `READY` / `WORKER_ERR`;
//! 4. collectives run through the [`Transport`] impls on
//!    [`ProcFabric`] (root side) and [`WorkerEndpoint`] (member side);
//! 5. [`Supervisor::reap`] collects every child's OS exit status
//!    (`"killed by signal 9 (SIGKILL)"`, `"exited with code 0"`, ...).
//!
//! Failure detection semantics (vs. the in-process fabric): a timeout
//! still means "no frame within the window", but a dead *process* is
//! usually detected faster and more positively — the kernel closes the
//! socket, so reads return EOF/ECONNRESET ([`TransportError::Closed`])
//! instead of burning the full timeout. A child that dies before even
//! connecting is caught by `try_wait` polling inside the accept loop,
//! exit status in hand. All three roads lead to the same protocol-level
//! classification (rank dead → recovery), which is one leg of the
//! cross-transport bit-identity argument.
//!
//! Every blocking read and write here is deadline-bounded; nothing in
//! this module can hang past its timeout or panic on malformed frames.

use crate::fault::FtPolicy;
use crate::transport::{DownMsg, Transport, TransportError, UpMsg};
use crate::wire::{self, kind, Hello, Welcome};
use parking_lot::Mutex;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why the supervisor could not assemble or drive the worker fleet.
#[derive(Clone, Debug)]
pub enum ProcError {
    /// An OS-level operation failed (bind, spawn, accept).
    Io { context: &'static str, detail: String },
    /// A worker rejected the job (e.g. its `validate_system` failed).
    WorkerRejected { rank: usize, detail: String },
    /// A worker died or went silent before joining the run; `status` is
    /// its OS exit status when captured.
    WorkerLost { rank: usize, status: String },
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::Io { context, detail } => write!(f, "{context}: {detail}"),
            ProcError::WorkerRejected { rank, detail } => {
                write!(f, "worker {rank} rejected the job: {detail}")
            }
            ProcError::WorkerLost { rank, status } => {
                write!(f, "worker {rank} lost before joining ({status})")
            }
        }
    }
}

impl std::error::Error for ProcError {}

/// Human-readable OS exit status ("killed by signal 9 (SIGKILL)").
pub fn describe_status(status: ExitStatus) -> String {
    if let Some(sig) = status.signal() {
        if sig == 9 {
            "killed by signal 9 (SIGKILL)".to_string()
        } else {
            format!("killed by signal {sig}")
        }
    } else if let Some(code) = status.code() {
        format!("exited with code {code}")
    } else {
        "exited with unknown status".to_string()
    }
}

fn closed(context: &str, e: &std::io::Error) -> TransportError {
    TransportError::Closed { detail: format!("{context}: {e}") }
}

fn frame_err(e: wire::WireError) -> TransportError {
    TransportError::Frame { detail: e.to_string() }
}

const POLL_GRAIN: Duration = Duration::from_millis(2);

/// Fill `buf` from `stream`, never blocking past `deadline`. `Ok(0)`
/// from the kernel means the peer's end is gone (EOF) — for a worker
/// process that is how a `SIGKILL` announces itself.
fn read_exact_deadline(
    stream: &UnixStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<(), TransportError> {
    let mut filled = 0;
    while filled < buf.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(TransportError::Timeout { waited: Duration::ZERO });
        }
        let remaining = (deadline - now).max(POLL_GRAIN);
        stream
            .set_read_timeout(Some(remaining))
            .map_err(|e| closed("set_read_timeout", &e))?;
        match (&mut (&*stream)).read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(TransportError::Closed {
                    detail: "connection closed (EOF)".to_string(),
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(closed("read", &e)),
        }
    }
    Ok(())
}

fn write_all_deadline(
    stream: &UnixStream,
    mut buf: &[u8],
    deadline: Instant,
) -> Result<(), TransportError> {
    while !buf.is_empty() {
        let now = Instant::now();
        if now >= deadline {
            return Err(TransportError::Timeout { waited: Duration::ZERO });
        }
        let remaining = (deadline - now).max(POLL_GRAIN);
        stream
            .set_write_timeout(Some(remaining))
            .map_err(|e| closed("set_write_timeout", &e))?;
        match (&mut (&*stream)).write(buf) {
            Ok(0) => {
                return Err(TransportError::Closed {
                    detail: "connection closed during write".to_string(),
                })
            }
            Ok(n) => buf = &buf[n..],
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(closed("write", &e)),
        }
    }
    Ok(())
}

/// Read one complete frame: header, body, checksum — each length-checked
/// and deadline-bounded.
pub fn read_frame(stream: &UnixStream, timeout: Duration) -> Result<(u8, Vec<u8>), TransportError> {
    let deadline = Instant::now() + timeout;
    let mut header = [0u8; wire::HEADER_LEN];
    read_exact_deadline(stream, &mut header, deadline).map_err(|e| match e {
        TransportError::Timeout { .. } => TransportError::Timeout { waited: timeout },
        other => other,
    })?;
    let (frame_kind, len) = wire::parse_header(&header).map_err(frame_err)?;
    let mut rest = vec![0u8; len + wire::TRAILER_LEN];
    read_exact_deadline(stream, &mut rest, deadline).map_err(|e| match e {
        TransportError::Timeout { .. } => TransportError::Timeout { waited: timeout },
        other => other,
    })?;
    let crc_bytes = rest.split_off(len);
    let mut crc = [0u8; 8];
    // PANIC-OK: read_exact_deadline filled exactly len + 8 bytes, so the CRC tail is 8 bytes.
    crc.copy_from_slice(&crc_bytes);
    wire::check_frame(frame_kind, &rest, u64::from_le_bytes(crc)).map_err(frame_err)?;
    Ok((frame_kind, rest))
}

/// Write one complete frame, deadline-bounded.
pub fn write_frame(
    stream: &UnixStream,
    frame_kind: u8,
    body: &[u8],
    timeout: Duration,
) -> Result<(), TransportError> {
    write_all_deadline(stream, &wire::frame(frame_kind, body), Instant::now() + timeout)
}

// ---- root side ----

/// Root-side fabric over per-worker sockets. Implements the root half of
/// [`Transport`]; member calls error out (the root is never a member of
/// a process-transport run — it runs in the supervisor).
pub struct ProcFabric {
    size: usize,
    policy: FtPolicy,
    /// `peers[r]` — the socket to worker rank r (`None` for rank 0 and
    /// for workers that never connected).
    peers: Vec<Option<Mutex<UnixStream>>>,
    dead: Vec<AtomicBool>,
    /// Captured OS exit statuses of dead workers, by rank.
    exits: Mutex<Vec<(usize, String)>>,
}

impl ProcFabric {
    fn peer(&self, r: usize) -> Result<&Mutex<UnixStream>, TransportError> {
        self.peers.get(r).and_then(|p| p.as_ref()).ok_or_else(|| TransportError::Closed {
            detail: format!("rank {r} has no connected worker"),
        })
    }

    /// Record a dead worker's exit status (first status per rank wins).
    pub fn record_exit(&self, rank: usize, status: String) {
        let mut exits = self.exits.lock();
        if !exits.iter().any(|(r, _)| *r == rank) {
            exits.push((rank, status));
        }
    }

    /// Captured exit statuses so far.
    pub fn exits(&self) -> Vec<(usize, String)> {
        self.exits.lock().clone()
    }

    /// Receive the next raw frame from `rank` (application frames like
    /// `READY`/`DONE` use this; collectives go through [`Transport`]).
    pub fn recv_raw(&self, rank: usize, timeout: Duration) -> Result<(u8, Vec<u8>), TransportError> {
        let peer = self.peer(rank)?;
        let stream = peer.lock();
        read_frame(&stream, timeout)
    }

    /// Ship a raw frame to `rank`.
    pub fn send_raw(&self, rank: usize, frame_kind: u8, body: &[u8]) -> Result<(), TransportError> {
        let peer = self.peer(rank)?;
        let stream = peer.lock();
        write_frame(&stream, frame_kind, body, self.policy.timeout)
    }

    /// Receive protocol frames from `rank`, skipping stale non-collective
    /// frames (e.g. a `DONE` from a worker that erred out early) until a
    /// frame `want` accepts arrives or the deadline passes.
    fn recv_matching<T>(
        &self,
        rank: usize,
        timeout: Duration,
        want: impl Fn(u8, &[u8]) -> Option<Result<T, TransportError>>,
    ) -> Result<T, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout { waited: timeout });
            }
            let (k, body) = self.recv_raw(rank, deadline - now)?;
            if let Some(res) = want(k, &body) {
                return res;
            }
        }
    }
}

impl Transport for ProcFabric {
    fn size(&self) -> usize {
        self.size
    }

    fn policy(&self) -> FtPolicy {
        self.policy
    }

    fn label(&self) -> &'static str {
        "process"
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::Acquire)
    }

    fn mark_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::Release);
    }

    fn root_recv(&self, from: usize, timeout: Duration) -> Result<UpMsg, TransportError> {
        self.recv_matching(from, timeout, |k, body| match k {
            kind::UP_DATA | kind::UP_RECOVERED => Some(wire::decode_up(k, body).map_err(frame_err)),
            _ => None, // stale non-collective frame; keep reading
        })
    }

    fn root_send(&self, to: usize, msg: DownMsg) -> Result<(), TransportError> {
        let (k, body) = wire::encode_down(&msg);
        self.send_raw(to, k, &body)
    }

    fn member_send(&self, _rank: usize, _msg: UpMsg) -> Result<(), TransportError> {
        Err(TransportError::Closed { detail: "ProcFabric is root-side only".to_string() })
    }

    fn member_recv(&self, _rank: usize, _timeout: Duration) -> Result<DownMsg, TransportError> {
        Err(TransportError::Closed { detail: "ProcFabric is root-side only".to_string() })
    }
}

// ---- member side ----

/// A worker process's single socket back to the supervisor. Implements
/// the member half of [`Transport`]; root calls error out.
pub struct WorkerEndpoint {
    rank: usize,
    size: usize,
    policy: FtPolicy,
    stream: Mutex<UnixStream>,
}

impl WorkerEndpoint {
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ship a raw application frame (`READY`, `WORKER_ERR`, `DONE`).
    pub fn send_raw(&self, frame_kind: u8, body: &[u8]) -> Result<(), TransportError> {
        let stream = self.stream.lock();
        write_frame(&stream, frame_kind, body, self.policy.timeout)
    }
}

impl Transport for WorkerEndpoint {
    fn size(&self) -> usize {
        self.size
    }

    fn policy(&self) -> FtPolicy {
        self.policy
    }

    fn label(&self) -> &'static str {
        "process"
    }

    fn is_dead(&self, _rank: usize) -> bool {
        // Members learn about dead peers from FtReports, not liveness
        // flags; only the root tracks them.
        false
    }

    fn mark_dead(&self, _rank: usize) {}

    fn dead_ranks(&self) -> Vec<usize> {
        Vec::new()
    }

    fn root_recv(&self, _from: usize, _timeout: Duration) -> Result<UpMsg, TransportError> {
        Err(TransportError::Closed { detail: "WorkerEndpoint is member-side only".to_string() })
    }

    fn root_send(&self, _to: usize, _msg: DownMsg) -> Result<(), TransportError> {
        Err(TransportError::Closed { detail: "WorkerEndpoint is member-side only".to_string() })
    }

    fn member_send(&self, _rank: usize, msg: UpMsg) -> Result<(), TransportError> {
        let (k, body) = wire::encode_up(&msg);
        self.send_raw(k, &body)
    }

    fn member_recv(&self, _rank: usize, timeout: Duration) -> Result<DownMsg, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout { waited: timeout });
            }
            let stream = self.stream.lock();
            let (k, body) = read_frame(&stream, deadline - now)?;
            drop(stream);
            match k {
                kind::DOWN_RECOVER | kind::DOWN_FINAL | kind::DOWN_ABORT => {
                    return wire::decode_down(k, &body).map_err(frame_err);
                }
                _ => { /* stale frame; keep reading */ }
            }
        }
    }
}

/// Connect to the supervisor, handshake, and receive the job: the worker
/// side of the launch protocol. Returns the endpoint plus the raw `JOB`
/// body (the application layer owns its encoding).
pub fn worker_connect(
    sock: &Path,
    rank: usize,
    timeout: Duration,
) -> Result<(WorkerEndpoint, Vec<u8>), ProcError> {
    let io = |context: &'static str| {
        move |e: TransportError| ProcError::Io { context, detail: e.to_string() }
    };
    let stream = UnixStream::connect(sock)
        .map_err(|e| ProcError::Io { context: "connect to supervisor", detail: e.to_string() })?;
    let hello =
        Hello { version: wire::WIRE_VERSION, rank, pid: std::process::id() };
    write_frame(&stream, kind::HELLO, &wire::encode_hello(&hello), timeout)
        .map_err(io("send hello"))?;
    let (k, body) = read_frame(&stream, timeout).map_err(io("await welcome"))?;
    if k != kind::WELCOME {
        return Err(ProcError::Io {
            context: "await welcome",
            detail: format!("unexpected frame kind {k}"),
        });
    }
    let welcome = wire::decode_welcome(&body)
        .map_err(|e| ProcError::Io { context: "decode welcome", detail: e.to_string() })?;
    let (k, job) = read_frame(&stream, timeout).map_err(io("await job"))?;
    if k != kind::JOB {
        return Err(ProcError::Io {
            context: "await job",
            detail: format!("unexpected frame kind {k}"),
        });
    }
    let Welcome { size, policy, .. } = welcome;
    Ok((WorkerEndpoint { rank, size, policy, stream: Mutex::new(stream) }, job))
}

// ---- supervisor ----

static SOCK_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Owns the worker fleet: children, their sockets, and the socket dir.
pub struct Supervisor {
    fabric: Arc<ProcFabric>,
    children: Vec<Option<Child>>,
    dir: PathBuf,
    /// Ranks (with statuses) that never made it through the handshake.
    startup_lost: Vec<(usize, String)>,
    reaped: bool,
}

impl Supervisor {
    /// Spawn `size - 1` worker processes (ranks `1..size`) and run the
    /// handshake. `make_command` builds the command for one rank given
    /// the socket path (typically a re-exec of `std::env::current_exe()`
    /// with rank/socket env vars).
    ///
    /// Workers that fail to spawn, die before connecting (their exit
    /// status is captured via `try_wait` polling), or miss the
    /// `startup_timeout` are *not* fatal: they are marked dead in the
    /// fabric with their status recorded, and surface through
    /// [`Supervisor::startup_lost`] — the caller decides whether
    /// recovery can absorb them.
    pub fn launch(
        size: usize,
        policy: FtPolicy,
        startup_timeout: Duration,
        make_command: &mut dyn FnMut(usize, &Path) -> Command,
    ) -> Result<Supervisor, ProcError> {
        assert!(size >= 1);
        let dir = std::env::temp_dir().join(format!(
            "polaroct-{}-{}",
            std::process::id(),
            SOCK_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| ProcError::Io { context: "create socket dir", detail: e.to_string() })?;
        let sock = dir.join("fabric.sock");
        let listener = UnixListener::bind(&sock)
            .map_err(|e| ProcError::Io { context: "bind listener", detail: e.to_string() })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ProcError::Io { context: "set_nonblocking", detail: e.to_string() })?;

        let mut children: Vec<Option<Child>> = (0..size).map(|_| None).collect();
        let mut startup_lost: Vec<(usize, String)> = Vec::new();
        for (r, child) in children.iter_mut().enumerate().skip(1) {
            match make_command(r, &sock).spawn() {
                Ok(c) => *child = Some(c),
                Err(e) => startup_lost.push((r, format!("failed to spawn: {e}"))),
            }
        }

        let mut streams: Vec<Option<UnixStream>> = (0..size).map(|_| None).collect();
        let deadline = Instant::now() + startup_timeout;
        let mut pending: Vec<usize> =
            (1..size).filter(|&r| children[r].is_some()).collect();
        while !pending.is_empty() && Instant::now() < deadline {
            match listener.accept() {
                Ok((stream, _)) => {
                    match Self::handshake(&stream, size, policy, deadline) {
                        Ok(rank) if pending.contains(&rank) => {
                            streams[rank] = Some(stream);
                            pending.retain(|&r| r != rank);
                        }
                        Ok(_) | Err(_) => {
                            // Wrong rank, duplicate, or a bad handshake:
                            // drop the connection; the worker it belongs
                            // to (if any) will be reported lost below.
                            drop(stream);
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Fail fast on children that died before connecting:
                    // try_wait hands us their exit status right now
                    // instead of burning the rest of the startup window.
                    pending.retain(|&r| {
                        let Some(child) = children[r].as_mut() else { return false };
                        match child.try_wait() {
                            Ok(Some(status)) => {
                                startup_lost.push((r, describe_status(status)));
                                false
                            }
                            Ok(None) => true,
                            Err(e) => {
                                startup_lost.push((r, format!("wait failed: {e}")));
                                false
                            }
                        }
                    });
                    std::thread::sleep(POLL_GRAIN);
                }
                Err(e) => {
                    return Err(ProcError::Io { context: "accept", detail: e.to_string() })
                }
            }
        }
        // Whoever is still pending missed the window.
        for r in pending {
            startup_lost.push((r, "did not connect within the startup window".to_string()));
        }

        let fabric = Arc::new(ProcFabric {
            size,
            policy,
            peers: streams.into_iter().map(|s| s.map(Mutex::new)).collect(),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            exits: Mutex::new(Vec::new()),
        });
        for (r, status) in &startup_lost {
            fabric.mark_dead(*r);
            fabric.record_exit(*r, status.clone());
        }
        Ok(Supervisor { fabric, children, dir, startup_lost, reaped: false })
    }

    fn handshake(
        stream: &UnixStream,
        size: usize,
        policy: FtPolicy,
        deadline: Instant,
    ) -> Result<usize, TransportError> {
        let now = Instant::now();
        let budget = if deadline > now { deadline - now } else { POLL_GRAIN };
        let (k, body) = read_frame(stream, budget)?;
        if k != kind::HELLO {
            return Err(TransportError::Frame { detail: format!("expected HELLO, got kind {k}") });
        }
        let hello = wire::decode_hello(&body).map_err(frame_err)?;
        if hello.rank == 0 || hello.rank >= size {
            return Err(TransportError::Frame {
                detail: format!("worker claims invalid rank {}", hello.rank),
            });
        }
        let welcome = Welcome { version: wire::WIRE_VERSION, size, policy };
        write_frame(stream, kind::WELCOME, &wire::encode_welcome(&welcome), budget)?;
        Ok(hello.rank)
    }

    /// The root-side transport (share it with a `Communicator`).
    pub fn fabric(&self) -> Arc<ProcFabric> {
        self.fabric.clone()
    }

    /// Ranks that never completed the handshake, with statuses.
    pub fn startup_lost(&self) -> &[(usize, String)] {
        &self.startup_lost
    }

    /// Ship the serialized job to one connected worker.
    pub fn send_job(&self, rank: usize, job: &[u8]) -> Result<(), TransportError> {
        self.fabric.send_raw(rank, kind::JOB, job)
    }

    /// Wait for `READY` (job accepted) or `WORKER_ERR` (job rejected)
    /// from one worker. A closed socket is resolved into the child's
    /// exit status where possible.
    pub fn wait_ready(&mut self, rank: usize, timeout: Duration) -> Result<(), ProcError> {
        let res = self.fabric.recv_matching(rank, timeout, |k, body| match k {
            kind::READY => Some(Ok(())),
            kind::WORKER_ERR => {
                let mut d = wire::Dec::new(body);
                let msg = d
                    .get_str("worker_err")
                    .unwrap_or_else(|_| "undecodable worker error".to_string());
                Some(Err(TransportError::Frame { detail: msg }))
            }
            _ => None,
        });
        match res {
            Ok(()) => Ok(()),
            Err(TransportError::Frame { detail }) => {
                self.fabric.mark_dead(rank);
                Err(ProcError::WorkerRejected { rank, detail })
            }
            Err(e) => {
                self.fabric.mark_dead(rank);
                let status = match self.reap_one(rank, Duration::from_millis(500)) {
                    Some(status) => status,
                    None => e.to_string(),
                };
                self.fabric.record_exit(rank, status.clone());
                Err(ProcError::WorkerLost { rank, status })
            }
        }
    }

    /// Wait for one worker's `DONE` frame (its body is the application's
    /// business).
    pub fn recv_done(&self, rank: usize, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.fabric.recv_matching(rank, timeout, |k, body| match k {
            kind::DONE => Some(Ok(body.to_vec())),
            _ => None,
        })
    }

    fn reap_one(&mut self, rank: usize, grace: Duration) -> Option<String> {
        let child = self.children.get_mut(rank)?.as_mut()?;
        let deadline = Instant::now() + grace;
        loop {
            match child.try_wait() {
                Ok(Some(status)) => return Some(describe_status(status)),
                Ok(None) => {
                    if Instant::now() >= deadline {
                        // Still running past the grace window: kill it so
                        // nothing can outlive the supervisor's run.
                        let _ = child.kill();
                        let status = child.wait().map(describe_status).unwrap_or_else(|e| {
                            format!("kill-wait failed: {e}")
                        });
                        return Some(format!("{status} (killed by supervisor)"));
                    }
                    std::thread::sleep(POLL_GRAIN);
                }
                Err(e) => return Some(format!("wait failed: {e}")),
            }
        }
    }

    /// Collect every child's exit status, SIGKILLing any that are still
    /// running after `grace`. Returns all captured exits by rank.
    pub fn reap(&mut self, grace: Duration) -> Vec<(usize, String)> {
        for rank in 1..self.children.len() {
            if let Some(status) = self.reap_one(rank, grace) {
                self.fabric.record_exit(rank, status);
                self.children[rank] = None;
            }
        }
        self.reaped = true;
        self.fabric.exits()
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        if !self.reaped {
            // Never leave orphan workers behind.
            for child in self.children.iter_mut().flatten() {
                let _ = child.kill();
                // DEADLINE-OK: the child was just SIGKILLed; wait() only reaps the zombie and returns promptly.
                let _ = child.wait();
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The deadline-bounded reader must report EOF as Closed, not hang.
    #[test]
    fn eof_is_closed_not_hang() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let err = read_frame(&a, Duration::from_millis(500)).unwrap_err();
        assert!(matches!(err, TransportError::Closed { .. }), "got {err:?}");
    }

    /// A silent peer must produce Timeout within the window.
    #[test]
    fn silent_peer_times_out() {
        let (a, _b) = UnixStream::pair().unwrap();
        let t0 = Instant::now();
        let err = read_frame(&a, Duration::from_millis(100)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout { .. }), "got {err:?}");
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    /// Frames written with write_frame round-trip through read_frame.
    #[test]
    fn frames_roundtrip_over_a_socketpair() {
        let (a, b) = UnixStream::pair().unwrap();
        let body = wire::encode_hello(&Hello {
            version: wire::WIRE_VERSION,
            rank: 2,
            pid: 777,
        });
        write_frame(&a, kind::HELLO, &body, Duration::from_secs(1)).unwrap();
        let (k, got) = read_frame(&b, Duration::from_secs(1)).unwrap();
        assert_eq!(k, kind::HELLO);
        assert_eq!(got, body);
        let hello = wire::decode_hello(&got).unwrap();
        assert_eq!(hello.rank, 2);
        assert_eq!(hello.pid, 777);
    }

    /// A corrupted byte on the wire surfaces as a Frame error.
    #[test]
    fn corrupt_frame_is_typed_error() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut f = wire::frame(kind::READY, b"x");
        let body_byte = wire::HEADER_LEN; // first body byte
        f[body_byte] ^= 0x40;
        write_all_deadline(&a, &f, Instant::now() + Duration::from_secs(1)).unwrap();
        let err = read_frame(&b, Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, TransportError::Frame { .. }), "got {err:?}");
    }

    #[test]
    fn describe_status_formats() {
        let ok = Command::new("true").status().unwrap();
        assert_eq!(describe_status(ok), "exited with code 0");
        let fail = Command::new("false").status().unwrap();
        assert_eq!(describe_status(fail), "exited with code 1");
    }
}
