//! Per-rank virtual clocks and kernel operation accounting.
//!
//! The SPMD ranks execute the real algorithms; their *time* is virtual.
//! Each rank owns a [`SimClock`] that accumulates:
//!
//! * `compute` — seconds derived from kernel op counts × calibrated ns/op
//!   (or a work-stealing makespan for multithreaded sections),
//! * `comm` — seconds charged by the Grama collective cost model,
//! * `wait` — time spent blocked at a collective behind slower ranks.
//!
//! Collectives synchronize clocks: everyone leaves an `MPI_Allreduce` at
//! `max(entry times) + cost`, exactly like a real bulk-synchronous run.

/// Operation counts reported by the energy kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Far-field (pseudo-particle) approximations in APPROX-INTEGRALS.
    pub born_far: u64,
    /// Exact atom × q-point interactions at leaf pairs.
    pub born_near: u64,
    /// Far-field bin-pair evaluations in APPROX-EPOL (`M_ε²` each far
    /// node pair).
    pub epol_far: u64,
    /// Exact atom-pair GB evaluations.
    pub epol_near: u64,
    /// Octree nodes visited during traversals.
    pub nodes_visited: u64,
}

impl OpCounts {
    pub fn add(&mut self, o: &OpCounts) {
        self.born_far += o.born_far;
        self.born_near += o.born_near;
        self.epol_far += o.epol_far;
        self.epol_near += o.epol_near;
        self.nodes_visited += o.nodes_visited;
    }

    /// Total kernel evaluations (coarse progress metric).
    pub fn total(&self) -> u64 {
        self.born_far + self.born_near + self.epol_far + self.epol_near
    }
}

/// A rank's virtual clock.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimClock {
    /// Seconds of modeled computation.
    pub compute: f64,
    /// Seconds of modeled communication (the collective's own cost).
    pub comm: f64,
    /// Seconds spent waiting for slower ranks at synchronization points.
    pub wait: f64,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current total virtual time.
    #[inline]
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.wait
    }

    /// Charge compute seconds.
    pub fn add_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.compute += seconds;
    }

    /// Charge communication seconds.
    pub fn add_comm(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.comm += seconds;
    }

    /// Synchronize with a collective: this rank entered at `self.total()`,
    /// the slowest participant at `max_entry`; the collective itself costs
    /// `cost`. Waiting is attributed separately from communication.
    pub fn synchronize(&mut self, max_entry: f64, cost: f64) {
        let entry = self.total();
        debug_assert!(max_entry >= entry - 1e-12, "max_entry below own entry time");
        self.wait += (max_entry - entry).max(0.0);
        self.comm += cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut c = SimClock::new();
        c.add_compute(1.5);
        c.add_comm(0.25);
        assert_eq!(c.total(), 1.75);
        assert_eq!(c.compute, 1.5);
    }

    #[test]
    fn synchronize_charges_wait_and_cost() {
        let mut fast = SimClock::new();
        fast.add_compute(1.0);
        let mut slow = SimClock::new();
        slow.add_compute(3.0);
        let max_entry = 3.0;
        let cost = 0.1;
        fast.synchronize(max_entry, cost);
        slow.synchronize(max_entry, cost);
        // Both leave at the same total.
        assert!((fast.total() - 3.1).abs() < 1e-12);
        assert!((slow.total() - 3.1).abs() < 1e-12);
        assert!((fast.wait - 2.0).abs() < 1e-12);
        assert_eq!(slow.wait, 0.0);
    }

    #[test]
    fn op_counts_add_and_total() {
        let mut a = OpCounts { born_far: 1, born_near: 2, epol_far: 3, epol_near: 4, nodes_visited: 5 };
        let b = a;
        a.add(&b);
        assert_eq!(a.born_far, 2);
        assert_eq!(a.total(), 20);
        assert_eq!(a.nodes_visited, 10);
    }
}
