//! Kernel cost calibration: anchors virtual seconds to real hardware.
//!
//! [`KernelCosts`] holds the per-operation costs (seconds) used to convert
//! [`crate::simtime::OpCounts`] into virtual compute time.
//! [`KernelCosts::calibrate`] measures the host by timing tight loops that
//! mimic the real kernels' arithmetic (one `sqrt` + `exp` + divides per
//! near-field GB pair, etc.). [`KernelCosts::lonestar4_reference`] provides
//! fixed constants representative of the paper's 3.33 GHz Westmere, so
//! figure regeneration is reproducible across hosts.

use crate::simtime::OpCounts;
use std::time::Instant;

/// Seconds per kernel operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCosts {
    /// One far-field Born integral accumulation (Fig. 2 line 1).
    pub born_far: f64,
    /// One exact atom×q-point term (Fig. 2 line 2 inner loop body).
    pub born_near: f64,
    /// One far-field bin-pair E_pol term (Fig. 3 line 2 inner body).
    pub epol_far: f64,
    /// One exact pairwise GB term (Fig. 3 line 1 / Eq. 2 body).
    pub epol_near: f64,
    /// One octree node visit (acceptance test + recursion bookkeeping).
    pub node_visit: f64,
    /// Multiplier applied when approximate math is enabled (§V.E measured
    /// 1/1.42 ≈ 0.70).
    pub approx_math_factor: f64,
}

impl KernelCosts {
    /// Constants representative of one 3.33 GHz Westmere core running the
    /// `-O3` kernels (the paper's platform). A near-field GB pair is ~20
    /// flops + `sqrt` + `exp` ≈ 60 cycles ⇒ ~18 ns; far-field Born terms
    /// are cheaper (~10 ns); node visits are a distance check (~6 ns).
    pub fn lonestar4_reference() -> KernelCosts {
        KernelCosts {
            born_far: 10e-9,
            born_near: 12e-9,
            epol_far: 16e-9,
            epol_near: 18e-9,
            node_visit: 6e-9,
            approx_math_factor: 1.0 / 1.42,
        }
    }

    /// Measure this host with short timing loops (~10 ms total). The loop
    /// bodies replicate the real kernels' arithmetic mix so the constants
    /// transfer.
    pub fn calibrate() -> KernelCosts {
        // Near-field GB pair: distance² + sqrt + exp + divide.
        let epol_near = time_per_iter(200_000, |i| {
            let x = 1.0 + (i as f64) * 1e-7;
            let r2 = x * 2.0 + 0.3;
            let f = (r2 + x * (-r2 / (4.0 * x)).exp()).sqrt();
            1.0 / f
        });
        // Born near-field term: dot product + pow3 of inverse distance².
        let born_near = time_per_iter(200_000, |i| {
            let x = 1.5 + (i as f64) * 1e-7;
            let d2 = x * x + 0.7;
            let inv = 1.0 / d2;
            (x * 0.3 + 0.2) * inv * inv * inv
        });
        // Far-field Born accumulation: same shape, one per node pair.
        let born_far = born_near * 0.9;
        // Far-field E_pol bin pair: like epol_near minus one divide.
        let epol_far = epol_near * 0.9;
        // Node visit: two norms + compare.
        let node_visit = time_per_iter(200_000, |i| {
            let x = 0.1 + (i as f64) * 1e-7;
            let d = (x * x + 2.0 * x + 3.0).sqrt();
            if d > 2.5 {
                1.0
            } else {
                0.0
            }
        });
        KernelCosts {
            born_far,
            born_near,
            epol_far,
            epol_near,
            node_visit,
            approx_math_factor: 1.0 / 1.42,
        }
    }

    /// Convert op counts to virtual compute seconds.
    pub fn seconds(&self, ops: &OpCounts, approx_math: bool) -> f64 {
        let base = ops.born_far as f64 * self.born_far
            + ops.born_near as f64 * self.born_near
            + ops.epol_far as f64 * self.epol_far
            + ops.epol_near as f64 * self.epol_near
            + ops.nodes_visited as f64 * self.node_visit;
        if approx_math {
            base * self.approx_math_factor
        } else {
            base
        }
    }
}

/// Time `f` over `iters` iterations, defeating the optimizer; returns
/// seconds per iteration.
fn time_per_iter(iters: usize, f: impl Fn(usize) -> f64) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..iters {
        acc += f(i);
    }
    std::hint::black_box(acc);
    let dt = t0.elapsed().as_secs_f64();
    (dt / iters as f64).max(1e-10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_constants_are_plausible() {
        let c = KernelCosts::lonestar4_reference();
        for v in [c.born_far, c.born_near, c.epol_far, c.epol_near, c.node_visit] {
            assert!(v > 1e-10 && v < 1e-6, "per-op cost {v} out of range");
        }
        assert!((c.approx_math_factor - 0.704).abs() < 0.01);
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let c = KernelCosts::calibrate();
        assert!(c.epol_near > 0.0);
        assert!(c.born_near > 0.0);
        assert!(c.node_visit > 0.0);
        // Calibration should land within a few orders of magnitude of the
        // reference (any modern CPU).
        assert!(c.epol_near < 1e-6);
    }

    #[test]
    fn seconds_linear_in_ops() {
        let c = KernelCosts::lonestar4_reference();
        let ops1 = OpCounts { epol_near: 1000, ..Default::default() };
        let ops2 = OpCounts { epol_near: 2000, ..Default::default() };
        let s1 = c.seconds(&ops1, false);
        let s2 = c.seconds(&ops2, false);
        assert!((s2 - 2.0 * s1).abs() < 1e-15);
    }

    #[test]
    fn approx_math_speeds_up_by_1_42() {
        let c = KernelCosts::lonestar4_reference();
        let ops = OpCounts { epol_near: 1_000_000, born_near: 500_000, ..Default::default() };
        let exact = c.seconds(&ops, false);
        let approx = c.seconds(&ops, true);
        assert!((exact / approx - 1.42).abs() < 1e-9);
    }

    #[test]
    fn zero_ops_cost_nothing() {
        let c = KernelCosts::lonestar4_reference();
        assert_eq!(c.seconds(&OpCounts::default(), false), 0.0);
    }
}
