//! Phase-level execution traces.
//!
//! Records `(rank, phase, start, end)` intervals in virtual time so runs
//! can be inspected like an MPI profiler timeline (who waited where —
//! the §V.C "communication cost dominated computation cost" diagnosis,
//! made visible). Render with [`Trace::to_tsv`] or summarize with
//! [`Trace::phase_summary`].

use std::collections::BTreeMap;

/// One interval on a rank's timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    pub rank: usize,
    /// Phase label ("born", "allreduce", "push", "epol", ...).
    pub phase: &'static str,
    /// Virtual start/end times (seconds).
    pub start: f64,
    pub end: f64,
}

impl Span {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A collection of spans from one run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Record a span; `end >= start` enforced.
    pub fn record(&mut self, rank: usize, phase: &'static str, start: f64, end: f64) {
        assert!(end >= start - 1e-12, "span ends before it starts: {phase} [{start}, {end}]");
        self.spans.push(Span { rank, phase, start, end: end.max(start) });
    }

    /// Merge another trace (e.g. per-rank traces gathered after a run).
    pub fn merge(&mut self, other: Trace) {
        self.spans.extend(other.spans);
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total time per phase across ranks, plus each phase's share of the
    /// aggregate. Ordered by phase name.
    pub fn phase_summary(&self) -> Vec<(String, f64, f64)> {
        let mut totals: BTreeMap<&'static str, f64> = BTreeMap::new();
        for s in &self.spans {
            *totals.entry(s.phase).or_insert(0.0) += s.duration();
        }
        let grand: f64 = totals.values().sum();
        totals
            .into_iter()
            .map(|(k, v)| (k.to_string(), v, if grand > 0.0 { v / grand } else { 0.0 }))
            .collect()
    }

    /// Makespan: latest end time across ranks (0 if empty).
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// TSV rendering, one span per line, sorted by (rank, start).
    pub fn to_tsv(&self) -> String {
        let mut sorted = self.spans.clone();
        sorted.sort_by(|a, b| (a.rank, a.start).partial_cmp(&(b.rank, b.start)).unwrap());
        let mut out = String::from("rank\tphase\tstart_s\tend_s\tduration_s\n");
        for s in sorted {
            out.push_str(&format!(
                "{}\t{}\t{:.6}\t{:.6}\t{:.6}\n",
                s.rank,
                s.phase,
                s.start,
                s.end,
                s.duration()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(0, "born", 0.0, 2.0);
        t.record(0, "allreduce", 2.0, 2.5);
        t.record(1, "born", 0.0, 1.0);
        t.record(1, "wait", 1.0, 2.0);
        t.record(1, "allreduce", 2.0, 2.5);
        t
    }

    #[test]
    fn summary_totals_and_shares() {
        let t = sample();
        let summary = t.phase_summary();
        let born = summary.iter().find(|(p, _, _)| p == "born").unwrap();
        assert!((born.1 - 3.0).abs() < 1e-12);
        let share_sum: f64 = summary.iter().map(|(_, _, s)| s).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_latest_end() {
        assert!((sample().makespan() - 2.5).abs() < 1e-12);
        assert_eq!(Trace::new().makespan(), 0.0);
    }

    #[test]
    fn tsv_sorted_by_rank_then_time() {
        let tsv = sample().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[1].starts_with("0\tborn"));
        assert!(lines[3].starts_with("1\tborn"));
    }

    #[test]
    fn merge_combines_spans() {
        let mut a = sample();
        let mut b = Trace::new();
        b.record(2, "epol", 0.0, 1.0);
        a.merge(b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    #[should_panic]
    fn reversed_span_panics() {
        let mut t = Trace::new();
        t.record(0, "x", 2.0, 1.0);
    }
}
