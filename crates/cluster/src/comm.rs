//! The simulated-MPI communicator.
//!
//! Ranks run as in-process threads; collectives move real data over
//! channels (a star through rank 0) so the algorithms' *results* are
//! exactly what real MPI would produce, while the *cost* charged to each
//! rank's [`SimClock`] follows the Grama formulas in
//! [`crate::costmodel`] — not the star's hop count, which is an execution
//! mechanism, not the thing being modeled.
//!
//! Every collective also synchronizes virtual time: all participants leave
//! at `max(entry times) + cost`, the bulk-synchronous semantics of the
//! paper's Steps 3, 5 and 7.
//!
//! ## Fault tolerance
//!
//! Because the fabric owns both ends of every channel, a dead rank never
//! disconnects its channel — a blocking `recv()` would wait forever. The
//! `_ft` collectives therefore use `recv_timeout` with the fabric's
//! [`FtPolicy`] and surface failures as typed [`CommError`]s. The root
//! detects a missing or checksum-corrupt contribution, marks the rank
//! dead in the shared fabric (so later collectives skip it instantly),
//! and — when the caller supplies a [`Recovery`] closure — drives a
//! deterministic re-execution protocol:
//!
//! 1. root gathers with per-rank timeout + checksum verification;
//! 2. lost contributions are assigned round-robin over surviving ranks
//!    (`Down::Recover`); assignees regenerate them with the caller's
//!    closure and reply (`Up::Recovered`);
//! 3. root inserts recovered payloads at the lost ranks' original
//!    positions and folds **all P entries in rank order**, so the result
//!    is bit-identical to the fault-free run;
//! 4. survivors receive the folded result plus an [`FtReport`]
//!    (`Down::Final`); unrecoverable situations broadcast `Down::Abort`
//!    so nobody hangs.
//!
//! The star's root (rank 0) is a single point of failure by construction:
//! if it dies, members time out and return [`CommError::Timeout`]. This
//! mirrors the usual MPI reality that losing the rank running the
//! coordinator is not survivable without an external respawn layer.

use crate::costmodel::CommCostModel;
use crate::fault::{die_sigkill, FaultKind, FaultPlan, FtPolicy, FtReport, KillMode, RecoverMode};
use crate::simtime::SimClock;
use crate::transport::{DownMsg, Transport, TransportError, UpMsg};
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// FNV-1a over the payload's bit patterns; detects in-flight corruption.
pub fn checksum(payload: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in payload {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Typed failure of a fault-tolerant collective.
#[derive(Clone, Debug, PartialEq)]
pub enum CommError {
    /// A peer's message did not arrive within the policy window.
    Timeout { collective: &'static str, rank: usize, waited: Duration },
    /// Contributions were lost and no recovery was enabled.
    RanksLost { collective: &'static str, dead: Vec<usize> },
    /// Recovery rounds (including the degraded fallback, if allowed)
    /// were exhausted with contributions still missing.
    RecoveryExhausted { collective: &'static str, unrecovered: Vec<usize>, retries: u32 },
    /// The root aborted the collective.
    Aborted { collective: &'static str, cause: String },
    /// A peer process vanished: its connection dropped (socket EOF /
    /// reset, child exited) rather than merely timing out. `status`
    /// carries the OS exit status or signal when the supervisor captured
    /// one, else the transport's detail string.
    Lost { collective: &'static str, rank: usize, status: String },
    /// Wire-protocol violation (should not happen).
    Protocol { collective: &'static str, rank: usize, message: String },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { collective, rank, waited } => {
                write!(f, "{collective}: rank {rank} timed out after {waited:?}")
            }
            CommError::RanksLost { collective, dead } => {
                write!(f, "{collective}: ranks {dead:?} lost and recovery disabled")
            }
            CommError::RecoveryExhausted { collective, unrecovered, retries } => write!(
                f,
                "{collective}: ranks {unrecovered:?} unrecovered after {retries} round(s)"
            ),
            CommError::Aborted { collective, cause } => {
                write!(f, "{collective}: aborted by root: {cause}")
            }
            CommError::Lost { collective, rank, status } => {
                write!(f, "{collective}: rank {rank} lost ({status})")
            }
            CommError::Protocol { collective, rank, message } => {
                write!(f, "{collective}: protocol error at rank {rank}: {message}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// How a fault-tolerant collective regenerates a lost rank's payload.
///
/// The closure receives the lost rank's id and the requested mode and
/// must return exactly the payload that rank would have contributed
/// (for [`RecoverMode::Exact`], bit-identically — possible because the
/// paper's work division is static and the kernels are deterministic).
/// A live regeneration closure paired with the accuracy it was granted.
type ArmedRegen<'a> = (&'a mut dyn FnMut(usize, RecoverMode) -> Vec<f64>, RecoverMode);

pub enum Recovery<'a> {
    /// No regeneration: lost contributions fail the collective.
    Disabled,
    /// Regenerate via `regenerate(lost_rank, mode)`; `prefer` is the mode
    /// used for the first `max_retries + 1` rounds (the degraded fallback
    /// round, if the policy allows it, always uses
    /// [`RecoverMode::Degraded`]).
    Enabled {
        regenerate: &'a mut dyn FnMut(usize, RecoverMode) -> Vec<f64>,
        prefer: RecoverMode,
    },
}

/// In-process channel fabric shared by all ranks of one SPMD run — the
/// original [`Transport`] implementation (ranks are threads; messages
/// move over bounded crossbeam channels in a star through rank 0).
pub struct CommFabric {
    /// `up[r]` — rank r's channel into the root.
    up: Vec<(Sender<UpMsg>, Receiver<UpMsg>)>,
    /// `down[r]` — the root's channel to rank r.
    down: Vec<(Sender<DownMsg>, Receiver<DownMsg>)>,
    /// Ranks known dead (shared so every collective skips them instantly
    /// instead of re-paying the detection timeout).
    dead: Vec<AtomicBool>,
    policy: FtPolicy,
}

impl CommFabric {
    pub fn new(size: usize) -> Arc<CommFabric> {
        Self::with_policy(size, FtPolicy::default())
    }

    pub fn with_policy(size: usize, policy: FtPolicy) -> Arc<CommFabric> {
        Arc::new(CommFabric {
            up: (0..size).map(|_| bounded(1)).collect(),
            down: (0..size).map(|_| bounded(1)).collect(),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            policy,
        })
    }
}

fn recv_channel<T>(rx: &Receiver<T>, timeout: Duration) -> Result<T, TransportError> {
    rx.recv_timeout(timeout).map_err(|e| match e {
        RecvTimeoutError::Timeout => TransportError::Timeout { waited: timeout },
        RecvTimeoutError::Disconnected => {
            TransportError::Closed { detail: "fabric disconnected".into() }
        }
    })
}

impl Transport for CommFabric {
    fn size(&self) -> usize {
        self.up.len()
    }

    fn policy(&self) -> FtPolicy {
        self.policy
    }

    fn label(&self) -> &'static str {
        "channel"
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::Acquire)
    }

    fn mark_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::Release);
    }

    fn root_recv(&self, from: usize, timeout: Duration) -> Result<UpMsg, TransportError> {
        recv_channel(&self.up[from].1, timeout)
    }

    fn root_send(&self, to: usize, msg: DownMsg) -> Result<(), TransportError> {
        self.down[to].0.try_send(msg).map_err(|_| TransportError::Closed {
            detail: "down channel full or disconnected".into(),
        })
    }

    fn member_send(&self, rank: usize, msg: UpMsg) -> Result<(), TransportError> {
        self.up[rank].0.try_send(msg).map_err(|_| TransportError::Closed {
            detail: "up channel full or disconnected".into(),
        })
    }

    fn member_recv(&self, rank: usize, timeout: Duration) -> Result<DownMsg, TransportError> {
        recv_channel(&self.down[rank].1, timeout)
    }
}

fn install(
    entries: &mut [Option<Vec<f64>>],
    report: &mut FtReport,
    lost: usize,
    mode: RecoverMode,
    payload: Vec<f64>,
) {
    if entries[lost].is_none() {
        entries[lost] = Some(payload);
        match mode {
            RecoverMode::Exact => report.recovered.push(lost),
            RecoverMode::Degraded => report.degraded.push(lost),
        }
    }
}

fn push_dead(report: &mut FtReport, r: usize) {
    if !report.dead.contains(&r) {
        report.dead.push(r);
    }
}

/// One rank's endpoint (share the transport Arc, one communicator per
/// rank). The collective protocol lives here; the bytes move through
/// whatever [`Transport`] the communicator was built over.
pub struct Communicator {
    rank: usize,
    size: usize,
    cost: CommCostModel,
    transport: Arc<dyn Transport>,
    faults: Option<Arc<FaultPlan>>,
    /// How a kill-class fault is realized on this rank (a real `SIGKILL`
    /// only makes sense when the rank is its own OS process).
    kill: KillMode,
    /// Current Fig. 4 phase, set by the driver at phase boundaries; used
    /// to match payload faults to the collective they target.
    phase: Cell<u32>,
}

impl Communicator {
    /// In-process constructor (kept for the channel fabric's callers; the
    /// fabric Arc coerces into the transport object).
    pub fn new(rank: usize, size: usize, cost: CommCostModel, fabric: Arc<CommFabric>) -> Self {
        assert!(rank < size);
        assert_eq!(size, fabric.size());
        Self::over(rank, cost, fabric)
    }

    /// Build a communicator over any transport; size comes from the
    /// transport itself.
    pub fn over(rank: usize, cost: CommCostModel, transport: Arc<dyn Transport>) -> Self {
        let size = transport.size();
        assert!(rank < size);
        Communicator {
            rank,
            size,
            cost,
            transport,
            faults: None,
            kill: KillMode::Simulated,
            phase: Cell::new(0),
        }
    }

    /// Attach a fault plan (payload faults fire on `_ft` collectives).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Choose how kill-class faults are realized (default:
    /// [`KillMode::Simulated`]).
    pub fn with_kill_mode(mut self, kill: KillMode) -> Self {
        self.kill = kill;
        self
    }

    /// Record the current algorithm phase (Fig. 4 step number).
    pub fn set_phase(&self, phase: u32) {
        self.phase.set(phase);
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// The transport's fault-tolerance policy.
    pub fn policy(&self) -> FtPolicy {
        self.transport.policy()
    }

    /// Short label of the transport carrying this communicator's frames.
    pub fn transport_label(&self) -> &'static str {
        self.transport.label()
    }

    /// Ranks this transport currently knows to be dead.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.transport.dead_ranks()
    }

    /// Root-mediated exchange underlying every collective: each rank ships
    /// `data` + clock to the root; the root folds the payloads with
    /// `combine` (always over all `P` entries in rank order — recovered
    /// payloads are inserted at the lost ranks' positions first, which is
    /// what makes recovery bit-identical), computes the synchronized exit
    /// time, and ships each rank its reply.
    ///
    /// Each recovery round charges one extra `cost` (the retry/backoff
    /// model: a redo of the collective's traffic).
    fn ft_exchange(
        &self,
        clock: &mut SimClock,
        name: &'static str,
        data: Vec<f64>,
        cost: f64,
        combine: impl FnOnce(Vec<(usize, Vec<f64>)>) -> Vec<Vec<f64>>,
        mut recovery: Recovery<'_>,
    ) -> Result<(Vec<f64>, FtReport), CommError> {
        if self.size == 1 {
            // Single rank: combine with itself, zero cost.
            let mut replies = combine(vec![(0, data)]);
            let own = replies.pop().ok_or_else(|| CommError::Protocol {
                collective: name,
                rank: 0,
                message: "combine produced no replies".into(),
            })?;
            return Ok((own, FtReport::default()));
        }
        let policy = self.transport.policy();
        if self.rank == 0 {
            let mut report = FtReport::default();
            let mut entries: Vec<Option<Vec<f64>>> = (0..self.size).map(|_| None).collect();
            let mut max_entry = clock.total();
            entries[0] = Some(data);
            let mut missing: Vec<usize> = Vec::new();
            // `r` indexes parallel structures (the dead flags and
            // `entries`), so a range loop is the honest shape.
            #[allow(clippy::needless_range_loop)]
            for r in 1..self.size {
                if self.transport.is_dead(r) {
                    push_dead(&mut report, r);
                    missing.push(r);
                    continue;
                }
                match self.transport.root_recv(r, policy.timeout) {
                    Ok(UpMsg::Data { t, crc, payload }) => {
                        if checksum(&payload) == crc {
                            max_entry = max_entry.max(t);
                            entries[r] = Some(payload);
                        } else {
                            // Corrupt in flight: contribution lost, but
                            // the rank itself is alive and can help.
                            missing.push(r);
                        }
                    }
                    Ok(UpMsg::Recovered { .. }) => {
                        // Stale protocol message; treat contribution lost.
                        missing.push(r);
                    }
                    Err(e) => {
                        // Timeout, closed connection, or an undecodable
                        // frame — in every case the stream can no longer
                        // be trusted, so the rank is dead to us.
                        self.transport.mark_dead(r);
                        push_dead(&mut report, r);
                        if let TransportError::Closed { detail } = e {
                            report.record_exit(r, detail);
                        }
                        missing.push(r);
                    }
                }
            }

            let mut regen: Option<ArmedRegen<'_>> = match &mut recovery {
                Recovery::Disabled => None,
                Recovery::Enabled { regenerate, prefer } => Some((*regenerate, *prefer)),
            };
            let mut attempt: u32 = 0;
            while !missing.is_empty() {
                let Some((regen_f, prefer)) = regen.as_mut().map(|(f, p)| (&mut **f, *p)) else {
                    self.abort_alive(name, "contributions lost and recovery disabled");
                    return Err(CommError::RanksLost { collective: name, dead: missing });
                };
                let mode = if attempt <= policy.max_retries {
                    prefer
                } else if policy.allow_degraded
                    && prefer == RecoverMode::Exact
                    && attempt == policy.max_retries + 1
                {
                    RecoverMode::Degraded
                } else {
                    self.abort_alive(name, "recovery retries exhausted");
                    return Err(CommError::RecoveryExhausted {
                        collective: name,
                        unrecovered: missing,
                        retries: attempt,
                    });
                };
                attempt += 1;
                report.retries = attempt;

                let alive: Vec<usize> =
                    (0..self.size).filter(|&r| !self.transport.is_dead(r)).collect();
                // Deterministic round-robin assignment, rotated per round
                // so a failing assignee doesn't get the same work twice.
                let mut assign: Vec<Vec<(usize, RecoverMode)>> =
                    (0..self.size).map(|_| Vec::new()).collect();
                for (i, &lost) in missing.iter().enumerate() {
                    let assignee = alive[(i + attempt as usize - 1) % alive.len()];
                    assign[assignee].push((lost, mode));
                }
                // Ship assignments to every alive member (empty ones too:
                // they refresh the member's recv window in lock-step).
                for &r in &alive {
                    if r == 0 {
                        continue;
                    }
                    let msg = DownMsg::Recover { assignments: assign[r].clone() };
                    if self.transport.root_send(r, msg).is_err() {
                        self.transport.mark_dead(r);
                        push_dead(&mut report, r);
                    }
                }
                // Root's own share.
                for (lost, m) in assign[0].clone() {
                    let payload = regen_f(lost, m);
                    install(&mut entries, &mut report, lost, m, payload);
                }
                // Collect assignees' replies.
                for &r in &alive {
                    if r == 0 || self.transport.is_dead(r) {
                        continue;
                    }
                    match self.transport.root_recv(r, policy.timeout) {
                        Ok(UpMsg::Recovered { parts }) => {
                            for (lost, payload) in parts {
                                install(&mut entries, &mut report, lost, mode, payload);
                            }
                        }
                        Ok(UpMsg::Data { .. }) => { /* stale; drop */ }
                        Err(e) => {
                            self.transport.mark_dead(r);
                            push_dead(&mut report, r);
                            if let TransportError::Closed { detail } = e {
                                report.record_exit(r, detail);
                            }
                        }
                    }
                }
                missing = (0..self.size).filter(|&r| entries[r].is_none()).collect();
            }

            let mut full: Vec<(usize, Vec<f64>)> = Vec::with_capacity(self.size);
            for (r, p) in entries.into_iter().enumerate() {
                let payload = p.ok_or_else(|| CommError::Protocol {
                    collective: name,
                    rank: r,
                    message: "entry still missing after recovery converged".into(),
                })?;
                full.push((r, payload));
            }
            let mut replies = combine(full);
            debug_assert_eq!(replies.len(), self.size);
            // Send rank r its reply (reverse order so pop() is cheap);
            // wake newly-dead-but-listening ranks with an abort so a rank
            // whose payload was dropped doesn't wait out its full window.
            for r in (1..self.size).rev() {
                let reply = replies.pop().ok_or_else(|| CommError::Protocol {
                    collective: name,
                    rank: r,
                    message: "combine produced too few replies".into(),
                })?;
                if self.transport.is_dead(r) {
                    let _ = self.transport.root_send(
                        r,
                        DownMsg::Abort { cause: format!("rank {r} marked dead during {name}") },
                    );
                    continue;
                }
                let msg = DownMsg::Final { max_entry, reply, report: report.clone() };
                if self.transport.root_send(r, msg).is_err() {
                    self.transport.mark_dead(r);
                }
            }
            let own = replies.pop().ok_or_else(|| CommError::Protocol {
                collective: name,
                rank: 0,
                message: "combine produced no reply for the root".into(),
            })?;
            clock.synchronize(max_entry, cost * (1.0 + report.retries as f64));
            Ok((own, report))
        } else {
            // Payload faults fire here, on the way into the collective.
            let mut crc = checksum(&data);
            let mut payload = data;
            let mut dropped = false;
            let mut kill_after_send = false;
            if let Some(plan) = &self.faults {
                match plan.fire_payload(self.rank, self.phase.get()) {
                    Some(FaultKind::DropPayload) => dropped = true,
                    Some(FaultKind::CorruptPayload) => {
                        if let Some(first) = payload.first_mut() {
                            *first = f64::from_bits(first.to_bits() ^ 1);
                        } else {
                            crc ^= 0xBAD;
                        }
                    }
                    Some(FaultKind::KillMidSend) => kill_after_send = true,
                    _ => {}
                }
            }
            if !dropped {
                let msg = UpMsg::Data { t: clock.total(), crc, payload };
                let _ = self.transport.member_send(self.rank, msg);
            }
            if kill_after_send {
                // The orphaned-frame fault: the contribution above is
                // already committed to the fabric (in a channel slot or
                // the socket's kernel buffer) when this rank dies. The
                // root must still be able to use it; survivors must see
                // this rank dead at the *next* collective, not a
                // poisoned stream here.
                match self.kill {
                    KillMode::Process => die_sigkill(),
                    KillMode::Simulated => {
                        return Err(CommError::Lost {
                            collective: name,
                            rank: self.rank,
                            status: "killed mid-send (simulated)".into(),
                        });
                    }
                }
            }
            // The root may serially wait `timeout` on each of the other
            // ranks before talking to us, so our window must cover the
            // whole collection pass.
            let window = policy.timeout * (self.size as u32 + 1);
            loop {
                match self.transport.member_recv(self.rank, window) {
                    Ok(DownMsg::Final { max_entry, reply, report }) => {
                        clock.synchronize(max_entry, cost * (1.0 + report.retries as f64));
                        return Ok((reply, report));
                    }
                    Ok(DownMsg::Recover { assignments }) => {
                        let parts: Vec<(usize, Vec<f64>)> = match &mut recovery {
                            Recovery::Enabled { regenerate, .. } => assignments
                                .into_iter()
                                .map(|(lost, mode)| {
                                    let payload = regenerate(lost, mode);
                                    (lost, payload)
                                })
                                .collect(),
                            Recovery::Disabled => Vec::new(),
                        };
                        let _ = self
                            .transport
                            .member_send(self.rank, UpMsg::Recovered { parts });
                    }
                    Ok(DownMsg::Abort { cause }) => {
                        return Err(CommError::Aborted { collective: name, cause });
                    }
                    Err(TransportError::Timeout { waited }) => {
                        return Err(CommError::Timeout {
                            collective: name,
                            rank: self.rank,
                            waited,
                        });
                    }
                    Err(TransportError::Closed { detail }) => {
                        // The root's end is gone (in-process: fabric
                        // dropped; process: the supervisor died or closed
                        // our socket).
                        return Err(CommError::Lost {
                            collective: name,
                            rank: 0,
                            status: detail,
                        });
                    }
                    Err(TransportError::Frame { detail }) => {
                        return Err(CommError::Protocol {
                            collective: name,
                            rank: self.rank,
                            message: detail,
                        });
                    }
                }
            }
        }
    }

    fn abort_alive(&self, name: &'static str, cause: &str) {
        for r in 1..self.size {
            if self.transport.is_dead(r) {
                continue;
            }
            let _ = self
                .transport
                .root_send(r, DownMsg::Abort { cause: format!("{name}: {cause}") });
        }
    }

    /// Fault-tolerant `MPI_Allreduce(MPI_SUM)` (Fig. 4 Step 3).
    pub fn allreduce_sum_ft(
        &self,
        buf: &mut [f64],
        clock: &mut SimClock,
        recovery: Recovery<'_>,
    ) -> Result<FtReport, CommError> {
        let cost = self.cost.allreduce(buf.len() * 8);
        let n = buf.len();
        let (out, report) = self.ft_exchange(
            clock,
            "allreduce",
            buf.to_vec(),
            cost,
            |entries| {
                let mut sum = vec![0.0f64; n];
                for (_, payload) in &entries {
                    assert_eq!(payload.len(), n, "allreduce length mismatch across ranks");
                    for (s, v) in sum.iter_mut().zip(payload) {
                        *s += v;
                    }
                }
                vec![sum; entries.len()]
            },
            recovery,
        )?;
        // PANIC-OK: the reduce closure returns one entry per input element, so out.len() == buf.len().
        buf.copy_from_slice(&out);
        Ok(report)
    }

    /// Fault-tolerant `MPI_Allgatherv` (Fig. 4 Step 5): concatenate every
    /// rank's `mine` in rank order; a lost rank's segment is regenerated
    /// by the recovery closure.
    pub fn allgatherv_ft(
        &self,
        mine: &[f64],
        clock: &mut SimClock,
        recovery: Recovery<'_>,
    ) -> Result<(Vec<f64>, FtReport), CommError> {
        let (out, report) = self.ft_exchange(
            clock,
            "allgatherv",
            mine.to_vec(),
            0.0,
            |entries| {
                let total: usize = entries.iter().map(|(_, p)| p.len()).sum();
                let mut cat = Vec::with_capacity(total);
                for (_, p) in &entries {
                    cat.extend_from_slice(p);
                }
                vec![cat; entries.len()]
            },
            recovery,
        )?;
        // Charge after we know the total size (real MPI_Allgatherv needs
        // counts known up front; we fold that into the collective cost).
        clock.add_comm(self.cost.allgatherv(out.len() * 8) * (1.0 + report.retries as f64));
        Ok((out, report))
    }

    /// Fault-tolerant `MPI_Reduce(MPI_SUM)` of one scalar to the root
    /// (Fig. 4 Step 7). The scalar is `Some(sum)` on the root only.
    pub fn reduce_sum_scalar_ft(
        &self,
        x: f64,
        clock: &mut SimClock,
        recovery: Recovery<'_>,
    ) -> Result<(Option<f64>, FtReport), CommError> {
        let cost = self.cost.reduce(8);
        let (out, report) = self.ft_exchange(
            clock,
            "reduce",
            vec![x],
            cost,
            |entries| {
                let sum: f64 = entries.iter().map(|(_, p)| p[0]).sum();
                entries.iter().map(|(r, _)| if *r == 0 { vec![sum] } else { vec![] }).collect()
            },
            recovery,
        )?;
        let v = if self.rank == 0 { Some(out[0]) } else { None };
        Ok((v, report))
    }

    /// `MPI_Allreduce(MPI_SUM)` over an f64 buffer (Fig. 4 Step 3).
    ///
    /// Infallible facade: a lost rank now panics after the policy timeout
    /// instead of deadlocking forever (the pre-FT behavior was a silent
    /// hang). Use [`Communicator::allreduce_sum_ft`] to handle faults.
    pub fn allreduce_sum(&self, buf: &mut [f64], clock: &mut SimClock) {
        self.allreduce_sum_ft(buf, clock, Recovery::Disabled)
            // PANIC-OK: documented infallible facade — a comm fault here is fatal by contract.
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// `MPI_Allgatherv` (infallible facade; see [`Communicator::allgatherv_ft`]).
    pub fn allgatherv(&self, mine: &[f64], clock: &mut SimClock) -> Vec<f64> {
        self.allgatherv_ft(mine, clock, Recovery::Disabled)
            // PANIC-OK: documented infallible facade — a comm fault here is fatal by contract.
            .unwrap_or_else(|e| panic!("{e}"))
            .0
    }

    /// `MPI_Reduce(MPI_SUM)` of one scalar to the root (infallible
    /// facade; see [`Communicator::reduce_sum_scalar_ft`]).
    pub fn reduce_sum_scalar(&self, x: f64, clock: &mut SimClock) -> Option<f64> {
        self.reduce_sum_scalar_ft(x, clock, Recovery::Disabled)
            // PANIC-OK: documented infallible facade — a comm fault here is fatal by contract.
            .unwrap_or_else(|e| panic!("{e}"))
            .0
    }

    /// `MPI_Bcast` from the root.
    pub fn bcast(&self, buf: &mut Vec<f64>, clock: &mut SimClock) {
        let cost = self.cost.bcast(buf.len() * 8);
        let payload = if self.rank == 0 { std::mem::take(buf) } else { Vec::new() };
        let (out, _) = self
            .ft_exchange(
                clock,
                "bcast",
                payload,
                cost,
                |entries| {
                    let root_payload = entries
                        .iter()
                        .find(|(r, _)| *r == 0)
                        .map(|(_, p)| p.clone())
                        // PANIC-OK: ft_exchange always seats rank 0's own entry.
                        .unwrap_or_else(|| panic!("bcast: root entry missing"));
                    vec![root_payload; entries.len()]
                },
                Recovery::Disabled,
            )
            // PANIC-OK: documented infallible facade — a comm fault here is fatal by contract.
            .unwrap_or_else(|e| panic!("{e}"));
        *buf = out;
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self, clock: &mut SimClock) {
        let cost = self.cost.barrier();
        let _ = self
            .ft_exchange(
                clock,
                "barrier",
                Vec::new(),
                cost,
                |entries| vec![Vec::new(); entries.len()],
                Recovery::Disabled,
            )
            // PANIC-OK: documented infallible facade — a comm fault here is fatal by contract.
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::phase;
    use crate::machine::{ClusterSpec, MachineSpec, Placement};

    /// Run `f` as an SPMD body over `size` ranks and return per-rank
    /// results (test harness; the real one lives in `runner`).
    fn spmd<T: Send>(
        size: usize,
        f: impl Fn(Communicator, &mut SimClock) -> T + Sync,
    ) -> Vec<(T, SimClock)> {
        spmd_with(size, FtPolicy::default(), None, f)
    }

    fn spmd_with<T: Send>(
        size: usize,
        policy: FtPolicy,
        faults: Option<Arc<FaultPlan>>,
        f: impl Fn(Communicator, &mut SimClock) -> T + Sync,
    ) -> Vec<(T, SimClock)> {
        let cluster =
            ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(size.max(1)));
        let cost = CommCostModel::for_cluster(&cluster);
        let fabric = CommFabric::with_policy(size, policy);
        let mut out: Vec<Option<(T, SimClock)>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (r, slot) in out.iter_mut().enumerate() {
                let fabric = fabric.clone();
                let f = &f;
                let faults = faults.clone();
                scope.spawn(move || {
                    let mut comm = Communicator::new(r, size, cost, fabric);
                    if let Some(plan) = faults {
                        comm = comm.with_faults(plan);
                    }
                    let mut clock = SimClock::new();
                    let v = f(comm, &mut clock);
                    *slot = Some((v, clock));
                });
            }
        });
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let size = 5;
        let res = spmd(size, |comm, clock| {
            let mut buf = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut buf, clock);
            buf
        });
        let want = vec![(0..5).sum::<usize>() as f64, 5.0];
        for (buf, _) in &res {
            assert_eq!(buf, &want);
        }
    }

    #[test]
    fn allreduce_synchronizes_clocks() {
        let res = spmd(4, |comm, clock| {
            clock.add_compute(comm.rank() as f64); // rank r computed r s
            let mut buf = vec![1.0];
            comm.allreduce_sum(&mut buf, clock);
            clock.total()
        });
        let totals: Vec<f64> = res.iter().map(|(t, _)| *t).collect();
        for &t in &totals {
            assert!((t - totals[0]).abs() < 1e-12, "clocks diverged: {totals:?}");
        }
        // Everyone left at >= the slowest rank's 3 s.
        assert!(totals[0] >= 3.0);
        // The fast rank attributed ~3s to waiting.
        let wait0 = res[0].1.wait;
        assert!((wait0 - 3.0).abs() < 1e-9, "rank0 wait {wait0}");
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let res = spmd(3, |comm, clock| {
            let mine: Vec<f64> = (0..=comm.rank()).map(|i| (comm.rank() * 10 + i) as f64).collect();
            comm.allgatherv(&mine, clock)
        });
        let want = vec![0.0, 10.0, 11.0, 20.0, 21.0, 22.0];
        for (got, _) in &res {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn reduce_scalar_only_root_receives() {
        let res = spmd(6, |comm, clock| comm.reduce_sum_scalar(2.5, clock));
        assert_eq!(res[0].0, Some(15.0));
        for (v, _) in &res[1..] {
            assert_eq!(*v, None);
        }
    }

    #[test]
    fn bcast_distributes_roots_buffer() {
        let res = spmd(4, |comm, clock| {
            let mut buf = if comm.is_root() { vec![1.25, 2.5] } else { vec![] };
            comm.bcast(&mut buf, clock);
            buf
        });
        for (buf, _) in &res {
            assert_eq!(buf, &vec![1.25, 2.5]);
        }
    }

    #[test]
    fn barrier_aligns_time() {
        let res = spmd(3, |comm, clock| {
            clock.add_compute((comm.rank() as f64) * 0.5);
            comm.barrier(clock);
            clock.total()
        });
        let t0 = res[0].0;
        for (t, _) in &res {
            assert!((t - t0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let res = spmd(1, |comm, clock| {
            let mut buf = vec![7.0];
            comm.allreduce_sum(&mut buf, clock);
            let cat = comm.allgatherv(&[1.0, 2.0], clock);
            let red = comm.reduce_sum_scalar(5.0, clock);
            comm.barrier(clock);
            (buf, cat, red, clock.total())
        });
        let (buf, cat, red, t) = &res[0].0;
        assert_eq!(buf, &vec![7.0]);
        assert_eq!(cat, &vec![1.0, 2.0]);
        assert_eq!(*red, Some(5.0));
        assert_eq!(*t, 0.0);
    }

    #[test]
    fn comm_cost_is_charged() {
        let res = spmd(8, |comm, clock| {
            let mut buf = vec![0.0; 1024];
            comm.allreduce_sum(&mut buf, clock);
            clock.comm
        });
        for (c, _) in &res {
            assert!(*c > 0.0, "no comm time charged");
        }
    }

    #[test]
    fn repeated_collectives_preserve_order() {
        // Three back-to-back allreduces must not cross-talk.
        let res = spmd(4, |comm, clock| {
            let mut out = Vec::new();
            for round in 0..3 {
                let mut buf = vec![(comm.rank() + round) as f64];
                comm.allreduce_sum(&mut buf, clock);
                out.push(buf[0]);
            }
            out
        });
        for (v, _) in &res {
            assert_eq!(v, &vec![6.0, 10.0, 14.0]);
        }
    }

    // ---- fault tolerance ----

    #[test]
    fn checksum_detects_single_bit_flip() {
        let a: Vec<f64> = vec![1.0, 2.0, 3.0];
        let mut b = a.clone();
        b[1] = f64::from_bits(b[1].to_bits() ^ 1);
        assert_ne!(checksum(&a), checksum(&b));
        assert_eq!(checksum(&a), checksum(&a.clone()));
    }

    /// Regression for the silent deadlock: a killed rank (it simply never
    /// calls the collective) must fail the allreduce by timeout, not hang.
    #[test]
    fn killed_rank_fails_allreduce_by_timeout_not_deadlock() {
        let policy = FtPolicy::with_timeout(Duration::from_millis(200));
        let start = std::time::Instant::now();
        let res = spmd_with(4, policy, None, |comm, clock| {
            if comm.rank() == 2 {
                return Err(CommError::Aborted { collective: "n/a", cause: "killed".into() });
            }
            let mut buf = vec![1.0];
            comm.allreduce_sum_ft(&mut buf, clock, Recovery::Disabled).map(|_| buf[0])
        });
        assert!(start.elapsed() < Duration::from_secs(5), "took {:?}", start.elapsed());
        assert!(
            matches!(res[0].0, Err(CommError::RanksLost { ref dead, .. }) if dead == &vec![2]),
            "root saw {:?}",
            res[0].0
        );
        for r in [1, 3] {
            assert!(
                matches!(res[r].0, Err(CommError::Aborted { .. })),
                "rank {r} saw {:?}",
                res[r].0
            );
        }
    }

    #[test]
    fn lost_rank_is_recovered_bit_identically() {
        let policy = FtPolicy::with_timeout(Duration::from_millis(200));
        // Fault-free reference: sum of per-rank payloads [r, r^2].
        let reference = vec![0.0 + 1.0 + 2.0 + 3.0, 0.0 + 1.0 + 4.0 + 9.0];
        let res = spmd_with(4, policy, None, |comm, clock| {
            if comm.rank() == 1 {
                return Err(CommError::Aborted { collective: "n/a", cause: "killed".into() });
            }
            let mut buf = vec![comm.rank() as f64, (comm.rank() * comm.rank()) as f64];
            let mut regenerate = |lost: usize, _mode: RecoverMode| {
                // What the lost rank would have contributed, recomputed
                // deterministically from its rank id.
                vec![lost as f64, (lost * lost) as f64]
            };
            let report = comm.allreduce_sum_ft(
                &mut buf,
                clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
            )?;
            Ok((buf, report))
        });
        for r in [0, 2, 3] {
            let (buf, report) = res[r].0.as_ref().unwrap();
            assert_eq!(buf, &reference, "rank {r}");
            assert_eq!(report.dead, vec![1]);
            assert_eq!(report.recovered, vec![1]);
            assert!(report.degraded.is_empty());
            assert_eq!(report.retries, 1);
        }
    }

    #[test]
    fn corrupt_payload_is_detected_and_rank_stays_alive() {
        let plan = Arc::new(FaultPlan::new(1).corrupt_payload(2, phase::REDUCE_INTEGRALS));
        let policy = FtPolicy::with_timeout(Duration::from_millis(500));
        let res = spmd_with(
            3,
            policy,
            Some(plan),
            |comm: Communicator,
             clock: &mut SimClock|
             -> Result<(Vec<f64>, FtReport), CommError> {
                comm.set_phase(phase::REDUCE_INTEGRALS);
                let mut buf = vec![(comm.rank() + 1) as f64];
                let mut regenerate = |lost: usize, _| vec![(lost + 1) as f64];
                let report = comm.allreduce_sum_ft(
                    &mut buf,
                    clock,
                    Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
                )?;
                Ok((buf, report))
            },
        );
        // Everybody — including the corrupt rank 2 — gets the true sum.
        for (r, slot) in res.iter().enumerate() {
            let (buf, report) = slot.0.as_ref().unwrap();
            assert_eq!(buf, &vec![6.0], "rank {r}");
            assert!(report.dead.is_empty(), "corrupt rank must not be marked dead");
            assert_eq!(report.recovered, vec![2]);
        }
    }

    #[test]
    fn dropped_payload_marks_rank_dead_and_survivors_recover() {
        let plan = Arc::new(FaultPlan::new(1).drop_payload(1, phase::GATHER_RADII));
        let policy = FtPolicy::with_timeout(Duration::from_millis(200));
        let res = spmd_with(3, policy, Some(plan), |comm, clock| {
            comm.set_phase(phase::GATHER_RADII);
            let mine = vec![comm.rank() as f64; 2];
            let mut regenerate = |lost: usize, _| vec![lost as f64; 2];
            comm.allgatherv_ft(
                &mine,
                clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
            )
        });
        let want = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        for r in [0, 2] {
            let (cat, report) = res[r].0.as_ref().unwrap();
            assert_eq!(cat, &want, "rank {r}");
            assert_eq!(report.dead, vec![1]);
            assert_eq!(report.recovered, vec![1]);
        }
        // The dropping rank is dead from the fabric's perspective; it is
        // woken with an abort rather than left to wait out its window.
        assert!(matches!(res[1].0, Err(CommError::Aborted { .. })), "got {:?}", res[1].0);
    }

    #[test]
    fn dead_rank_is_skipped_instantly_in_later_collectives() {
        let policy = FtPolicy::with_timeout(Duration::from_millis(300));
        let res = spmd_with(3, policy, None, |comm, clock| {
            if comm.rank() == 2 {
                // Dies before the first collective.
                return Err(CommError::Aborted { collective: "n/a", cause: "killed".into() });
            }
            let mut regenerate = |lost: usize, _| vec![lost as f64];
            let mut buf = vec![comm.rank() as f64];
            comm.allreduce_sum_ft(
                &mut buf,
                clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
            )?;
            // Second collective: rank 2 already known dead, no new timeout.
            let t0 = std::time::Instant::now();
            let mut regenerate = |lost: usize, _| vec![lost as f64];
            let mut buf2 = vec![comm.rank() as f64];
            let report = comm.allreduce_sum_ft(
                &mut buf2,
                clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
            )?;
            Ok((buf[0], buf2[0], t0.elapsed(), report))
        });
        for r in [0, 1] {
            let (s1, s2, elapsed, report) = res[r].0.as_ref().unwrap();
            assert_eq!(*s1, 3.0);
            assert_eq!(*s2, 3.0);
            assert_eq!(report.dead, vec![2]);
            // No fresh detection timeout was paid the second time.
            assert!(*elapsed < Duration::from_millis(250), "rank {r} took {elapsed:?}");
        }
    }

    #[test]
    fn reduce_recovers_scalar_contribution() {
        let policy = FtPolicy::with_timeout(Duration::from_millis(200));
        let res = spmd_with(4, policy, None, |comm, clock| {
            if comm.rank() == 3 {
                return Err(CommError::Aborted { collective: "n/a", cause: "killed".into() });
            }
            let mut regenerate = |lost: usize, _| vec![(lost * 10) as f64];
            comm.reduce_sum_scalar_ft(
                (comm.rank() * 10) as f64,
                clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
            )
        });
        let (v, report) = res[0].0.as_ref().unwrap();
        assert_eq!(*v, Some(60.0));
        assert_eq!(report.recovered, vec![3]);
    }

    #[test]
    fn degraded_fallback_used_when_exact_recovery_keeps_failing() {
        // The regenerate closure refuses Exact mode by panicking would be
        // messy; instead simulate an assignee that only produces payloads
        // in Degraded mode via the mode argument.
        let policy =
            FtPolicy { timeout: Duration::from_millis(200), max_retries: 0, allow_degraded: true };
        let res = spmd_with(2, policy, None, |comm, clock| {
            if comm.rank() == 1 {
                return Err(CommError::Aborted { collective: "n/a", cause: "killed".into() });
            }
            // With max_retries=0 there is 1 exact attempt, then the
            // degraded round. Exact "fails" here in the sense that the
            // only assignee is the root itself, which succeeds — so to
            // exercise the degraded path we instead check mode sequencing
            // by recording the modes we were asked for.
            let mut modes = Vec::new();
            let mut regenerate = |lost: usize, mode: RecoverMode| {
                modes.push(mode);
                vec![lost as f64]
            };
            let mut buf = vec![comm.rank() as f64];
            let report = comm.allreduce_sum_ft(
                &mut buf,
                clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
            )?;
            Ok((buf[0], modes, report))
        });
        let (sum, modes, report) = res[0].0.as_ref().unwrap();
        assert_eq!(*sum, 1.0);
        assert_eq!(modes, &vec![RecoverMode::Exact], "first attempt is exact");
        assert_eq!(report.recovered, vec![1]);
        assert!(report.degraded.is_empty());
    }

    #[test]
    fn degraded_prefer_mode_marks_rank_degraded() {
        let policy = FtPolicy::with_timeout(Duration::from_millis(200));
        let res = spmd_with(2, policy, None, |comm, clock| {
            if comm.rank() == 1 {
                return Err(CommError::Aborted { collective: "n/a", cause: "killed".into() });
            }
            let mut regenerate = |lost: usize, _| vec![lost as f64];
            let mut buf = vec![comm.rank() as f64];
            let report = comm.allreduce_sum_ft(
                &mut buf,
                clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Degraded },
            )?;
            Ok(report)
        });
        let report = res[0].0.as_ref().unwrap();
        assert_eq!(report.degraded, vec![1]);
        assert!(report.recovered.is_empty());
    }

    #[test]
    fn surviving_clocks_stay_synchronized_through_recovery() {
        let policy = FtPolicy::with_timeout(Duration::from_millis(200));
        let res = spmd_with(4, policy, None, |comm, clock| {
            clock.add_compute(comm.rank() as f64);
            if comm.rank() == 2 {
                return Err(CommError::Aborted { collective: "n/a", cause: "killed".into() });
            }
            let mut regenerate = |lost: usize, _| vec![lost as f64];
            let mut buf = vec![comm.rank() as f64];
            comm.allreduce_sum_ft(
                &mut buf,
                clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
            )?;
            Ok(clock.total())
        });
        let survivors: Vec<f64> =
            [0usize, 1, 3].iter().map(|&r| *res[r].0.as_ref().unwrap()).collect();
        for &t in &survivors {
            assert!((t - survivors[0]).abs() < 1e-12, "clocks diverged: {survivors:?}");
        }
    }
}
