//! The simulated-MPI communicator.
//!
//! Ranks run as in-process threads; collectives move real data over
//! channels (a star through rank 0) so the algorithms' *results* are
//! exactly what real MPI would produce, while the *cost* charged to each
//! rank's [`SimClock`] follows the Grama formulas in
//! [`crate::costmodel`] — not the star's hop count, which is an execution
//! mechanism, not the thing being modeled.
//!
//! Every collective also synchronizes virtual time: all participants leave
//! at `max(entry times) + cost`, the bulk-synchronous semantics of the
//! paper's Steps 3, 5 and 7.

use crate::costmodel::CommCostModel;
use crate::simtime::SimClock;
use crossbeam_channel::{bounded, Receiver, Sender};
use std::sync::Arc;

/// Payload exchanged during a collective: the sender's clock and data.
type Msg = (f64, Vec<f64>);

/// Channel fabric shared by all ranks of one SPMD run.
pub struct CommFabric {
    /// `up[r]` — rank r's channel into the root.
    up: Vec<(Sender<Msg>, Receiver<Msg>)>,
    /// `down[r]` — the root's channel to rank r.
    down: Vec<(Sender<Msg>, Receiver<Msg>)>,
}

impl CommFabric {
    pub fn new(size: usize) -> Arc<CommFabric> {
        Arc::new(CommFabric {
            up: (0..size).map(|_| bounded(1)).collect(),
            down: (0..size).map(|_| bounded(1)).collect(),
        })
    }
}

/// One rank's endpoint (clone the fabric Arc, one communicator per rank).
pub struct Communicator {
    rank: usize,
    size: usize,
    cost: CommCostModel,
    fabric: Arc<CommFabric>,
}

impl Communicator {
    pub fn new(rank: usize, size: usize, cost: CommCostModel, fabric: Arc<CommFabric>) -> Self {
        assert!(rank < size);
        Communicator { rank, size, cost, fabric }
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Root-mediated exchange underlying every collective: each rank ships
    /// `data` + clock to the root; the root folds the payloads with
    /// `combine`, computes the synchronized exit time, and ships each rank
    /// its reply produced by `reply` (rank-indexed).
    fn root_exchange(
        &self,
        clock: &mut SimClock,
        data: Vec<f64>,
        cost: f64,
        combine: impl FnOnce(Vec<(usize, Vec<f64>)>) -> Vec<Vec<f64>>,
    ) -> Vec<f64> {
        if self.size == 1 {
            // Single rank: combine with itself, zero cost.
            let mut replies = combine(vec![(0, data)]);
            return replies.pop().unwrap();
        }
        if self.rank == 0 {
            let mut entries: Vec<(usize, Vec<f64>)> = Vec::with_capacity(self.size);
            let mut max_entry = clock.total();
            entries.push((0, data));
            for r in 1..self.size {
                let (t, payload) = self.fabric.up[r].1.recv().expect("rank hung up");
                max_entry = max_entry.max(t);
                entries.push((r, payload));
            }
            let mut replies = combine(entries);
            debug_assert_eq!(replies.len(), self.size);
            // Send rank r its reply (reverse order so pop() is cheap).
            for r in (1..self.size).rev() {
                let reply = replies.pop().unwrap();
                self.fabric.down[r].0.send((max_entry, reply)).expect("rank hung up");
            }
            let own = replies.pop().unwrap();
            clock.synchronize(max_entry, cost);
            own
        } else {
            self.fabric.up[self.rank].0.send((clock.total(), data)).expect("root hung up");
            let (max_entry, reply) = self.fabric.down[self.rank].1.recv().expect("root hung up");
            clock.synchronize(max_entry, cost);
            reply
        }
    }

    /// `MPI_Allreduce(MPI_SUM)` over an f64 buffer (Fig. 4 Step 3).
    pub fn allreduce_sum(&self, buf: &mut [f64], clock: &mut SimClock) {
        let cost = self.cost.allreduce(buf.len() * 8);
        let n = buf.len();
        let out = self.root_exchange(clock, buf.to_vec(), cost, |entries| {
            let mut sum = vec![0.0f64; n];
            for (_, payload) in &entries {
                assert_eq!(payload.len(), n, "allreduce length mismatch across ranks");
                for (s, v) in sum.iter_mut().zip(payload) {
                    *s += v;
                }
            }
            vec![sum; entries.len()]
        });
        buf.copy_from_slice(&out);
    }

    /// `MPI_Allgatherv`: concatenate every rank's `mine` in rank order;
    /// all ranks receive the concatenation (Fig. 4 Step 5).
    pub fn allgatherv(&self, mine: &[f64], clock: &mut SimClock) -> Vec<f64> {
        // Cost is charged on the *total* payload.
        let local = mine.to_vec();
        // First a cheap size exchange is implied; we fold it into the
        // collective cost (real MPI_Allgatherv requires counts known).
        let out = self.root_exchange(clock, local, 0.0, |mut entries| {
            entries.sort_by_key(|(r, _)| *r);
            let total: usize = entries.iter().map(|(_, p)| p.len()).sum();
            let mut cat = Vec::with_capacity(total);
            for (_, p) in &entries {
                cat.extend_from_slice(p);
            }
            vec![cat; entries.len()]
        });
        // Charge after we know the total size.
        clock.add_comm(self.cost.allgatherv(out.len() * 8));
        out
    }

    /// `MPI_Reduce(MPI_SUM)` of one scalar to the root (Fig. 4 Step 7).
    /// Returns `Some(sum)` on the root, `None` elsewhere.
    pub fn reduce_sum_scalar(&self, x: f64, clock: &mut SimClock) -> Option<f64> {
        let cost = self.cost.reduce(8);
        let out = self.root_exchange(clock, vec![x], cost, |entries| {
            let sum: f64 = entries.iter().map(|(_, p)| p[0]).sum();
            entries
                .iter()
                .map(|(r, _)| if *r == 0 { vec![sum] } else { vec![] })
                .collect()
        });
        if self.rank == 0 {
            Some(out[0])
        } else {
            None
        }
    }

    /// `MPI_Bcast` from the root.
    pub fn bcast(&self, buf: &mut Vec<f64>, clock: &mut SimClock) {
        let cost = self.cost.bcast(buf.len() * 8);
        let payload = if self.rank == 0 { std::mem::take(buf) } else { Vec::new() };
        let out = self.root_exchange(clock, payload, cost, |entries| {
            let root_payload =
                entries.iter().find(|(r, _)| *r == 0).map(|(_, p)| p.clone()).unwrap();
            vec![root_payload; entries.len()]
        });
        *buf = out;
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self, clock: &mut SimClock) {
        let cost = self.cost.barrier();
        let _ = self.root_exchange(clock, Vec::new(), cost, |entries| {
            vec![Vec::new(); entries.len()]
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ClusterSpec, MachineSpec, Placement};

    /// Run `f` as an SPMD body over `size` ranks and return per-rank
    /// results (test harness; the real one lives in `runner`).
    fn spmd<T: Send>(
        size: usize,
        f: impl Fn(Communicator, &mut SimClock) -> T + Sync,
    ) -> Vec<(T, SimClock)> {
        let cluster =
            ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(size.max(1)));
        let cost = CommCostModel::for_cluster(&cluster);
        let fabric = CommFabric::new(size);
        let mut out: Vec<Option<(T, SimClock)>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (r, slot) in out.iter_mut().enumerate() {
                let fabric = fabric.clone();
                let f = &f;
                scope.spawn(move || {
                    let comm = Communicator::new(r, size, cost, fabric);
                    let mut clock = SimClock::new();
                    let v = f(comm, &mut clock);
                    *slot = Some((v, clock));
                });
            }
        });
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let size = 5;
        let res = spmd(size, |comm, clock| {
            let mut buf = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut buf, clock);
            buf
        });
        let want = vec![(0..5).sum::<usize>() as f64, 5.0];
        for (buf, _) in &res {
            assert_eq!(buf, &want);
        }
    }

    #[test]
    fn allreduce_synchronizes_clocks() {
        let res = spmd(4, |comm, clock| {
            clock.add_compute(comm.rank() as f64); // rank r computed r s
            let mut buf = vec![1.0];
            comm.allreduce_sum(&mut buf, clock);
            clock.total()
        });
        let totals: Vec<f64> = res.iter().map(|(t, _)| *t).collect();
        for &t in &totals {
            assert!((t - totals[0]).abs() < 1e-12, "clocks diverged: {totals:?}");
        }
        // Everyone left at >= the slowest rank's 3 s.
        assert!(totals[0] >= 3.0);
        // The fast rank attributed ~3s to waiting.
        let wait0 = res[0].1.wait;
        assert!((wait0 - 3.0).abs() < 1e-9, "rank0 wait {wait0}");
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let res = spmd(3, |comm, clock| {
            let mine: Vec<f64> = (0..=comm.rank()).map(|i| (comm.rank() * 10 + i) as f64).collect();
            comm.allgatherv(&mine, clock)
        });
        let want = vec![0.0, 10.0, 11.0, 20.0, 21.0, 22.0];
        for (got, _) in &res {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn reduce_scalar_only_root_receives() {
        let res = spmd(6, |comm, clock| comm.reduce_sum_scalar(2.5, clock));
        assert_eq!(res[0].0, Some(15.0));
        for (v, _) in &res[1..] {
            assert_eq!(*v, None);
        }
    }

    #[test]
    fn bcast_distributes_roots_buffer() {
        let res = spmd(4, |comm, clock| {
            let mut buf = if comm.is_root() { vec![3.14, 2.71] } else { vec![] };
            comm.bcast(&mut buf, clock);
            buf
        });
        for (buf, _) in &res {
            assert_eq!(buf, &vec![3.14, 2.71]);
        }
    }

    #[test]
    fn barrier_aligns_time() {
        let res = spmd(3, |comm, clock| {
            clock.add_compute((comm.rank() as f64) * 0.5);
            comm.barrier(clock);
            clock.total()
        });
        let t0 = res[0].0;
        for (t, _) in &res {
            assert!((t - t0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let res = spmd(1, |comm, clock| {
            let mut buf = vec![7.0];
            comm.allreduce_sum(&mut buf, clock);
            let cat = comm.allgatherv(&[1.0, 2.0], clock);
            let red = comm.reduce_sum_scalar(5.0, clock);
            comm.barrier(clock);
            (buf, cat, red, clock.total())
        });
        let (buf, cat, red, t) = &res[0].0;
        assert_eq!(buf, &vec![7.0]);
        assert_eq!(cat, &vec![1.0, 2.0]);
        assert_eq!(*red, Some(5.0));
        assert_eq!(*t, 0.0);
    }

    #[test]
    fn comm_cost_is_charged() {
        let res = spmd(8, |comm, clock| {
            let mut buf = vec![0.0; 1024];
            comm.allreduce_sum(&mut buf, clock);
            clock.comm
        });
        for (c, _) in &res {
            assert!(*c > 0.0, "no comm time charged");
        }
    }

    #[test]
    fn repeated_collectives_preserve_order() {
        // Three back-to-back allreduces must not cross-talk.
        let res = spmd(4, |comm, clock| {
            let mut out = Vec::new();
            for round in 0..3 {
                let mut buf = vec![(comm.rank() + round) as f64];
                comm.allreduce_sum(&mut buf, clock);
                out.push(buf[0]);
            }
            out
        });
        for (v, _) in &res {
            assert_eq!(v, &vec![6.0, 10.0, 14.0]);
        }
    }
}
