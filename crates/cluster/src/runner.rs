//! SPMD launcher: run `P` ranks of a closure over the simulated cluster.
//!
//! Two entry points: [`run_spmd`] (infallible body, panics if a rank
//! fails — the historical interface) and [`run_spmd_ft`] (fault-aware:
//! the body returns `Result`, panics are contained with `catch_unwind`,
//! and a [`FaultPlan`] is consulted at driver-declared phase boundaries
//! via [`RankContext::fault_point`]).

use crate::calib::KernelCosts;
use crate::comm::{CommError, CommFabric, Communicator};
use crate::costmodel::CommCostModel;
use crate::fault::{die_sigkill, FaultKind, FaultPlan, FtPolicy, KillMode};
use crate::machine::ClusterSpec;
use crate::simtime::{OpCounts, SimClock};
use polaroct_sched::pool::WorkStealingPool;
use std::fmt;
use std::sync::Arc;

/// Why one rank of an SPMD run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum RankError {
    /// A collective failed (timeout / lost ranks / abort).
    Comm(CommError),
    /// An injected kill fault fired at this phase.
    Killed { phase: u32 },
    /// The rank body panicked; contained by `catch_unwind`.
    Panicked(String),
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankError::Comm(e) => write!(f, "{e}"),
            RankError::Killed { phase } => write!(f, "rank killed by fault at phase {phase}"),
            RankError::Panicked(msg) => write!(f, "rank panicked: {msg}"),
        }
    }
}

impl std::error::Error for RankError {}

impl From<CommError> for RankError {
    fn from(e: CommError) -> Self {
        RankError::Comm(e)
    }
}

/// Everything a rank body receives.
pub struct RankContext {
    pub rank: usize,
    pub size: usize,
    pub comm: Communicator,
    pub clock: SimClock,
    /// Scratch op counter the body may use before converting to time.
    pub ops: OpCounts,
    /// Per-op costs (shared calibration).
    pub costs: KernelCosts,
    /// Threads available to this rank (the hybrid `p`).
    pub threads: usize,
    /// The run's fault plan (empty when launched via [`run_spmd`]).
    pub faults: Arc<FaultPlan>,
    /// How kill-class faults are realized: simulated (thread stops
    /// participating) for in-process ranks, a real `SIGKILL` when this
    /// rank is its own worker process.
    pub kill: KillMode,
}

impl RankContext {
    /// Charge the accumulated ops to the clock (serial execution: one
    /// thread), clearing the counter.
    pub fn charge_ops_serial(&mut self, approx_math: bool) {
        let secs = self.costs.seconds(&self.ops, approx_math);
        self.clock.add_compute(secs);
        self.ops = OpCounts::default();
    }

    /// Declare a phase boundary (Fig. 4 step number): records the phase
    /// on the communicator (so payload faults target the right
    /// collective) and fires any pending execution fault for this rank.
    ///
    /// * `Kill` — returns `Err(RankError::Killed)`; the body should
    ///   propagate it so the rank exits silently (peers detect it by
    ///   collective timeout).
    /// * `Delay` — charges virtual straggler time and really sleeps a
    ///   bounded amount, exercising the timeout tolerance.
    /// * `PanicRank` — panics; contained by [`run_spmd_ft`].
    /// * `PanicWorker` — runs a probe task set on a real work-stealing
    ///   pool in which one task panics; the pool contains it (the lost
    ///   task is re-executed inline), demonstrating intra-rank
    ///   containment without failing the rank.
    pub fn fault_point(&mut self, phase: u32) -> Result<(), RankError> {
        self.comm.set_phase(phase);
        match self.faults.fire_exec(self.rank, phase) {
            None
            | Some(FaultKind::DropPayload)
            | Some(FaultKind::CorruptPayload)
            | Some(FaultKind::KillMidSend) => Ok(()),
            Some(FaultKind::Kill) => match self.kill {
                KillMode::Simulated => Err(RankError::Killed { phase }),
                // A worker process dies for real: the kernel delivers
                // SIGKILL, the socket drops, and the root learns of the
                // death from the transport, not from a return value.
                KillMode::Process => die_sigkill(),
            },
            Some(FaultKind::Delay { virtual_s, real_ms }) => {
                self.clock.add_compute(virtual_s);
                std::thread::sleep(std::time::Duration::from_millis(real_ms));
                Ok(())
            }
            Some(FaultKind::PanicRank) => {
                // PANIC-OK: deliberate fault injection; contained by run_spmd_ft's catch_unwind.
                panic!("injected rank panic at phase {phase}")
            }
            Some(FaultKind::PanicWorker) => {
                let pool = WorkStealingPool::new(self.threads.max(2));
                let (slots, metrics) = pool.try_map(4, |i| {
                    if i == 1 {
                        // PANIC-OK: deliberate fault injection; contained by the pool.
                        panic!("injected worker panic at phase {phase}");
                    }
                    i
                });
                debug_assert_eq!(metrics.panics, 1);
                debug_assert!(slots[1].is_none() && slots[0].is_some());
                Ok(())
            }
        }
    }
}

/// The result of an SPMD run.
#[derive(Debug)]
pub struct SpmdResult<T> {
    /// Rank-indexed return values.
    pub per_rank: Vec<T>,
    /// Rank-indexed final clocks.
    pub clocks: Vec<SimClock>,
}

impl<T> SpmdResult<T> {
    /// The simulated parallel completion time: the slowest rank.
    pub fn parallel_time(&self) -> f64 {
        self.clocks.iter().map(|c| c.total()).fold(0.0, f64::max)
    }

    /// Total simulated compute across ranks (the work `T_1` would do).
    pub fn total_compute(&self) -> f64 {
        self.clocks.iter().map(|c| c.compute).sum()
    }

    /// Max communication+wait overhead across ranks.
    pub fn max_overhead(&self) -> f64 {
        self.clocks.iter().map(|c| c.comm + c.wait).fold(0.0, f64::max)
    }
}

/// The result of a fault-aware SPMD run: per-rank `Result`s plus clocks
/// (a failed rank's clock reflects the time it accumulated before dying).
#[derive(Debug)]
pub struct FtSpmdResult<T> {
    pub per_rank: Vec<Result<T, RankError>>,
    pub clocks: Vec<SimClock>,
}

impl<T> FtSpmdResult<T> {
    /// The simulated parallel completion time over *surviving* ranks.
    pub fn parallel_time(&self) -> f64 {
        self.per_rank
            .iter()
            .zip(&self.clocks)
            .filter(|(r, _)| r.is_ok())
            .map(|(_, c)| c.total())
            .fold(0.0, f64::max)
    }

    /// Ranks that failed, with their errors.
    pub fn failures(&self) -> Vec<(usize, &RankError)> {
        self.per_rank
            .iter()
            .enumerate()
            .filter_map(|(r, res)| res.as_ref().err().map(|e| (r, e)))
            .collect()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Launch `cluster.placement.processes` ranks with fault injection and
/// containment: each rank's body runs under `catch_unwind`, consults
/// `plan` at its declared [`RankContext::fault_point`]s, and returns a
/// `Result` instead of panicking the whole run.
pub fn run_spmd_ft<T, F>(
    cluster: &ClusterSpec,
    costs: KernelCosts,
    plan: &FaultPlan,
    policy: FtPolicy,
    body: F,
) -> FtSpmdResult<T>
where
    T: Send,
    F: Fn(&mut RankContext) -> Result<T, RankError> + Sync,
{
    let size = cluster.placement.processes;
    let threads = cluster.placement.threads_per_process;
    let cost_model = CommCostModel::for_cluster(cluster);
    let fabric = CommFabric::with_policy(size, policy);
    // Clone resets the one-shot fired flags: the caller's plan value can
    // drive many runs identically.
    let plan = Arc::new(plan.clone());

    let mut results: Vec<Option<(Result<T, RankError>, SimClock)>> =
        (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (rank, slot) in results.iter_mut().enumerate() {
            let fabric = fabric.clone();
            let plan = plan.clone();
            let body = &body;
            scope.spawn(move || {
                let comm =
                    Communicator::new(rank, size, cost_model, fabric).with_faults(plan.clone());
                let mut ctx = RankContext {
                    rank,
                    size,
                    comm,
                    clock: SimClock::new(),
                    ops: OpCounts::default(),
                    costs,
                    threads,
                    faults: plan,
                    kill: KillMode::Simulated,
                };
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
                let res = match out {
                    Ok(r) => r,
                    Err(p) => Err(RankError::Panicked(panic_message(p))),
                };
                *slot = Some((res, ctx.clock));
            });
        }
    });

    let mut per_rank = Vec::with_capacity(size);
    let mut clocks = Vec::with_capacity(size);
    for slot in results {
        // A missing slot means the rank thread died without even the
        // catch_unwind completing — report it as a failed rank rather
        // than taking the whole run down.
        let (v, c) = slot.unwrap_or_else(|| {
            (
                Err(RankError::Panicked("rank thread vanished before storing a result".into())),
                SimClock::new(),
            )
        });
        per_rank.push(v);
        clocks.push(c);
    }
    FtSpmdResult { per_rank, clocks }
}

/// Launch `cluster.placement.processes` ranks, each running `body`.
///
/// Ranks execute concurrently as OS threads (collectives rendezvous), so
/// results are exactly what an MPI run would compute; clocks are virtual.
/// Thin wrapper over [`run_spmd_ft`] with no faults; a failed rank
/// (panic, or a collective timeout) panics here.
pub fn run_spmd<T, F>(cluster: &ClusterSpec, costs: KernelCosts, body: F) -> SpmdResult<T>
where
    T: Send,
    F: Fn(&mut RankContext) -> T + Sync,
{
    let res = run_spmd_ft(cluster, costs, &FaultPlan::none(), FtPolicy::default(), |ctx| {
        Ok(body(ctx))
    });
    let per_rank = res
        .per_rank
        .into_iter()
        .enumerate()
        // PANIC-OK: documented fail-fast facade over run_spmd_ft.
        .map(|(r, v)| v.unwrap_or_else(|e| panic!("rank {r} failed: {e}")))
        .collect();
    SpmdResult { per_rank, clocks: res.clocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Recovery;
    use crate::fault::{phase, RecoverMode};
    use crate::machine::{MachineSpec, Placement};
    use std::time::Duration;

    fn cluster(p: usize) -> ClusterSpec {
        ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p))
    }

    #[test]
    fn ranks_see_their_ids_and_results_are_ordered() {
        let res = run_spmd(&cluster(6), KernelCosts::lonestar4_reference(), |ctx| {
            assert_eq!(ctx.size, 6);
            ctx.rank * 2
        });
        assert_eq!(res.per_rank, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn spmd_collective_roundtrip() {
        let res = run_spmd(&cluster(4), KernelCosts::lonestar4_reference(), |ctx| {
            let mut clock = ctx.clock;
            let mut buf = vec![1.0];
            ctx.comm.allreduce_sum(&mut buf, &mut clock);
            ctx.clock = clock;
            buf[0]
        });
        assert!(res.per_rank.iter().all(|&v| v == 4.0));
        assert!(res.parallel_time() > 0.0);
    }

    #[test]
    fn charge_ops_serial_converts_and_clears() {
        let res = run_spmd(&cluster(2), KernelCosts::lonestar4_reference(), |ctx| {
            ctx.ops.epol_near = 1_000_000;
            ctx.charge_ops_serial(false);
            assert_eq!(ctx.ops.epol_near, 0);
            ctx.clock.compute
        });
        for &c in &res.per_rank {
            assert!((c - 0.018).abs() < 1e-9, "1M pairs at 18ns = 18ms, got {c}");
        }
    }

    #[test]
    fn parallel_time_is_max_rank_time() {
        let res = run_spmd(&cluster(3), KernelCosts::lonestar4_reference(), |ctx| {
            ctx.clock.add_compute((ctx.rank + 1) as f64);
        });
        assert!((res.parallel_time() - 3.0).abs() < 1e-12);
        assert!((res.total_compute() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hybrid_placement_exposes_thread_count() {
        let m = MachineSpec::lonestar4();
        let c = ClusterSpec::new(m, Placement::hybrid_per_socket(12, &m));
        let res = run_spmd(&c, KernelCosts::lonestar4_reference(), |ctx| ctx.threads);
        assert_eq!(res.per_rank, vec![6, 6]);
    }

    // ---- fault-aware launcher ----

    #[test]
    fn panicked_rank_is_contained_as_error() {
        let plan = FaultPlan::new(0).panic_rank(1, phase::INTEGRALS);
        let policy = FtPolicy::with_timeout(Duration::from_millis(200));
        let res = run_spmd_ft(&cluster(3), KernelCosts::lonestar4_reference(), &plan, policy, |ctx| {
            ctx.fault_point(phase::INTEGRALS)?;
            Ok(ctx.rank)
        });
        assert_eq!(res.per_rank[0], Ok(0));
        assert!(
            matches!(res.per_rank[1], Err(RankError::Panicked(ref m)) if m.contains("injected")),
            "got {:?}",
            res.per_rank[1]
        );
        assert_eq!(res.per_rank[2], Ok(2));
        assert_eq!(res.failures().len(), 1);
    }

    #[test]
    fn killed_rank_surfaces_as_error_and_survivors_recover() {
        let plan = FaultPlan::new(0).kill(1, phase::INTEGRALS);
        let policy = FtPolicy::with_timeout(Duration::from_millis(200));
        let res = run_spmd_ft(&cluster(3), KernelCosts::lonestar4_reference(), &plan, policy, |ctx| {
            ctx.fault_point(phase::INTEGRALS)?;
            let mut buf = vec![(ctx.rank + 1) as f64];
            let mut clock = ctx.clock;
            let mut regenerate = |lost: usize, _: RecoverMode| vec![(lost + 1) as f64];
            ctx.comm.set_phase(phase::REDUCE_INTEGRALS);
            let report = ctx.comm.allreduce_sum_ft(
                &mut buf,
                &mut clock,
                Recovery::Enabled { regenerate: &mut regenerate, prefer: RecoverMode::Exact },
            )?;
            ctx.clock = clock;
            Ok((buf[0], report.recovered.clone()))
        });
        assert_eq!(res.per_rank[1], Err(RankError::Killed { phase: phase::INTEGRALS }));
        for r in [0, 2] {
            let (sum, recovered) = res.per_rank[r].as_ref().unwrap();
            assert_eq!(*sum, 6.0, "rank {r}: recovered sum must match fault-free");
            assert_eq!(recovered, &vec![1]);
        }
    }

    #[test]
    fn delay_fault_charges_virtual_time_only_to_the_straggler() {
        let plan = FaultPlan::new(0).delay(2, phase::PUSH, 1.5);
        let res = run_spmd_ft(
            &cluster(3),
            KernelCosts::lonestar4_reference(),
            &plan,
            FtPolicy::default(),
            |ctx| {
                ctx.fault_point(phase::PUSH)?;
                Ok(ctx.clock.compute)
            },
        );
        assert_eq!(res.per_rank[0], Ok(0.0));
        assert_eq!(res.per_rank[1], Ok(0.0));
        assert_eq!(res.per_rank[2], Ok(1.5));
    }

    #[test]
    fn worker_panic_is_contained_within_the_rank() {
        let plan = FaultPlan::new(0).panic_worker(1, phase::EPOL);
        let res = run_spmd_ft(
            &cluster(2),
            KernelCosts::lonestar4_reference(),
            &plan,
            FtPolicy::default(),
            |ctx| {
                ctx.fault_point(phase::EPOL)?;
                Ok(ctx.rank)
            },
        );
        // The worker panic is contained by the pool: the rank survives.
        assert_eq!(res.per_rank, vec![Ok(0), Ok(1)]);
    }

    #[test]
    fn empty_plan_matches_plain_run_spmd() {
        let ft = run_spmd_ft(
            &cluster(4),
            KernelCosts::lonestar4_reference(),
            &FaultPlan::none(),
            FtPolicy::default(),
            |ctx| {
                ctx.fault_point(phase::INTEGRALS)?;
                let mut clock = ctx.clock;
                let mut buf = vec![1.0];
                ctx.comm.allreduce_sum(&mut buf, &mut clock);
                ctx.clock = clock;
                Ok(buf[0])
            },
        );
        for r in ft.per_rank {
            assert_eq!(r, Ok(4.0));
        }
    }
}
