//! SPMD launcher: run `P` ranks of a closure over the simulated cluster.

use crate::calib::KernelCosts;
use crate::comm::{CommFabric, Communicator};
use crate::costmodel::CommCostModel;
use crate::machine::ClusterSpec;
use crate::simtime::{OpCounts, SimClock};

/// Everything a rank body receives.
pub struct RankContext {
    pub rank: usize,
    pub size: usize,
    pub comm: Communicator,
    pub clock: SimClock,
    /// Scratch op counter the body may use before converting to time.
    pub ops: OpCounts,
    /// Per-op costs (shared calibration).
    pub costs: KernelCosts,
    /// Threads available to this rank (the hybrid `p`).
    pub threads: usize,
}

impl RankContext {
    /// Charge the accumulated ops to the clock (serial execution: one
    /// thread), clearing the counter.
    pub fn charge_ops_serial(&mut self, approx_math: bool) {
        let secs = self.costs.seconds(&self.ops, approx_math);
        self.clock.add_compute(secs);
        self.ops = OpCounts::default();
    }
}

/// The result of an SPMD run.
#[derive(Debug)]
pub struct SpmdResult<T> {
    /// Rank-indexed return values.
    pub per_rank: Vec<T>,
    /// Rank-indexed final clocks.
    pub clocks: Vec<SimClock>,
}

impl<T> SpmdResult<T> {
    /// The simulated parallel completion time: the slowest rank.
    pub fn parallel_time(&self) -> f64 {
        self.clocks.iter().map(|c| c.total()).fold(0.0, f64::max)
    }

    /// Total simulated compute across ranks (the work `T_1` would do).
    pub fn total_compute(&self) -> f64 {
        self.clocks.iter().map(|c| c.compute).sum()
    }

    /// Max communication+wait overhead across ranks.
    pub fn max_overhead(&self) -> f64 {
        self.clocks.iter().map(|c| c.comm + c.wait).fold(0.0, f64::max)
    }
}

/// Launch `cluster.placement.processes` ranks, each running `body`.
///
/// Ranks execute concurrently as OS threads (collectives rendezvous), so
/// results are exactly what an MPI run would compute; clocks are virtual.
pub fn run_spmd<T, F>(cluster: &ClusterSpec, costs: KernelCosts, body: F) -> SpmdResult<T>
where
    T: Send,
    F: Fn(&mut RankContext) -> T + Sync,
{
    let size = cluster.placement.processes;
    let threads = cluster.placement.threads_per_process;
    let cost_model = CommCostModel::for_cluster(cluster);
    let fabric = CommFabric::new(size);

    let mut results: Vec<Option<(T, SimClock)>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (rank, slot) in results.iter_mut().enumerate() {
            let fabric = fabric.clone();
            let body = &body;
            scope.spawn(move || {
                let mut ctx = RankContext {
                    rank,
                    size,
                    comm: Communicator::new(rank, size, cost_model, fabric),
                    clock: SimClock::new(),
                    ops: OpCounts::default(),
                    costs,
                    threads,
                };
                let v = body(&mut ctx);
                *slot = Some((v, ctx.clock));
            });
        }
    });

    let mut per_rank = Vec::with_capacity(size);
    let mut clocks = Vec::with_capacity(size);
    for slot in results {
        let (v, c) = slot.expect("rank panicked");
        per_rank.push(v);
        clocks.push(c);
    }
    SpmdResult { per_rank, clocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineSpec, Placement};

    fn cluster(p: usize) -> ClusterSpec {
        ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p))
    }

    #[test]
    fn ranks_see_their_ids_and_results_are_ordered() {
        let res = run_spmd(&cluster(6), KernelCosts::lonestar4_reference(), |ctx| {
            assert_eq!(ctx.size, 6);
            ctx.rank * 2
        });
        assert_eq!(res.per_rank, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn spmd_collective_roundtrip() {
        let res = run_spmd(&cluster(4), KernelCosts::lonestar4_reference(), |ctx| {
            let mut clock = ctx.clock;
            let mut buf = vec![1.0];
            ctx.comm.allreduce_sum(&mut buf, &mut clock);
            ctx.clock = clock;
            buf[0]
        });
        assert!(res.per_rank.iter().all(|&v| v == 4.0));
        assert!(res.parallel_time() > 0.0);
    }

    #[test]
    fn charge_ops_serial_converts_and_clears() {
        let res = run_spmd(&cluster(2), KernelCosts::lonestar4_reference(), |ctx| {
            ctx.ops.epol_near = 1_000_000;
            ctx.charge_ops_serial(false);
            assert_eq!(ctx.ops.epol_near, 0);
            ctx.clock.compute
        });
        for &c in &res.per_rank {
            assert!((c - 0.018).abs() < 1e-9, "1M pairs at 18ns = 18ms, got {c}");
        }
    }

    #[test]
    fn parallel_time_is_max_rank_time() {
        let res = run_spmd(&cluster(3), KernelCosts::lonestar4_reference(), |ctx| {
            ctx.clock.add_compute((ctx.rank + 1) as f64);
        });
        assert!((res.parallel_time() - 3.0).abs() < 1e-12);
        assert!((res.total_compute() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hybrid_placement_exposes_thread_count() {
        let m = MachineSpec::lonestar4();
        let c = ClusterSpec::new(m, Placement::hybrid_per_socket(12, &m));
        let res = run_spmd(&c, KernelCosts::lonestar4_reference(), |ctx| ctx.threads);
        assert_eq!(res.per_rank, vec![6, 6]);
    }
}
