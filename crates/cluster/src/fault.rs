//! Deterministic fault injection for the simulated cluster.
//!
//! The paper's Fig. 4 algorithm divides work *statically* and
//! synchronizes with bulk collectives, so a single dead or straggling
//! rank stalls the whole job. A [`FaultPlan`] describes, ahead of time
//! and reproducibly, which rank misbehaves at which phase — the SPMD
//! launcher and the drivers consult it at phase boundaries
//! ([`crate::runner::RankContext::fault_point`]) and the communicator
//! consults it when shipping collective payloads.
//!
//! Faults are **one-shot**: each entry fires at most once per run (the
//! fired flags are cleared when a plan is cloned, so one plan value can
//! drive many runs deterministically).
//!
//! Phase numbers follow the paper's Fig. 4 step numbering; see [`phase`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Fig. 4 step numbers used as fault-injection phase ids.
pub mod phase {
    /// Step 2 — `APPROX-INTEGRALS` over the rank's quadrature leaves.
    pub const INTEGRALS: u32 = 2;
    /// Step 3 — `MPI_Allreduce` of the partial integrals.
    pub const REDUCE_INTEGRALS: u32 = 3;
    /// Step 4 — `PUSH-INTEGRALS-TO-ATOMS` over the rank's atom segment.
    pub const PUSH: u32 = 4;
    /// Step 5 — `MPI_Allgatherv` of the Born radii.
    pub const GATHER_RADII: u32 = 5;
    /// Step 6 — `APPROX-E_pol` over the rank's atom leaves.
    pub const EPOL: u32 = 6;
    /// Step 7 — `MPI_Reduce` of the partial energies.
    pub const REDUCE_EPOL: u32 = 7;
    /// All compute phases, in execution order.
    pub const COMPUTE: [u32; 3] = [INTEGRALS, PUSH, EPOL];
    /// All collective phases, in execution order.
    pub const COLLECTIVE: [u32; 3] = [REDUCE_INTEGRALS, GATHER_RADII, REDUCE_EPOL];
}

/// What happens when a fault fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The rank dies silently (thread exits without participating in any
    /// further collective) — a hard crash. Detected by collective
    /// timeout.
    Kill,
    /// The rank straggles: `virtual_s` seconds are charged to its
    /// [`crate::simtime::SimClock`] and the thread really sleeps
    /// `real_ms` milliseconds (bounded, to exercise timeout tolerance
    /// without slowing the suite).
    Delay { virtual_s: f64, real_ms: u64 },
    /// The rank's next collective payload is silently not sent. The root
    /// times out on it and (from the fabric's point of view) the rank is
    /// dead from then on.
    DropPayload,
    /// The rank's next collective payload is bit-corrupted in flight.
    /// The checksum catches it at the root; the contribution is treated
    /// as lost (recoverable), but the rank itself stays alive.
    CorruptPayload,
    /// The rank's body panics (`panic!`), exercising the
    /// `catch_unwind` containment in the SPMD launcher.
    PanicRank,
    /// One worker task of the rank's intra-node thread pool panics,
    /// exercising the containment in `polaroct-sched`'s pool.
    PanicWorker,
    /// The rank dies immediately *after* handing its collective payload
    /// to the fabric — the orphaned-frame scenario: the root receives a
    /// perfectly valid contribution from a rank that no longer exists.
    /// On the process transport the death is a literal `SIGKILL`; on the
    /// in-process transport the rank returns [`crate::runner::RankError`]
    /// and participates in nothing further. Either way the already-sent
    /// frame must stay usable by the root and must not poison the
    /// channel for survivors.
    KillMidSend,
}

impl FaultKind {
    /// Does this fault fire at a compute fault point (vs. on a payload)?
    fn is_exec(self) -> bool {
        !matches!(
            self,
            FaultKind::DropPayload | FaultKind::CorruptPayload | FaultKind::KillMidSend
        )
    }
}

/// How a "this rank dies" fault is realized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KillMode {
    /// The rank's thread stops participating (returns an error); the
    /// process lives on. The only option for the in-process transport.
    #[default]
    Simulated,
    /// The rank's OS process is killed with a real, kernel-delivered
    /// `SIGKILL` — no destructors, no flushing, the socket just drops.
    /// Only meaningful inside a worker process of the process transport.
    Process,
}

/// Kill the current process with a real `SIGKILL` (no unwinding, no
/// cleanup — the kernel reaps us mid-instruction, which is the point).
/// Falls back to `abort` if the signal somehow fails to arrive, so this
/// never returns either way.
pub fn die_sigkill() -> ! {
    #[cfg(unix)]
    {
        let pid = std::process::id();
        let _ = std::process::Command::new("/bin/sh")
            .arg("-c")
            .arg(format!("kill -KILL {pid}"))
            .status();
        // The signal is asynchronous; give the kernel a moment before the
        // abort fallback.
        std::thread::sleep(Duration::from_millis(200));
    }
    std::process::abort();
}

#[derive(Debug)]
struct FaultEntry {
    rank: usize,
    phase: u32,
    kind: FaultKind,
    fired: AtomicBool,
}

/// A seeded, deterministic set of injected faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<FaultEntry>,
}

impl Clone for FaultPlan {
    /// Cloning resets the fired flags — a clone replays the same faults.
    fn clone(&self) -> Self {
        FaultPlan {
            seed: self.seed,
            entries: self
                .entries
                .iter()
                .map(|e| FaultEntry {
                    rank: e.rank,
                    phase: e.phase,
                    kind: e.kind,
                    fired: AtomicBool::new(false),
                })
                .collect(),
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, entries: Vec::new() }
    }

    /// The plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Seed this plan was built from (also used to pick poisoned worker
    /// tasks deterministically).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Append an explicit `(rank, phase, kind)` entry. Public so
    /// transports can reconstruct a plan shipped across a process
    /// boundary; the named builders below read better in tests.
    pub fn with_entry(mut self, rank: usize, phase: u32, kind: FaultKind) -> Self {
        self.entries.push(FaultEntry { rank, phase, kind, fired: AtomicBool::new(false) });
        self
    }

    /// Iterate `(rank, phase, kind)` of every entry (for serialization).
    pub fn entries(&self) -> impl Iterator<Item = (usize, u32, FaultKind)> + '_ {
        self.entries.iter().map(|e| (e.rank, e.phase, e.kind))
    }

    /// Kill `rank` when it reaches `phase`.
    pub fn kill(self, rank: usize, phase: u32) -> Self {
        self.with_entry(rank, phase, FaultKind::Kill)
    }

    /// Delay `rank` at `phase` by `virtual_s` simulated seconds (plus a
    /// bounded real sleep so the recv timeout tolerance is exercised).
    pub fn delay(self, rank: usize, phase: u32, virtual_s: f64) -> Self {
        let real_ms = ((virtual_s * 1e3) as u64).min(25);
        self.with_entry(rank, phase, FaultKind::Delay { virtual_s, real_ms })
    }

    /// Drop `rank`'s payload at collective `phase`.
    pub fn drop_payload(self, rank: usize, phase: u32) -> Self {
        self.with_entry(rank, phase, FaultKind::DropPayload)
    }

    /// Corrupt `rank`'s payload at collective `phase`.
    pub fn corrupt_payload(self, rank: usize, phase: u32) -> Self {
        self.with_entry(rank, phase, FaultKind::CorruptPayload)
    }

    /// Panic `rank`'s body at `phase`.
    pub fn panic_rank(self, rank: usize, phase: u32) -> Self {
        self.with_entry(rank, phase, FaultKind::PanicRank)
    }

    /// Panic one pool worker task of `rank` at `phase`.
    pub fn panic_worker(self, rank: usize, phase: u32) -> Self {
        self.with_entry(rank, phase, FaultKind::PanicWorker)
    }

    /// Kill `rank` right after it ships its payload at collective
    /// `phase` (the orphaned-frame scenario; see
    /// [`FaultKind::KillMidSend`]).
    pub fn kill_mid_send(self, rank: usize, phase: u32) -> Self {
        self.with_entry(rank, phase, FaultKind::KillMidSend)
    }

    /// A deterministic random plan: every non-root rank rolls once per
    /// compute/collective phase; a roll below `rate` injects a fault
    /// whose kind is also drawn from the seed. Root (rank 0) is never
    /// faulted — the star's root is a single point of failure by
    /// construction (documented in DESIGN.md).
    pub fn random(seed: u64, ranks: usize, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for rank in 1..ranks {
            for &ph in phase::COMPUTE.iter().chain(phase::COLLECTIVE.iter()) {
                let roll = (next() >> 11) as f64 / (1u64 << 53) as f64;
                if roll >= rate {
                    continue;
                }
                let kind = match next() % 4 {
                    0 => FaultKind::Kill,
                    1 => FaultKind::Delay { virtual_s: 0.5, real_ms: 5 },
                    2 if phase::COLLECTIVE.contains(&ph) => FaultKind::DropPayload,
                    2 => FaultKind::PanicRank,
                    _ if phase::COLLECTIVE.contains(&ph) => FaultKind::CorruptPayload,
                    _ => FaultKind::Delay { virtual_s: 0.1, real_ms: 2 },
                };
                plan.entries.push(FaultEntry {
                    rank,
                    phase: ph,
                    kind,
                    fired: AtomicBool::new(false),
                });
            }
        }
        plan
    }

    fn fire(&self, rank: usize, phase: u32, exec: bool) -> Option<FaultKind> {
        for e in &self.entries {
            if e.rank == rank
                && e.phase == phase
                && e.kind.is_exec() == exec
                && e.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(e.kind);
            }
        }
        None
    }

    /// Consume the pending *execution* fault (kill / delay / panic) for
    /// `(rank, phase)`, if any. One-shot.
    pub fn fire_exec(&self, rank: usize, phase: u32) -> Option<FaultKind> {
        self.fire(rank, phase, true)
    }

    /// Consume the pending *payload* fault (drop / corrupt) for
    /// `(rank, phase)`, if any. One-shot.
    pub fn fire_payload(&self, rank: usize, phase: u32) -> Option<FaultKind> {
        self.fire(rank, phase, false)
    }
}

/// How a lost contribution may be regenerated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoverMode {
    /// Re-execute the lost rank's work with the same deterministic code
    /// over the same static partition — the result is bit-identical to
    /// what the lost rank would have produced.
    Exact,
    /// Approximate the lost contribution with the cheap far-field binned
    /// evaluation only (widened error bars; see `RunOutcome::Degraded`).
    Degraded,
}

/// Fault-tolerance knobs shared by all ranks of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtPolicy {
    /// How long the root waits on one rank's collective payload before
    /// declaring it dead (and how long members wait per protocol step,
    /// scaled by the communicator size).
    pub timeout: Duration,
    /// Extra recovery rounds allowed when an assignee itself fails
    /// (round 0 is the initial recovery attempt, not a retry).
    pub max_retries: u32,
    /// After retries are exhausted, allow one degraded (far-field-only)
    /// round before giving up.
    pub allow_degraded: bool,
}

impl Default for FtPolicy {
    fn default() -> Self {
        FtPolicy { timeout: Duration::from_secs(30), max_retries: 2, allow_degraded: true }
    }
}

impl FtPolicy {
    /// A short-timeout policy for tests.
    pub fn with_timeout(timeout: Duration) -> FtPolicy {
        FtPolicy { timeout, ..Default::default() }
    }
}

/// What a fault-tolerant collective had to do, reported to every
/// surviving participant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FtReport {
    /// Ranks known dead by the end of the collective.
    pub dead: Vec<usize>,
    /// Ranks whose contribution was re-executed exactly.
    pub recovered: Vec<usize>,
    /// Ranks whose contribution was approximated (far-field only).
    pub degraded: Vec<usize>,
    /// Recovery rounds the collective needed (0 = fault-free).
    pub retries: u32,
    /// OS exit statuses of dead worker processes, as captured by the
    /// process-transport supervisor ("killed by signal 9 (SIGKILL)",
    /// "exited with code 3", ...). Always empty on the in-process
    /// transport — the cross-transport bit-identity contract covers
    /// energies and outcome classification, not this diagnostic field.
    pub exits: Vec<(usize, String)>,
}

impl FtReport {
    /// Did the collective complete without touching the recovery path?
    pub fn clean(&self) -> bool {
        self.dead.is_empty() && self.recovered.is_empty() && self.degraded.is_empty()
    }

    /// Fold another collective's report into a running per-run summary.
    pub fn merge(&mut self, other: &FtReport) {
        for &r in &other.dead {
            if !self.dead.contains(&r) {
                self.dead.push(r);
            }
        }
        self.recovered.extend_from_slice(&other.recovered);
        for &r in &other.degraded {
            if !self.degraded.contains(&r) {
                self.degraded.push(r);
            }
        }
        self.retries += other.retries;
        for (r, status) in &other.exits {
            if !self.exits.iter().any(|(er, _)| er == r) {
                self.exits.push((*r, status.clone()));
            }
        }
    }

    /// Record a dead worker's OS exit status (process transport only);
    /// first status per rank wins.
    pub fn record_exit(&mut self, rank: usize, status: String) {
        if !self.exits.iter().any(|(r, _)| *r == rank) {
            self.exits.push((rank, status));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_and_clone_resets() {
        let plan = FaultPlan::new(7).kill(1, phase::INTEGRALS).delay(2, phase::PUSH, 0.5);
        assert_eq!(plan.fire_exec(1, phase::INTEGRALS), Some(FaultKind::Kill));
        assert_eq!(plan.fire_exec(1, phase::INTEGRALS), None, "one-shot");
        assert_eq!(plan.fire_exec(0, phase::INTEGRALS), None);
        assert!(matches!(plan.fire_exec(2, phase::PUSH), Some(FaultKind::Delay { .. })));
        let again = plan.clone();
        assert_eq!(again.fire_exec(1, phase::INTEGRALS), Some(FaultKind::Kill));
    }

    #[test]
    fn payload_and_exec_faults_are_disjoint() {
        let plan = FaultPlan::new(0).corrupt_payload(1, phase::REDUCE_INTEGRALS);
        assert_eq!(plan.fire_exec(1, phase::REDUCE_INTEGRALS), None);
        assert_eq!(
            plan.fire_payload(1, phase::REDUCE_INTEGRALS),
            Some(FaultKind::CorruptPayload)
        );
        assert_eq!(plan.fire_payload(1, phase::REDUCE_INTEGRALS), None);
    }

    #[test]
    fn random_plans_are_deterministic_and_spare_root() {
        let a = FaultPlan::random(42, 8, 0.5);
        let b = FaultPlan::random(42, 8, 0.5);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty(), "rate 0.5 over 7 ranks x 6 phases must hit");
        for ph in phase::COMPUTE.iter().chain(phase::COLLECTIVE.iter()) {
            assert_eq!(a.fire_exec(0, *ph), None, "root must never be faulted");
            assert_eq!(a.fire_payload(0, *ph), None);
        }
        // Same seed fires the same faults in the same order.
        for rank in 1..8 {
            for ph in phase::COMPUTE.iter().chain(phase::COLLECTIVE.iter()) {
                assert_eq!(a.fire_exec(rank, *ph), b.fire_exec(rank, *ph));
                assert_eq!(a.fire_payload(rank, *ph), b.fire_payload(rank, *ph));
            }
        }
    }

    #[test]
    fn zero_rate_random_plan_is_empty() {
        assert!(FaultPlan::random(3, 16, 0.0).is_empty());
    }

    #[test]
    fn report_merge_dedups_ranks_and_sums_retries() {
        let mut a = FtReport {
            dead: vec![1],
            recovered: vec![1],
            retries: 1,
            ..Default::default()
        };
        let b = FtReport {
            dead: vec![1, 2],
            recovered: vec![1],
            degraded: vec![2],
            retries: 2,
            exits: vec![(1, "killed by signal 9 (SIGKILL)".into())],
        };
        a.merge(&b);
        assert_eq!(a.dead, vec![1, 2]);
        assert_eq!(a.recovered, vec![1, 1], "recovery count keeps multiplicity");
        assert_eq!(a.degraded, vec![2]);
        assert_eq!(a.retries, 3);
        assert_eq!(a.exits, vec![(1, "killed by signal 9 (SIGKILL)".to_string())]);
        assert!(!a.clean());
        assert!(FtReport::default().clean());
    }

    #[test]
    fn kill_mid_send_is_a_payload_fault() {
        let plan = FaultPlan::new(0).kill_mid_send(1, phase::REDUCE_INTEGRALS);
        assert_eq!(plan.fire_exec(1, phase::REDUCE_INTEGRALS), None);
        assert_eq!(
            plan.fire_payload(1, phase::REDUCE_INTEGRALS),
            Some(FaultKind::KillMidSend)
        );
        assert_eq!(plan.fire_payload(1, phase::REDUCE_INTEGRALS), None, "one-shot");
    }

    #[test]
    fn record_exit_keeps_first_status_per_rank() {
        let mut r = FtReport::default();
        r.record_exit(2, "killed by signal 9 (SIGKILL)".into());
        r.record_exit(2, "exited with code 0".into());
        assert_eq!(r.exits.len(), 1);
        assert_eq!(r.exits[0].1, "killed by signal 9 (SIGKILL)");
    }
}
