//! Property tests: the simulated MPI collectives against serial oracles.

use polaroct_cluster::calib::KernelCosts;
use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
use polaroct_cluster::runner::run_spmd;
use proptest::prelude::*;

fn cluster(p: usize) -> ClusterSpec {
    ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_elementwise_sum(p in 1usize..9, len in 1usize..64, seed in 0u64..1000) {
        // Deterministic per-rank payloads derived from (rank, seed).
        let res = run_spmd(&cluster(p), KernelCosts::lonestar4_reference(), |ctx| {
            let mut clock = ctx.clock;
            let mut buf: Vec<f64> = (0..len)
                .map(|i| ((ctx.rank * 31 + i) as f64 + seed as f64).sin())
                .collect();
            ctx.comm.allreduce_sum(&mut buf, &mut clock);
            ctx.clock = clock;
            buf
        });
        // Oracle.
        let want: Vec<f64> = (0..len)
            .map(|i| (0..p).map(|r| (((r * 31 + i) as f64) + seed as f64).sin()).sum())
            .collect();
        for rank_buf in &res.per_rank {
            for (got, expect) in rank_buf.iter().zip(&want) {
                prop_assert!((got - expect).abs() < 1e-9 * expect.abs().max(1.0));
            }
        }
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order(p in 1usize..8, base in 1usize..10) {
        let res = run_spmd(&cluster(p), KernelCosts::lonestar4_reference(), |ctx| {
            let mut clock = ctx.clock;
            // Rank r contributes r+base elements valued 1000r + k.
            let mine: Vec<f64> =
                (0..ctx.rank + base).map(|k| (ctx.rank * 1000 + k) as f64).collect();
            let all = ctx.comm.allgatherv(&mine, &mut clock);
            ctx.clock = clock;
            all
        });
        let mut want = Vec::new();
        for r in 0..p {
            for k in 0..r + base {
                want.push((r * 1000 + k) as f64);
            }
        }
        for rank_buf in &res.per_rank {
            prop_assert_eq!(rank_buf, &want);
        }
    }

    #[test]
    fn reduce_scalar_sums_to_root(p in 1usize..10, x in -100.0f64..100.0) {
        let res = run_spmd(&cluster(p), KernelCosts::lonestar4_reference(), |ctx| {
            let mut clock = ctx.clock;
            let out = ctx.comm.reduce_sum_scalar(x, &mut clock);
            ctx.clock = clock;
            out
        });
        prop_assert!((res.per_rank[0].unwrap() - x * p as f64).abs() < 1e-9);
        for v in &res.per_rank[1..] {
            prop_assert!(v.is_none());
        }
    }

    #[test]
    fn collectives_leave_all_clocks_equal(p in 2usize..8, work_scale in 0.0f64..2.0) {
        let res = run_spmd(&cluster(p), KernelCosts::lonestar4_reference(), |ctx| {
            let mut clock = ctx.clock;
            clock.add_compute(ctx.rank as f64 * work_scale);
            ctx.comm.barrier(&mut clock);
            ctx.clock = clock;
        });
        let t0 = res.clocks[0].total();
        for c in &res.clocks {
            prop_assert!((c.total() - t0).abs() < 1e-12);
        }
        // The barrier exit time covers the slowest entrant.
        prop_assert!(t0 >= (p - 1) as f64 * work_scale - 1e-12);
    }
}
