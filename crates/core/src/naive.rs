//! Naïve exact reference implementations (Table II's "Naïve" row).
//!
//! * [`born_radii_naive`] — Eq. 4 summed over *every* quadrature point for
//!   every atom: `O(M·N)`.
//! * [`epol_naive`] — Eq. 2 over every ordered atom pair: `O(M²)`.
//!
//! These define "the naïve exact algorithm" the paper measures all errors
//! against ("less than 1% error w.r.t. the naïve exact algorithm"). They
//! share the Born-radius floor/clamp with the octree path so the two
//! differ *only* by the hierarchical approximation.

use crate::gb::inv_f_gb;
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::fastmath::MathMode;

/// Upper clamp for Born radii: an atom whose accumulated surface integral
/// vanishes (deeply buried / cancellation) gets a large-but-finite radius
/// instead of ±∞, mirroring what production GB codes do.
pub const BORN_RADIUS_MAX: f64 = 1_000.0;

/// Convert an accumulated r⁶ surface integral `s = Σ w (n·d)/|d|⁶` into a
/// Born radius: `R = (s/4π)^(−1/3)`, floored by the intrinsic radius and
/// clamped to [`BORN_RADIUS_MAX`] (Fig. 2's PUSH step, line 1).
#[inline]
pub fn born_radius_from_integral(s: f64, intrinsic: f64, math: MathMode) -> f64 {
    let four_pi = 4.0 * std::f64::consts::PI;
    if s <= 0.0 {
        return BORN_RADIUS_MAX;
    }
    let r = math.invcbrt(s / four_pi);
    r.clamp(intrinsic, BORN_RADIUS_MAX)
}

/// Batched [`born_radius_from_integral`] over parallel slices, with the
/// `invcbrt` routed through [`MathMode::invcbrt_slice`] so the Approx arm
/// vectorizes (Fig. 2's PUSH step finalization, lane-batched).
///
/// Bit-identical per element to the scalar function: the slice op applies
/// the same `invcbrt` to the same `s/4π`, and the `s ≤ 0` clamp is a
/// per-element select. Non-positive integrals get a benign placeholder
/// argument (1.0) so the batched `invcbrt` stays inside its positive
/// domain; the select then discards that lane's result.
pub fn born_radii_from_integrals(
    integrals: &[f64],
    intrinsic: &[f64],
    math: MathMode,
    out: &mut [f64],
) {
    use crate::soa::CHUNK;
    let n = integrals.len();
    // PANIC-OK: precondition assert — integral/intrinsic/out lengths must agree per atom.
    assert!(intrinsic.len() == n && out.len() == n);
    let four_pi = 4.0 * std::f64::consts::PI;
    let mut buf = [0.0f64; CHUNK];
    let mut base = 0;
    while base < n {
        let m = CHUNK.min(n - base);
        for k in 0..m {
            let s = integrals[base + k];
            buf[k] = if s <= 0.0 { 1.0 } else { s / four_pi };
        }
        math.invcbrt_slice(&mut buf[..m]);
        for k in 0..m {
            let s = integrals[base + k];
            out[base + k] = if s <= 0.0 {
                BORN_RADIUS_MAX
            } else {
                buf[k].clamp(intrinsic[base + k], BORN_RADIUS_MAX)
            };
        }
        base += m;
    }
}

/// Exact r⁶ Born radii over the full quadrature set. Returns radii in the
/// system's Morton atom order plus op counts.
pub fn born_radii_naive(sys: &GbSystem, math: MathMode) -> (Vec<f64>, OpCounts) {
    let m = sys.n_atoms();
    let n = sys.n_qpoints();
    let mut radii = Vec::with_capacity(m);
    for a in 0..m {
        let xa = sys.atoms.points[a];
        let mut s = 0.0;
        for k in 0..n {
            let d = sys.qtree.points[k] - xa;
            let d2 = d.norm2();
            let inv2 = 1.0 / d2;
            // w_k (n_k · d) / |d|^6
            s += sys.q_weight[k] * sys.q_normal[k].dot(d) * inv2 * inv2 * inv2;
        }
        radii.push(born_radius_from_integral(s, sys.radius[a], math));
    }
    let ops = OpCounts {
        born_near: (m * n) as u64,
        ..Default::default()
    };
    (radii, ops)
}

/// Exact r⁴ Born radii (Eq. 3) — the alternative approximation the paper
/// mentions; r⁶ "shows better accuracy for spherical solutes".
/// `1/R = (1/4π) Σ w (n·d)/|d|⁴  ⇒  R = 4π / s`.
pub fn born_radii_naive_r4(sys: &GbSystem, _math: MathMode) -> (Vec<f64>, OpCounts) {
    let m = sys.n_atoms();
    let n = sys.n_qpoints();
    let four_pi = 4.0 * std::f64::consts::PI;
    let mut radii = Vec::with_capacity(m);
    for a in 0..m {
        let xa = sys.atoms.points[a];
        let mut s = 0.0;
        for k in 0..n {
            let d = sys.qtree.points[k] - xa;
            let d2 = d.norm2();
            let inv2 = 1.0 / d2;
            s += sys.q_weight[k] * sys.q_normal[k].dot(d) * inv2 * inv2;
        }
        let r = if s <= 0.0 {
            BORN_RADIUS_MAX
        } else {
            four_pi / s
        };
        radii.push(r.clamp(sys.radius[a], BORN_RADIUS_MAX));
    }
    let ops = OpCounts {
        born_near: (m * n) as u64,
        ..Default::default()
    };
    (radii, ops)
}

/// Exact E_pol (Eq. 2 / Fig. 3 convention): returns the raw ordered-pair
/// sum `Σ_{i,j} q_i q_j / f_GB` (convert with
/// [`crate::gb::epol_from_raw_sum`]) and op counts.
pub fn epol_naive_raw(sys: &GbSystem, born: &[f64], math: MathMode) -> (f64, OpCounts) {
    let m = sys.n_atoms();
    // PANIC-OK: precondition assert — born must be per-atom; a mismatch is a caller bug.
    assert_eq!(born.len(), m);
    let mut raw = 0.0;
    for i in 0..m {
        let xi = sys.atoms.points[i];
        let (qi, ri) = (sys.charge[i], born[i]);
        // Self term (j == i).
        raw += qi * qi / ri;
        // Unordered pairs counted twice (the ordered-pair convention).
        let tail = (i + 1)..m;
        for ((&xj, &qj), &rj) in sys.atoms.points[tail.clone()]
            .iter()
            .zip(&sys.charge[tail.clone()])
            .zip(&born[tail])
        {
            let r2 = xi.dist2(xj);
            raw += 2.0 * qi * qj * inv_f_gb(r2, ri, rj, math);
        }
    }
    let ops = OpCounts {
        epol_near: (m * m) as u64,
        ..Default::default()
    };
    (raw, ops)
}

/// Convenience: exact E_pol in kcal/mol.
pub fn epol_naive(sys: &GbSystem, born: &[f64], math: MathMode, eps_solvent: f64) -> f64 {
    let (raw, _) = epol_naive_raw(sys, born, math);
    crate::gb::epol_from_raw_sum(raw, eps_solvent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gb::{born_ion_energy, epol_from_raw_sum};
    use crate::params::ApproxParams;
    use polaroct_geom::Vec3;
    use polaroct_molecule::{synth, Atom, Element, Molecule};
    use polaroct_surface::SurfaceParams;

    fn one_ion(r: f64, q: f64) -> GbSystem {
        let mol = Molecule::from_atoms(
            "ion",
            [Atom {
                pos: Vec3::new(1.0, -2.0, 0.5),
                radius: r,
                charge: q,
                element: Element::O,
            }],
        );
        let params = ApproxParams {
            surface: SurfaceParams {
                icosphere_level: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        GbSystem::prepare(&mol, &params)
    }

    #[test]
    fn isolated_atom_born_radius_is_its_radius() {
        // The divergence-theorem identity: over a full sphere of radius r,
        // s = (4πr²)(r/r⁶) = 4π/r³ ⇒ R = r exactly (weights normalized).
        for r in [1.2, 1.7, 2.5] {
            let sys = one_ion(r, 1.0);
            let (radii, ops) = born_radii_naive(&sys, MathMode::Exact);
            assert!((radii[0] - r).abs() < 1e-9, "r={r}: got {}", radii[0]);
            assert_eq!(ops.born_near as usize, sys.n_qpoints());
        }
    }

    #[test]
    fn isolated_atom_r4_also_recovers_radius() {
        let sys = one_ion(1.5, 1.0);
        let (radii, _) = born_radii_naive_r4(&sys, MathMode::Exact);
        assert!((radii[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn single_ion_energy_matches_born_equation() {
        let (r, q) = (2.0, -0.8);
        let sys = one_ion(r, q);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let e = epol_naive(&sys, &born, MathMode::Exact, 80.0);
        let want = born_ion_energy(q, r, 80.0);
        assert!((e - want).abs() < 1e-6, "{e} vs {want}");
    }

    #[test]
    fn two_distant_ions_energy_is_additive_plus_coulomb_screening() {
        // At 100 Å separation, f_GB ≈ r, so the cross term ≈ 2 q1 q2 / r.
        let mol = Molecule::from_atoms(
            "pair",
            [
                Atom {
                    pos: Vec3::ZERO,
                    radius: 1.5,
                    charge: 1.0,
                    element: Element::N,
                },
                Atom {
                    pos: Vec3::new(100.0, 0.0, 0.0),
                    radius: 1.5,
                    charge: -1.0,
                    element: Element::O,
                },
            ],
        );
        let params = ApproxParams {
            surface: SurfaceParams {
                icosphere_level: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let sys = GbSystem::prepare(&mol, &params);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        assert!((born[0] - 1.5).abs() < 1e-6);
        assert!((born[1] - 1.5).abs() < 1e-6);
        let (raw, ops) = epol_naive_raw(&sys, &born, MathMode::Exact);
        let (q0, q1) = (1.0, -1.0);
        let want = q0 * q0 / 1.5 + q1 * q1 / 1.5 + 2.0 * q0 * q1 / 100.0;
        assert!((raw - want).abs() < 1e-4, "{raw} vs {want}");
        assert_eq!(ops.epol_near, 4);
        // And the energy is negative (solvation stabilizes).
        assert!(epol_from_raw_sum(raw, 80.0) < 0.0);
    }

    #[test]
    fn buried_atoms_get_larger_born_radii() {
        // Central atom of a protein should be "deeper" than a surface one.
        let mol = synth::protein("p", 400, 11);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let centroid = {
            let mut c = Vec3::ZERO;
            for &p in &sys.atoms.points {
                c += p;
            }
            c / sys.n_atoms() as f64
        };
        // Correlate burial depth with Born radius: innermost quartile mean
        // must exceed outermost quartile mean.
        let mut by_depth: Vec<(f64, f64)> = sys
            .atoms
            .points
            .iter()
            .map(|p| p.dist(centroid))
            .zip(born.iter().copied())
            .collect();
        by_depth.sort_by(|a, b| a.0.total_cmp(&b.0));
        let q = by_depth.len() / 4;
        let inner: f64 = by_depth[..q].iter().map(|x| x.1).sum::<f64>() / q as f64;
        let outer: f64 = by_depth[by_depth.len() - q..]
            .iter()
            .map(|x| x.1)
            .sum::<f64>()
            / q as f64;
        assert!(inner > outer, "buried {inner} <= surface {outer}");
    }

    #[test]
    fn born_radius_floor_and_clamp() {
        assert_eq!(
            born_radius_from_integral(-1.0, 1.5, MathMode::Exact),
            BORN_RADIUS_MAX
        );
        assert_eq!(
            born_radius_from_integral(0.0, 1.5, MathMode::Exact),
            BORN_RADIUS_MAX
        );
        // Huge integral => tiny radius => floored at intrinsic.
        assert_eq!(born_radius_from_integral(1e12, 1.5, MathMode::Exact), 1.5);
    }

    #[test]
    fn batched_finalization_matches_scalar_bitwise() {
        // Sweep lengths across the chunk boundary plus the special lanes:
        // negative, zero, clamp-to-intrinsic, clamp-to-max.
        let specials = [-3.0, 0.0, 1e12, 1e-12, 0.7, 12.566, 4.0 * std::f64::consts::PI];
        for n in [0usize, 1, 5, 63, 64, 65, 200] {
            let integrals: Vec<f64> =
                (0..n).map(|i| specials[i % specials.len()] * (1.0 + i as f64 * 0.01)).collect();
            let intrinsic: Vec<f64> = (0..n).map(|i| 1.0 + 0.01 * i as f64).collect();
            for math in [MathMode::Exact, MathMode::Approx] {
                let mut batched = vec![0.0; n];
                born_radii_from_integrals(&integrals, &intrinsic, math, &mut batched);
                for i in 0..n {
                    let scalar = born_radius_from_integral(integrals[i], intrinsic[i], math);
                    assert_eq!(
                        batched[i].to_bits(),
                        scalar.to_bits(),
                        "i={i} n={n} {math:?}: {} vs {scalar}",
                        batched[i]
                    );
                }
            }
        }
    }

    #[test]
    fn approx_math_changes_little() {
        let mol = synth::protein("p", 150, 5);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (b_exact, _) = born_radii_naive(&sys, MathMode::Exact);
        let (b_approx, _) = born_radii_naive(&sys, MathMode::Approx);
        for (e, a) in b_exact.iter().zip(&b_approx) {
            assert!(((e - a) / e).abs() < 1e-6);
        }
        let e1 = epol_naive(&sys, &b_exact, MathMode::Exact, 80.0);
        let e2 = epol_naive(&sys, &b_exact, MathMode::Approx, 80.0);
        assert!(((e1 - e2) / e1).abs() < 1e-5);
    }
}
