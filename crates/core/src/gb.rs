//! The Generalized Born model (STILL flavor — Table II lists STILL as the
//! GB model of all four octree implementations and of Tinker/GBr⁶).

use polaroct_geom::fastmath::MathMode;

/// Coulomb's constant in kcal·Å/(mol·e²): converts `q_i q_j / r` with
/// charges in elementary charges and distances in Å to kcal/mol.
pub const COULOMB_KCAL: f64 = 332.063_71;

/// Default solvent dielectric (water).
pub const EPS_WATER: f64 = 80.0;

/// `τ = 1 − 1/ε_solv`, the dielectric prefactor of Eq. 2.
#[inline]
pub fn tau(eps_solvent: f64) -> f64 {
    // PANIC-OK: precondition assert — a vacuum-or-below dielectric is a configuration bug.
    assert!(eps_solvent > 1.0, "solvent dielectric must exceed vacuum");
    1.0 - 1.0 / eps_solvent
}

/// The Still et al. (1990) GB interaction kernel
/// `f_GB = sqrt(r² + R_i R_j · exp(−r² / (4 R_i R_j)))`.
///
/// `r2` is the *squared* distance; `ri`/`rj` are Born radii. At `r = 0`
/// this reduces to `sqrt(R_i R_j)` — the self-energy denominator.
#[inline]
pub fn f_gb(r2: f64, ri: f64, rj: f64, math: MathMode) -> f64 {
    let rr = ri * rj;
    let inner = r2 + rr * math.exp(-r2 / (4.0 * rr));
    inner * math.rsqrt(inner) // == sqrt(inner), one rsqrt either mode
}

/// `1 / f_GB` — what the energy sum actually needs (saves a divide).
#[inline]
pub fn inv_f_gb(r2: f64, ri: f64, rj: f64, math: MathMode) -> f64 {
    let rr = ri * rj;
    let inner = r2 + rr * math.exp(-r2 / (4.0 * rr));
    math.rsqrt(inner)
}

/// Convert a raw ordered-pair sum `Σ q_i q_j / f_GB` into the polarization
/// energy in kcal/mol: `E = −(τ/2) · k_coul · Σ`.
#[inline]
pub fn epol_from_raw_sum(raw: f64, eps_solvent: f64) -> f64 {
    -0.5 * tau(eps_solvent) * COULOMB_KCAL * raw
}

/// Closed-form `E_pol` for a single ion of charge `q` and Born radius `R`
/// (the Born equation) — an analytic oracle for tests.
pub fn born_ion_energy(q: f64, radius: f64, eps_solvent: f64) -> f64 {
    epol_from_raw_sum(q * q / radius, eps_solvent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_of_water() {
        assert!((tau(80.0) - 0.9875).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn tau_rejects_vacuum() {
        let _ = tau(1.0);
    }

    #[test]
    fn f_gb_at_zero_distance_is_geometric_mean() {
        let f = f_gb(0.0, 2.0, 8.0, MathMode::Exact);
        assert!((f - 4.0).abs() < 1e-12);
    }

    #[test]
    fn f_gb_approaches_r_at_large_distance() {
        let r = 100.0;
        let f = f_gb(r * r, 2.0, 2.0, MathMode::Exact);
        assert!((f - r).abs() / r < 1e-6);
    }

    #[test]
    fn f_gb_is_monotone_in_distance() {
        let mut last = 0.0;
        for k in 0..50 {
            let r = k as f64 * 0.5;
            let f = f_gb(r * r, 1.5, 2.5, MathMode::Exact);
            assert!(f >= last);
            last = f;
        }
    }

    #[test]
    fn inv_f_gb_consistent_with_f_gb() {
        for &(r2, ri, rj) in &[(0.0, 1.0, 1.0), (4.0, 1.5, 2.0), (100.0, 3.0, 0.5)] {
            let f = f_gb(r2, ri, rj, MathMode::Exact);
            let inv = inv_f_gb(r2, ri, rj, MathMode::Exact);
            assert!((f * inv - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn approx_math_close_to_exact() {
        for &(r2, ri, rj) in &[(1.0, 1.2, 1.2), (25.0, 2.0, 4.0), (400.0, 1.5, 1.5)] {
            let e = inv_f_gb(r2, ri, rj, MathMode::Exact);
            let a = inv_f_gb(r2, ri, rj, MathMode::Approx);
            assert!(((e - a) / e).abs() < 1e-6, "r2={r2}");
        }
    }

    #[test]
    fn born_ion_matches_born_equation() {
        // Born: ΔG = −(1/2)(1 − 1/ε) q²/a · k. For q=1, a=2 Å, ε=80:
        let e = born_ion_energy(1.0, 2.0, 80.0);
        let expect = -0.5 * 0.9875 * COULOMB_KCAL / 2.0;
        assert!((e - expect).abs() < 1e-9);
        assert!(e < 0.0, "polarization energy is negative");
    }

    #[test]
    fn epol_sign_convention() {
        // A positive raw sum (dominated by self terms) gives negative E.
        assert!(epol_from_raw_sum(10.0, 80.0) < 0.0);
        assert_eq!(epol_from_raw_sum(0.0, 80.0), 0.0);
    }
}
