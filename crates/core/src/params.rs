//! Tunable approximation parameters.
//!
//! The paper's headline knob: "increasing ε gives better speedup while
//! sacrificing accuracy in results more and vice-versa", with the default
//! evaluation configuration ε_Born = ε_Epol = 0.9 (§V.C) and the Fig. 10
//! sweep varying ε_Epol over 0.1..0.9. The space usage is *independent* of
//! these parameters (octrees, unlike nblists, don't grow with the
//! effective interaction range).

use polaroct_geom::fastmath::MathMode;
use polaroct_surface::SurfaceParams;

/// Full parameter set for a GB-energy run.
#[derive(Clone, Copy, Debug)]
pub struct ApproxParams {
    /// Born-radius approximation parameter (Fig. 2's ε). Paper default 0.9.
    pub eps_born: f64,
    /// E_pol approximation parameter (Fig. 3's ε). Paper default 0.9.
    pub eps_epol: f64,
    /// Exact or approximate math (§V.C/§V.E toggle).
    pub math: MathMode,
    /// Atoms-octree leaf capacity.
    pub leaf_cap_atoms: usize,
    /// Quadrature-points-octree leaf capacity.
    pub leaf_cap_qpoints: usize,
    /// Surface sampling configuration.
    pub surface: SurfaceParams,
    /// Solvent dielectric constant (water = 80).
    pub eps_solvent: f64,
}

impl Default for ApproxParams {
    fn default() -> Self {
        ApproxParams {
            eps_born: 0.9,
            eps_epol: 0.9,
            math: MathMode::Exact,
            leaf_cap_atoms: 32,
            leaf_cap_qpoints: 64,
            surface: SurfaceParams::default(),
            eps_solvent: crate::gb::EPS_WATER,
        }
    }
}

impl ApproxParams {
    /// Builder-style ε setters (the Fig. 10 sweep uses these).
    pub fn with_eps(mut self, eps_born: f64, eps_epol: f64) -> Self {
        assert!(eps_born > 0.0 && eps_epol > 0.0, "ε must be positive");
        self.eps_born = eps_born;
        self.eps_epol = eps_epol;
        self
    }

    pub fn with_math(mut self, math: MathMode) -> Self {
        self.math = math;
        self
    }

    /// The Fig. 2 far-field threshold multiplier: nodes are far when
    /// `r_AQ > (r_A + r_Q) · (θ+1)/(θ−1)`.
    ///
    /// The paper's prose uses `θ = (1+ε)^{1/6}` — a *pointwise* bound on
    /// the `1/r⁶` kernel that yields a separation factor of ~18.7 at
    /// ε = 0.9, under which the far field would essentially never trigger
    /// at protein scale (and the measured CMV timings in §V.F would be
    /// impossible). Because the pseudo-particle sits at the cluster
    /// centroid, the first-order error cancels and the *aggregate* error
    /// is O((s/r)²); `θ = 1+ε` (separation ~3.2 at ε = 0.9) reproduces
    /// both the paper's <1% error and its measured work. We default to
    /// the practical rule; `born_mac_multiplier_conservative` exposes the
    /// prose version. See DESIGN.md "Pseudocode erratum we fix".
    pub fn born_mac_multiplier(&self) -> f64 {
        let theta = 1.0 + self.eps_born;
        (theta + 1.0) / (theta - 1.0)
    }

    /// The literal §II threshold with `θ = (1+ε)^{1/6}` (very
    /// conservative; kept for comparison).
    pub fn born_mac_multiplier_conservative(&self) -> f64 {
        let theta = (1.0 + self.eps_born).powf(1.0 / 6.0);
        (theta + 1.0) / (theta - 1.0)
    }

    /// The Fig. 3 far-field threshold multiplier: `1 + 2/ε`.
    pub fn epol_mac_multiplier(&self) -> f64 {
        1.0 + 2.0 / self.eps_epol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = ApproxParams::default();
        assert_eq!(p.eps_born, 0.9);
        assert_eq!(p.eps_epol, 0.9);
        assert_eq!(p.math, MathMode::Exact);
        assert_eq!(p.eps_solvent, 80.0);
    }

    #[test]
    fn born_mac_multiplier_at_09() {
        // Practical rule: θ = 1.9 ⇒ (θ+1)/(θ−1) ≈ 3.22.
        let m = ApproxParams::default().born_mac_multiplier();
        assert!((m - 3.222).abs() < 0.01, "multiplier {m}");
        // Conservative (prose) rule: θ = 1.9^(1/6) ⇒ ≈ 18.71.
        let c = ApproxParams::default().born_mac_multiplier_conservative();
        assert!((c - 18.71).abs() < 0.05, "conservative {c}");
    }

    #[test]
    fn epol_mac_multiplier_at_09() {
        let m = ApproxParams::default().epol_mac_multiplier();
        assert!((m - (1.0 + 2.0 / 0.9)).abs() < 1e-12);
    }

    #[test]
    fn smaller_eps_means_stricter_mac() {
        let loose = ApproxParams::default().with_eps(0.9, 0.9);
        let tight = ApproxParams::default().with_eps(0.1, 0.1);
        assert!(tight.born_mac_multiplier() > loose.born_mac_multiplier());
        assert!(tight.epol_mac_multiplier() > loose.epol_mac_multiplier());
    }

    #[test]
    #[should_panic]
    fn zero_eps_rejected() {
        let _ = ApproxParams::default().with_eps(0.0, 0.9);
    }
}
