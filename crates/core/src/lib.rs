//! # polaroct-core
//!
//! The paper's contribution: octree-based approximation of Generalized
//! Born (GB) polarization energy, with serial, shared-memory (`OCT_CILK`),
//! distributed (`OCT_MPI`) and hybrid (`OCT_MPI+CILK`) drivers.
//!
//! ## Pipeline
//!
//! 1. [`system::GbSystem::prepare`] — sample the molecular surface
//!    (`polaroct-surface`), build the atoms octree `T_A` and the
//!    quadrature-points octree `T_Q` (`polaroct-octree`), and permute all
//!    per-point payloads into Morton order.
//! 2. [`born`] — `APPROX-INTEGRALS` (Fig. 2): for each leaf `Q` of `T_Q`,
//!    traverse `T_A` accumulating the r⁶ surface integral at
//!    well-separated nodes (pseudo-particle approximation) or exactly at
//!    leaf pairs; then `PUSH-INTEGRALS-TO-ATOMS` flushes ancestor partial
//!    sums down and converts to Born radii
//!    `R_a = max(r_a, ((s_a+s+s_A)/4π)^(−1/3))`.
//! 3. [`epol`] — `APPROX-E_pol` (Fig. 3): bin each node's charge by Born
//!    radius (`q_U[k]`), then for each leaf `V` of `T_A` traverse `T_A`,
//!    using the binned far-field formula for well-separated pairs and the
//!    exact STILL pairwise form otherwise.
//! 4. [`drivers`] — the four execution models of Table II, including the
//!    Fig. 4 distributed algorithm (static node-based work division +
//!    `MPI_Allreduce`/`Allgatherv`/`Reduce` between phases) over the
//!    simulated cluster from `polaroct-cluster`.
//!
//! ## Conventions
//!
//! * Distances in Å, charges in elementary charges, energies in kcal/mol
//!   (the paper's Fig. 9/11 unit), via [`gb::COULOMB_KCAL`].
//! * `E_pol = −(τ/2) Σ_{i,j} q_i q_j / f_GB(r_ij, R_i, R_j)` over *ordered*
//!   pairs including `i = j` (the self-energy `q_i²/R_i` terms), with
//!   `τ = 1 − 1/ε_solv` — exactly Fig. 3's convention.
//! * The Fig. 2 far-field acceptance test is implemented per the Section
//!   II prose (see DESIGN.md "Pseudocode erratum we fix").

#![forbid(unsafe_code)]

pub mod born;
pub mod born_r4;
pub mod data_dist;
pub mod delta;
pub mod drivers;
pub mod dual;
pub mod epol;
pub mod error;
pub mod forces;
pub mod gb;
pub mod lists;
pub mod md;
pub mod naive;
pub mod params;
pub mod procexec;
pub mod soa;
pub mod steal;
pub mod system;
pub mod workdiv;

pub use drivers::{
    fork_join_makespan, run_naive, run_oct_cilk, run_oct_hybrid, run_oct_hybrid_ft, run_oct_mpi,
    run_oct_mpi_ft, run_oct_threads, run_oct_threads_ft, run_oct_threads_mol, run_serial,
    run_serial_mol, validate_system, DriverError,
    FtConfig, PhaseTimes, RecoveryMode, RunOutcome, RunReport, EPS_DEGRADED,
};
pub use delta::{DeltaEngine, DeltaEval, DeltaParams, Granularity, Perturbation};
pub use error::{energy_error_pct, ErrorStats};
pub use gb::{f_gb, COULOMB_KCAL};
pub use lists::{BornLists, EngineEval, EpolLists, ListEngine, ListEntry, LIST_CHUNKS};
pub use params::ApproxParams;
#[cfg(unix)]
pub use procexec::run_oct_mpi_proc_ft;
pub use procexec::maybe_worker;
pub use system::GbSystem;
pub use workdiv::WorkDivision;
