//! `APPROX-E_pol` (Fig. 3): Born-radius charge binning + leaf-vs-tree
//! traversal.
//!
//! After the Born phase, every atom has a radius `R_a ∈ [R_min, R_max]`.
//! Radii are binned geometrically: bin `k` covers
//! `[R_min(1+ε)^k, R_min(1+ε)^{k+1})`, `M_ε = ⌈log_{1+ε}(R_max/R_min)⌉`
//! bins in total. Every atoms-tree node `U` stores
//! `q_U[k] = Σ_{u∈U, R_u ∈ bin k} q_u`.
//!
//! For a leaf `V` and node `U`:
//! * **leaf `U`**: exact `Σ_{u,v} q_u q_v / f_GB(r_uv², R_u, R_v)`;
//! * **far** (`r_UV > (r_U + r_V)(1 + 2/ε)`): the binned approximation
//!   `Σ_{i,j} q_U[i] q_V[j] / f_GB(r_UV², ·)` with `R_u R_v ≈
//!   R_min²(1+ε)^{i+j}`;
//! * otherwise recurse into `U`'s children.
//!
//! All functions return the **raw** ordered-pair sum; drivers convert via
//! [`crate::gb::epol_from_raw_sum`].

use crate::soa::{AtomView, StillScratch};
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::fastmath::MathMode;
use polaroct_octree::NodeId;
use std::ops::Range;

/// Per-node binned charges.
#[derive(Clone, Debug, Default)]
pub struct ChargeBins {
    /// Number of radius bins `M_ε` (≥ 1).
    pub m_eps: usize,
    /// Smallest Born radius.
    pub r_min: f64,
    /// `1/ln(1+ε)` — cached for bin lookup.
    inv_log1e: f64,
    /// `per_node[id * m_eps + k]` = `q_U[k]` for node `id`.
    pub per_node: Vec<f64>,
    /// `R_min²(1+ε)^s` for `s` in `0..2·M_ε−1` — the pair-product table.
    pub rr_table: Vec<f64>,
    /// Per-atom bin index (Morton order).
    pub atom_bin: Vec<u16>,
}

impl ChargeBins {
    /// Bin the atoms' charges by Born radius and roll up per node.
    pub fn build(sys: &GbSystem, born: &[f64], eps_epol: f64) -> ChargeBins {
        // PANIC-OK: precondition assert — born must be per-atom; a mismatch is a caller bug.
        assert_eq!(born.len(), sys.n_atoms());
        // PANIC-OK: precondition assert — non-finite Born radii mean the upstream solve already failed.
        assert!(eps_epol > 0.0);
        let r_min = born.iter().cloned().fold(f64::INFINITY, f64::min);
        let r_max = born.iter().cloned().fold(0.0f64, f64::max);
        // PANIC-OK: precondition assert — non-physical dielectric is a configuration bug.
        assert!(r_min > 0.0, "non-positive Born radius");
        let log1e = (1.0 + eps_epol).ln();
        let inv_log1e = 1.0 / log1e;
        // Cap the bin count: for pathologically small ε the MAC
        // (1 + 2/ε) already forces exact evaluation everywhere, so the
        // (never-consulted) bin table must not be allowed to explode.
        const MAX_BINS: usize = 1024;
        let m_eps = if r_max <= r_min {
            1
        } else {
            (((r_max / r_min).ln() * inv_log1e).floor() as usize + 1).min(MAX_BINS)
        };

        let atom_bin: Vec<u16> = born
            .iter()
            .map(|&r| {
                let k = ((r / r_min).ln() * inv_log1e).floor();
                (k.max(0.0) as usize).min(m_eps - 1) as u16
            })
            .collect();

        // Per-node sums: direct range sums (Σ node sizes = O(M log M)).
        let mut per_node = vec![0.0; sys.atoms.nodes.len() * m_eps];
        for (id, node) in sys.atoms.nodes.iter().enumerate() {
            let base = id * m_eps;
            for i in node.range() {
                per_node[base + atom_bin[i] as usize] += sys.charge[i];
            }
        }

        // `R_min²(1+ε)^s` by running product — one multiply per entry
        // instead of an O(log s) `powi` each.
        let mut rr_table = Vec::with_capacity((2 * m_eps).max(1));
        let mut rr = r_min * r_min;
        for _ in 0..(2 * m_eps).max(1) {
            rr_table.push(rr);
            rr *= 1.0 + eps_epol;
        }

        ChargeBins {
            m_eps,
            r_min,
            inv_log1e,
            per_node,
            rr_table,
            atom_bin,
        }
    }

    /// Bin index a Born radius falls into.
    #[inline]
    pub fn bin_of(&self, r: f64) -> usize {
        let k = ((r / self.r_min).ln() * self.inv_log1e).floor();
        (k.max(0.0) as usize).min(self.m_eps - 1)
    }

    /// `q_U[·]` slice for a node.
    #[inline]
    pub fn of(&self, id: NodeId) -> &[f64] {
        &self.per_node[id as usize * self.m_eps..(id as usize + 1) * self.m_eps]
    }

    /// Heap bytes (the binning's memory is O(nodes · M_ε), still
    /// ε-independent in the paper's sense: it does not grow with the
    /// interaction range). Capacity-based like the other accountings.
    pub fn memory_bytes(&self) -> usize {
        self.per_node.capacity() * 8 + self.rr_table.capacity() * 8 + self.atom_bin.capacity() * 2
    }
}

/// Raw E_pol contribution of leaf `V` against the whole atoms tree
/// (Fig. 4 Step 6 assigns each rank a segment of such leaves). The leaf's
/// SoA image is a zero-copy slice of the persistent atom arena — no
/// gather, no scratch buffer.
pub fn approx_epol_leaf(
    sys: &GbSystem,
    bins: &ChargeBins,
    born: &[f64],
    v_leaf: NodeId,
    eps_epol: f64,
    math: MathMode,
) -> (f64, OpCounts) {
    let mut ops = OpCounts::default();
    let mac = 1.0 + 2.0 / eps_epol;
    let v = VLeafView::whole(sys, bins, born, v_leaf);
    let mut scratch = StillScratch::default();
    let raw = epol_recurse(sys, bins, born, 0, &v, mac, math, &mut scratch, &mut ops);
    (raw, ops)
}

/// Raw E_pol of the atoms `clip ∩ V` against the whole tree — the
/// atom-based work division (§IV.A), whose error drifts with the division
/// boundaries because partial leaves get partial bin sums.
pub fn approx_epol_leaf_clipped(
    sys: &GbSystem,
    bins: &ChargeBins,
    born: &[f64],
    v_leaf: NodeId,
    clip: &Range<usize>,
    eps_epol: f64,
    math: MathMode,
) -> (f64, OpCounts) {
    let mut ops = OpCounts::default();
    let mac = 1.0 + 2.0 / eps_epol;
    match VLeafView::clipped(sys, bins, born, v_leaf, clip) {
        Some(v) => {
            let mut scratch = StillScratch::default();
            let raw = epol_recurse(sys, bins, born, 0, &v, mac, math, &mut scratch, &mut ops);
            (raw, ops)
        }
        None => (0.0, ops),
    }
}

/// A (possibly clipped) target leaf with its bin sums and the flat SoA
/// view of its atoms (positions, charges, Born radii) for the exact
/// kernel. Both whole and clipped ranges are contiguous in Morton order,
/// so the view is always a plain arena slice.
struct VLeafView<'a> {
    center: polaroct_geom::Vec3,
    radius: f64,
    range: Range<usize>,
    /// `q_V[k]`; borrowed for whole leaves, recomputed for clipped ones.
    bins: Vec<f64>,
    view: AtomView<'a>,
}

impl<'a> VLeafView<'a> {
    fn whole(
        sys: &'a GbSystem,
        bins: &ChargeBins,
        born: &'a [f64],
        leaf: NodeId,
    ) -> VLeafView<'a> {
        let n = sys.atoms.node(leaf);
        VLeafView {
            center: n.center,
            radius: n.radius,
            range: n.range(),
            bins: bins.of(leaf).to_vec(),
            view: sys.atom_arena.view(born, n.range()),
        }
    }

    fn clipped(
        sys: &'a GbSystem,
        bins: &ChargeBins,
        born: &'a [f64],
        leaf: NodeId,
        clip: &Range<usize>,
    ) -> Option<VLeafView<'a>> {
        let n = sys.atoms.node(leaf);
        let lo = n.range().start.max(clip.start);
        let hi = n.range().end.min(clip.end);
        if lo >= hi {
            return None;
        }
        if lo == n.range().start && hi == n.range().end {
            return Some(VLeafView::whole(sys, bins, born, leaf));
        }
        let mut c = polaroct_geom::Vec3::ZERO;
        for i in lo..hi {
            c += sys.atoms.points[i];
        }
        c = c / (hi - lo) as f64;
        let mut r2: f64 = 0.0;
        let mut qv = vec![0.0; bins.m_eps];
        for i in lo..hi {
            r2 = r2.max(c.dist2(sys.atoms.points[i]));
            qv[bins.atom_bin[i] as usize] += sys.charge[i];
        }
        Some(VLeafView {
            center: c,
            radius: r2.sqrt(),
            range: lo..hi,
            bins: qv,
            view: sys.atom_arena.view(born, lo..hi),
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn epol_recurse(
    sys: &GbSystem,
    bins: &ChargeBins,
    born: &[f64],
    u_id: NodeId,
    v: &VLeafView,
    mac: f64,
    math: MathMode,
    scratch: &mut StillScratch,
    ops: &mut OpCounts,
) -> f64 {
    let u = sys.atoms.node(u_id);
    ops.nodes_visited += 1;

    if u.is_leaf() {
        // Exact leaf-leaf block (includes u == v self terms when the
        // ranges overlap — exactly the ordered-pair semantics of Eq. 2),
        // via the block-form lane-batched SoA STILL kernel over `v`'s
        // arena slice.
        let raw = sys.still_block_raw(born, u.range(), v.view, math, scratch);
        ops.epol_near += (u.len() * v.range.len()) as u64;
        return raw;
    }

    let r2 = u.center.dist2(v.center);
    let sep = (u.radius + v.radius) * mac;
    if r2 > sep * sep {
        // Far: binned pseudo-charge interaction.
        let qu = bins.of(u_id);
        let mut raw = 0.0;
        let mut pairs = 0u64;
        for (i, &qi) in qu.iter().enumerate() {
            if qi == 0.0 {
                continue;
            }
            for (j, &qj) in v.bins.iter().enumerate() {
                if qj == 0.0 {
                    continue;
                }
                let rr = bins.rr_table[i + j];
                let inner = r2 + rr * math.exp(-r2 / (4.0 * rr));
                raw += qi * qj * math.rsqrt(inner);
                pairs += 1;
            }
        }
        ops.epol_far += pairs;
        return raw;
    }

    let mut raw = 0.0;
    for c in u.children() {
        raw += epol_recurse(sys, bins, born, c, v, mac, math, scratch, ops);
    }
    raw
}

/// Whole-molecule raw E_pol via the octree approximation (single
/// process): every atoms-tree leaf against the whole tree.
pub fn epol_octree_raw(
    sys: &GbSystem,
    bins: &ChargeBins,
    born: &[f64],
    eps_epol: f64,
    math: MathMode,
) -> (f64, OpCounts) {
    let mut raw = 0.0;
    let mut ops = OpCounts::default();
    for &v in &sys.atoms.leaf_ids {
        let (r, o) = approx_epol_leaf(sys, bins, born, v, eps_epol, math);
        raw += r;
        ops.add(&o);
    }
    (raw, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{born_radii_naive, epol_naive_raw};
    use crate::params::ApproxParams;
    use polaroct_molecule::synth;

    fn sys_and_born(n: usize, seed: u64) -> (GbSystem, Vec<f64>) {
        let mol = synth::protein("p", n, seed);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, polaroct_geom::fastmath::MathMode::Exact);
        (sys, born)
    }

    #[test]
    fn bins_conserve_charge() {
        let (sys, born) = sys_and_born(300, 3);
        let bins = ChargeBins::build(&sys, &born, 0.9);
        // Root bins sum to the molecule's net charge (≈0 for generated
        // proteins, so compare against the direct sum instead).
        let direct: f64 = sys.charge.iter().sum();
        let rooted: f64 = bins.of(0).iter().sum();
        assert!((direct - rooted).abs() < 1e-9);
        // Each node's bins equal the sum of its children's bins.
        for (id, node) in sys.atoms.nodes.iter().enumerate() {
            if node.is_leaf() {
                continue;
            }
            for k in 0..bins.m_eps {
                let kid_sum: f64 = node.children().map(|c| bins.of(c)[k]).sum();
                assert!(
                    (bins.of(id as u32)[k] - kid_sum).abs() < 1e-9,
                    "node {id} bin {k}"
                );
            }
        }
    }

    #[test]
    fn atom_bins_bracket_their_radius() {
        let (sys, born) = sys_and_born(200, 7);
        let eps = 0.9;
        let bins = ChargeBins::build(&sys, &born, eps);
        for (i, &b) in bins.atom_bin.iter().enumerate() {
            let lo = bins.r_min * (1.0 + eps).powi(b as i32);
            let hi = bins.r_min * (1.0 + eps).powi(b as i32 + 1);
            let r = born[i];
            assert!(
                r >= lo - 1e-9 && (r < hi + 1e-9 || b as usize == bins.m_eps - 1),
                "atom {i}: R={r} not in bin {b} [{lo},{hi})"
            );
        }
    }

    #[test]
    fn octree_epol_matches_naive_within_one_percent() {
        let (sys, born) = sys_and_born(500, 11);
        let math = polaroct_geom::fastmath::MathMode::Exact;
        let (naive_raw, _) = epol_naive_raw(&sys, &born, math);
        let bins = ChargeBins::build(&sys, &born, 0.9);
        let (raw, ops) = epol_octree_raw(&sys, &bins, &born, 0.9, math);
        let err = ((raw - naive_raw) / naive_raw).abs();
        assert!(err < 0.01, "E_pol error {err}");
        assert!(ops.epol_near > 0);
    }

    #[test]
    fn error_decreases_with_eps() {
        let (sys, born) = sys_and_born(400, 5);
        let math = polaroct_geom::fastmath::MathMode::Exact;
        let (naive_raw, _) = epol_naive_raw(&sys, &born, math);
        let err = |eps: f64| {
            let bins = ChargeBins::build(&sys, &born, eps);
            let (raw, _) = epol_octree_raw(&sys, &bins, &born, eps, math);
            ((raw - naive_raw) / naive_raw).abs()
        };
        assert!(
            err(0.1) <= err(0.9) + 1e-12,
            "ε=0.1 must not be worse than ε=0.9"
        );
    }

    #[test]
    fn work_decreases_with_eps() {
        let (sys, born) = sys_and_born(400, 5);
        let math = polaroct_geom::fastmath::MathMode::Exact;
        let near = |eps: f64| {
            let bins = ChargeBins::build(&sys, &born, eps);
            epol_octree_raw(&sys, &bins, &born, eps, math).1.epol_near
        };
        assert!(near(0.9) <= near(0.1), "looser ε must do less exact work");
    }

    #[test]
    fn leaf_sums_partition_total() {
        // Summing per-leaf contributions over a leaf partition equals the
        // whole sum (Step 6/7 identity).
        let (sys, born) = sys_and_born(350, 13);
        let math = polaroct_geom::fastmath::MathMode::Exact;
        let bins = ChargeBins::build(&sys, &born, 0.9);
        let (total, _) = epol_octree_raw(&sys, &bins, &born, 0.9, math);
        let ranges = sys.atoms.partition_leaves(4);
        let mut sum = 0.0;
        for r in ranges {
            for &v in &sys.atoms.leaf_ids[r] {
                sum += approx_epol_leaf(&sys, &bins, &born, v, 0.9, math).0;
            }
        }
        assert!((total - sum).abs() < 1e-9 * total.abs().max(1.0));
    }

    #[test]
    fn bin_of_round_trips_at_bin_boundaries() {
        let (sys, _) = sys_and_born(100, 2);
        // Synthetic radii spanning several bins.
        let born: Vec<f64> = (0..sys.n_atoms()).map(|i| 1.0 + 0.05 * i as f64).collect();
        let eps = 0.3;
        let bins = ChargeBins::build(&sys, &born, eps);
        assert!(bins.m_eps > 3, "need several bins for a boundary test");
        // The running-product table matches the closed form.
        for (s, &rr) in bins.rr_table.iter().enumerate() {
            let direct = bins.r_min * bins.r_min * (1.0 + eps).powi(s as i32);
            assert!(((rr - direct) / direct).abs() < 1e-12, "rr_table[{s}]");
        }
        for k in 0..bins.m_eps {
            let edge = bins.r_min * (1.0 + eps).powi(k as i32);
            // Just inside bin k's lower edge → k; just below it → k−1
            // (clamped at 0); the geometric midpoint → k.
            assert_eq!(bins.bin_of(edge * (1.0 + 1e-9)), k, "above edge {k}");
            assert_eq!(
                bins.bin_of(edge * (1.0 - 1e-9)),
                k.saturating_sub(1),
                "below edge {k}"
            );
            let mid = edge * (1.0 + eps).sqrt();
            assert_eq!(bins.bin_of(mid), k, "midpoint of bin {k}");
        }
        // Out-of-range radii clamp to the end bins.
        assert_eq!(bins.bin_of(bins.r_min * 0.5), 0);
        assert_eq!(bins.bin_of(born[sys.n_atoms() - 1] * 10.0), bins.m_eps - 1);
    }

    #[test]
    fn uniform_radii_collapse_to_one_bin() {
        let (sys, _) = sys_and_born(100, 2);
        let born = vec![2.0; sys.n_atoms()];
        let bins = ChargeBins::build(&sys, &born, 0.9);
        assert_eq!(bins.m_eps, 1);
        assert!(bins.atom_bin.iter().all(|&b| b == 0));
    }

    #[test]
    fn clipped_view_with_disabled_mac_matches_naive() {
        // ε huge => MAC multiplier 1+2/ε → 1, but clipping exactness:
        // instead force exact by tiny ε? tiny ε => mac huge => all exact.
        let (sys, born) = sys_and_born(150, 17);
        let math = polaroct_geom::fastmath::MathMode::Exact;
        let (naive_raw, _) = epol_naive_raw(&sys, &born, math);
        let eps = 1e-6; // forces exact everywhere
        let bins = ChargeBins::build(&sys, &born, eps);
        let m = sys.n_atoms();
        let mid = m / 3;
        let mut raw = 0.0;
        for &v in &sys.atoms.leaf_ids {
            raw += approx_epol_leaf_clipped(&sys, &bins, &born, v, &(0..mid), eps, math).0;
            raw += approx_epol_leaf_clipped(&sys, &bins, &born, v, &(mid..m), eps, math).0;
        }
        assert!(
            ((raw - naive_raw) / naive_raw).abs() < 1e-9,
            "clipped exact sum {raw} vs naive {naive_raw}"
        );
    }

    #[test]
    fn atom_division_error_varies_with_boundaries() {
        // §IV.A: atom-based division error changes with P because leaves
        // get split differently. Compare two different partitions at a
        // coarse ε and require they disagree (while both stay within the
        // error bound). A hollow capsid guarantees clipped leaves take
        // part in far-field interactions (a compact 400-atom globule may
        // evaluate everything exactly, making the partitions coincide).
        let mol = synth::capsid("cap", 1_500, 23);
        let sys = GbSystem::prepare(&mol, &crate::params::ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, polaroct_geom::fastmath::MathMode::Exact);
        let math = polaroct_geom::fastmath::MathMode::Exact;
        let eps = 0.9;
        let bins = ChargeBins::build(&sys, &born, eps);
        let m = sys.n_atoms();
        let run = |cuts: &[usize]| {
            let mut raw = 0.0;
            let mut lo = 0;
            for &c in cuts.iter().chain(std::iter::once(&m)) {
                for &v in &sys.atoms.leaf_ids {
                    raw += approx_epol_leaf_clipped(&sys, &bins, &born, v, &(lo..c), eps, math).0;
                }
                lo = c;
            }
            raw
        };
        let a = run(&[m / 2]);
        let b = run(&[m / 3, 2 * m / 3]);
        assert!(
            (a - b).abs() > 1e-12 * a.abs(),
            "different atom partitions should give (slightly) different sums"
        );
    }
}
