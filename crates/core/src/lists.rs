//! Interaction-list execution engine: traversal/execution separation for
//! the three tree algorithms (single-tree Born, single-tree E_pol,
//! dual-tree `OCT_CILK` variants).
//!
//! The recursive traversals in `born.rs` / `epol.rs` / `dual.rs`
//! interleave branch decisions with kernel math, so every evaluation
//! re-pays the whole walk. This module splits them into
//!
//! 1. a **traversal pass** ([`BornLists::build_single`] /
//!    [`BornLists::build_dual`] / [`EpolLists::build_single`] /
//!    [`EpolLists::build_dual`]) that replays the recursion's *control
//!    flow* — identical branch tests on identical floats, in identical
//!    order — but emits a flat list of [`ListEntry`] records instead of
//!    evaluating kernels, and
//! 2. an **execution pass** that sweeps the list through the `soa.rs`
//!    lane-batched kernels, reading straight from the persistent flat
//!    leaf arenas in [`GbSystem`] (zero gather traffic — every leaf is a
//!    slice of the Morton-ordered arenas, DESIGN.md §12), in two phases:
//!    * **Phase A** (parallelizable): every entry's kernel output is a
//!      *pure function* of the system — a per-atom vector for Born near
//!      entries, one scalar otherwise — computed over cost-balanced
//!      chunks ([`polaroct_sched::partition_by_cost`], fixed at build
//!      time, independent of thread count);
//!    * **Phase B** (serial, cheap): outputs are folded **in emission
//!      order** — per-slot adds for Born, and for E_pol a stack machine
//!      driven by each entry's `opens`/`closes` counters that replays
//!      the recursion's exact sum-tree association.
//!
//! Because Phase A is pure and Phase B replays the serial recursion's
//! every floating-point add in order, list execution is **bit-identical
//! to the recursive traversal at any thread count** (see DESIGN.md §11
//! for the full argument, and `tests/lists_match_recursion.rs` for the
//! proptest).
//!
//! On top, [`ListEngine`] adds Verlet-skin reuse for MD: trees are built
//! with node radii inflated by a `skin` margin
//! ([`polaroct_octree::Octree::inflate_radii`]), and lists stay valid —
//! every far/near classification remains conservative — while no atom
//! has moved more than `skin / 2` from the build geometry. Repeated
//! evaluations then pay only kernel cost; the octrees and lists are
//! rebuilt only when the tracked max displacement crosses the boundary.

use crate::born::{push_integrals_to_atoms, BornAccumulators};
use crate::epol::ChargeBins;
use crate::gb::epol_from_raw_sum;
use crate::params::ApproxParams;
use crate::soa::StillScratch;
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;
use polaroct_octree::NodeId;
use polaroct_sched::{partition_by_cost, WorkStealingPool};
use std::ops::Range;

/// Chunks per list for cost-balanced parallel execution. Fixed — not a
/// function of the worker count — mirroring `drivers::THREAD_BLOCKS`, so
/// the partition is identical at every pool width. (With the two-phase
/// executor the chunking cannot affect energies at all; the fixed count
/// keeps scheduling behavior reproducible too.)
pub const LIST_CHUNKS: usize = 64;

/// One interaction-list record. `a` is always an atoms-tree node; `b` is
/// a quadrature-tree node for Born lists and an atoms-tree node for
/// E_pol lists.
///
/// For E_pol lists, `opens`/`closes` encode the recursion's sum tree:
/// Phase B pushes a fresh partial (`0.0`) per open *before* adding this
/// entry's value, and after adding it pops/folds one level per close —
/// exactly the `raw += child` left-fold the recursion performs. Born
/// lists leave both at zero (Born accumulates into per-node / per-atom
/// slots, so emission order alone fixes every add).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListEntry {
    /// Atoms-tree node id.
    pub a: NodeId,
    /// Source node id (q-tree for Born, atoms tree for E_pol).
    pub b: NodeId,
    /// Far (node-level approximation) vs near (exact leaf×leaf block).
    pub far: bool,
    /// Sum-tree frames that open at this entry (E_pol only).
    pub opens: u32,
    /// Sum-tree frames that close after this entry (E_pol only).
    pub closes: u32,
}

/// Per-entry cost for the balanced chunking: `len_a · len_b` for a near
/// (leaf×leaf) block, 1 for a far approximation.
fn entry_cost(sys: &GbSystem, e: &ListEntry, q_side: bool) -> u64 {
    if e.far {
        return 1;
    }
    let la = sys.atoms.node(e.a).len() as u64;
    let lb = if q_side {
        sys.qtree.node(e.b).len() as u64
    } else {
        sys.atoms.node(e.b).len() as u64
    };
    la * lb
}

fn chunk_entries(sys: &GbSystem, entries: &[ListEntry], q_side: bool) -> Vec<Range<usize>> {
    let costs: Vec<u64> = entries.iter().map(|e| entry_cost(sys, e, q_side)).collect();
    partition_by_cost(&costs, LIST_CHUNKS.min(entries.len()).max(1))
}

/// `(θ+1)/(θ−1)` with `θ = 1+ε` — must match `born.rs` /
/// `dual::born_radii_dual` bit-for-bit (same expression, same order).
#[inline]
fn born_mac(eps: f64) -> f64 {
    let theta = 1.0 + eps;
    (theta + 1.0) / (theta - 1.0)
}

// ---------------------------------------------------------------------------
// Born lists
// ---------------------------------------------------------------------------

/// Stable-sort Born entries by their atoms-tree node. Bit-neutral:
/// Phase B folds each entry into slots owned by exactly `e.a` (the
/// per-atom slots of a near leaf, or `acc.node[e.a]` for a far entry),
/// and a stable sort preserves the relative order of entries sharing an
/// `e.a` — so every accumulator slot sees the same floats in the same
/// order as the raw traversal emission. What it buys: atom locality per
/// cost-balanced chunk, which is what lets `core::delta` mark only a
/// handful of chunks dirty when a few atoms move (the raw single-tree
/// order is q-leaf-major, which scatters one atom's entries across
/// nearly every chunk).
fn sort_by_atom_node(entries: &mut [ListEntry]) {
    entries.sort_by_key(|e| e.a);
}

/// Interaction lists for the Born-integral phase (`APPROX-INTEGRALS`),
/// single- or dual-tree. Execution reproduces the source recursion's
/// accumulator bits exactly (see the module docs).
#[derive(Clone, Debug)]
pub struct BornLists {
    pub entries: Vec<ListEntry>,
    /// Fixed cost-balanced chunk partition of `entries`.
    pub chunks: Vec<Range<usize>>,
    /// Op counts of one execution (identical to what the recursion
    /// reports: traversal visits + kernel pair counts).
    pub ops: OpCounts,
}

impl BornLists {
    /// Lists for the single-tree traversal (`born.rs::recurse` swept over
    /// every quadrature leaf in leaf-id order — the `run_serial` /
    /// `run_oct_threads` emission order).
    pub fn build_single(sys: &GbSystem, eps_born: f64) -> BornLists {
        let mac = born_mac(eps_born);
        let mut entries = Vec::new();
        let mut ops = OpCounts::default();
        for &q in &sys.qtree.leaf_ids {
            build_born_single(sys, 0, q, mac, &mut entries, &mut ops);
        }
        sort_by_atom_node(&mut entries);
        let chunks = chunk_entries(sys, &entries, true);
        BornLists { entries, chunks, ops }
    }

    /// Lists for the dual-tree traversal (`dual::born_recurse` from the
    /// root pair), approximating at internal `Q` nodes too.
    pub fn build_dual(sys: &GbSystem, eps_born: f64) -> BornLists {
        let mac = born_mac(eps_born);
        let mut entries = Vec::new();
        let mut ops = OpCounts::default();
        build_born_dual(sys, 0, 0, mac, &mut entries, &mut ops);
        sort_by_atom_node(&mut entries);
        let chunks = chunk_entries(sys, &entries, true);
        BornLists { entries, chunks, ops }
    }

    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total entries (near + far).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Heap bytes held by the list structure (capacity-based — the entry
    /// vector is grown by pushes, so its reserved tail is resident too).
    pub fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<ListEntry>()
            + self.chunks.capacity() * std::mem::size_of::<Range<usize>>()
    }

    /// Number of Phase-A output slots one entry produces: `len(a)` for a
    /// near entry (one per atom slot, in range order), one for a far
    /// entry. This is the stride `core::delta`'s entry-granular cache
    /// uses to splice a recomputed entry back into its chunk's stream.
    #[inline]
    pub fn entry_out_len(sys: &GbSystem, e: &ListEntry) -> usize {
        if e.far {
            1
        } else {
            sys.atoms.node(e.a).len()
        }
    }

    /// Phase A for one entry: append its kernel output(s) to `out` —
    /// exactly the floats [`BornLists::run_chunk`] emits for this entry,
    /// in the same order. Pure: reads only the system snapshot, so any
    /// number of entries may run concurrently.
    #[inline]
    pub fn run_entry(sys: &GbSystem, e: &ListEntry, out: &mut Vec<f64>) {
        let a = sys.atoms.node(e.a);
        let q = sys.qtree.node(e.b);
        if e.far {
            // Same float expressions as the recursions' far branch.
            let d = q.center - a.center;
            let r2 = d.norm2();
            let inv2 = 1.0 / r2;
            // PANIC-OK: e.b is a qtree node id recorded at list build.
            out.push(sys.q_node_normal[e.b as usize].dot(d) * inv2 * inv2 * inv2);
        } else {
            let qv = sys.q_arena.view(q.range());
            sys.born_block_terms(qv, a.range(), |_, t| out.push(t));
        }
    }

    /// Phase A for one chunk: the flat kernel outputs of its entries, in
    /// entry order — `len(a)` values for a near entry (one per atom slot,
    /// in range order), one value for a far entry. Pure: no shared state,
    /// so any number of chunks may run concurrently. Near entries slice
    /// the persistent q-point arena directly (no gather, no per-chunk
    /// scratch) and read atom positions from the flat atom arena.
    pub fn run_chunk(&self, sys: &GbSystem, c: usize) -> Vec<f64> {
        let entries = &self.entries[self.chunks[c].clone()];
        let cap: usize = entries.iter().map(|e| Self::entry_out_len(sys, e)).sum();
        let mut out = Vec::with_capacity(cap);
        for e in entries {
            Self::run_entry(sys, e, &mut out);
        }
        out
    }

    /// Phase B: fold per-chunk outputs into the accumulators in emission
    /// order. Serial by design — this is what pins the floating-point
    /// add order regardless of how Phase A was scheduled. Generic over
    /// the per-chunk storage so callers can fold either owned cached
    /// streams (`Vec<f64>`) or borrowed overlay slices (`&[f64]`) — the
    /// batch engine folds each query over the shared base cache plus a
    /// few per-query overlay chunks without copying the clean ones.
    pub fn apply<S: AsRef<[f64]>>(&self, sys: &GbSystem, outputs: &[S], acc: &mut BornAccumulators) {
        debug_assert_eq!(outputs.len(), self.chunks.len());
        for (chunk, vals) in self.chunks.iter().zip(outputs) {
            let vals = vals.as_ref();
            let mut cur = 0usize;
            for e in &self.entries[chunk.clone()] {
                if e.far {
                    acc.node[e.a as usize] += vals[cur];
                    cur += 1;
                } else {
                    for ai in sys.atoms.node(e.a).range() {
                        acc.atom[ai] += vals[cur];
                        cur += 1;
                    }
                }
            }
            debug_assert_eq!(cur, vals.len());
        }
    }

    /// Full execution: Phase A over the pool (or serially when `None`),
    /// Phase B serially. Returns the op counts of the run.
    pub fn execute(
        &self,
        sys: &GbSystem,
        pool: Option<&WorkStealingPool>,
        acc: &mut BornAccumulators,
    ) -> OpCounts {
        let outputs: Vec<Vec<f64>> = match pool {
            Some(p) => p.map(self.n_chunks(), |c| self.run_chunk(sys, c)),
            None => (0..self.n_chunks()).map(|c| self.run_chunk(sys, c)).collect(),
        };
        self.apply(sys, &outputs, acc);
        self.ops
    }
}

/// Mirror of `born.rs::recurse` for a whole quadrature leaf: identical
/// floats, identical branch order (far test with the `r2 > 0` guard
/// first, then leaf, else descend the atoms side).
fn build_born_single(
    sys: &GbSystem,
    a_id: NodeId,
    q_id: NodeId,
    mac: f64,
    entries: &mut Vec<ListEntry>,
    ops: &mut OpCounts,
) {
    let a = sys.atoms.node(a_id);
    let q = sys.qtree.node(q_id);
    ops.nodes_visited += 1;
    let d = q.center - a.center;
    let r2 = d.norm2();
    let sep = (a.radius + q.radius) * mac;
    if r2 > sep * sep && r2 > 0.0 {
        entries.push(ListEntry { a: a_id, b: q_id, far: true, opens: 0, closes: 0 });
        ops.born_far += 1;
        return;
    }
    if a.is_leaf() {
        entries.push(ListEntry { a: a_id, b: q_id, far: false, opens: 0, closes: 0 });
        ops.born_near += (a.len() * q.len()) as u64;
        return;
    }
    for c in a.children() {
        build_born_single(sys, c, q_id, mac, entries, ops);
    }
}

/// Mirror of `dual::born_recurse`: far first (same guard), then the
/// four-way leaf split with the larger-radius refinement rule.
fn build_born_dual(
    sys: &GbSystem,
    a_id: NodeId,
    q_id: NodeId,
    mac: f64,
    entries: &mut Vec<ListEntry>,
    ops: &mut OpCounts,
) {
    let a = sys.atoms.node(a_id);
    let q = sys.qtree.node(q_id);
    ops.nodes_visited += 1;
    let d = q.center - a.center;
    let r2 = d.norm2();
    let sep = (a.radius + q.radius) * mac;
    if r2 > sep * sep && r2 > 0.0 {
        entries.push(ListEntry { a: a_id, b: q_id, far: true, opens: 0, closes: 0 });
        ops.born_far += 1;
        return;
    }
    match (a.is_leaf(), q.is_leaf()) {
        (true, true) => {
            entries.push(ListEntry { a: a_id, b: q_id, far: false, opens: 0, closes: 0 });
            ops.born_near += (a.len() * q.len()) as u64;
        }
        (true, false) => {
            for qc in q.children() {
                build_born_dual(sys, a_id, qc, mac, entries, ops);
            }
        }
        (false, true) => {
            for ac in a.children() {
                build_born_dual(sys, ac, q_id, mac, entries, ops);
            }
        }
        (false, false) => {
            if a.radius >= q.radius {
                for ac in a.children() {
                    build_born_dual(sys, ac, q_id, mac, entries, ops);
                }
            } else {
                for qc in q.children() {
                    build_born_dual(sys, a_id, qc, mac, entries, ops);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// E_pol lists
// ---------------------------------------------------------------------------

/// Interaction lists for the E_pol phase (`APPROX-E_pol`), single- or
/// dual-tree. The sum-tree replay (entry `opens`/`closes`) makes the
/// executed total bit-identical to the recursion's nested folds.
#[derive(Clone, Debug)]
pub struct EpolLists {
    pub entries: Vec<ListEntry>,
    pub chunks: Vec<Range<usize>>,
    pub ops: OpCounts,
}

impl EpolLists {
    /// Lists for the single-tree traversal (`epol.rs::epol_recurse` swept
    /// over every atoms leaf in leaf-id order, with the driver's
    /// `raw += leaf` fold as the outermost frame). `bins` is only
    /// consulted to count far-field bin pairs for the op report; the
    /// traversal itself is pure geometry.
    pub fn build_single(sys: &GbSystem, bins: &ChargeBins, eps_epol: f64) -> EpolLists {
        let mac = 1.0 + 2.0 / eps_epol;
        let mut entries = Vec::new();
        let mut ops = OpCounts::default();
        for &v in &sys.atoms.leaf_ids {
            let mut pending = 0u32;
            build_epol_single(sys, bins, 0, v, mac, &mut pending, &mut entries, &mut ops);
        }
        let chunks = chunk_entries(sys, &entries, false);
        EpolLists { entries, chunks, ops }
    }

    /// Lists for the dual-tree traversal (`dual::epol_recurse` from the
    /// root pair, ordered child-pair expansion on the diagonal).
    pub fn build_dual(sys: &GbSystem, bins: &ChargeBins, eps_epol: f64) -> EpolLists {
        let mac = 1.0 + 2.0 / eps_epol;
        let mut entries = Vec::new();
        let mut ops = OpCounts::default();
        let mut pending = 0u32;
        build_epol_dual(sys, bins, 0, 0, mac, &mut pending, &mut entries, &mut ops);
        let chunks = chunk_entries(sys, &entries, false);
        EpolLists { entries, chunks, ops }
    }

    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Heap bytes held by the list structure (capacity-based, like
    /// [`BornLists::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<ListEntry>()
            + self.chunks.capacity() * std::mem::size_of::<Range<usize>>()
    }

    /// Phase A for one entry: the scalar [`EpolLists::run_chunk`] would
    /// emit for it — the binned far kernel or the exact SoA STILL block.
    /// Pure (the scratch is write-before-read workspace, see the
    /// stale-scratch-reuse kernel tests), so any number of entries may
    /// run concurrently with private scratches.
    #[inline]
    pub fn run_entry(
        sys: &GbSystem,
        bins: &ChargeBins,
        born: &[f64],
        math: MathMode,
        e: &ListEntry,
        scratch: &mut StillScratch,
    ) -> f64 {
        let u = sys.atoms.node(e.a);
        let v = sys.atoms.node(e.b);
        if e.far {
            // Identical to the recursions' far branch: bin × bin with
            // zero-charge rows/columns skipped, folded in index order.
            let r2 = u.center.dist2(v.center);
            let qu = bins.of(e.a);
            let qv = bins.of(e.b);
            let mut raw = 0.0;
            for (i, &qi) in qu.iter().enumerate() {
                if qi == 0.0 {
                    continue;
                }
                for (j, &qj) in qv.iter().enumerate() {
                    if qj == 0.0 {
                        continue;
                    }
                    // PANIC-OK: i + j < 2·m_eps by the bins' table construction.
                    let rr = bins.rr_table[i + j];
                    let inner = r2 + rr * math.exp(-r2 / (4.0 * rr));
                    raw += qi * qj * math.rsqrt(inner);
                }
            }
            raw
        } else {
            let vv = sys.atom_arena.view(born, v.range());
            sys.still_block_raw(born, u.range(), vv, math, scratch)
        }
    }

    /// Phase A for one chunk: one scalar per entry, in entry order. Near
    /// entries evaluate the exact SoA STILL block (the same internal fold
    /// as the recursion's leaf case) over a zero-copy slice of the
    /// persistent atom arena; far entries the binned kernel.
    pub fn run_chunk(
        &self,
        sys: &GbSystem,
        bins: &ChargeBins,
        born: &[f64],
        math: MathMode,
        c: usize,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.chunks[c].len());
        let mut scratch = StillScratch::default();
        for e in &self.entries[self.chunks[c].clone()] {
            out.push(Self::run_entry(sys, bins, born, math, e, &mut scratch));
        }
        out
    }

    /// Phase B: replay the recursion's sum tree. The stack starts with
    /// one global frame (the drivers' `raw += leaf` fold); each entry
    /// pushes `opens` fresh frames, adds its value to the innermost one,
    /// then folds `closes` completed frames into their parents. The
    /// global frame ends up holding exactly the recursion's total.
    /// Generic over the per-chunk storage for the same reason as
    /// [`BornLists::apply`]: batch overlays fold borrowed slices.
    pub fn apply<S: AsRef<[f64]>>(&self, outputs: &[S]) -> f64 {
        debug_assert_eq!(outputs.len(), self.chunks.len());
        let mut stack: Vec<f64> = vec![0.0];
        for (chunk, vals) in self.chunks.iter().zip(outputs) {
            let vals = vals.as_ref();
            debug_assert_eq!(vals.len(), chunk.len());
            for (e, &v) in self.entries[chunk.clone()].iter().zip(vals) {
                stack.resize(stack.len() + e.opens as usize, 0.0);
                if let Some(top) = stack.last_mut() {
                    *top += v;
                }
                for _ in 0..e.closes {
                    if let Some(t) = stack.pop() {
                        if let Some(parent) = stack.last_mut() {
                            *parent += t;
                        }
                    }
                }
            }
        }
        stack[0]
    }

    /// Full execution: Phase A over the pool (or serially when `None`),
    /// Phase B serially. Returns `(raw, ops)` like the recursions do.
    pub fn execute(
        &self,
        sys: &GbSystem,
        bins: &ChargeBins,
        born: &[f64],
        math: MathMode,
        pool: Option<&WorkStealingPool>,
    ) -> (f64, OpCounts) {
        let outputs: Vec<Vec<f64>> = match pool {
            Some(p) => p.map(self.n_chunks(), |c| self.run_chunk(sys, bins, born, math, c)),
            None => (0..self.n_chunks())
                .map(|c| self.run_chunk(sys, bins, born, math, c))
                .collect(),
        };
        (self.apply(&outputs), self.ops)
    }
}

/// Count the far-field bin pairs the binned kernel would evaluate (for
/// op reporting — matches the recursions' `pairs` counter).
fn far_pairs(bins: &ChargeBins, u: NodeId, v: NodeId) -> u64 {
    let nu = bins.of(u).iter().filter(|&&q| q != 0.0).count() as u64;
    let nv = bins.of(v).iter().filter(|&&q| q != 0.0).count() as u64;
    nu * nv
}

/// Mirror of `epol.rs::epol_recurse` (leaf test **first**, then the far
/// test without a `r2 > 0` guard, else descend the `u` side).
#[allow(clippy::too_many_arguments)]
fn build_epol_single(
    sys: &GbSystem,
    bins: &ChargeBins,
    u_id: NodeId,
    v_id: NodeId,
    mac: f64,
    pending: &mut u32,
    entries: &mut Vec<ListEntry>,
    ops: &mut OpCounts,
) {
    let u = sys.atoms.node(u_id);
    let v = sys.atoms.node(v_id);
    ops.nodes_visited += 1;
    if u.is_leaf() {
        let opens = std::mem::take(pending);
        entries.push(ListEntry { a: u_id, b: v_id, far: false, opens, closes: 0 });
        ops.epol_near += (u.len() * v.len()) as u64;
        return;
    }
    let r2 = u.center.dist2(v.center);
    let sep = (u.radius + v.radius) * mac;
    if r2 > sep * sep {
        let opens = std::mem::take(pending);
        entries.push(ListEntry { a: u_id, b: v_id, far: true, opens, closes: 0 });
        ops.epol_far += far_pairs(bins, u_id, v_id);
        return;
    }
    *pending += 1;
    for c in u.children() {
        build_epol_single(sys, bins, c, v_id, mac, pending, entries, ops);
    }
    // Every call emits at least one entry, so the frame that just
    // finished closes after the most recently emitted one.
    if let Some(last) = entries.last_mut() {
        last.closes += 1;
    }
}

/// Mirror of `dual::epol_recurse` (far test **first** with the
/// `sep > 0` point-pair guard, then the four-way leaf split with the
/// ordered child-pair diagonal expansion).
#[allow(clippy::too_many_arguments)]
fn build_epol_dual(
    sys: &GbSystem,
    bins: &ChargeBins,
    u_id: NodeId,
    v_id: NodeId,
    mac: f64,
    pending: &mut u32,
    entries: &mut Vec<ListEntry>,
    ops: &mut OpCounts,
) {
    let u = sys.atoms.node(u_id);
    let v = sys.atoms.node(v_id);
    ops.nodes_visited += 1;
    let r2 = u.center.dist2(v.center);
    let sep = (u.radius + v.radius) * mac;
    if sep > 0.0 && r2 > sep * sep {
        let opens = std::mem::take(pending);
        entries.push(ListEntry { a: u_id, b: v_id, far: true, opens, closes: 0 });
        ops.epol_far += far_pairs(bins, u_id, v_id);
        return;
    }
    match (u.is_leaf(), v.is_leaf()) {
        (true, true) => {
            let opens = std::mem::take(pending);
            entries.push(ListEntry { a: u_id, b: v_id, far: false, opens, closes: 0 });
            ops.epol_near += (u.len() * v.len()) as u64;
            return;
        }
        (true, false) => {
            *pending += 1;
            for vc in v.children() {
                build_epol_dual(sys, bins, u_id, vc, mac, pending, entries, ops);
            }
        }
        (false, true) => {
            *pending += 1;
            for uc in u.children() {
                build_epol_dual(sys, bins, uc, v_id, mac, pending, entries, ops);
            }
        }
        (false, false) => {
            *pending += 1;
            if u_id == v_id {
                for uc in u.children() {
                    for vc in v.children() {
                        build_epol_dual(sys, bins, uc, vc, mac, pending, entries, ops);
                    }
                }
            } else if u.radius >= v.radius {
                for uc in u.children() {
                    build_epol_dual(sys, bins, uc, v_id, mac, pending, entries, ops);
                }
            } else {
                for vc in v.children() {
                    build_epol_dual(sys, bins, u_id, vc, mac, pending, entries, ops);
                }
            }
        }
    }
    if let Some(last) = entries.last_mut() {
        last.closes += 1;
    }
}

// ---------------------------------------------------------------------------
// Verlet-skin MD engine
// ---------------------------------------------------------------------------

/// Result of one [`ListEngine::evaluate`] call.
#[derive(Clone, Debug)]
pub struct EngineEval {
    /// Polarization energy (kcal/mol) at the supplied positions.
    pub energy_kcal: f64,
    /// Raw ordered-pair E_pol sum.
    pub raw: f64,
    /// Whether the octrees and lists were rebuilt for this evaluation.
    pub rebuilt: bool,
    /// Max atom displacement from the last rebuild geometry (Å).
    pub max_disp: f64,
    /// Kernel op counts of this evaluation.
    pub ops: OpCounts,
}

/// Persistent single-tree evaluator for MD: octrees with skin-inflated
/// node bounds, prebuilt interaction lists, and per-step revalidation by
/// max-displacement tracking.
///
/// **Reuse protocol.** Lists (and trees) built at reference geometry `X₀`
/// with every node radius inflated by `skin` stay conservative while
/// `max_i |x_i − x₀_i| ≤ skin/2`: any node pair classified *far* against
/// the inflated radii is still separated by more than the uninflated MAC
/// threshold after both sides drift by `skin/2` (the MAC multiplier is
/// ≥ 1, so the inflation covers the drift on both sides of the
/// inequality). On a reuse step only the Morton-ordered atom positions
/// are refreshed; node centers/aggregates and the quadrature surface
/// stay frozen at `X₀` — a skin-bounded approximation on top of the
/// ε-approximation, which vanishes as `skin → 0`. Once
/// `max_disp > skin/2`, everything is rebuilt at the current geometry
/// (with `skin = 0` that means every time the positions change at all).
pub struct ListEngine {
    pub(crate) approx: ApproxParams,
    pub(crate) skin: f64,
    pub(crate) sys: GbSystem,
    pub(crate) born_lists: BornLists,
    pub(crate) epol_lists: EpolLists,
    /// Born radii from the last [`Self::evaluate`] (Morton order).
    pub(crate) born: Vec<f64>,
    /// Positions (original order) the current trees/lists were built at.
    pub(crate) reference: Vec<Vec3>,
    pub(crate) work: Molecule,
    /// Evaluations served by prebuilt lists.
    pub lists_reused: u64,
    /// Evaluations (incl. the initial build) that rebuilt trees + lists.
    pub lists_rebuilt: u64,
}

impl ListEngine {
    /// Build the engine at the molecule's current geometry. Counts as the
    /// first rebuild. `skin` is the Verlet margin in Å (`>= 0`).
    pub fn new(mol: &Molecule, approx: &ApproxParams, skin: f64) -> ListEngine {
        assert!(skin >= 0.0 && skin.is_finite(), "skin must be a finite non-negative margin");
        let work = mol.clone();
        let mut engine = ListEngine {
            approx: *approx,
            skin,
            // Placeholder fields; `rebuild` fills them all in.
            sys: GbSystem::prepare(&work, approx),
            born_lists: BornLists { entries: Vec::new(), chunks: Vec::new(), ops: OpCounts::default() },
            epol_lists: EpolLists { entries: Vec::new(), chunks: Vec::new(), ops: OpCounts::default() },
            born: Vec::new(),
            reference: mol.positions.clone(),
            work,
            lists_reused: 0,
            lists_rebuilt: 0,
        };
        let positions = mol.positions.clone();
        engine.rebuild(&positions);
        engine.lists_rebuilt = 1;
        // Populate Born radii at the build geometry so force kernels can
        // run before the first `evaluate` call.
        let mut acc = BornAccumulators::zeros(&engine.sys);
        engine.born_lists.execute(&engine.sys, None, &mut acc);
        let mut born = vec![0.0; engine.sys.n_atoms()];
        push_integrals_to_atoms(&engine.sys, &acc, 0..engine.sys.n_atoms(), approx.math, &mut born);
        engine.born = born;
        engine
    }

    /// The system snapshot (inflated trees, positions as of the last
    /// evaluate/rebuild) — for force kernels and inspection.
    pub fn system(&self) -> &GbSystem {
        &self.sys
    }

    /// Born radii of the last evaluation (Morton order; pair with
    /// `system()`). Populated from construction onward.
    pub fn born(&self) -> &[f64] {
        &self.born
    }

    /// The configured skin margin.
    pub fn skin(&self) -> f64 {
        self.skin
    }

    /// Resident bytes of the engine's persistent state: the prepared
    /// system (trees + payloads + flat leaf arenas) plus both interaction
    /// lists.
    pub fn memory_bytes(&self) -> usize {
        self.sys.memory_bytes() + self.born_lists.memory_bytes() + self.epol_lists.memory_bytes()
    }

    pub(crate) fn rebuild(&mut self, positions: &[Vec3]) {
        // PANIC-OK: rebuild always receives positions for the same molecule (same atom count).
        self.work.positions.copy_from_slice(positions);
        self.sys = GbSystem::prepare(&self.work, &self.approx);
        if self.skin > 0.0 {
            self.sys.atoms.inflate_radii(self.skin);
            self.sys.qtree.inflate_radii(self.skin);
        }
        self.born_lists = BornLists::build_single(&self.sys, self.approx.eps_born);
        // The E_pol traversal is pure geometry; bins only feed the op
        // report. Build them from intrinsic radii here — the energy path
        // always executes with the current step's real bins.
        let bins = ChargeBins::build(&self.sys, &self.sys.radius.clone(), self.approx.eps_epol);
        self.epol_lists = EpolLists::build_single(&self.sys, &bins, self.approx.eps_epol);
        self.reference = positions.to_vec();
    }

    /// Evaluate Born radii and the polarization energy at `positions`
    /// (original atom order), rebuilding trees + lists only when the
    /// max displacement since the last rebuild exceeds `skin / 2`.
    pub fn evaluate(&mut self, positions: &[Vec3]) -> EngineEval {
        assert_eq!(positions.len(), self.reference.len());
        let max_disp = positions
            .iter()
            .zip(&self.reference)
            .map(|(p, r)| p.dist(*r))
            .fold(0.0f64, f64::max);
        let rebuilt = max_disp > 0.5 * self.skin;
        if rebuilt {
            self.rebuild(positions);
            self.lists_rebuilt += 1;
        } else {
            // Refresh only the Morton-ordered atom positions (octree
            // copies + flat atom arena); topology, node centers/aggregates
            // and the surface stay frozen (the skin-bounded approximation
            // documented on the type).
            self.sys.refresh_atom_positions(positions);
            self.lists_reused += 1;
        }
        let math = self.approx.math;
        let n = self.sys.n_atoms();

        let mut acc = BornAccumulators::zeros(&self.sys);
        let mut ops = self.born_lists.execute(&self.sys, None, &mut acc);
        let mut born = vec![0.0; n];
        ops.add(&push_integrals_to_atoms(&self.sys, &acc, 0..n, math, &mut born));

        let bins = ChargeBins::build(&self.sys, &born, self.approx.eps_epol);
        let (raw, eops) = self.epol_lists.execute(&self.sys, &bins, &born, math, None);
        ops.add(&eops);
        self.born = born;

        EngineEval {
            energy_kcal: epol_from_raw_sum(raw, self.approx.eps_solvent),
            raw,
            rebuilt,
            max_disp,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::born::born_radii_octree;
    use crate::dual::{born_radii_dual, epol_dual_raw};
    use crate::epol::epol_octree_raw;
    use crate::naive::born_radii_naive;
    use polaroct_molecule::synth;

    fn system(n: usize, seed: u64) -> GbSystem {
        GbSystem::prepare(&synth::protein("p", n, seed), &ApproxParams::default())
    }

    #[test]
    fn single_born_lists_match_recursion_bits() {
        let sys = system(400, 3);
        let eps = 0.9;
        let (reference, rops) = born_radii_octree(&sys, eps, MathMode::Exact);
        let lists = BornLists::build_single(&sys, eps);
        for pool in [None, Some(WorkStealingPool::new(3))] {
            let mut acc = BornAccumulators::zeros(&sys);
            let mut ops = lists.execute(&sys, pool.as_ref(), &mut acc);
            let mut out = vec![0.0; sys.n_atoms()];
            ops.add(&push_integrals_to_atoms(
                &sys,
                &acc,
                0..sys.n_atoms(),
                MathMode::Exact,
                &mut out,
            ));
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
            assert_eq!(ops.born_near, rops.born_near);
            assert_eq!(ops.born_far, rops.born_far);
            assert_eq!(ops.nodes_visited, rops.nodes_visited);
        }
    }

    #[test]
    fn single_epol_lists_match_recursion_bits() {
        let sys = system(400, 7);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        for eps in [0.9, 0.3] {
            let bins = ChargeBins::build(&sys, &born, eps);
            let (reference, rops) = epol_octree_raw(&sys, &bins, &born, eps, MathMode::Exact);
            let lists = EpolLists::build_single(&sys, &bins, eps);
            for pool in [None, Some(WorkStealingPool::new(4))] {
                let (raw, ops) =
                    lists.execute(&sys, &bins, &born, MathMode::Exact, pool.as_ref());
                assert_eq!(raw.to_bits(), reference.to_bits(), "{raw} vs {reference}");
                assert_eq!(ops.epol_near, rops.epol_near);
                assert_eq!(ops.epol_far, rops.epol_far);
                assert_eq!(ops.nodes_visited, rops.nodes_visited);
            }
        }
    }

    #[test]
    fn dual_lists_match_dual_recursion_bits() {
        let sys = system(350, 11);
        let eps = 0.9;
        let (reference, rops) = born_radii_dual(&sys, eps, MathMode::Exact);
        let lists = BornLists::build_dual(&sys, eps);
        let mut acc = BornAccumulators::zeros(&sys);
        let mut ops = lists.execute(&sys, None, &mut acc);
        let mut out = vec![0.0; sys.n_atoms()];
        ops.add(&push_integrals_to_atoms(
            &sys,
            &acc,
            0..sys.n_atoms(),
            MathMode::Exact,
            &mut out,
        ));
        for (a, b) in out.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        assert_eq!(ops.born_near, rops.born_near);
        assert_eq!(ops.born_far, rops.born_far);

        let bins = ChargeBins::build(&sys, &out, eps);
        let (eref, erops) = epol_dual_raw(&sys, &bins, &out, eps, MathMode::Exact);
        let elists = EpolLists::build_dual(&sys, &bins, eps);
        for pool in [None, Some(WorkStealingPool::new(2))] {
            let (raw, eops) = elists.execute(&sys, &bins, &out, MathMode::Exact, pool.as_ref());
            assert_eq!(raw.to_bits(), eref.to_bits(), "{raw} vs {eref}");
            assert_eq!(eops.epol_near, erops.epol_near);
            assert_eq!(eops.epol_far, erops.epol_far);
        }
    }

    #[test]
    fn chunked_execution_is_width_invariant() {
        let sys = system(300, 5);
        let eps = 0.9;
        let lists = BornLists::build_single(&sys, eps);
        assert!(lists.n_chunks() <= LIST_CHUNKS);
        let run = |width: Option<usize>| {
            let pool = width.map(WorkStealingPool::new);
            let mut acc = BornAccumulators::zeros(&sys);
            lists.execute(&sys, pool.as_ref(), &mut acc);
            acc
        };
        let serial = run(None);
        for w in [1usize, 2, 5, 8] {
            let par = run(Some(w));
            for (a, b) in par.node.iter().zip(&serial.node) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in par.atom.iter().zip(&serial.atom) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn epol_sum_tree_replay_closes_every_frame() {
        // Structural check on the opens/closes encoding: over the whole
        // list, opens == closes (every frame closes), and the running
        // depth never goes negative.
        let sys = system(250, 13);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let bins = ChargeBins::build(&sys, &born, 0.9);
        for lists in [
            EpolLists::build_single(&sys, &bins, 0.9),
            EpolLists::build_dual(&sys, &bins, 0.9),
        ] {
            let mut depth = 0i64;
            for e in &lists.entries {
                depth += e.opens as i64;
                assert!(depth >= 0);
                depth -= e.closes as i64;
                assert!(depth >= 0, "frame closed below the global frame");
            }
            assert_eq!(depth, 0, "unclosed frames at end of list");
        }
    }

    #[test]
    fn skin_zero_engine_matches_direct_lists() {
        let mol = synth::ligand("md", 40, 5);
        let approx = ApproxParams::default();
        let mut engine = ListEngine::new(&mol, &approx, 0.0);
        let eval = engine.evaluate(&mol.positions);
        assert!(!eval.rebuilt, "unmoved positions must reuse the build");
        // Reference: the plain single-tree pipeline on the same geometry.
        let sys = GbSystem::prepare(&mol, &approx);
        let (born, _) = born_radii_octree(&sys, approx.eps_born, approx.math);
        let bins = ChargeBins::build(&sys, &born, approx.eps_epol);
        let (raw, _) = epol_octree_raw(&sys, &bins, &born, approx.eps_epol, approx.math);
        assert_eq!(eval.raw.to_bits(), raw.to_bits());
        // Any movement at skin 0 must rebuild.
        let mut moved = mol.positions.clone();
        moved[0].x += 1e-9;
        let eval2 = engine.evaluate(&moved);
        assert!(eval2.rebuilt);
        assert_eq!(engine.lists_rebuilt, 2);
        assert_eq!(engine.lists_reused, 1);
    }

    #[test]
    fn skinned_engine_reuses_within_half_skin() {
        let mol = synth::ligand("md", 40, 9);
        let approx = ApproxParams::default();
        let skin = 1.0;
        let mut engine = ListEngine::new(&mol, &approx, skin);
        let mut pos = mol.positions.clone();
        pos[3].y += 0.49; // < skin/2
        let eval = engine.evaluate(&pos);
        assert!(!eval.rebuilt, "displacement {} within skin/2", eval.max_disp);
        assert!(eval.energy_kcal.is_finite() && eval.energy_kcal < 0.0);
        pos[3].y += 0.49; // cumulative 0.98 > skin/2
        let eval = engine.evaluate(&pos);
        assert!(eval.rebuilt, "displacement {} must trip the rebuild", eval.max_disp);
        assert_eq!(engine.lists_rebuilt, 2);
        assert_eq!(engine.lists_reused, 1);
    }

    #[test]
    fn rebuild_energy_matches_fresh_engine_bits() {
        // After a rebuild the engine must be indistinguishable from a
        // brand-new engine at the same geometry.
        let mol = synth::ligand("md", 35, 21);
        let approx = ApproxParams::default();
        let mut engine = ListEngine::new(&mol, &approx, 0.4);
        let mut pos = mol.positions.clone();
        for p in &mut pos {
            p.x += 0.3; // > skin/2 = 0.2 → rebuild
        }
        let eval = engine.evaluate(&pos);
        assert!(eval.rebuilt);
        let mut fresh_mol = mol.clone();
        fresh_mol.positions = pos.clone();
        let mut fresh = ListEngine::new(&fresh_mol, &approx, 0.4);
        let fresh_eval = fresh.evaluate(&pos);
        assert_eq!(eval.raw.to_bits(), fresh_eval.raw.to_bits());
        assert_eq!(eval.energy_kcal.to_bits(), fresh_eval.energy_kcal.to_bits());
    }

    #[test]
    fn list_memory_is_reported() {
        let sys = system(200, 1);
        let lists = BornLists::build_single(&sys, 0.9);
        assert!(lists.memory_bytes() > 0);
        assert!(!lists.is_empty());
        assert_eq!(
            lists.len(),
            (lists.ops.born_far
                + lists.entries.iter().filter(|e| !e.far).count() as u64) as usize
        );
    }
}
