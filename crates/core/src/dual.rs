//! Dual-tree algorithms from the paper's prior shared-memory work
//! (Chowdhury & Bajaj [6]) — the algorithm behind `OCT_CILK`.
//!
//! §IV: "The major difference of our approach from algorithms presented in
//! [6] is that we only traverse one octree instead of two". The [6]
//! variant traverses `T_A` and `T_Q` *simultaneously from both roots*,
//! allowing far-field approximation at **internal** nodes of both trees —
//! fewer kernel evaluations, but an irregular recursion that distributes
//! poorly across processes (which is why the distributed drivers switch to
//! the leaf-segment form). Implementing both lets Fig. 7 compare them.

use crate::born::BornAccumulators;
use crate::epol::ChargeBins;
use crate::naive::born_radius_from_integral;
use crate::soa::StillScratch;
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::fastmath::MathMode;
use polaroct_octree::NodeId;

/// Dual-tree Born radii: simultaneous traversal of `T_A` × `T_Q` with the
/// same §II acceptance criterion, approximating at internal `Q` nodes too.
pub fn born_radii_dual(sys: &GbSystem, eps_born: f64, math: MathMode) -> (Vec<f64>, OpCounts) {
    let theta = 1.0 + eps_born; // practical MAC (see ApproxParams docs)
    let mac = (theta + 1.0) / (theta - 1.0);
    let mut acc = BornAccumulators::zeros(sys);
    let mut ops = OpCounts::default();
    born_recurse(sys, 0, 0, mac, &mut acc, &mut ops);
    // Reuse the single-tree push (it is exact given the accumulators).
    let mut out = vec![0.0; sys.n_atoms()];
    ops.add(&crate::born::push_integrals_to_atoms(
        sys,
        &acc,
        0..sys.n_atoms(),
        math,
        &mut out,
    ));
    (out, ops)
}

fn born_recurse(
    sys: &GbSystem,
    a_id: NodeId,
    q_id: NodeId,
    mac: f64,
    acc: &mut BornAccumulators,
    ops: &mut OpCounts,
) {
    let a = sys.atoms.node(a_id);
    let q = sys.qtree.node(q_id);
    ops.nodes_visited += 1;
    let d = q.center - a.center;
    let r2 = d.norm2();
    let sep = (a.radius + q.radius) * mac;
    if r2 > sep * sep && r2 > 0.0 {
        let inv2 = 1.0 / r2;
        acc.node[a_id as usize] += sys.q_node_normal[q_id as usize].dot(d) * inv2 * inv2 * inv2;
        ops.born_far += 1;
        return;
    }
    match (a.is_leaf(), q.is_leaf()) {
        (true, true) => {
            // One kernel implementation for every path: the same
            // lane-batched leaf kernel the serial, threaded and list
            // engines use, over a zero-copy q-arena slice.
            let qv = sys.q_arena.view(q.range());
            sys.born_block_terms(qv, a.range(), |ai, t| acc.atom[ai] += t);
            ops.born_near += (a.len() * q.len()) as u64;
        }
        (true, false) => {
            for qc in q.children() {
                born_recurse(sys, a_id, qc, mac, acc, ops);
            }
        }
        (false, true) => {
            for ac in a.children() {
                born_recurse(sys, ac, q_id, mac, acc, ops);
            }
        }
        (false, false) => {
            // Split the node with the larger radius (standard dual-tree
            // refinement rule — shrinks the acceptance gap fastest).
            if a.radius >= q.radius {
                for ac in a.children() {
                    born_recurse(sys, ac, q_id, mac, acc, ops);
                }
            } else {
                for qc in q.children() {
                    born_recurse(sys, a_id, qc, mac, acc, ops);
                }
            }
        }
    }
}

/// Dual-tree raw E_pol: simultaneous `T_A` × `T_A` traversal from
/// `(root, root)`, covering every *ordered* atom pair exactly once
/// (including the diagonal), with binned far-field interactions between
/// internal node pairs.
pub fn epol_dual_raw(
    sys: &GbSystem,
    bins: &ChargeBins,
    born: &[f64],
    eps_epol: f64,
    math: MathMode,
) -> (f64, OpCounts) {
    let mac = 1.0 + 2.0 / eps_epol;
    let mut ops = OpCounts::default();
    let mut scratch = StillScratch::default();
    let raw = epol_recurse(sys, bins, born, 0, 0, mac, math, &mut scratch, &mut ops);
    (raw, ops)
}

#[allow(clippy::too_many_arguments)]
fn epol_recurse(
    sys: &GbSystem,
    bins: &ChargeBins,
    born: &[f64],
    u_id: NodeId,
    v_id: NodeId,
    mac: f64,
    math: MathMode,
    scratch: &mut StillScratch,
    ops: &mut OpCounts,
) -> f64 {
    let u = sys.atoms.node(u_id);
    let v = sys.atoms.node(v_id);
    ops.nodes_visited += 1;

    let r2 = u.center.dist2(v.center);
    let sep = (u.radius + v.radius) * mac;
    // `sep > 0` excludes pairs of point-like (single-atom) nodes: those
    // would otherwise count as "far" for every ε, and the binned kernel's
    // resolution is capped (see `ChargeBins::build`) — evaluating the one
    // exact pair is just as cheap and keeps tiny-ε traversals exact.
    if sep > 0.0 && r2 > sep * sep {
        // Far: bin × bin (both sides may be internal nodes).
        let qu = bins.of(u_id);
        let qv = bins.of(v_id);
        let mut raw = 0.0;
        let mut pairs = 0u64;
        for (i, &qi) in qu.iter().enumerate() {
            if qi == 0.0 {
                continue;
            }
            for (j, &qj) in qv.iter().enumerate() {
                if qj == 0.0 {
                    continue;
                }
                let rr = bins.rr_table[i + j];
                let inner = r2 + rr * math.exp(-r2 / (4.0 * rr));
                raw += qi * qj * math.rsqrt(inner);
                pairs += 1;
            }
        }
        ops.epol_far += pairs;
        return raw;
    }

    match (u.is_leaf(), v.is_leaf()) {
        (true, true) => {
            // Shared SoA kernel: the block-form lane-batched STILL kernel
            // is bit-identical to the scalar `q·inv_f_gb` accumulation it
            // replaces (soa.rs's `still_term_bit_identical_to_scalar_kernel`),
            // over a zero-copy atom-arena slice.
            let vv = sys.atom_arena.view(born, v.range());
            let raw = sys.still_block_raw(born, u.range(), vv, math, scratch);
            ops.epol_near += (u.len() * v.len()) as u64;
            raw
        }
        (true, false) => {
            let mut raw = 0.0;
            for vc in v.children() {
                raw += epol_recurse(sys, bins, born, u_id, vc, mac, math, scratch, ops);
            }
            raw
        }
        (false, true) => {
            let mut raw = 0.0;
            for uc in u.children() {
                raw += epol_recurse(sys, bins, born, uc, v_id, mac, math, scratch, ops);
            }
            raw
        }
        (false, false) => {
            if u_id == v_id {
                // Same node: expand into all ordered child pairs so the
                // diagonal and both pair orders are each covered once.
                let mut raw = 0.0;
                for uc in u.children() {
                    for vc in v.children() {
                        raw += epol_recurse(sys, bins, born, uc, vc, mac, math, scratch, ops);
                    }
                }
                raw
            } else if u.radius >= v.radius {
                let mut raw = 0.0;
                for uc in u.children() {
                    raw += epol_recurse(sys, bins, born, uc, v_id, mac, math, scratch, ops);
                }
                raw
            } else {
                let mut raw = 0.0;
                for vc in v.children() {
                    raw += epol_recurse(sys, bins, born, u_id, vc, mac, math, scratch, ops);
                }
                raw
            }
        }
    }
}

/// Helper exposed for drivers: Born radii sanity — used nowhere in hot
/// paths, but keeps the dual path's clamp identical to the naive one.
#[allow(dead_code)]
fn clamp(s: f64, intrinsic: f64, math: MathMode) -> f64 {
    born_radius_from_integral(s, intrinsic, math)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::born::born_radii_octree;
    use crate::epol::epol_octree_raw;
    use crate::naive::{born_radii_naive, epol_naive_raw};
    use crate::params::ApproxParams;
    use polaroct_molecule::synth;

    fn system(n: usize, seed: u64) -> GbSystem {
        GbSystem::prepare(&synth::protein("p", n, seed), &ApproxParams::default())
    }

    #[test]
    fn dual_born_matches_naive_within_eps() {
        let sys = system(450, 3);
        let (naive, _) = born_radii_naive(&sys, MathMode::Exact);
        let (dual, ops) = born_radii_dual(&sys, 0.9, MathMode::Exact);
        let mut worst = 0.0f64;
        for (n, d) in naive.iter().zip(&dual) {
            worst = worst.max(((n - d) / n).abs());
        }
        assert!(worst < 0.01, "dual Born error {worst}");
        assert!(ops.born_far > 0);
    }

    #[test]
    fn dual_does_fewer_ops_than_single_tree() {
        // The [6] algorithm approximates at internal Q nodes, so its
        // near-field work is a subset of the single-tree version's.
        let sys = system(600, 7);
        let (_, single) = born_radii_octree(&sys, 0.9, MathMode::Exact);
        let (_, dual) = born_radii_dual(&sys, 0.9, MathMode::Exact);
        assert!(
            dual.born_near <= single.born_near,
            "dual near {} > single near {}",
            dual.born_near,
            single.born_near
        );
    }

    #[test]
    fn dual_epol_matches_naive_within_one_percent() {
        let sys = system(400, 11);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let (naive_raw, _) = epol_naive_raw(&sys, &born, MathMode::Exact);
        let bins = ChargeBins::build(&sys, &born, 0.9);
        let (raw, _) = epol_dual_raw(&sys, &bins, &born, 0.9, MathMode::Exact);
        let err = ((raw - naive_raw) / naive_raw).abs();
        assert!(err < 0.01, "dual E_pol error {err}");
    }

    #[test]
    fn dual_epol_exact_when_eps_tiny() {
        // A tiny ε forces full refinement: the dual traversal must cover
        // every ordered pair exactly once ⇒ equals the naive sum.
        let sys = system(130, 5);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let (naive_raw, _) = epol_naive_raw(&sys, &born, MathMode::Exact);
        let eps = 1e-9;
        let bins = ChargeBins::build(&sys, &born, eps);
        let (raw, ops) = epol_dual_raw(&sys, &bins, &born, eps, MathMode::Exact);
        assert!(
            ((raw - naive_raw) / naive_raw).abs() < 1e-9,
            "{raw} vs {naive_raw}"
        );
        assert_eq!(ops.epol_near, (sys.n_atoms() * sys.n_atoms()) as u64);
        assert_eq!(ops.epol_far, 0);
    }

    #[test]
    fn dual_and_single_tree_agree_with_each_other() {
        let sys = system(350, 13);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let bins = ChargeBins::build(&sys, &born, 0.9);
        let (single, _) = epol_octree_raw(&sys, &bins, &born, 0.9, MathMode::Exact);
        let (dual, _) = epol_dual_raw(&sys, &bins, &born, 0.9, MathMode::Exact);
        // Both are ε-approximations of the same sum: within 2ε of each
        // other trivially, but in practice within ~1%.
        assert!(
            ((single - dual) / single).abs() < 0.02,
            "{single} vs {dual}"
        );
    }
}
