//! The r⁴ (Coulomb-field) Born-radius approximation — Eq. 3 of the paper.
//!
//! The paper evaluates with the r⁶ rule (Eq. 4, "better accuracy for
//! spherical solutes" per Grycuk 2003) but presents Eq. 3 as the classic
//! alternative: `1/R_i ≈ (1/4π) Σ_k w_k (r_k − x_i)·n_k / |r_k − x_i|⁴`,
//! i.e. the same surface quadrature with a `r⁻⁴` kernel and
//! `R = 4π / s`. This module provides the octree-accelerated r⁴ path so
//! the two can be compared (see the `ablation` tests below); the MAC logic
//! is identical, with `θ = 1+ε` as for r⁶.

use crate::born::BornAccumulators;
use crate::naive::BORN_RADIUS_MAX;
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_octree::NodeId;

/// Convert an accumulated r⁴ integral into a Born radius:
/// `R = 4π / s`, floored at the intrinsic radius and clamped.
#[inline]
pub fn born_radius_from_r4_integral(s: f64, intrinsic: f64) -> f64 {
    let four_pi = 4.0 * std::f64::consts::PI;
    if s <= 0.0 {
        return BORN_RADIUS_MAX;
    }
    (four_pi / s).clamp(intrinsic, BORN_RADIUS_MAX)
}

/// Octree-approximated r⁴ Born radii over the whole system (single
/// process; the distributed drivers use the r⁶ path, like the paper).
pub fn born_radii_octree_r4(sys: &GbSystem, eps_born: f64) -> (Vec<f64>, OpCounts) {
    let theta = 1.0 + eps_born;
    let mac = (theta + 1.0) / (theta - 1.0);
    let mut acc = BornAccumulators::zeros(sys);
    let mut ops = OpCounts::default();
    for &q_leaf in &sys.qtree.leaf_ids {
        let q = sys.qtree.node(q_leaf);
        recurse(sys, 0, q_leaf, q.range(), mac, &mut acc, &mut ops);
    }
    // Push ancestor sums down and convert (R = 4π/s — different closing
    // formula from the r⁶ push, so we inline the downward pass).
    let mut out = vec![0.0; sys.n_atoms()];
    push(sys, 0, 0.0, &acc, &mut out, &mut ops);
    (out, ops)
}

fn recurse(
    sys: &GbSystem,
    a_id: NodeId,
    q_leaf: NodeId,
    q_range: std::ops::Range<usize>,
    mac: f64,
    acc: &mut BornAccumulators,
    ops: &mut OpCounts,
) {
    let a = sys.atoms.node(a_id);
    let q = sys.qtree.node(q_leaf);
    ops.nodes_visited += 1;
    let d = q.center - a.center;
    let r2 = d.norm2();
    let sep = (a.radius + q.radius) * mac;
    if r2 > sep * sep && r2 > 0.0 {
        let inv2 = 1.0 / r2;
        acc.node[a_id as usize] += sys.q_node_normal[q_leaf as usize].dot(d) * inv2 * inv2;
        ops.born_far += 1;
        return;
    }
    if a.is_leaf() {
        for ai in a.range() {
            let xa = sys.atoms.points[ai];
            let mut s = 0.0;
            for qi in q_range.clone() {
                let dv = sys.qtree.points[qi] - xa;
                let d2 = dv.norm2();
                let inv2 = 1.0 / d2;
                s += sys.q_weight[qi] * sys.q_normal[qi].dot(dv) * inv2 * inv2;
            }
            acc.atom[ai] += s;
        }
        ops.born_near += (a.len() * q_range.len()) as u64;
        return;
    }
    for c in a.children() {
        recurse(sys, c, q_leaf, q_range.clone(), mac, acc, ops);
    }
}

fn push(
    sys: &GbSystem,
    id: NodeId,
    inherited: f64,
    acc: &BornAccumulators,
    out: &mut [f64],
    ops: &mut OpCounts,
) {
    let node = sys.atoms.node(id);
    ops.nodes_visited += 1;
    let s = inherited + acc.node[id as usize];
    if node.is_leaf() {
        for ai in node.range() {
            out[ai] = born_radius_from_r4_integral(acc.atom[ai] + s, sys.radius[ai]);
        }
        return;
    }
    for c in node.children() {
        push(sys, c, s, acc, out, ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{born_radii_naive, born_radii_naive_r4};
    use crate::params::ApproxParams;
    use polaroct_geom::fastmath::MathMode;
    use polaroct_geom::Vec3;
    use polaroct_molecule::{synth, Atom, Element, Molecule};
    use polaroct_surface::SurfaceParams;

    #[test]
    fn isolated_atom_recovers_radius() {
        let mol = Molecule::from_atoms(
            "one",
            [Atom {
                pos: Vec3::ZERO,
                radius: 1.7,
                charge: 0.0,
                element: Element::C,
            }],
        );
        let params = ApproxParams {
            surface: SurfaceParams {
                icosphere_level: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let sys = GbSystem::prepare(&mol, &params);
        let (r, _) = born_radii_octree_r4(&sys, 0.9);
        assert!((r[0] - 1.7).abs() < 1e-9, "got {}", r[0]);
    }

    #[test]
    fn octree_r4_matches_naive_r4() {
        let mol = synth::protein("p", 400, 7);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (naive, _) = born_radii_naive_r4(&sys, MathMode::Exact);
        let (approx, ops) = born_radii_octree_r4(&sys, 0.9);
        let mut worst = 0.0f64;
        for (n, a) in naive.iter().zip(&approx) {
            worst = worst.max(((n - a) / n).abs());
        }
        assert!(worst < 0.01, "worst r4 error {worst}");
        assert!(ops.born_far > 0);
    }

    #[test]
    fn r4_and_r6_radii_are_correlated_but_different() {
        // Ablation: both estimate the same physical quantity; r⁶ is the
        // paper's choice for spherical solutes. They should correlate
        // strongly but not coincide.
        let mol = synth::protein("p", 300, 9);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (r6, _) = born_radii_naive(&sys, MathMode::Exact);
        let (r4, _) = born_radii_octree_r4(&sys, 0.9);
        let mut diffs = 0usize;
        let mut sum_ratio = 0.0;
        for (a, b) in r6.iter().zip(&r4) {
            if ((a - b) / a).abs() > 1e-6 {
                diffs += 1;
            }
            sum_ratio += b / a;
        }
        assert!(diffs > 0, "r4 and r6 should differ somewhere");
        let mean_ratio = sum_ratio / r6.len() as f64;
        assert!(
            (0.5..2.0).contains(&mean_ratio),
            "mean r4/r6 ratio {mean_ratio}"
        );
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(born_radius_from_r4_integral(0.0, 1.5), BORN_RADIUS_MAX);
        assert_eq!(born_radius_from_r4_integral(-1.0, 1.5), BORN_RADIUS_MAX);
        assert_eq!(born_radius_from_r4_integral(1e9, 1.5), 1.5);
    }
}
