//! Execution drivers: the four rows of Table II.
//!
//! | Name | Algorithm | Parallelism |
//! |---|---|---|
//! | `Naive` | Eq. 2/4 exact | serial |
//! | `OCT_serial` | single-tree (Fig. 2/3) | serial |
//! | `OCT_CILK` | dual-tree ([6]) | shared memory, `p` threads |
//! | `OCT_MPI` | Fig. 4 | distributed, `P` ranks × 1 thread |
//! | `OCT_MPI+CILK` | Fig. 4 | hybrid, `P` ranks × `p` threads |
//!
//! All drivers execute the real kernels (energies are exact outputs of the
//! algorithms); simulated times come from op counts × calibrated per-op
//! costs, the Grama collective model, intra-node work-stealing makespans,
//! and the §V.B memory-replication slowdown (see `polaroct-cluster`).

use crate::born::{
    approx_integrals, approx_integrals_clipped, approx_integrals_scratch, push_integrals_to_atoms,
    BornAccumulators,
};
use crate::dual::{born_radii_dual, epol_dual_raw};
use crate::epol::{
    approx_epol_leaf, approx_epol_leaf_clipped, approx_epol_leaf_scratch, ChargeBins,
};
use crate::gb::epol_from_raw_sum;
use crate::naive::{born_radii_naive, epol_naive_raw};
use crate::params::ApproxParams;
use crate::soa::{AtomSoa, QLeafSoa};
use crate::system::GbSystem;
use crate::workdiv::WorkDivision;
use polaroct_cluster::{
    calib::KernelCosts,
    machine::ClusterSpec,
    memory::MemoryModel,
    runner::run_spmd,
    simtime::{OpCounts, SimClock},
};
use polaroct_geom::fastmath::MathMode;
use polaroct_sched::{StealSimParams, StealSimulator, WorkStealingPool};
use std::time::Instant;

/// Driver tuning knobs with constants calibrated against the paper's
/// observations (documented per field).
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Per-op costs (calibrated or the Lonestar4 reference).
    pub costs: KernelCosts,
    /// Multiplier on OCT_CILK's compute: the paper's cilk-4.5.4 build was
    /// markedly less optimized than the MPI path (§V.C: "MPI turns out to
    /// be more optimized compared to the cilk++ implementation ... cilk++
    /// does not maintain thread affinity").
    pub cilk_efficiency: f64,
    /// Multiplier on the hybrid driver's intra-node compute (smaller than
    /// `cilk_efficiency`: the hybrid reuses the single-tree kernels and
    /// pins one process per socket, §V.A).
    pub hybrid_efficiency: f64,
    /// Per-phase cost of interfacing cilk++ with MPI in the hybrid driver
    /// (§V.C: "an additional overhead of interfacing cilk++ and MPI").
    pub hybrid_phase_overhead: f64,
    /// Virtual cost of one steal in the intra-node scheduler.
    pub steal_cost: f64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            costs: KernelCosts::lonestar4_reference(),
            cilk_efficiency: 1.35,
            hybrid_efficiency: 1.18,
            hybrid_phase_overhead: 400e-6,
            steal_cost: 1.5e-6,
        }
    }
}

/// Measured wall-clock breakdown of one run's phases (Fig. 4 step
/// grouping), from `std::time::Instant` — as opposed to [`RunReport::time`],
/// which is *simulated* from op counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// `APPROX-INTEGRALS` over all quadrature leaves (Step 2).
    pub integrals: f64,
    /// `PUSH-INTEGRALS-TO-ATOMS` (Step 4).
    pub push: f64,
    /// Born-radius charge binning.
    pub bins: f64,
    /// `APPROX-E_pol` over all atom leaves (Step 6).
    pub epol: f64,
}

impl PhaseTimes {
    /// Sum of the phase times (excludes setup not covered by a phase).
    pub fn total(&self) -> f64 {
        self.integrals + self.push + self.bins + self.epol
    }
}

/// Outcome of one driver run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Driver name (Table II row).
    pub name: String,
    /// Polarization energy in kcal/mol.
    pub energy_kcal: f64,
    /// Born radii in the molecule's original atom order.
    pub born_radii: Vec<f64>,
    /// Simulated parallel wall time (seconds).
    pub time: f64,
    /// Max per-rank compute / comm / wait components.
    pub compute: f64,
    pub comm: f64,
    pub wait: f64,
    /// Total kernel ops across all ranks.
    pub ops: OpCounts,
    /// Bytes one process replica holds.
    pub memory_per_process: usize,
    /// Cores the configuration uses.
    pub cores: usize,
    /// Measured host wall-clock seconds for the whole run. For the
    /// simulated-cluster drivers this is the time to *execute* the
    /// simulation on this host (all ranks sequentially), not the modeled
    /// cluster time in [`RunReport::time`].
    pub wall_seconds: f64,
    /// Measured per-phase breakdown; zeroed for drivers that interleave
    /// phases across simulated ranks (Fig. 4) where a per-phase host
    /// clock would be meaningless.
    pub phases: PhaseTimes,
}

impl RunReport {
    /// Speedup of this run over `other` (`other.time / self.time`).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other.time / self.time
    }
}

fn seconds(cfg: &DriverConfig, ops: &OpCounts, math: MathMode) -> f64 {
    cfg.costs.seconds(ops, math == MathMode::Approx)
}

/// Serial naïve exact run (Table II "Naïve").
pub fn run_naive(sys: &GbSystem, params: &ApproxParams, cfg: &DriverConfig) -> RunReport {
    let wall = Instant::now();
    let t = Instant::now();
    let (born, mut ops) = born_radii_naive(sys, params.math);
    let integrals = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (raw, eops) = epol_naive_raw(sys, &born, params.math);
    let epol = t.elapsed().as_secs_f64();
    ops.add(&eops);
    let time = seconds(cfg, &ops, params.math);
    RunReport {
        name: "Naive".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: time,
        comm: 0.0,
        wait: 0.0,
        ops,
        memory_per_process: sys.memory_bytes(),
        cores: 1,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: PhaseTimes {
            integrals,
            epol,
            ..Default::default()
        },
    }
}

/// Serial single-tree octree run (one core; the baseline the speedup
/// plots divide by when assessing parallel efficiency).
///
/// Phase-by-phase equivalent of [`run_oct_threads`] with one worker: the
/// same SoA kernels in the same leaf order, so the threaded driver's
/// energies can be validated against this one to reduction-roundoff
/// (≤1e-12 relative) rather than approximation tolerance.
pub fn run_serial(sys: &GbSystem, params: &ApproxParams, cfg: &DriverConfig) -> RunReport {
    let wall = Instant::now();
    let math = params.math;

    // ---- APPROX-INTEGRALS over every quadrature leaf (leaf order).
    let t = Instant::now();
    let mut acc = BornAccumulators::zeros(sys);
    let mut ops = OpCounts::default();
    let mut q_scratch = QLeafSoa::default();
    for &q in &sys.qtree.leaf_ids {
        ops.add(&approx_integrals_scratch(
            sys,
            q,
            params.eps_born,
            &mut acc,
            &mut q_scratch,
        ));
    }
    let integrals = t.elapsed().as_secs_f64();

    // ---- PUSH-INTEGRALS-TO-ATOMS.
    let t = Instant::now();
    let mut born = vec![0.0; sys.n_atoms()];
    ops.add(&push_integrals_to_atoms(
        sys,
        &acc,
        0..sys.n_atoms(),
        math,
        &mut born,
    ));
    let push = t.elapsed().as_secs_f64();

    // ---- Charge binning.
    let t = Instant::now();
    let bins = ChargeBins::build(sys, &born, params.eps_epol);
    let bins_t = t.elapsed().as_secs_f64();

    // ---- APPROX-E_pol over every atom leaf (leaf order).
    let t = Instant::now();
    let mut raw = 0.0;
    let mut a_scratch = AtomSoa::default();
    for &v in &sys.atoms.leaf_ids {
        let (r, o) =
            approx_epol_leaf_scratch(sys, &bins, &born, v, params.eps_epol, math, &mut a_scratch);
        raw += r;
        ops.add(&o);
    }
    let epol = t.elapsed().as_secs_f64();

    let time = seconds(cfg, &ops, math);
    RunReport {
        name: "OCT_serial".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: time,
        comm: 0.0,
        wait: 0.0,
        ops,
        memory_per_process: sys.memory_bytes() + bins.memory_bytes(),
        cores: 1,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: PhaseTimes {
            integrals,
            push,
            bins: bins_t,
            epol,
        },
    }
}

/// Shared-memory dual-tree run (`OCT_CILK`): one process, `p` threads,
/// randomized work stealing. Timing uses the Blumofe–Leiserson bound
/// `T_p ≈ T_1/p + c·T_∞` with the span estimated from the recursion depth.
pub fn run_oct_cilk(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    threads: usize,
) -> RunReport {
    assert!(threads >= 1);
    let wall = Instant::now();
    let t = Instant::now();
    let (born, mut ops) = born_radii_dual(sys, params.eps_born, params.math);
    let integrals = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let bins = ChargeBins::build(sys, &born, params.eps_epol);
    let bins_t = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (raw, eops) = epol_dual_raw(sys, &bins, &born, params.eps_epol, params.math);
    let epol = t.elapsed().as_secs_f64();
    ops.add(&eops);

    // §V.A: cilk++ has no thread-affinity manager, so the working set is
    // not partitioned per core — each thread effectively streams the whole
    // replica. Model that as the one-core working-set slowdown.
    let no_affinity = polaroct_cluster::machine::ClusterSpec::new(
        polaroct_cluster::machine::MachineSpec::lonestar4(),
        polaroct_cluster::machine::Placement::new(1, 1),
    );
    // Squared: without affinity every reload misses both the L1/L2 the
    // task last ran on *and* the socket-local L3 half the time (calibrated
    // against the paper's OCT_CILK-vs-OCT_MPI gap at CMV scale).
    let slowdown = MemoryModel::new(sys.memory_bytes())
        .slowdown(&no_affinity)
        .powi(2);
    let t1 = seconds(cfg, &ops, params.math) * cfg.cilk_efficiency * slowdown;
    let stats = sys.atoms.stats();
    let time = fork_join_makespan(
        t1,
        stats.leaves,
        stats.max_depth as u32,
        threads,
        cfg.steal_cost,
    );
    RunReport {
        name: "OCT_CILK".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: time,
        comm: 0.0,
        wait: 0.0,
        ops,
        memory_per_process: sys.memory_bytes() + bins.memory_bytes(),
        cores: threads,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: PhaseTimes {
            integrals,
            bins: bins_t,
            epol,
            ..Default::default()
        },
    }
}

/// Brent/Blumofe–Leiserson makespan for a fork-join computation of total
/// work `t1`, about `n_tasks` leaf tasks and spawn-tree depth `depth` on
/// `p` workers. Public so benches can print the modeled speedup next to a
/// measured one (see `measured_speedup`).
pub fn fork_join_makespan(t1: f64, n_tasks: usize, depth: u32, p: usize, steal_cost: f64) -> f64 {
    if p <= 1 {
        return t1;
    }
    let span = (t1 / n_tasks.max(1) as f64) * (depth as f64 + 1.0);
    t1 / p as f64 + span + steal_cost * p as f64 * (depth as f64 + 1.0)
}

/// Leaf blocks per parallel phase of [`run_oct_threads`]. Fixed — NOT a
/// function of the worker count — so the block partition, and with it
/// every floating-point reduction order, is identical for every `threads`
/// value (see the determinism note on the driver).
const THREAD_BLOCKS: usize = 64;

/// Shared-memory single-tree run on *real* OS threads: fans the
/// `APPROX-INTEGRALS` q-point leaves and the `APPROX-E_pol` atom leaves
/// over [`WorkStealingPool`], with the same SoA leaf kernels as
/// [`run_serial`].
///
/// **Determinism.** Leaves are grouped into [`THREAD_BLOCKS`] contiguous
/// blocks (a fixed partition independent of `threads`). Each block task
/// accumulates its own `BornAccumulators` / raw E_pol partial / op counts
/// over its leaves *in leaf-id order*, and the per-block partials are
/// merged serially *in block order* — never in completion order. Energies
/// are therefore bit-identical across thread counts, and differ from
/// [`run_serial`] only by the block-boundary reassociation of the same
/// ordered term list (≤1e-12 relative in practice).
///
/// `RunReport::time` still carries the fork-join *model* prediction (for
/// modeled-vs-measured comparisons); the measured host times live in
/// `wall_seconds` / `phases`.
pub fn run_oct_threads(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    threads: usize,
) -> RunReport {
    assert!(threads >= 1);
    let wall = Instant::now();
    let math = params.math;
    let pool = WorkStealingPool::new(threads);

    // ---- APPROX-INTEGRALS: q-leaf blocks fanned over the pool.
    let t = Instant::now();
    let q_blocks = sys
        .qtree
        .partition_leaves(THREAD_BLOCKS.min(sys.qtree.leaf_count().max(1)));
    let born_parts: Vec<Option<(BornAccumulators, OpCounts)>> = pool.map(q_blocks.len(), |b| {
        let mut acc = BornAccumulators::zeros(sys);
        let mut ops = OpCounts::default();
        let mut scratch = QLeafSoa::default();
        for &q in &sys.qtree.leaf_ids[q_blocks[b].clone()] {
            ops.add(&approx_integrals_scratch(
                sys,
                q,
                params.eps_born,
                &mut acc,
                &mut scratch,
            ));
        }
        Some((acc, ops))
    });
    // Merge in block order (deterministic reduction).
    let mut acc = BornAccumulators::zeros(sys);
    let mut ops = OpCounts::default();
    for part in born_parts {
        let (pa, po) = part.expect("every block task runs exactly once");
        for (a, p) in acc.node.iter_mut().zip(&pa.node) {
            *a += p;
        }
        for (a, p) in acc.atom.iter_mut().zip(&pa.atom) {
            *a += p;
        }
        ops.add(&po);
    }
    let integrals = t.elapsed().as_secs_f64();

    // ---- PUSH-INTEGRALS-TO-ATOMS: disjoint atom chunks. Radii are
    // written independently per atom, so this phase is order-free; the
    // fixed chunking just bounds task-creation overhead.
    let t = Instant::now();
    let n = sys.n_atoms();
    let push_blocks = THREAD_BLOCKS.min(n.max(1));
    type PushPart = Option<(std::ops::Range<usize>, Vec<f64>, OpCounts)>;
    let push_parts: Vec<PushPart> = pool.map(push_blocks, |c| {
        let lo = c * n / push_blocks;
        let hi = (c + 1) * n / push_blocks;
        // The push API writes through a full-length slice; each task
        // fills a scratch one and hands back only its segment. The
        // O(n) zeroing per task is noise next to the kernel phases.
        let mut full = vec![0.0; n];
        let ops = push_integrals_to_atoms(sys, &acc, lo..hi, math, &mut full);
        Some((lo..hi, full[lo..hi].to_vec(), ops))
    });
    let mut born = vec![0.0; n];
    for part in push_parts {
        let (range, seg, po) = part.expect("every push task runs exactly once");
        born[range].copy_from_slice(&seg);
        ops.add(&po);
    }
    let push = t.elapsed().as_secs_f64();

    // ---- Charge binning: serial (O(M·M_ε), negligible).
    let t = Instant::now();
    let bins = ChargeBins::build(sys, &born, params.eps_epol);
    let bins_t = t.elapsed().as_secs_f64();

    // ---- APPROX-E_pol: atom-leaf blocks fanned over the pool.
    let t = Instant::now();
    let a_blocks = sys
        .atoms
        .partition_leaves(THREAD_BLOCKS.min(sys.atoms.leaf_count().max(1)));
    let epol_parts: Vec<Option<(f64, OpCounts)>> = pool.map(a_blocks.len(), |b| {
        let mut raw = 0.0;
        let mut ops = OpCounts::default();
        let mut scratch = AtomSoa::default();
        for &v in &sys.atoms.leaf_ids[a_blocks[b].clone()] {
            let (r, o) =
                approx_epol_leaf_scratch(sys, &bins, &born, v, params.eps_epol, math, &mut scratch);
            raw += r;
            ops.add(&o);
        }
        Some((raw, ops))
    });
    let mut raw = 0.0;
    for part in epol_parts {
        let (r, po) = part.expect("every block task runs exactly once");
        raw += r;
        ops.add(&po);
    }
    let epol = t.elapsed().as_secs_f64();

    // Modeled fork-join makespan over the same work, for side-by-side
    // modeled-vs-measured reporting.
    let t1 = seconds(cfg, &ops, math);
    let stats = sys.atoms.stats();
    let time = fork_join_makespan(
        t1,
        stats.leaves,
        stats.max_depth as u32,
        threads,
        cfg.steal_cost,
    );

    RunReport {
        name: "OCT_THREADS".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: time,
        comm: 0.0,
        wait: 0.0,
        ops,
        memory_per_process: sys.memory_bytes() + bins.memory_bytes(),
        cores: threads,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: PhaseTimes {
            integrals,
            push,
            bins: bins_t,
            epol,
        },
    }
}

/// Distributed run (`OCT_MPI`): Fig. 4 with one thread per rank.
pub fn run_oct_mpi(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
    workdiv: WorkDivision,
) -> RunReport {
    assert_eq!(
        cluster.placement.threads_per_process, 1,
        "OCT_MPI is the pure distributed configuration"
    );
    run_fig4(sys, params, cfg, cluster, workdiv, "OCT_MPI")
}

/// Hybrid run (`OCT_MPI+CILK`): Fig. 4 with `p > 1` threads per rank.
pub fn run_oct_hybrid(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
) -> RunReport {
    assert!(
        cluster.placement.threads_per_process > 1,
        "hybrid needs more than one thread per rank"
    );
    run_fig4(
        sys,
        params,
        cfg,
        cluster,
        WorkDivision::NodeNode,
        "OCT_MPI+CILK",
    )
}

/// The Fig. 4 algorithm, shared by `OCT_MPI` (p = 1) and `OCT_MPI+CILK`
/// (p > 1). Steps map one-to-one onto the paper's listing.
fn run_fig4(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
    workdiv: WorkDivision,
    name: &str,
) -> RunReport {
    let wall = Instant::now();
    let p_threads = cluster.placement.threads_per_process;
    let hybrid = p_threads > 1;
    let mem = MemoryModel::new(sys.memory_bytes());
    let slowdown = mem.slowdown(cluster);
    let math = params.math;

    // Charge a rank's phase: serial ranks convert op totals directly;
    // hybrid ranks run the per-task costs through the steal simulator.
    let charge_phase = |clock: &mut SimClock, task_ops: &[OpCounts], rank_seed: u64| {
        if hybrid {
            let costs: Vec<f64> = task_ops
                .iter()
                .map(|o| seconds(cfg, o, math) * cfg.hybrid_efficiency * slowdown)
                .collect();
            let sim = StealSimulator::new(StealSimParams {
                workers: p_threads,
                steal_cost: cfg.steal_cost,
                seed: 0xC11C ^ rank_seed,
                ..Default::default()
            });
            clock.add_compute(sim.simulate(&costs).makespan + cfg.hybrid_phase_overhead);
        } else {
            let mut total = OpCounts::default();
            for o in task_ops {
                total.add(o);
            }
            clock.add_compute(seconds(cfg, &total, math) * slowdown);
        }
    };

    type RankOut = (f64, Vec<f64>, OpCounts);
    let res = run_spmd(cluster, cfg.costs, |ctx| -> RankOut {
        let size = ctx.size;
        let rank = ctx.rank;
        let mut clock = ctx.clock;
        let mut rank_ops = OpCounts::default();

        // ---- Step 1: every rank "builds" both octrees (pre-processing,
        // excluded from timing per §IV.C Step 1). We share the replica.

        // ---- Step 2: approximated integrals for this rank's share of
        // quadrature leaves / q-points.
        let mut acc = BornAccumulators::zeros(sys);
        let mut task_ops: Vec<OpCounts> = Vec::new();
        match workdiv {
            WorkDivision::NodeNode => {
                let ranges = sys.qtree.partition_leaves(size);
                for &q in &sys.qtree.leaf_ids[ranges[rank].clone()] {
                    task_ops.push(approx_integrals(sys, q, params.eps_born, &mut acc));
                }
            }
            WorkDivision::AtomBased => {
                let ranges = sys.qtree.partition_points(size);
                let my = &ranges[rank];
                for &q in &sys.qtree.leaf_ids {
                    let node = sys.qtree.node(q);
                    if node.end as usize <= my.start || node.begin as usize >= my.end {
                        continue;
                    }
                    task_ops.push(approx_integrals_clipped(
                        sys,
                        q,
                        my,
                        params.eps_born,
                        &mut acc,
                    ));
                }
            }
        }
        for o in &task_ops {
            rank_ops.add(o);
        }
        charge_phase(&mut clock, &task_ops, rank as u64);

        // ---- Step 3: gather partial integrals (MPI_Allreduce).
        let mut flat = acc.to_flat();
        ctx.comm.allreduce_sum(&mut flat, &mut clock);
        acc.from_flat(&flat);

        // ---- Step 4: push integrals; rank i finalizes the i-th atom
        // segment.
        let atom_ranges = sys.atoms.partition_points(size);
        let my_atoms = atom_ranges[rank].clone();
        let mut born = vec![0.0; sys.n_atoms()];
        let mut push_tasks: Vec<OpCounts> = Vec::new();
        if hybrid {
            // Split the segment into p*4 chunks for the intra-node pool.
            let chunks = (p_threads * 4).max(1);
            let len = my_atoms.len();
            for c in 0..chunks {
                let lo = my_atoms.start + c * len / chunks;
                let hi = my_atoms.start + (c + 1) * len / chunks;
                if lo < hi {
                    push_tasks.push(push_integrals_to_atoms(sys, &acc, lo..hi, math, &mut born));
                }
            }
        } else {
            push_tasks.push(push_integrals_to_atoms(
                sys,
                &acc,
                my_atoms.clone(),
                math,
                &mut born,
            ));
        }
        for o in &push_tasks {
            rank_ops.add(o);
        }
        charge_phase(&mut clock, &push_tasks, rank as u64 ^ 0x4444);

        // ---- Step 5: gather Born radii (MPI_Allgatherv).
        let full = ctx.comm.allgatherv(&born[my_atoms.clone()], &mut clock);
        assert_eq!(full.len(), sys.n_atoms());
        let born = full;

        // Charge binning: O(M·M_ε) on every rank, tiny next to the
        // kernels, charged as node visits.
        let bins = ChargeBins::build(sys, &born, params.eps_epol);
        let bin_ops = OpCounts {
            nodes_visited: sys.n_atoms() as u64,
            ..Default::default()
        };
        rank_ops.add(&bin_ops);
        charge_phase(&mut clock, &[bin_ops], rank as u64 ^ 0x5555);

        // ---- Step 6: partial energies for this rank's share of atom
        // leaves / atoms.
        let mut raw = 0.0;
        let mut epol_tasks: Vec<OpCounts> = Vec::new();
        match workdiv {
            WorkDivision::NodeNode => {
                let ranges = sys.atoms.partition_leaves(size);
                for &v in &sys.atoms.leaf_ids[ranges[rank].clone()] {
                    let (r, o) = approx_epol_leaf(sys, &bins, &born, v, params.eps_epol, math);
                    raw += r;
                    epol_tasks.push(o);
                }
            }
            WorkDivision::AtomBased => {
                let my = &atom_ranges[rank];
                for &v in &sys.atoms.leaf_ids {
                    let node = sys.atoms.node(v);
                    if node.end as usize <= my.start || node.begin as usize >= my.end {
                        continue;
                    }
                    let (r, o) =
                        approx_epol_leaf_clipped(sys, &bins, &born, v, my, params.eps_epol, math);
                    raw += r;
                    epol_tasks.push(o);
                }
            }
        }
        for o in &epol_tasks {
            rank_ops.add(o);
        }
        charge_phase(&mut clock, &epol_tasks, rank as u64 ^ 0x6666);

        // ---- Step 7: master accumulates partial energies (MPI_Reduce).
        let total_raw = ctx.comm.reduce_sum_scalar(raw, &mut clock);

        ctx.clock = clock;
        (total_raw.unwrap_or(0.0), born, rank_ops)
    });

    // Root rank (0) holds the final energy; all ranks hold full radii.
    let raw = res.per_rank[0].0;
    let born_sorted = res.per_rank[0].1.clone();
    let mut ops = OpCounts::default();
    for (_, _, o) in &res.per_rank {
        ops.add(o);
    }
    let time = res.parallel_time();
    let compute = res.clocks.iter().map(|c| c.compute).fold(0.0, f64::max);
    let comm = res.clocks.iter().map(|c| c.comm).fold(0.0, f64::max);
    let wait = res.clocks.iter().map(|c| c.wait).fold(0.0, f64::max);

    RunReport {
        name: name.into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born_sorted),
        time,
        compute,
        comm,
        wait,
        ops,
        memory_per_process: sys.memory_bytes(),
        cores: cluster.placement.total_cores(),
        wall_seconds: wall.elapsed().as_secs_f64(),
        // Ranks run sequentially on the host with phases interleaved, so
        // a per-phase host clock would be meaningless here.
        phases: PhaseTimes::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_cluster::machine::{MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn system(n: usize, seed: u64) -> GbSystem {
        GbSystem::prepare(&synth::protein("p", n, seed), &ApproxParams::default())
    }

    fn cluster(cores: usize) -> ClusterSpec {
        ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(cores))
    }

    fn hybrid_cluster(cores: usize) -> ClusterSpec {
        let m = MachineSpec::lonestar4();
        ClusterSpec::new(m, Placement::hybrid_per_socket(cores, &m))
    }

    #[test]
    fn all_drivers_agree_on_energy_within_tolerance() {
        let sys = system(400, 3);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let naive = run_naive(&sys, &params, &cfg);
        let serial = run_serial(&sys, &params, &cfg);
        let cilk = run_oct_cilk(&sys, &params, &cfg, 12);
        let mpi = run_oct_mpi(&sys, &params, &cfg, &cluster(12), WorkDivision::NodeNode);
        let hyb = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(12));
        // All octree variants within 1% of naive (the paper's bound).
        for r in [&serial, &cilk, &mpi, &hyb] {
            let err = ((r.energy_kcal - naive.energy_kcal) / naive.energy_kcal).abs();
            assert!(err < 0.01, "{}: error {err}", r.name);
            assert!(r.energy_kcal < 0.0, "{}: E_pol must be negative", r.name);
        }
        // Single-tree variants (serial / MPI / hybrid) agree bit-tightly.
        assert!(((serial.energy_kcal - mpi.energy_kcal) / serial.energy_kcal).abs() < 1e-9);
        assert!(((serial.energy_kcal - hyb.energy_kcal) / serial.energy_kcal).abs() < 1e-9);
    }

    #[test]
    fn mpi_energy_is_p_invariant_for_node_division() {
        let sys = system(300, 5);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let e1 = run_oct_mpi(&sys, &params, &cfg, &cluster(1), WorkDivision::NodeNode).energy_kcal;
        for cores in [2usize, 4, 12] {
            let e = run_oct_mpi(&sys, &params, &cfg, &cluster(cores), WorkDivision::NodeNode)
                .energy_kcal;
            assert!(
                ((e - e1) / e1).abs() < 1e-12,
                "node-node energy changed with P={cores}: {e} vs {e1}"
            );
        }
    }

    #[test]
    fn atom_division_energy_varies_with_p() {
        let sys = system(300, 5);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let e2 = run_oct_mpi(&sys, &params, &cfg, &cluster(2), WorkDivision::AtomBased).energy_kcal;
        let e7 = run_oct_mpi(&sys, &params, &cfg, &cluster(7), WorkDivision::AtomBased).energy_kcal;
        assert!(
            (e2 - e7).abs() > 1e-13 * e2.abs(),
            "atom-based division should vary with P ({e2} vs {e7})"
        );
        // ... but both stay within the error bound.
        let naive = run_naive(&sys, &params, &cfg).energy_kcal;
        assert!(((e2 - naive) / naive).abs() < 0.01);
        assert!(((e7 - naive) / naive).abs() < 0.01);
    }

    #[test]
    fn distributed_scales_down_time() {
        let sys = system(900, 7);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let t1 = run_oct_mpi(&sys, &params, &cfg, &cluster(1), WorkDivision::NodeNode).time;
        let t12 = run_oct_mpi(&sys, &params, &cfg, &cluster(12), WorkDivision::NodeNode).time;
        assert!(t12 < t1, "12 ranks ({t12}) should beat 1 ({t1})");
        assert!(t1 / t12 > 3.0, "speedup {} too small", t1 / t12);
    }

    #[test]
    fn octree_beats_naive_on_medium_molecules() {
        let sys = system(1200, 9);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let naive = run_naive(&sys, &params, &cfg);
        let serial = run_serial(&sys, &params, &cfg);
        assert!(
            serial.time < naive.time,
            "octree ({}) should beat naive ({})",
            serial.time,
            naive.time
        );
    }

    #[test]
    fn reports_have_consistent_metadata() {
        let sys = system(200, 1);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let r = run_oct_mpi(&sys, &params, &cfg, &cluster(4), WorkDivision::NodeNode);
        assert_eq!(r.cores, 4);
        assert_eq!(r.born_radii.len(), 200);
        assert!(r.memory_per_process > 0);
        assert!(r.ops.total() > 0);
        assert!(r.comm > 0.0, "distributed run must pay communication");
        let h = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(12));
        assert_eq!(h.cores, 12);
        assert_eq!(h.name, "OCT_MPI+CILK");
    }

    #[test]
    fn born_radii_match_across_drivers() {
        let sys = system(250, 11);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let serial = run_serial(&sys, &params, &cfg);
        let mpi = run_oct_mpi(&sys, &params, &cfg, &cluster(6), WorkDivision::NodeNode);
        for (a, b) in serial.born_radii.iter().zip(&mpi.born_radii) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn threads_driver_matches_serial_energy() {
        let sys = system(400, 3);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let serial = run_serial(&sys, &params, &cfg);
        for threads in [1usize, 2, 4, 8] {
            let thr = run_oct_threads(&sys, &params, &cfg, threads);
            let rel = ((thr.energy_kcal - serial.energy_kcal) / serial.energy_kcal).abs();
            assert!(
                rel <= 1e-12,
                "threads={threads}: {} vs serial {} (rel {rel})",
                thr.energy_kcal,
                serial.energy_kcal
            );
            // Kernel pair counts match exactly; `nodes_visited` does not
            // (the chunked push re-walks shared ancestors per chunk).
            assert_eq!(thr.ops.born_near, serial.ops.born_near);
            assert_eq!(thr.ops.born_far, serial.ops.born_far);
            assert_eq!(thr.ops.epol_near, serial.ops.epol_near);
            assert_eq!(thr.ops.epol_far, serial.ops.epol_far);
            // Radii agree to reassociation error only: the threaded driver
            // merges per-block `BornAccumulators` subtotals, so each atom's
            // integral sums in a different association than serial's single
            // running sum. Bit-identity holds across thread *widths* (see
            // `threads_driver_is_bit_reproducible_across_widths`), not here.
            for (a, b) in thr.born_radii.iter().zip(&serial.born_radii) {
                assert!(((a - b) / b).abs() <= 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn threads_driver_is_bit_reproducible_across_widths() {
        // The block partition is fixed, so the FP reduction order — and
        // with it the energy bits — must not depend on the worker count.
        let sys = system(300, 7);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let e1 = run_oct_threads(&sys, &params, &cfg, 1).energy_kcal;
        for threads in [2usize, 3, 4, 8] {
            let e = run_oct_threads(&sys, &params, &cfg, threads).energy_kcal;
            assert_eq!(e.to_bits(), e1.to_bits(), "threads={threads}: {e} vs {e1}");
        }
    }

    #[test]
    fn measured_wall_clock_is_populated() {
        let sys = system(200, 5);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        for r in [
            run_serial(&sys, &params, &cfg),
            run_oct_threads(&sys, &params, &cfg, 2),
        ] {
            assert!(r.wall_seconds > 0.0, "{}: wall clock not measured", r.name);
            assert!(
                r.phases.integrals > 0.0,
                "{}: integrals phase empty",
                r.name
            );
            assert!(r.phases.epol > 0.0, "{}: epol phase empty", r.name);
            assert!(
                r.phases.total() <= r.wall_seconds,
                "{}: phases {} exceed wall {}",
                r.name,
                r.phases.total(),
                r.wall_seconds
            );
        }
        let f = run_oct_mpi(&sys, &params, &cfg, &cluster(2), WorkDivision::NodeNode);
        assert!(f.wall_seconds > 0.0);
        assert_eq!(f.phases, PhaseTimes::default());
    }

    #[test]
    fn fork_join_makespan_bounds() {
        let t1 = 1.0;
        assert_eq!(fork_join_makespan(t1, 100, 10, 1, 1e-6), t1);
        let t4 = fork_join_makespan(t1, 100, 10, 4, 1e-6);
        assert!(t4 >= t1 / 4.0);
        assert!(t4 < t1, "4 workers should beat serial");
    }
}
