//! Execution drivers: the four rows of Table II.
//!
//! | Name | Algorithm | Parallelism |
//! |---|---|---|
//! | `Naive` | Eq. 2/4 exact | serial |
//! | `OCT_serial` | single-tree (Fig. 2/3) | serial |
//! | `OCT_CILK` | dual-tree ([6]) | shared memory, `p` threads |
//! | `OCT_MPI` | Fig. 4 | distributed, `P` ranks × 1 thread |
//! | `OCT_MPI+CILK` | Fig. 4 | hybrid, `P` ranks × `p` threads |
//!
//! All drivers execute the real kernels (energies are exact outputs of the
//! algorithms); simulated times come from op counts × calibrated per-op
//! costs, the Grama collective model, intra-node work-stealing makespans,
//! and the §V.B memory-replication slowdown (see `polaroct-cluster`).

use crate::born::{
    approx_integrals, approx_integrals_clipped, push_integrals_to_atoms, BornAccumulators,
};
use crate::epol::{approx_epol_leaf, approx_epol_leaf_clipped, ChargeBins};
use crate::gb::epol_from_raw_sum;
use crate::lists::{BornLists, EpolLists};
use crate::naive::{born_radii_naive, epol_naive_raw};
use crate::params::ApproxParams;
use crate::system::GbSystem;
use crate::workdiv::WorkDivision;
use polaroct_cluster::{
    calib::KernelCosts,
    comm::Recovery,
    fault::{phase, FaultKind, FaultPlan, FtPolicy, FtReport, RecoverMode},
    machine::ClusterSpec,
    memory::MemoryModel,
    runner::{run_spmd_ft, RankContext, RankError},
    simtime::{OpCounts, SimClock},
};
use polaroct_geom::fastmath::MathMode;
use polaroct_molecule::Molecule;
use polaroct_sched::{StealSimParams, StealSimulator, WorkStealingPool};
use polaroct_surface::surface_quadrature;
use std::fmt;
use std::time::{Duration, Instant};

/// Driver tuning knobs with constants calibrated against the paper's
/// observations (documented per field).
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Per-op costs (calibrated or the Lonestar4 reference).
    pub costs: KernelCosts,
    /// Multiplier on OCT_CILK's compute: the paper's cilk-4.5.4 build was
    /// markedly less optimized than the MPI path (§V.C: "MPI turns out to
    /// be more optimized compared to the cilk++ implementation ... cilk++
    /// does not maintain thread affinity").
    pub cilk_efficiency: f64,
    /// Multiplier on the hybrid driver's intra-node compute (smaller than
    /// `cilk_efficiency`: the hybrid reuses the single-tree kernels and
    /// pins one process per socket, §V.A).
    pub hybrid_efficiency: f64,
    /// Per-phase cost of interfacing cilk++ with MPI in the hybrid driver
    /// (§V.C: "an additional overhead of interfacing cilk++ and MPI").
    pub hybrid_phase_overhead: f64,
    /// Virtual cost of one steal in the intra-node scheduler.
    pub steal_cost: f64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            costs: KernelCosts::lonestar4_reference(),
            cilk_efficiency: 1.35,
            hybrid_efficiency: 1.18,
            hybrid_phase_overhead: 400e-6,
            steal_cost: 1.5e-6,
        }
    }
}

/// Relaxed ε used when a lost contribution is regenerated in *degraded*
/// mode: the multipole-acceptance multiplier collapses to
/// `(2+ε)/ε = 1.25`, so almost every interaction takes the cheap
/// far-field path. The result is a fast, biased approximation — the run
/// reports [`RunOutcome::Degraded`] with widened error bars instead of
/// silently mixing it into an "exact" energy.
pub const EPS_DEGRADED: f64 = 8.0;

/// How the fault-tolerant drivers respond to lost contributions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryMode {
    /// No recovery: any lost contribution fails the run (within the
    /// collective timeout — never a hang).
    Disabled,
    /// Re-execute the lost rank's static segment with the same code over
    /// the same partition; the merged energy is bit-identical to the
    /// fault-free run.
    #[default]
    Reexecute,
    /// Regenerate lost contributions with the far-field-only
    /// approximation ([`EPS_DEGRADED`]) — cheaper, but the run degrades.
    Degrade,
}

impl RecoveryMode {
    pub(crate) fn prefer(self) -> Option<RecoverMode> {
        match self {
            RecoveryMode::Disabled => None,
            RecoveryMode::Reexecute => Some(RecoverMode::Exact),
            RecoveryMode::Degrade => Some(RecoverMode::Degraded),
        }
    }
}

/// Fault-injection + fault-tolerance configuration for the `_ft` driver
/// entry points. The default injects nothing and recovers by exact
/// re-execution.
#[derive(Clone, Debug, Default)]
pub struct FtConfig {
    /// Faults to inject (empty = none).
    pub plan: FaultPlan,
    /// Timeout / retry / degraded-fallback knobs.
    pub policy: FtPolicy,
    /// What to do about lost contributions.
    pub recovery: RecoveryMode,
}

/// How a driver run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutcome {
    /// Fault-free execution.
    Completed,
    /// Faults fired, every lost contribution was re-executed exactly:
    /// the energy is bit-identical to the fault-free run. `n_retries`
    /// counts recovery rounds (distributed) or re-executed blocks
    /// (threads driver).
    Recovered { n_retries: u32 },
    /// Some contributions were regenerated far-field-only;
    /// `est_error_pct` is the estimated additional relative-error bar
    /// (percent) from the degraded shares.
    Degraded { est_error_pct: f64 },
    /// The run produced no trustworthy energy (kept for reporting
    /// pipelines; drivers surface this case as `Err(DriverError)`).
    Failed { cause: String },
}

impl RunOutcome {
    /// Is the energy exact (bit-identical to a fault-free run)?
    pub fn is_exact(&self) -> bool {
        matches!(self, RunOutcome::Completed | RunOutcome::Recovered { .. })
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => write!(f, "completed"),
            RunOutcome::Recovered { n_retries } => {
                write!(f, "recovered ({n_retries} retries)")
            }
            RunOutcome::Degraded { est_error_pct } => {
                write!(f, "degraded (~{est_error_pct:.2}% extra error)")
            }
            RunOutcome::Failed { cause } => write!(f, "failed: {cause}"),
        }
    }
}

/// Why a driver refused to run, or failed outright.
#[derive(Clone, Debug, PartialEq)]
pub enum DriverError {
    /// The input system carries non-finite (or non-physical) values;
    /// `index` is the offending atom's original input index (or the
    /// quadrature-point index, as stated by `what`).
    InvalidInput { index: usize, what: String },
    /// The run failed: unrecovered faults, a dead root, or exhausted
    /// recovery retries.
    Failed { cause: String },
}

impl DriverError {
    /// Fold this error into the [`RunOutcome`] column of a report table.
    pub fn outcome(&self) -> RunOutcome {
        RunOutcome::Failed { cause: self.to_string() }
    }
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::InvalidInput { index, what } => {
                write!(f, "invalid input at index {index}: {what}")
            }
            DriverError::Failed { cause } => write!(f, "run failed: {cause}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Reject systems carrying NaN/∞ coordinates, charges, weights, or
/// non-positive radii before any kernel runs. A single poisoned value
/// otherwise propagates through every collective and surfaces as a
/// far-away wrong energy with no indication of its origin. Every `run_*`
/// driver calls this at entry.
pub fn validate_system(sys: &GbSystem) -> Result<(), DriverError> {
    for i in 0..sys.n_atoms() {
        let index = sys.atoms.point_order[i] as usize;
        let p = sys.atoms.points[i];
        if !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite()) {
            return Err(DriverError::InvalidInput {
                index,
                what: format!("atom position ({}, {}, {}) is not finite", p.x, p.y, p.z),
            });
        }
        if !sys.charge[i].is_finite() {
            return Err(DriverError::InvalidInput {
                index,
                what: format!("atom charge {} is not finite", sys.charge[i]),
            });
        }
        let r = sys.radius[i];
        if !(r.is_finite() && r > 0.0) {
            return Err(DriverError::InvalidInput {
                index,
                what: format!("atom radius {r} is not finite and positive"),
            });
        }
    }
    for i in 0..sys.n_qpoints() {
        let p = sys.qtree.points[i];
        if !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite()) {
            return Err(DriverError::InvalidInput {
                index: i,
                what: format!(
                    "quadrature point ({}, {}, {}) is not finite",
                    p.x, p.y, p.z
                ),
            });
        }
        if !sys.q_weight[i].is_finite() {
            return Err(DriverError::InvalidInput {
                index: i,
                what: format!("quadrature weight {} is not finite", sys.q_weight[i]),
            });
        }
    }
    Ok(())
}

/// Measured wall-clock breakdown of one run's phases (Fig. 4 step
/// grouping), from `std::time::Instant` — as opposed to [`RunReport::time`],
/// which is *simulated* from op counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Octree construction (Step 1). Populated by the `_mol` driver
    /// entry points, which build the trees themselves ([`run_serial_mol`],
    /// [`run_oct_threads_mol`]); zero when the caller supplied a prebuilt
    /// [`GbSystem`] and construction happened outside the measured run.
    pub build: f64,
    /// `APPROX-INTEGRALS` over all quadrature leaves (Step 2).
    pub integrals: f64,
    /// `PUSH-INTEGRALS-TO-ATOMS` (Step 4).
    pub push: f64,
    /// Born-radius charge binning.
    pub bins: f64,
    /// `APPROX-E_pol` over all atom leaves (Step 6).
    pub epol: f64,
    /// Interaction-list construction (the traversal passes of
    /// `core::lists` — separate from `integrals`/`epol`, which now time
    /// only the flat kernel sweeps). Zero for drivers that still
    /// interleave traversal and kernels (naive, Fig. 4 cluster drivers).
    pub lists: f64,
}

impl PhaseTimes {
    /// Sum of the phase times (excludes setup not covered by a phase).
    pub fn total(&self) -> f64 {
        self.build + self.integrals + self.push + self.bins + self.epol + self.lists
    }
}

/// Outcome of one driver run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Driver name (Table II row).
    pub name: String,
    /// Polarization energy in kcal/mol.
    pub energy_kcal: f64,
    /// Born radii in the molecule's original atom order.
    pub born_radii: Vec<f64>,
    /// Simulated parallel wall time (seconds).
    pub time: f64,
    /// Max per-rank compute / comm / wait components.
    pub compute: f64,
    pub comm: f64,
    pub wait: f64,
    /// Total kernel ops across all ranks.
    pub ops: OpCounts,
    /// Bytes one process replica holds.
    pub memory_per_process: usize,
    /// Bytes held by the persistent flat leaf arenas (q-surface + atom
    /// SoA mirrors in Morton order); a subset of
    /// [`RunReport::memory_per_process`], surfaced separately so the
    /// arena cost of the lane-batched kernels is visible in reports.
    pub memory_arena_bytes: usize,
    /// Cores the configuration uses.
    pub cores: usize,
    /// Measured host wall-clock seconds for the whole run. For the
    /// simulated-cluster drivers this is the time to *execute* the
    /// simulation on this host (all ranks sequentially), not the modeled
    /// cluster time in [`RunReport::time`].
    pub wall_seconds: f64,
    /// Measured per-phase breakdown; zeroed for drivers that interleave
    /// phases across simulated ranks (Fig. 4) where a per-phase host
    /// clock would be meaningless.
    pub phases: PhaseTimes,
    /// Fault-tolerance outcome ([`RunOutcome::Completed`] when no fault
    /// plan was active).
    pub outcome: RunOutcome,
    /// Raw fault-tolerance ledger behind [`RunReport::outcome`]: dead /
    /// recovered / degraded ranks, retry count, and — process transport
    /// only — captured worker OS exit statuses.
    pub ft: FtReport,
    /// Evaluations served by previously built interaction lists (always
    /// zero for the one-shot drivers; populated by MD via
    /// [`crate::lists::ListEngine`]).
    pub lists_reused: u64,
    /// Interaction-list builds performed (1 for the list-based one-shot
    /// drivers, 0 for drivers that do not build lists).
    pub lists_rebuilt: u64,
}

impl RunReport {
    /// Speedup of this run over `other` (`other.time / self.time`).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other.time / self.time
    }
}

fn seconds(cfg: &DriverConfig, ops: &OpCounts, math: MathMode) -> f64 {
    cfg.costs.seconds(ops, math == MathMode::Approx)
}

/// Serial naïve exact run (Table II "Naïve").
pub fn run_naive(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
) -> Result<RunReport, DriverError> {
    validate_system(sys)?;
    let wall = Instant::now();
    let t = Instant::now();
    let (born, mut ops) = born_radii_naive(sys, params.math);
    let integrals = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (raw, eops) = epol_naive_raw(sys, &born, params.math);
    let epol = t.elapsed().as_secs_f64();
    ops.add(&eops);
    let time = seconds(cfg, &ops, params.math);
    Ok(RunReport {
        name: "Naive".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: time,
        comm: 0.0,
        wait: 0.0,
        ops,
        memory_per_process: sys.memory_bytes(),
        memory_arena_bytes: sys.arena_bytes(),
        cores: 1,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: PhaseTimes {
            integrals,
            epol,
            ..Default::default()
        },
        outcome: RunOutcome::Completed,
        ft: FtReport::default(),
        lists_reused: 0,
        lists_rebuilt: 0,
    })
}

/// Serial single-tree octree run (one core; the baseline the speedup
/// plots divide by when assessing parallel efficiency).
///
/// Runs on the interaction-list engine (`core::lists`): the traversal
/// pass is timed as `phases.lists`, the flat kernel sweeps as
/// `phases.integrals` / `phases.epol`. List execution replays the
/// recursion's every floating-point add in order, so energies and radii
/// are bit-identical to the historical recursive driver (the golden
/// suite pins this) and to [`run_oct_threads`] at any width.
pub fn run_serial(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
) -> Result<RunReport, DriverError> {
    validate_system(sys)?;
    let wall = Instant::now();
    let math = params.math;

    // ---- List traversal pass for APPROX-INTEGRALS (q-leaf sweep order).
    let t = Instant::now();
    let born_lists = BornLists::build_single(sys, params.eps_born);
    let mut lists_t = t.elapsed().as_secs_f64();

    // ---- APPROX-INTEGRALS: flat near/far sweep.
    let t = Instant::now();
    let mut acc = BornAccumulators::zeros(sys);
    let mut ops = born_lists.execute(sys, None, &mut acc);
    let integrals = t.elapsed().as_secs_f64();

    // ---- PUSH-INTEGRALS-TO-ATOMS.
    let t = Instant::now();
    let mut born = vec![0.0; sys.n_atoms()];
    ops.add(&push_integrals_to_atoms(
        sys,
        &acc,
        0..sys.n_atoms(),
        math,
        &mut born,
    ));
    let push = t.elapsed().as_secs_f64();

    // ---- Charge binning.
    let t = Instant::now();
    let bins = ChargeBins::build(sys, &born, params.eps_epol);
    let bins_t = t.elapsed().as_secs_f64();

    // ---- List traversal pass for APPROX-E_pol (atom-leaf sweep order).
    let t = Instant::now();
    let epol_lists = EpolLists::build_single(sys, &bins, params.eps_epol);
    lists_t += t.elapsed().as_secs_f64();

    // ---- APPROX-E_pol: flat near/far sweep + sum-tree replay.
    let t = Instant::now();
    let (raw, eops) = epol_lists.execute(sys, &bins, &born, math, None);
    ops.add(&eops);
    let epol = t.elapsed().as_secs_f64();

    let time = seconds(cfg, &ops, math);
    Ok(RunReport {
        name: "OCT_serial".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: time,
        comm: 0.0,
        wait: 0.0,
        ops,
        memory_per_process: sys.memory_bytes()
            + bins.memory_bytes()
            + born_lists.memory_bytes()
            + epol_lists.memory_bytes(),
        memory_arena_bytes: sys.arena_bytes(),
        cores: 1,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: PhaseTimes {
            build: 0.0,
            integrals,
            push,
            bins: bins_t,
            epol,
            lists: lists_t,
        },
        outcome: RunOutcome::Completed,
        ft: FtReport::default(),
        lists_reused: 0,
        lists_rebuilt: 1,
    })
}

/// Shared-memory dual-tree run (`OCT_CILK`): one process, `p` threads,
/// randomized work stealing. Timing uses the Blumofe–Leiserson bound
/// `T_p ≈ T_1/p + c·T_∞` with the span estimated from the recursion depth.
pub fn run_oct_cilk(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    threads: usize,
) -> Result<RunReport, DriverError> {
    assert!(threads >= 1);
    validate_system(sys)?;
    let wall = Instant::now();

    // Dual-tree interaction lists ([6]'s traversal, flattened): far
    // entries may pair *internal* nodes of both trees. Execution is
    // bit-identical to `born_radii_dual` / `epol_dual_raw`.
    let t = Instant::now();
    let born_lists = BornLists::build_dual(sys, params.eps_born);
    let mut lists_t = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut acc = BornAccumulators::zeros(sys);
    let mut ops = born_lists.execute(sys, None, &mut acc);
    let mut born = vec![0.0; sys.n_atoms()];
    ops.add(&push_integrals_to_atoms(
        sys,
        &acc,
        0..sys.n_atoms(),
        params.math,
        &mut born,
    ));
    let integrals = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let bins = ChargeBins::build(sys, &born, params.eps_epol);
    let bins_t = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let epol_lists = EpolLists::build_dual(sys, &bins, params.eps_epol);
    lists_t += t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (raw, eops) = epol_lists.execute(sys, &bins, &born, params.math, None);
    let epol = t.elapsed().as_secs_f64();
    ops.add(&eops);

    // §V.A: cilk++ has no thread-affinity manager, so the working set is
    // not partitioned per core — each thread effectively streams the whole
    // replica. Model that as the one-core working-set slowdown.
    let no_affinity = polaroct_cluster::machine::ClusterSpec::new(
        polaroct_cluster::machine::MachineSpec::lonestar4(),
        polaroct_cluster::machine::Placement::new(1, 1),
    );
    // Squared: without affinity every reload misses both the L1/L2 the
    // task last ran on *and* the socket-local L3 half the time (calibrated
    // against the paper's OCT_CILK-vs-OCT_MPI gap at CMV scale).
    let slowdown = MemoryModel::new(sys.memory_bytes())
        .slowdown(&no_affinity)
        .powi(2);
    let t1 = seconds(cfg, &ops, params.math) * cfg.cilk_efficiency * slowdown;
    let stats = sys.atoms.stats();
    let time = fork_join_makespan(
        t1,
        stats.leaves,
        stats.max_depth as u32,
        threads,
        cfg.steal_cost,
    );
    Ok(RunReport {
        name: "OCT_CILK".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: time,
        comm: 0.0,
        wait: 0.0,
        ops,
        memory_per_process: sys.memory_bytes()
            + bins.memory_bytes()
            + born_lists.memory_bytes()
            + epol_lists.memory_bytes(),
        memory_arena_bytes: sys.arena_bytes(),
        cores: threads,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: PhaseTimes {
            integrals,
            bins: bins_t,
            epol,
            lists: lists_t,
            ..Default::default()
        },
        outcome: RunOutcome::Completed,
        ft: FtReport::default(),
        lists_reused: 0,
        lists_rebuilt: 1,
    })
}

/// Brent/Blumofe–Leiserson makespan for a fork-join computation of total
/// work `t1`, about `n_tasks` leaf tasks and spawn-tree depth `depth` on
/// `p` workers. Public so benches can print the modeled speedup next to a
/// measured one (see `measured_speedup`).
pub fn fork_join_makespan(t1: f64, n_tasks: usize, depth: u32, p: usize, steal_cost: f64) -> f64 {
    if p <= 1 {
        return t1;
    }
    let span = (t1 / n_tasks.max(1) as f64) * (depth as f64 + 1.0);
    t1 / p as f64 + span + steal_cost * p as f64 * (depth as f64 + 1.0)
}

/// Leaf blocks per parallel phase of [`run_oct_threads`]. Fixed — NOT a
/// function of the worker count — so the block partition, and with it
/// every floating-point reduction order, is identical for every `threads`
/// value (see the determinism note on the driver).
const THREAD_BLOCKS: usize = 64;

/// Shared-memory single-tree run on *real* OS threads: builds the
/// `core::lists` interaction lists once, then fans their cost-balanced
/// chunks over [`WorkStealingPool`] — the same SoA leaf kernels as
/// [`run_serial`], minus any traversal on the hot path.
///
/// **Determinism.** List entries are grouped into at most
/// [`crate::lists::LIST_CHUNKS`] chunks balanced by per-entry cost
/// (`len_a · len_q` near, O(1) far) via
/// [`polaroct_sched::partition_by_cost`] — a fixed partition independent
/// of `threads`. Each chunk task computes only *pure per-entry outputs*
/// (Phase A); the serial apply pass (Phase B) then folds them in
/// emission order, replaying the recursion's exact floating-point add
/// sequence. Energies are therefore bit-identical across thread counts
/// **and** bit-identical to [`run_serial`] — not merely within
/// reduction roundoff, as the pre-list block-merge driver was.
///
/// `RunReport::time` still carries the fork-join *model* prediction (for
/// modeled-vs-measured comparisons); the measured host times live in
/// `wall_seconds` / `phases`.
pub fn run_oct_threads(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    threads: usize,
) -> Result<RunReport, DriverError> {
    run_oct_threads_ft(sys, params, cfg, threads, &FaultPlan::none())
}

/// Fire a rank-0 execution fault at a threads-driver phase start.
/// Returns the poisoned block id for a `PanicWorker` fault (the pool
/// contains the panic and the driver re-executes the block); `Kill` and
/// `PanicRank` fail the whole run — a single process has no peer to
/// recover on.
fn fire_threads_fault(
    plan: &FaultPlan,
    ph: u32,
    n_blocks: usize,
    delay_s: &mut f64,
) -> Result<Option<usize>, DriverError> {
    match plan.fire_exec(0, ph) {
        // KillMidSend is a wire-layer fault: there is no send in the
        // single-process driver, so it is a no-op here.
        None
        | Some(FaultKind::DropPayload)
        | Some(FaultKind::CorruptPayload)
        | Some(FaultKind::KillMidSend) => Ok(None),
        Some(FaultKind::Delay { virtual_s, real_ms }) => {
            *delay_s += virtual_s;
            std::thread::sleep(Duration::from_millis(real_ms));
            Ok(None)
        }
        Some(FaultKind::PanicWorker) => Ok(Some(plan.seed() as usize % n_blocks.max(1))),
        Some(FaultKind::Kill) => Err(DriverError::Failed {
            cause: format!(
                "rank killed by fault at phase {ph}; a single-process run has no peer to recover on"
            ),
        }),
        Some(FaultKind::PanicRank) => Err(DriverError::Failed {
            cause: format!("rank panicked by fault at phase {ph}"),
        }),
    }
}

/// [`run_oct_threads`] with fault injection (entries for rank 0 fire at
/// phase starts). A `PanicWorker` fault poisons one list chunk — chosen
/// from the plan seed — whose task panics inside the pool; the pool
/// contains it ([`WorkStealingPool::try_map`]), and the driver
/// re-executes the lost chunk *serially, before the apply pass*, so the
/// folded energy stays bit-identical to the fault-free run
/// ([`RunOutcome::Recovered`]).
pub fn run_oct_threads_ft(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    threads: usize,
    plan: &FaultPlan,
) -> Result<RunReport, DriverError> {
    assert!(threads >= 1);
    validate_system(sys)?;
    // Clone resets the one-shot fired flags, so one plan value can drive
    // many runs identically.
    let plan = plan.clone();
    let wall = Instant::now();
    let math = params.math;
    let pool = WorkStealingPool::new(threads);
    let mut recovered_blocks = 0u32;
    let mut delay_s = 0.0;

    // ---- List traversal pass for APPROX-INTEGRALS.
    let t = Instant::now();
    let born_lists = BornLists::build_single(sys, params.eps_born);
    let mut lists_t = t.elapsed().as_secs_f64();

    // ---- APPROX-INTEGRALS: cost-balanced list chunks fanned over the
    // pool (Phase A: pure per-entry outputs, no shared accumulators).
    let t = Instant::now();
    let poison = fire_threads_fault(&plan, phase::INTEGRALS, born_lists.n_chunks(), &mut delay_s)?;
    let (mut born_parts, _) = pool.try_map(born_lists.n_chunks(), |c| {
        if Some(c) == poison {
            // PANIC-OK: deliberate fault injection; contained by the pool's try_map.
            panic!("injected worker panic in integrals chunk {c}");
        }
        born_lists.run_chunk(sys, c)
    });
    // A panicked chunk's slot is `None` and is re-executed inline by the
    // same pure function, so the apply pass below cannot observe any
    // difference from the fault-free run.
    let mut born_outputs: Vec<Vec<f64>> = Vec::with_capacity(born_parts.len());
    for (c, slot) in born_parts.iter_mut().enumerate() {
        born_outputs.push(match slot.take() {
            Some(v) => v,
            None => {
                recovered_blocks += 1;
                born_lists.run_chunk(sys, c)
            }
        });
    }
    // Phase B: serial fold in emission order — the determinism anchor.
    let mut acc = BornAccumulators::zeros(sys);
    let mut ops = OpCounts::default();
    born_lists.apply(sys, &born_outputs, &mut acc);
    ops.add(&born_lists.ops);
    let integrals = t.elapsed().as_secs_f64();

    // ---- PUSH-INTEGRALS-TO-ATOMS: disjoint atom chunks. Radii are
    // written independently per atom, so this phase is order-free; the
    // fixed chunking just bounds task-creation overhead.
    let t = Instant::now();
    let n = sys.n_atoms();
    let push_blocks = THREAD_BLOCKS.min(n.max(1));
    let poison = fire_threads_fault(&plan, phase::PUSH, push_blocks, &mut delay_s)?;
    let push_block = |c: usize| {
        let lo = c * n / push_blocks;
        let hi = (c + 1) * n / push_blocks;
        // The push API writes through a full-length slice; each task
        // fills a scratch one and hands back only its segment. The
        // O(n) zeroing per task is noise next to the kernel phases.
        let mut full = vec![0.0; n];
        let ops = push_integrals_to_atoms(sys, &acc, lo..hi, math, &mut full);
        (lo..hi, full[lo..hi].to_vec(), ops)
    };
    let (mut push_parts, _) = pool.try_map(push_blocks, |c| {
        if Some(c) == poison {
            // PANIC-OK: deliberate fault injection; contained by the pool's try_map.
            panic!("injected worker panic in push block {c}");
        }
        push_block(c)
    });
    let mut born = vec![0.0; n];
    for (c, slot) in push_parts.iter_mut().enumerate() {
        let (range, seg, po) = match slot.take() {
            Some(v) => v,
            None => {
                recovered_blocks += 1;
                push_block(c)
            }
        };
        // PANIC-OK: each block segment is rebuilt at exactly range.len() elements before install.
        born[range].copy_from_slice(&seg);
        ops.add(&po);
    }
    let push = t.elapsed().as_secs_f64();

    // ---- Charge binning: serial (O(M·M_ε), negligible).
    let t = Instant::now();
    let bins = ChargeBins::build(sys, &born, params.eps_epol);
    let bins_t = t.elapsed().as_secs_f64();

    // ---- List traversal pass for APPROX-E_pol.
    let t = Instant::now();
    let epol_lists = EpolLists::build_single(sys, &bins, params.eps_epol);
    lists_t += t.elapsed().as_secs_f64();

    // ---- APPROX-E_pol: list chunks fanned over the pool.
    let t = Instant::now();
    let poison = fire_threads_fault(&plan, phase::EPOL, epol_lists.n_chunks(), &mut delay_s)?;
    let (mut epol_parts, _) = pool.try_map(epol_lists.n_chunks(), |c| {
        if Some(c) == poison {
            // PANIC-OK: deliberate fault injection; contained by the pool's try_map.
            panic!("injected worker panic in epol chunk {c}");
        }
        epol_lists.run_chunk(sys, &bins, &born, math, c)
    });
    let mut epol_outputs: Vec<Vec<f64>> = Vec::with_capacity(epol_parts.len());
    for (c, slot) in epol_parts.iter_mut().enumerate() {
        epol_outputs.push(match slot.take() {
            Some(v) => v,
            None => {
                recovered_blocks += 1;
                epol_lists.run_chunk(sys, &bins, &born, math, c)
            }
        });
    }
    // Phase B: the sum-tree replay — serial, in emission order.
    let raw = epol_lists.apply(&epol_outputs);
    ops.add(&epol_lists.ops);
    let epol = t.elapsed().as_secs_f64();

    // Modeled fork-join makespan over the same work, for side-by-side
    // modeled-vs-measured reporting; injected straggler time rides on top.
    let t1 = seconds(cfg, &ops, math);
    let stats = sys.atoms.stats();
    let time = fork_join_makespan(
        t1,
        stats.leaves,
        stats.max_depth as u32,
        threads,
        cfg.steal_cost,
    ) + delay_s;

    Ok(RunReport {
        name: "OCT_THREADS".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: time,
        comm: 0.0,
        wait: 0.0,
        ops,
        memory_per_process: sys.memory_bytes()
            + bins.memory_bytes()
            + born_lists.memory_bytes()
            + epol_lists.memory_bytes(),
        memory_arena_bytes: sys.arena_bytes(),
        cores: threads,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: PhaseTimes {
            build: 0.0,
            integrals,
            push,
            bins: bins_t,
            epol,
            lists: lists_t,
        },
        outcome: if recovered_blocks > 0 {
            RunOutcome::Recovered {
                n_retries: recovered_blocks,
            }
        } else {
            RunOutcome::Completed
        },
        ft: FtReport::default(),
        lists_reused: 0,
        lists_rebuilt: 1,
    })
}

/// Fold an octree-construction time into a report produced from a
/// freshly built system: Step 1 joins the measured phase breakdown and
/// the wall clock grows by the same amount, preserving the
/// `phases.total() <= wall_seconds` contract.
fn with_build_time(mut report: RunReport, build_seconds: f64) -> RunReport {
    report.phases.build = build_seconds;
    report.wall_seconds += build_seconds;
    report
}

/// [`run_serial`] starting from the molecule: samples the surface, then
/// builds both octrees serially *inside* the measured run, reporting the
/// construction cost (Step 1) in [`PhaseTimes::build`].
pub fn run_serial_mol(
    mol: &Molecule,
    params: &ApproxParams,
    cfg: &DriverConfig,
) -> Result<RunReport, DriverError> {
    let quad = surface_quadrature(mol, params.surface);
    let t = Instant::now();
    let sys = GbSystem::prepare_with_surface(mol, &quad, params);
    let build = t.elapsed().as_secs_f64();
    Ok(with_build_time(run_serial(&sys, params, cfg)?, build))
}

/// [`run_oct_threads`] starting from the molecule: octree construction
/// runs on a work-stealing pool of the same width as the kernel phases
/// (`polaroct_octree::parallel`), so Step 1 stops being the one serial
/// phase. The trees — and therefore all downstream energies and radii —
/// are byte-identical to [`run_serial_mol`]'s at any thread count.
pub fn run_oct_threads_mol(
    mol: &Molecule,
    params: &ApproxParams,
    cfg: &DriverConfig,
    threads: usize,
) -> Result<RunReport, DriverError> {
    assert!(threads >= 1);
    let pool = WorkStealingPool::new(threads);
    let quad = surface_quadrature(mol, params.surface);
    let t = Instant::now();
    let sys = GbSystem::prepare_with_surface_pooled(mol, &quad, params, Some(&pool));
    let build = t.elapsed().as_secs_f64();
    Ok(with_build_time(run_oct_threads(&sys, params, cfg, threads)?, build))
}

/// Distributed run (`OCT_MPI`): Fig. 4 with one thread per rank.
pub fn run_oct_mpi(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
    workdiv: WorkDivision,
) -> Result<RunReport, DriverError> {
    run_oct_mpi_ft(sys, params, cfg, cluster, workdiv, &FtConfig::default())
}

/// [`run_oct_mpi`] under a fault plan.
pub fn run_oct_mpi_ft(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
    workdiv: WorkDivision,
    ftc: &FtConfig,
) -> Result<RunReport, DriverError> {
    assert_eq!(
        cluster.placement.threads_per_process, 1,
        "OCT_MPI is the pure distributed configuration"
    );
    run_fig4(sys, params, cfg, cluster, workdiv, "OCT_MPI", ftc)
}

/// Hybrid run (`OCT_MPI+CILK`): Fig. 4 with `p > 1` threads per rank.
pub fn run_oct_hybrid(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
) -> Result<RunReport, DriverError> {
    run_oct_hybrid_ft(sys, params, cfg, cluster, &FtConfig::default())
}

/// [`run_oct_hybrid`] under a fault plan.
pub fn run_oct_hybrid_ft(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
    ftc: &FtConfig,
) -> Result<RunReport, DriverError> {
    assert!(
        cluster.placement.threads_per_process > 1,
        "hybrid needs more than one thread per rank"
    );
    run_fig4(
        sys,
        params,
        cfg,
        cluster,
        WorkDivision::NodeNode,
        "OCT_MPI+CILK",
        ftc,
    )
}

/// Fig. 4 Step 2 for one rank's static share. Called by the rank's own
/// pass *and* by recovery regeneration: re-executing it for a lost rank
/// with the same ε yields a bit-identical partial, because the partition
/// is static and leaves are visited in leaf-id order.
fn step2_partial(
    sys: &GbSystem,
    workdiv: WorkDivision,
    size: usize,
    rank: usize,
    eps_born: f64,
) -> (BornAccumulators, Vec<OpCounts>) {
    let mut acc = BornAccumulators::zeros(sys);
    let mut task_ops: Vec<OpCounts> = Vec::new();
    match workdiv {
        WorkDivision::NodeNode => {
            let ranges = sys.qtree.partition_leaves(size);
            for &q in &sys.qtree.leaf_ids[ranges[rank].clone()] {
                task_ops.push(approx_integrals(sys, q, eps_born, &mut acc));
            }
        }
        WorkDivision::AtomBased => {
            let ranges = sys.qtree.partition_points(size);
            let my = &ranges[rank];
            for &q in &sys.qtree.leaf_ids {
                let node = sys.qtree.node(q);
                if node.end as usize <= my.start || node.begin as usize >= my.end {
                    continue;
                }
                task_ops.push(approx_integrals_clipped(sys, q, my, eps_born, &mut acc));
            }
        }
    }
    (acc, task_ops)
}

/// Fig. 4 Step 4 for one rank's atom segment, returning just the
/// segment's radii. Deterministic and mode-independent (there is no
/// approximation to relax in the push), so recovered radii are always
/// exact.
fn step4_segment(
    sys: &GbSystem,
    acc: &BornAccumulators,
    range: std::ops::Range<usize>,
    math: MathMode,
) -> (Vec<f64>, OpCounts) {
    let mut full = vec![0.0; sys.n_atoms()];
    let ops = push_integrals_to_atoms(sys, acc, range.clone(), math, &mut full);
    (full[range].to_vec(), ops)
}

/// Fig. 4 Step 6 for one rank's static share (see [`step2_partial`] for
/// the bit-identity argument).
#[allow(clippy::too_many_arguments)]
fn step6_partial(
    sys: &GbSystem,
    bins: &ChargeBins,
    born: &[f64],
    workdiv: WorkDivision,
    atom_ranges: &[std::ops::Range<usize>],
    size: usize,
    rank: usize,
    eps_epol: f64,
    math: MathMode,
) -> (f64, Vec<OpCounts>) {
    let mut raw = 0.0;
    let mut task_ops: Vec<OpCounts> = Vec::new();
    match workdiv {
        WorkDivision::NodeNode => {
            let ranges = sys.atoms.partition_leaves(size);
            for &v in &sys.atoms.leaf_ids[ranges[rank].clone()] {
                let (r, o) = approx_epol_leaf(sys, bins, born, v, eps_epol, math);
                raw += r;
                task_ops.push(o);
            }
        }
        WorkDivision::AtomBased => {
            let my = &atom_ranges[rank];
            for &v in &sys.atoms.leaf_ids {
                let node = sys.atoms.node(v);
                if node.end as usize <= my.start || node.begin as usize >= my.end {
                    continue;
                }
                let (r, o) = approx_epol_leaf_clipped(sys, bins, born, v, my, eps_epol, math);
                raw += r;
                task_ops.push(o);
            }
        }
    }
    (raw, task_ops)
}

/// Crude widened-error-bar estimate for a degraded run: each degraded
/// rank's share of the atom leaves is assumed to push its far-field
/// fraction `(2/ε)/(1+2/ε)` of interactions onto the binned
/// approximation, whose relative error the paper bounds near 1% at
/// ε = 0.9 and which grows roughly with that fraction at ε = 8.
fn estimate_degraded_error(sys: &GbSystem, degraded: &[usize], size: usize) -> f64 {
    let ranges = sys.atoms.partition_leaves(size);
    let total = sys.atoms.leaf_count().max(1) as f64;
    let far_frac = (2.0 / EPS_DEGRADED) / (1.0 + 2.0 / EPS_DEGRADED);
    100.0
        * degraded
            .iter()
            .map(|&d| ranges.get(d).map_or(0.0, |r| r.len() as f64 / total) * far_frac)
            .sum::<f64>()
}

/// One rank's pass through Fig. 4 Steps 2–7 — the body shared by **both
/// transports**: [`run_fig4`] calls it from each rank thread over the
/// in-process channel fabric, and a worker *process* calls it directly
/// over its socket endpoint (`crate::procexec`). Everything it consumes
/// beyond the [`RankContext`] is recomputed deterministically from the
/// inputs (the memory-model slowdown included), so the same system +
/// cluster + fault plan yields bit-identical energies no matter which
/// transport carries the collectives.
pub(crate) fn fig4_rank_body(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
    workdiv: WorkDivision,
    prefer: Option<RecoverMode>,
    ctx: &mut RankContext,
) -> Result<(f64, Vec<f64>, OpCounts, FtReport), RankError> {
    let p_threads = cluster.placement.threads_per_process;
    let hybrid = p_threads > 1;
    let slowdown = MemoryModel::new(sys.memory_bytes()).slowdown(cluster);
    let math = params.math;

    // Charge a rank's phase: serial ranks convert op totals directly;
    // hybrid ranks run the per-task costs through the steal simulator.
    let charge_phase = |clock: &mut SimClock, task_ops: &[OpCounts], rank_seed: u64| {
        if hybrid {
            let costs: Vec<f64> = task_ops
                .iter()
                .map(|o| seconds(cfg, o, math) * cfg.hybrid_efficiency * slowdown)
                .collect();
            let sim = StealSimulator::new(StealSimParams {
                workers: p_threads,
                steal_cost: cfg.steal_cost,
                seed: 0xC11C ^ rank_seed,
                ..Default::default()
            });
            clock.add_compute(sim.simulate(&costs).makespan + cfg.hybrid_phase_overhead);
        } else {
            let mut total = OpCounts::default();
            for o in task_ops {
                total.add(o);
            }
            clock.add_compute(seconds(cfg, &total, math) * slowdown);
        }
    };

    // Recovery work is re-executed serially by the assignee while its
    // peers wait on the collective; charge it at the serial rate.
    let charge_recovery = |clock: &mut SimClock, ops: &OpCounts| {
        clock.add_compute(seconds(cfg, ops, math) * slowdown);
    };

    let size = ctx.size;
    let rank = ctx.rank;
    let mut clock = ctx.clock;
    let mut rank_ops = OpCounts::default();
    let mut summary = FtReport::default();

    // ---- Step 1: every rank "builds" both octrees (pre-processing,
    // excluded from timing per §IV.C Step 1). We share the replica.

    // ---- Step 2: approximated integrals for this rank's share of
    // quadrature leaves / q-points.
    ctx.fault_point(phase::INTEGRALS)?;
    let (mut acc, task_ops) = step2_partial(sys, workdiv, size, rank, params.eps_born);
    for o in &task_ops {
        rank_ops.add(o);
    }
    charge_phase(&mut clock, &task_ops, rank as u64);

    // ---- Step 3: gather partial integrals (MPI_Allreduce). A lost
    // rank's partial accumulator is regenerated by re-running its
    // Step 2 share.
    ctx.fault_point(phase::REDUCE_INTEGRALS)?;
    {
        let mut rec_ops = OpCounts::default();
        let mut regenerate = |lost: usize, mode: RecoverMode| {
            let eps = match mode {
                RecoverMode::Exact => params.eps_born,
                RecoverMode::Degraded => EPS_DEGRADED,
            };
            let (lost_acc, ops) = step2_partial(sys, workdiv, size, lost, eps);
            for o in &ops {
                rec_ops.add(o);
            }
            lost_acc.to_flat()
        };
        let recovery = match prefer {
            None => Recovery::Disabled,
            Some(p) => Recovery::Enabled {
                regenerate: &mut regenerate,
                prefer: p,
            },
        };
        let mut flat = acc.to_flat();
        let report = ctx.comm.allreduce_sum_ft(&mut flat, &mut clock, recovery)?;
        acc.from_flat(&flat);
        summary.merge(&report);
        rank_ops.add(&rec_ops);
        charge_recovery(&mut clock, &rec_ops);
    }

    // ---- Step 4: push integrals; rank i finalizes the i-th atom
    // segment.
    ctx.fault_point(phase::PUSH)?;
    let atom_ranges = sys.atoms.partition_points(size);
    let my_atoms = atom_ranges[rank].clone();
    let mut born = vec![0.0; sys.n_atoms()];
    let mut push_tasks: Vec<OpCounts> = Vec::new();
    if hybrid {
        // Split the segment into p*4 chunks for the intra-node pool.
        let chunks = (p_threads * 4).max(1);
        let len = my_atoms.len();
        for c in 0..chunks {
            let lo = my_atoms.start + c * len / chunks;
            let hi = my_atoms.start + (c + 1) * len / chunks;
            if lo < hi {
                push_tasks.push(push_integrals_to_atoms(sys, &acc, lo..hi, math, &mut born));
            }
        }
    } else {
        push_tasks.push(push_integrals_to_atoms(
            sys,
            &acc,
            my_atoms.clone(),
            math,
            &mut born,
        ));
    }
    for o in &push_tasks {
        rank_ops.add(o);
    }
    charge_phase(&mut clock, &push_tasks, rank as u64 ^ 0x4444);

    // ---- Step 5: gather Born radii (MPI_Allgatherv). The push is
    // deterministic and mode-independent, so even a degraded-mode
    // recovery round regenerates the exact segment — radii never
    // carry widened error bars.
    ctx.fault_point(phase::GATHER_RADII)?;
    let born = {
        let mut rec_ops = OpCounts::default();
        let mut regenerate = |lost: usize, _mode: RecoverMode| {
            let (seg, ops) = step4_segment(sys, &acc, atom_ranges[lost].clone(), math);
            rec_ops.add(&ops);
            seg
        };
        let recovery = match prefer {
            None => Recovery::Disabled,
            Some(p) => Recovery::Enabled {
                regenerate: &mut regenerate,
                prefer: p,
            },
        };
        let (full, report) = ctx
            .comm
            .allgatherv_ft(&born[my_atoms.clone()], &mut clock, recovery)?;
        summary.merge(&report);
        rank_ops.add(&rec_ops);
        charge_recovery(&mut clock, &rec_ops);
        full
    };
    assert_eq!(born.len(), sys.n_atoms());

    // Charge binning: O(M·M_ε) on every rank, tiny next to the
    // kernels, charged as node visits.
    let bins = ChargeBins::build(sys, &born, params.eps_epol);
    let bin_ops = OpCounts {
        nodes_visited: sys.n_atoms() as u64,
        ..Default::default()
    };
    rank_ops.add(&bin_ops);
    charge_phase(&mut clock, &[bin_ops], rank as u64 ^ 0x5555);

    // ---- Step 6: partial energies for this rank's share of atom
    // leaves / atoms.
    ctx.fault_point(phase::EPOL)?;
    let (raw, epol_tasks) = step6_partial(
        sys,
        &bins,
        &born,
        workdiv,
        &atom_ranges,
        size,
        rank,
        params.eps_epol,
        math,
    );
    for o in &epol_tasks {
        rank_ops.add(o);
    }
    charge_phase(&mut clock, &epol_tasks, rank as u64 ^ 0x6666);

    // ---- Step 7: master accumulates partial energies (MPI_Reduce).
    // A lost rank's scalar is regenerated by re-running its Step 6
    // share; the root folds all P entries in rank order either way.
    ctx.fault_point(phase::REDUCE_EPOL)?;
    let total_raw = {
        let mut rec_ops = OpCounts::default();
        let mut regenerate = |lost: usize, mode: RecoverMode| {
            let eps = match mode {
                RecoverMode::Exact => params.eps_epol,
                RecoverMode::Degraded => EPS_DEGRADED,
            };
            let (r, ops) = step6_partial(
                sys,
                &bins,
                &born,
                workdiv,
                &atom_ranges,
                size,
                lost,
                eps,
                math,
            );
            for o in &ops {
                rec_ops.add(o);
            }
            vec![r]
        };
        let recovery = match prefer {
            None => Recovery::Disabled,
            Some(p) => Recovery::Enabled {
                regenerate: &mut regenerate,
                prefer: p,
            },
        };
        let (v, report) = ctx.comm.reduce_sum_scalar_ft(raw, &mut clock, recovery)?;
        summary.merge(&report);
        rank_ops.add(&rec_ops);
        charge_recovery(&mut clock, &rec_ops);
        v
    };

    ctx.clock = clock;
    Ok((total_raw.unwrap_or(0.0), born, rank_ops, summary))
}

/// Fold a run's merged [`FtReport`] into its [`RunOutcome`] — shared by
/// the in-process and process-transport drivers so both label identical
/// fault histories identically (one leg of the cross-transport
/// bit-identity contract).
pub(crate) fn classify_outcome(sys: &GbSystem, summary: &FtReport, processes: usize) -> RunOutcome {
    if summary.clean() {
        RunOutcome::Completed
    } else if summary.degraded.is_empty() {
        RunOutcome::Recovered {
            n_retries: summary.retries,
        }
    } else {
        RunOutcome::Degraded {
            est_error_pct: estimate_degraded_error(sys, &summary.degraded, processes),
        }
    }
}

/// The Fig. 4 algorithm, shared by `OCT_MPI` (p = 1) and `OCT_MPI+CILK`
/// (p > 1). Steps map one-to-one onto the paper's listing.
///
/// **Fault tolerance.** Each Fig. 4 step is a declared
/// [`polaroct_cluster::runner::RankContext::fault_point`], and every
/// collective runs its `_ft` variant with a regeneration closure that
/// re-executes a lost rank's static segment through the *same* step
/// helper the main path uses — so a recovered run's energy is
/// bit-identical to the fault-free one. Rank 0 (the star's root) is the
/// single point of failure by construction; its death fails the run.
#[allow(clippy::too_many_arguments)]
fn run_fig4(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
    workdiv: WorkDivision,
    name: &str,
    ftc: &FtConfig,
) -> Result<RunReport, DriverError> {
    validate_system(sys)?;
    let wall = Instant::now();
    let prefer = ftc.recovery.prefer();
    let res = run_spmd_ft(cluster, cfg.costs, &ftc.plan, ftc.policy, |ctx| {
        fig4_rank_body(sys, params, cfg, cluster, workdiv, prefer, ctx)
    });

    // Root rank (0) holds the final energy and the authoritative
    // fault-tolerance summary; if the root itself failed, the run failed.
    let (raw, born_sorted, summary) = match &res.per_rank[0] {
        Ok((raw, born, _, summary)) => (*raw, born.clone(), summary.clone()),
        Err(_) => {
            let cause = res
                .failures()
                .iter()
                .map(|(r, e)| format!("rank {r}: {e}"))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(DriverError::Failed { cause });
        }
    };
    let mut ops = OpCounts::default();
    for out in res.per_rank.iter().flatten() {
        ops.add(&out.2);
    }
    // Time aggregates run over *surviving* ranks (a dead rank's clock
    // stopped when it died).
    let survivors: Vec<&SimClock> = res
        .per_rank
        .iter()
        .zip(&res.clocks)
        .filter(|(r, _)| r.is_ok())
        .map(|(_, c)| c)
        .collect();
    let time = res.parallel_time();
    let compute = survivors.iter().map(|c| c.compute).fold(0.0, f64::max);
    let comm = survivors.iter().map(|c| c.comm).fold(0.0, f64::max);
    let wait = survivors.iter().map(|c| c.wait).fold(0.0, f64::max);

    let outcome = classify_outcome(sys, &summary, cluster.placement.processes);

    Ok(RunReport {
        name: name.into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born_sorted),
        time,
        compute,
        comm,
        wait,
        ops,
        memory_per_process: sys.memory_bytes(),
        memory_arena_bytes: sys.arena_bytes(),
        cores: cluster.placement.total_cores(),
        wall_seconds: wall.elapsed().as_secs_f64(),
        // Ranks run sequentially on the host with phases interleaved, so
        // a per-phase host clock would be meaningless here.
        phases: PhaseTimes::default(),
        outcome,
        ft: summary,
        lists_reused: 0,
        lists_rebuilt: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_cluster::machine::{MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn system(n: usize, seed: u64) -> GbSystem {
        GbSystem::prepare(&synth::protein("p", n, seed), &ApproxParams::default())
    }

    fn cluster(cores: usize) -> ClusterSpec {
        ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(cores))
    }

    fn hybrid_cluster(cores: usize) -> ClusterSpec {
        let m = MachineSpec::lonestar4();
        ClusterSpec::new(m, Placement::hybrid_per_socket(cores, &m))
    }

    #[test]
    fn all_drivers_agree_on_energy_within_tolerance() {
        let sys = system(400, 3);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let naive = run_naive(&sys, &params, &cfg).unwrap();
        let serial = run_serial(&sys, &params, &cfg).unwrap();
        let cilk = run_oct_cilk(&sys, &params, &cfg, 12).unwrap();
        let mpi = run_oct_mpi(&sys, &params, &cfg, &cluster(12), WorkDivision::NodeNode).unwrap();
        let hyb = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(12)).unwrap();
        // All octree variants within 1% of naive (the paper's bound).
        for r in [&serial, &cilk, &mpi, &hyb] {
            let err = ((r.energy_kcal - naive.energy_kcal) / naive.energy_kcal).abs();
            assert!(err < 0.01, "{}: error {err}", r.name);
            assert!(r.energy_kcal < 0.0, "{}: E_pol must be negative", r.name);
        }
        // Single-tree variants (serial / MPI / hybrid) agree bit-tightly.
        assert!(((serial.energy_kcal - mpi.energy_kcal) / serial.energy_kcal).abs() < 1e-9);
        assert!(((serial.energy_kcal - hyb.energy_kcal) / serial.energy_kcal).abs() < 1e-9);
    }

    #[test]
    fn mpi_energy_is_p_invariant_for_node_division() {
        let sys = system(300, 5);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let e1 = run_oct_mpi(&sys, &params, &cfg, &cluster(1), WorkDivision::NodeNode)
            .unwrap()
            .energy_kcal;
        for cores in [2usize, 4, 12] {
            let e = run_oct_mpi(&sys, &params, &cfg, &cluster(cores), WorkDivision::NodeNode)
                .unwrap()
                .energy_kcal;
            assert!(
                ((e - e1) / e1).abs() < 1e-12,
                "node-node energy changed with P={cores}: {e} vs {e1}"
            );
        }
    }

    #[test]
    fn atom_division_energy_varies_with_p() {
        let sys = system(300, 5);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let e2 = run_oct_mpi(&sys, &params, &cfg, &cluster(2), WorkDivision::AtomBased)
            .unwrap()
            .energy_kcal;
        let e7 = run_oct_mpi(&sys, &params, &cfg, &cluster(7), WorkDivision::AtomBased)
            .unwrap()
            .energy_kcal;
        assert!(
            (e2 - e7).abs() > 1e-13 * e2.abs(),
            "atom-based division should vary with P ({e2} vs {e7})"
        );
        // ... but both stay within the error bound.
        let naive = run_naive(&sys, &params, &cfg).unwrap().energy_kcal;
        assert!(((e2 - naive) / naive).abs() < 0.01);
        assert!(((e7 - naive) / naive).abs() < 0.01);
    }

    #[test]
    fn distributed_scales_down_time() {
        let sys = system(900, 7);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let t1 = run_oct_mpi(&sys, &params, &cfg, &cluster(1), WorkDivision::NodeNode)
            .unwrap()
            .time;
        let t12 = run_oct_mpi(&sys, &params, &cfg, &cluster(12), WorkDivision::NodeNode)
            .unwrap()
            .time;
        assert!(t12 < t1, "12 ranks ({t12}) should beat 1 ({t1})");
        assert!(t1 / t12 > 3.0, "speedup {} too small", t1 / t12);
    }

    #[test]
    fn octree_beats_naive_on_medium_molecules() {
        let sys = system(1200, 9);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let naive = run_naive(&sys, &params, &cfg).unwrap();
        let serial = run_serial(&sys, &params, &cfg).unwrap();
        assert!(
            serial.time < naive.time,
            "octree ({}) should beat naive ({})",
            serial.time,
            naive.time
        );
    }

    #[test]
    fn reports_have_consistent_metadata() {
        let sys = system(200, 1);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let r = run_oct_mpi(&sys, &params, &cfg, &cluster(4), WorkDivision::NodeNode).unwrap();
        assert_eq!(r.cores, 4);
        assert_eq!(r.born_radii.len(), 200);
        assert!(r.memory_per_process > 0);
        assert!(r.ops.total() > 0);
        assert!(r.comm > 0.0, "distributed run must pay communication");
        assert_eq!(r.outcome, RunOutcome::Completed);
        let h = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(12)).unwrap();
        assert_eq!(h.cores, 12);
        assert_eq!(h.name, "OCT_MPI+CILK");
        assert_eq!(h.outcome, RunOutcome::Completed);
    }

    #[test]
    fn born_radii_match_across_drivers() {
        let sys = system(250, 11);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let serial = run_serial(&sys, &params, &cfg).unwrap();
        let mpi = run_oct_mpi(&sys, &params, &cfg, &cluster(6), WorkDivision::NodeNode).unwrap();
        for (a, b) in serial.born_radii.iter().zip(&mpi.born_radii) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn threads_driver_matches_serial_energy() {
        let sys = system(400, 3);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let serial = run_serial(&sys, &params, &cfg).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let thr = run_oct_threads(&sys, &params, &cfg, threads).unwrap();
            let rel = ((thr.energy_kcal - serial.energy_kcal) / serial.energy_kcal).abs();
            assert!(
                rel <= 1e-12,
                "threads={threads}: {} vs serial {} (rel {rel})",
                thr.energy_kcal,
                serial.energy_kcal
            );
            // Kernel pair counts match exactly; `nodes_visited` does not
            // (the chunked push re-walks shared ancestors per chunk).
            assert_eq!(thr.ops.born_near, serial.ops.born_near);
            assert_eq!(thr.ops.born_far, serial.ops.born_far);
            assert_eq!(thr.ops.epol_near, serial.ops.epol_near);
            assert_eq!(thr.ops.epol_far, serial.ops.epol_far);
            // Radii agree to reassociation error only: the threaded driver
            // merges per-block `BornAccumulators` subtotals, so each atom's
            // integral sums in a different association than serial's single
            // running sum. Bit-identity holds across thread *widths* (see
            // `threads_driver_is_bit_reproducible_across_widths`), not here.
            for (a, b) in thr.born_radii.iter().zip(&serial.born_radii) {
                assert!(((a - b) / b).abs() <= 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn threads_driver_is_bit_reproducible_across_widths() {
        // The block partition is fixed, so the FP reduction order — and
        // with it the energy bits — must not depend on the worker count.
        let sys = system(300, 7);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let e1 = run_oct_threads(&sys, &params, &cfg, 1).unwrap().energy_kcal;
        for threads in [2usize, 3, 4, 8] {
            let e = run_oct_threads(&sys, &params, &cfg, threads).unwrap().energy_kcal;
            assert_eq!(e.to_bits(), e1.to_bits(), "threads={threads}: {e} vs {e1}");
        }
    }

    #[test]
    fn measured_wall_clock_is_populated() {
        let sys = system(200, 5);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        for r in [
            run_serial(&sys, &params, &cfg).unwrap(),
            run_oct_threads(&sys, &params, &cfg, 2).unwrap(),
        ] {
            assert!(r.wall_seconds > 0.0, "{}: wall clock not measured", r.name);
            assert!(
                r.phases.integrals > 0.0,
                "{}: integrals phase empty",
                r.name
            );
            assert!(r.phases.epol > 0.0, "{}: epol phase empty", r.name);
            assert!(
                r.phases.total() <= r.wall_seconds,
                "{}: phases {} exceed wall {}",
                r.name,
                r.phases.total(),
                r.wall_seconds
            );
        }
        let f = run_oct_mpi(&sys, &params, &cfg, &cluster(2), WorkDivision::NodeNode).unwrap();
        assert!(f.wall_seconds > 0.0);
        assert_eq!(f.phases, PhaseTimes::default());
    }

    #[test]
    fn prebuilt_system_drivers_report_zero_build_phase() {
        // Construction happened outside the measured run, so Step 1 must
        // not be attributed to it.
        let sys = system(150, 9);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        for r in [
            run_serial(&sys, &params, &cfg).unwrap(),
            run_oct_threads(&sys, &params, &cfg, 2).unwrap(),
        ] {
            assert_eq!(r.phases.build, 0.0, "{}", r.name);
        }
    }

    #[test]
    fn mol_drivers_populate_build_phase_within_wall() {
        let mol = synth::protein("p", 250, 5);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        for r in [
            run_serial_mol(&mol, &params, &cfg).unwrap(),
            run_oct_threads_mol(&mol, &params, &cfg, 2).unwrap(),
        ] {
            assert!(r.phases.build > 0.0, "{}: build phase empty", r.name);
            assert!(
                r.phases.total() <= r.wall_seconds,
                "{}: phases {} exceed wall {}",
                r.name,
                r.phases.total(),
                r.wall_seconds
            );
        }
    }

    #[test]
    fn phase_total_includes_build() {
        let p = PhaseTimes {
            build: 1.0,
            integrals: 2.0,
            push: 3.0,
            bins: 4.0,
            epol: 5.0,
            lists: 6.0,
        };
        assert_eq!(p.total(), 21.0);
        assert_eq!(PhaseTimes::default().total(), 0.0);
    }

    #[test]
    fn threads_mol_driver_matches_serial_mol_bits_across_widths() {
        // The parallel octree build is byte-identical to the serial one,
        // and the threads kernels are bit-reproducible across widths — so
        // the full molecule-to-energy pipeline must be too.
        let mol = synth::protein("p", 300, 7);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let e1 = run_oct_threads_mol(&mol, &params, &cfg, 1).unwrap();
        for threads in [2usize, 4] {
            let e = run_oct_threads_mol(&mol, &params, &cfg, threads).unwrap();
            assert_eq!(
                e.energy_kcal.to_bits(),
                e1.energy_kcal.to_bits(),
                "threads={threads}"
            );
            for (a, b) in e.born_radii.iter().zip(&e1.born_radii) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
        // And against the serial driver on the serially-built system:
        // identical trees, reduction-roundoff-level energy agreement.
        let s = run_serial_mol(&mol, &params, &cfg).unwrap();
        let rel = ((s.energy_kcal - e1.energy_kcal) / s.energy_kcal).abs();
        assert!(rel < 1e-12, "serial vs threads_mol relative error {rel}");
    }

    #[test]
    fn validation_rejects_non_finite_inputs() {
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let mut sys = system(50, 1);
        sys.charge[3] = f64::NAN;
        let err = run_serial(&sys, &params, &cfg).unwrap_err();
        assert!(matches!(err, DriverError::InvalidInput { .. }), "{err}");
        assert!(err.to_string().contains("charge"), "{err}");
        assert!(matches!(err.outcome(), RunOutcome::Failed { .. }));

        let mut sys = system(50, 1);
        sys.atoms.points[0].x = f64::INFINITY;
        assert!(run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &cluster(2),
            WorkDivision::NodeNode
        )
        .is_err());

        let mut sys = system(50, 1);
        sys.radius[7] = -1.0;
        let err = run_oct_threads(&sys, &params, &cfg, 2).unwrap_err();
        assert!(err.to_string().contains("radius"), "{err}");

        let mut sys = system(50, 1);
        sys.q_weight[11] = f64::NAN;
        assert!(run_naive(&sys, &params, &cfg).is_err());
    }

    #[test]
    fn threads_driver_recovers_poisoned_block_bit_identically() {
        let sys = system(300, 7);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let clean = run_oct_threads(&sys, &params, &cfg, 4).unwrap();
        // Poison one block in each parallel phase; the pool contains the
        // panics and the driver re-executes the blocks in order.
        let plan = FaultPlan::new(0xB10C)
            .panic_worker(0, phase::INTEGRALS)
            .panic_worker(0, phase::PUSH)
            .panic_worker(0, phase::EPOL);
        let faulty = run_oct_threads_ft(&sys, &params, &cfg, 4, &plan).unwrap();
        assert_eq!(
            faulty.outcome,
            RunOutcome::Recovered { n_retries: 3 },
            "got {:?}",
            faulty.outcome
        );
        assert_eq!(faulty.energy_kcal.to_bits(), clean.energy_kcal.to_bits());
        for (a, b) in faulty.born_radii.iter().zip(&clean.born_radii) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mpi_recovers_killed_rank_bit_identically() {
        let sys = system(250, 9);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let clean = run_oct_mpi(&sys, &params, &cfg, &cluster(4), WorkDivision::NodeNode).unwrap();
        let ftc = FtConfig {
            plan: FaultPlan::new(1).kill(2, phase::INTEGRALS),
            policy: FtPolicy::with_timeout(std::time::Duration::from_millis(300)),
            recovery: RecoveryMode::Reexecute,
        };
        let rec =
            run_oct_mpi_ft(&sys, &params, &cfg, &cluster(4), WorkDivision::NodeNode, &ftc).unwrap();
        assert!(
            matches!(rec.outcome, RunOutcome::Recovered { n_retries } if n_retries >= 1),
            "got {:?}",
            rec.outcome
        );
        assert_eq!(rec.energy_kcal.to_bits(), clean.energy_kcal.to_bits());
        for (a, b) in rec.born_radii.iter().zip(&clean.born_radii) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mpi_without_recovery_fails_fast_instead_of_hanging() {
        let sys = system(150, 2);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let ftc = FtConfig {
            plan: FaultPlan::new(2).kill(1, phase::INTEGRALS),
            policy: FtPolicy::with_timeout(std::time::Duration::from_millis(200)),
            recovery: RecoveryMode::Disabled,
        };
        let t = Instant::now();
        let err = run_oct_mpi_ft(&sys, &params, &cfg, &cluster(3), WorkDivision::NodeNode, &ftc)
            .unwrap_err();
        assert!(matches!(err, DriverError::Failed { .. }), "{err}");
        assert!(
            t.elapsed() < std::time::Duration::from_secs(10),
            "must fail within the collective timeout, took {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn fork_join_makespan_bounds() {
        let t1 = 1.0;
        assert_eq!(fork_join_makespan(t1, 100, 10, 1, 1e-6), t1);
        let t4 = fork_join_makespan(t1, 100, 10, 4, 1e-6);
        assert!(t4 >= t1 / 4.0);
        assert!(t4 < t1, "4 workers should beat serial");
    }
}
