//! Fig. 4 over the **process transport**: real OS worker processes,
//! real `SIGKILL`, same bits.
//!
//! [`run_oct_mpi_proc_ft`] plays rank 0 in the calling process and
//! spawns one worker process per member rank (a re-exec of the current
//! executable — test binaries and benches opt in by calling
//! [`maybe_worker`] at the top of `main`). The job ships over the
//! checksummed wire format of `polaroct_cluster::wire`; collectives run
//! through the same two-round FT protocol as the in-process driver, via
//! `polaroct_cluster::proc`.
//!
//! **Bit-identity across transports.** Both transports execute
//! [`crate::drivers::fig4_rank_body`] — the identical rank body — and
//! the root-side collective protocol does not depend on which transport
//! carries the frames: ranks are polled in rank order, recovery uses the
//! same round-robin assignment, and the root folds contributions in rank
//! order. Payload floats travel as raw IEEE-754 bit patterns, so the
//! same molecule + seed + fault plan yields byte-identical energies and
//! Born radii on both transports (the golden suite and the
//! `transports_match` proptest pin this).

use crate::drivers::{
    classify_outcome, fig4_rank_body, validate_system, DriverConfig, DriverError, FtConfig,
    PhaseTimes, RunReport,
};
use crate::params::ApproxParams;
use crate::system::GbSystem;
use crate::workdiv::WorkDivision;
use polaroct_cluster::wire::{self, Dec, Enc, WireError};
use polaroct_geom::Vec3;
use polaroct_molecule::{Element, Molecule};
use polaroct_surface::SurfaceParams;

/// Env var carrying the supervisor's socket path to a worker process.
pub const ENV_SOCK: &str = "POLAROCT_WORKER_SOCK";
/// Env var carrying the worker's member rank.
pub const ENV_RANK: &str = "POLAROCT_WORKER_RANK";
/// Startup-hardening test hook: `exit:<code>:<rank>` makes the matching
/// worker exit with `<code>` *before* connecting — exercising the
/// dead-before-handshake path with a captured exit status.
pub const ENV_SELFTEST: &str = "POLAROCT_WORKER_SELFTEST";

/// Worker entry hook. Call this first in `main` of any binary that runs
/// the process-transport driver: if the worker env vars are set, the
/// process runs one member rank to completion and **exits** (never
/// returns); otherwise it is a no-op.
pub fn maybe_worker() {
    #[cfg(unix)]
    imp::maybe_worker_unix();
}

/// Everything a worker needs to reproduce the run, bit for bit.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub molecule: Molecule,
    pub params: ApproxParams,
    pub cfg: DriverConfig,
    pub workdiv: WorkDivision,
    pub recovery: crate::drivers::RecoveryMode,
    pub plan: polaroct_cluster::FaultPlan,
}

/// Encode a job for the `JOB` frame. All floats travel as raw bit
/// patterns: the worker re-validates through [`validate_system`] after
/// [`GbSystem::prepare`], exactly like the supervisor did.
pub fn encode_job(job: &JobSpec) -> Vec<u8> {
    let mut e = Enc::new();
    let mol = &job.molecule;
    e.put_str(&mol.name);
    e.put_usize(mol.positions.len());
    for p in &mol.positions {
        e.put_f64(p.x);
        e.put_f64(p.y);
        e.put_f64(p.z);
    }
    e.put_f64s(&mol.radii);
    e.put_f64s(&mol.charges);
    for &el in &mol.elements {
        // PANIC-OK: Element::ALL contains every variant by definition.
        let idx = Element::ALL.iter().position(|&a| a == el).unwrap_or(6);
        e.put_u8(idx as u8);
    }
    let p = &job.params;
    e.put_f64(p.eps_born);
    e.put_f64(p.eps_epol);
    e.put_u8(match p.math {
        polaroct_geom::fastmath::MathMode::Exact => 0,
        polaroct_geom::fastmath::MathMode::Approx => 1,
    });
    e.put_usize(p.leaf_cap_atoms);
    e.put_usize(p.leaf_cap_qpoints);
    e.put_u32(p.surface.icosphere_level);
    e.put_u32(p.surface.quadrature_degree);
    e.put_f64(p.surface.probe_radius);
    e.put_f64(p.surface.burial_slack);
    e.put_f64(p.eps_solvent);
    let c = &job.cfg;
    e.put_f64(c.costs.born_far);
    e.put_f64(c.costs.born_near);
    e.put_f64(c.costs.epol_far);
    e.put_f64(c.costs.epol_near);
    e.put_f64(c.costs.node_visit);
    e.put_f64(c.costs.approx_math_factor);
    e.put_f64(c.cilk_efficiency);
    e.put_f64(c.hybrid_efficiency);
    e.put_f64(c.hybrid_phase_overhead);
    e.put_f64(c.steal_cost);
    e.put_u8(match job.workdiv {
        WorkDivision::NodeNode => 0,
        WorkDivision::AtomBased => 1,
    });
    e.put_u8(match job.recovery {
        crate::drivers::RecoveryMode::Disabled => 0,
        crate::drivers::RecoveryMode::Reexecute => 1,
        crate::drivers::RecoveryMode::Degrade => 2,
    });
    wire::put_fault_plan(&mut e, &job.plan);
    e.into_bytes()
}

/// Decode a `JOB` frame body. Rejects truncated/trailing bytes and bad
/// tags with a typed [`WireError`]; float payloads are accepted raw and
/// left to [`validate_system`] to judge.
pub fn decode_job(body: &[u8]) -> Result<JobSpec, WireError> {
    let mut d = Dec::new(body);
    let name = d.get_str("molecule name")?;
    let n = d.get_usize("atom count")?;
    // Guard n before the per-atom loops: each atom needs ≥ 3×8 bytes of
    // positions alone, so a huge count cannot pass the reads below, but
    // bound the allocations up front anyway.
    if n.saturating_mul(24) > body.len() {
        return Err(WireError::Truncated {
            what: "atom positions",
            wanted: n.saturating_mul(24),
            have: body.len(),
        });
    }
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        let x = d.get_f64_raw("position x")?;
        let y = d.get_f64_raw("position y")?;
        let z = d.get_f64_raw("position z")?;
        positions.push(Vec3::new(x, y, z));
    }
    let radii = d.get_f64s_raw("radii")?;
    let charges = d.get_f64s_raw("charges")?;
    if radii.len() != n || charges.len() != n {
        return Err(WireError::BadTag {
            what: "molecule arrays disagree on atom count",
            tag: radii.len().min(255) as u8,
        });
    }
    let mut elements = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = d.get_u8("element")?;
        let el = *Element::ALL
            .get(idx as usize)
            .ok_or(WireError::BadTag { what: "element", tag: idx })?;
        elements.push(el);
    }
    let molecule = Molecule { positions, radii, charges, elements, name };

    let eps_born = d.get_f64_raw("eps_born")?;
    let eps_epol = d.get_f64_raw("eps_epol")?;
    let math = match d.get_u8("math mode")? {
        0 => polaroct_geom::fastmath::MathMode::Exact,
        1 => polaroct_geom::fastmath::MathMode::Approx,
        t => return Err(WireError::BadTag { what: "math mode", tag: t }),
    };
    let leaf_cap_atoms = d.get_usize("leaf_cap_atoms")?;
    let leaf_cap_qpoints = d.get_usize("leaf_cap_qpoints")?;
    let surface = SurfaceParams {
        icosphere_level: d.get_u32("icosphere_level")?,
        quadrature_degree: d.get_u32("quadrature_degree")?,
        probe_radius: d.get_f64_raw("probe_radius")?,
        burial_slack: d.get_f64_raw("burial_slack")?,
    };
    let eps_solvent = d.get_f64_raw("eps_solvent")?;
    let params = ApproxParams {
        eps_born,
        eps_epol,
        math,
        leaf_cap_atoms,
        leaf_cap_qpoints,
        surface,
        eps_solvent,
    };
    let cfg = DriverConfig {
        costs: polaroct_cluster::KernelCosts {
            born_far: d.get_f64_raw("born_far")?,
            born_near: d.get_f64_raw("born_near")?,
            epol_far: d.get_f64_raw("epol_far")?,
            epol_near: d.get_f64_raw("epol_near")?,
            node_visit: d.get_f64_raw("node_visit")?,
            approx_math_factor: d.get_f64_raw("approx_math_factor")?,
        },
        cilk_efficiency: d.get_f64_raw("cilk_efficiency")?,
        hybrid_efficiency: d.get_f64_raw("hybrid_efficiency")?,
        hybrid_phase_overhead: d.get_f64_raw("hybrid_phase_overhead")?,
        steal_cost: d.get_f64_raw("steal_cost")?,
    };
    let workdiv = match d.get_u8("workdiv")? {
        0 => WorkDivision::NodeNode,
        1 => WorkDivision::AtomBased,
        t => return Err(WireError::BadTag { what: "workdiv", tag: t }),
    };
    let recovery = match d.get_u8("recovery")? {
        0 => crate::drivers::RecoveryMode::Disabled,
        1 => crate::drivers::RecoveryMode::Reexecute,
        2 => crate::drivers::RecoveryMode::Degrade,
        t => return Err(WireError::BadTag { what: "recovery", tag: t }),
    };
    let plan = wire::get_fault_plan(&mut d)?;
    d.finish()?;
    Ok(JobSpec { molecule, params, cfg, workdiv, recovery, plan })
}

#[cfg(unix)]
pub use imp::run_oct_mpi_proc_ft;

#[cfg(unix)]
mod imp {
    use super::*;
    use crate::drivers::RecoveryMode;
    use polaroct_cluster::{
        comm::Communicator,
        costmodel::CommCostModel,
        fault::KillMode,
        machine::{ClusterSpec, MachineSpec, Placement},
        proc::{ProcError, Supervisor, WorkerEndpoint},
        runner::RankContext,
        simtime::{OpCounts, SimClock},
        transport::Transport,
        wire::kind,
    };
    use std::path::Path;
    use std::process::Command;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Window for a worker to be spawned, connect, and handshake. Wide:
    /// a loaded single-core host serializes every child's startup.
    const STARTUP_TIMEOUT: Duration = Duration::from_secs(20);
    /// Window for a worker to prepare + validate its system and report
    /// `READY` (covers surface sampling and two octree builds).
    const READY_TIMEOUT: Duration = Duration::from_secs(60);
    /// Window for a worker's `DONE` after the root finishes its own
    /// collectives (the final reduce synchronizes the fleet, so only the
    /// worker's epilogue remains).
    const DONE_TIMEOUT: Duration = Duration::from_secs(60);
    /// Grace before `reap` SIGKILLs a still-running child.
    const REAP_GRACE: Duration = Duration::from_secs(5);

    fn mpi_cluster(ranks: usize) -> ClusterSpec {
        ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(ranks))
    }

    pub(super) fn maybe_worker_unix() {
        let (Ok(sock), Ok(rank)) = (std::env::var(ENV_SOCK), std::env::var(ENV_RANK)) else {
            return;
        };
        let Ok(rank) = rank.parse::<usize>() else {
            eprintln!("polaroct worker: bad {ENV_RANK} value {rank:?}");
            std::process::exit(2);
        };
        let code = worker_main(Path::new(&sock), rank);
        std::process::exit(code);
    }

    /// Run one member rank to completion. Returns the process exit code;
    /// never panics on malformed input (frame/decode failures become
    /// `WORKER_ERR` + exit 1).
    fn worker_main(sock: &Path, rank: usize) -> i32 {
        if let Ok(spec) = std::env::var(ENV_SELFTEST) {
            // "exit:<code>:<rank>" — die before connecting.
            let parts: Vec<&str> = spec.split(':').collect();
            if parts.len() == 3 && parts[0] == "exit" {
                if let (Ok(code), Ok(r)) = (parts[1].parse::<i32>(), parts[2].parse::<usize>()) {
                    if r == rank {
                        std::process::exit(code);
                    }
                }
            }
        }
        let (endpoint, job_body) = match polaroct_cluster::proc::worker_connect(
            sock,
            rank,
            STARTUP_TIMEOUT,
        ) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("polaroct worker {rank}: {e}");
                return 1;
            }
        };
        let endpoint = Arc::new(endpoint);
        let reject = |endpoint: &WorkerEndpoint, msg: &str| {
            let mut e = Enc::new();
            e.put_str(msg);
            let _ = endpoint.send_raw(kind::WORKER_ERR, &e.into_bytes());
            1
        };
        let job = match decode_job(&job_body) {
            Ok(j) => j,
            Err(e) => return reject(&endpoint, &format!("job decode failed: {e}")),
        };
        let sys = GbSystem::prepare(&job.molecule, &job.params);
        if let Err(e) = validate_system(&sys) {
            return reject(&endpoint, &format!("system validation failed: {e}"));
        }
        if endpoint.send_raw(kind::READY, &[]).is_err() {
            return 1;
        }

        let size = endpoint.size();
        let cluster = mpi_cluster(size);
        let cost = CommCostModel::for_cluster(&cluster);
        let plan = Arc::new(job.plan.clone());
        let comm = Communicator::over(rank, cost, endpoint.clone() as Arc<dyn Transport>)
            .with_faults(plan.clone())
            .with_kill_mode(KillMode::Process);
        let mut ctx = RankContext {
            rank,
            size,
            comm,
            clock: SimClock::new(),
            ops: OpCounts::default(),
            costs: job.cfg.costs,
            threads: 1,
            faults: plan,
            kill: KillMode::Process,
        };
        let res = fig4_rank_body(
            &sys,
            &job.params,
            &job.cfg,
            &cluster,
            job.workdiv,
            job.recovery.prefer(),
            &mut ctx,
        );

        let mut e = Enc::new();
        let code = match res {
            Ok((_, _, rank_ops, _)) => {
                e.put_bool(true);
                e.put_u64(rank_ops.born_far);
                e.put_u64(rank_ops.born_near);
                e.put_u64(rank_ops.epol_far);
                e.put_u64(rank_ops.epol_near);
                e.put_u64(rank_ops.nodes_visited);
                e.put_f64(ctx.clock.compute);
                e.put_f64(ctx.clock.comm);
                e.put_f64(ctx.clock.wait);
                0
            }
            Err(err) => {
                e.put_bool(false);
                e.put_str(&err.to_string());
                1
            }
        };
        if endpoint.send_raw(kind::DONE, &e.into_bytes()).is_err() {
            return 1;
        }
        code
    }

    /// Decode one worker's `DONE` payload: `Some((ops, clock))` for a
    /// successful rank, `None` when the rank body failed (its error
    /// message is validated and discarded — the root's own collective
    /// reports already classify the run).
    fn decode_done(body: &[u8]) -> Result<Option<(OpCounts, SimClock)>, WireError> {
        let mut d = Dec::new(body);
        if d.get_bool("done ok flag")? {
            let ops = OpCounts {
                born_far: d.get_u64("ops born_far")?,
                born_near: d.get_u64("ops born_near")?,
                epol_far: d.get_u64("ops epol_far")?,
                epol_near: d.get_u64("ops epol_near")?,
                nodes_visited: d.get_u64("ops nodes_visited")?,
            };
            let clock = SimClock {
                compute: d.get_f64_raw("clock compute")?,
                comm: d.get_f64_raw("clock comm")?,
                wait: d.get_f64_raw("clock wait")?,
            };
            d.finish()?;
            Ok(Some((ops, clock)))
        } else {
            let _ = d.get_str("rank error")?;
            d.finish()?;
            Ok(None)
        }
    }

    /// Distributed Fig. 4 run (`OCT_MPI` semantics) over **real worker
    /// processes**: `ranks - 1` children are spawned as re-execs of the
    /// current executable, rank 0 runs in the calling process, and the
    /// two-round FT collectives flow over Unix sockets. Kill faults are
    /// realized as literal `SIGKILL`s of the children; recovery and
    /// degradation behave exactly as in [`crate::run_oct_mpi_ft`], and
    /// the resulting energies are bit-identical to the in-process
    /// transport under the same molecule + fault plan.
    ///
    /// The calling binary **must** invoke [`maybe_worker`] at the top of
    /// `main`, or the children will re-run `main` as supervisors.
    pub fn run_oct_mpi_proc_ft(
        mol: &Molecule,
        params: &ApproxParams,
        cfg: &DriverConfig,
        ranks: usize,
        workdiv: WorkDivision,
        ftc: &FtConfig,
    ) -> Result<RunReport, DriverError> {
        assert!(ranks >= 1);
        let sys = GbSystem::prepare(mol, params);
        validate_system(&sys)?;
        if ranks == 1 {
            // One rank has no workers — the transports are trivially
            // identical; run in process and relabel.
            let mut r = crate::drivers::run_oct_mpi_ft(
                &sys,
                params,
                cfg,
                &mpi_cluster(1),
                workdiv,
                ftc,
            )?;
            r.name = "OCT_MPI_PROC".into();
            return Ok(r);
        }
        let wall = Instant::now();
        let cluster = mpi_cluster(ranks);
        let exe = std::env::current_exe().map_err(|e| DriverError::Failed {
            cause: format!("cannot locate current executable for re-exec: {e}"),
        })?;
        let mut sup = Supervisor::launch(ranks, ftc.policy, STARTUP_TIMEOUT, &mut |r, sock| {
            let mut cmd = Command::new(&exe);
            cmd.env(ENV_SOCK, sock).env(ENV_RANK, r.to_string());
            cmd
        })
        .map_err(|e| DriverError::Failed { cause: format!("worker launch failed: {e}") })?;

        // Workers that died (or hung) before the handshake: with recovery
        // disabled the run cannot tolerate them; otherwise the collectives
        // will find them dead and recover, like any other lost rank.
        let startup_lost = sup.startup_lost().to_vec();
        if !startup_lost.is_empty() && ftc.recovery == RecoveryMode::Disabled {
            let (rank, status) = startup_lost[0].clone();
            drop(sup); // kills remaining children
            return Err(DriverError::Failed {
                cause: format!("worker {rank} lost before joining ({status})"),
            });
        }

        let fabric = sup.fabric();
        let job = encode_job(&JobSpec {
            molecule: mol.clone(),
            params: *params,
            cfg: *cfg,
            workdiv,
            recovery: ftc.recovery,
            plan: ftc.plan.clone(),
        });
        for r in 1..ranks {
            if fabric.is_dead(r) {
                continue;
            }
            if let Err(e) = sup.send_job(r, &job) {
                fabric.mark_dead(r);
                fabric.record_exit(r, e.to_string());
            }
        }
        for r in 1..ranks {
            if fabric.is_dead(r) {
                continue;
            }
            match sup.wait_ready(r, READY_TIMEOUT) {
                Ok(()) => {}
                Err(ProcError::WorkerRejected { rank, detail }) => {
                    // The supervisor validated the same system above, so
                    // a rejection means the job did not survive the wire
                    // — never recoverable by re-execution elsewhere.
                    drop(sup);
                    return Err(DriverError::Failed {
                        cause: format!("worker {rank} rejected the job: {detail}"),
                    });
                }
                Err(e) => {
                    if ftc.recovery == RecoveryMode::Disabled {
                        drop(sup);
                        return Err(DriverError::Failed { cause: e.to_string() });
                    }
                    // Already marked dead + status recorded by wait_ready;
                    // the collectives will recover its share.
                }
            }
        }

        // Rank 0 runs in this process over the root side of the fabric.
        let cost = CommCostModel::for_cluster(&cluster);
        let plan = Arc::new(ftc.plan.clone());
        let comm = Communicator::over(0, cost, fabric.clone() as Arc<dyn Transport>)
            .with_faults(plan.clone());
        let mut ctx = RankContext {
            rank: 0,
            size: ranks,
            comm,
            clock: SimClock::new(),
            ops: OpCounts::default(),
            costs: cfg.costs,
            threads: 1,
            faults: plan,
            kill: KillMode::Simulated,
        };
        let root = fig4_rank_body(
            &sys,
            params,
            cfg,
            &cluster,
            workdiv,
            ftc.recovery.prefer(),
            &mut ctx,
        );
        let (raw, born_sorted, root_ops, mut summary) = match root {
            Ok(v) => v,
            Err(e) => {
                sup.reap(REAP_GRACE);
                return Err(DriverError::Failed { cause: format!("rank 0: {e}") });
            }
        };

        // Collect surviving workers' op counts and simulated clocks; a
        // worker that fails here just drops out of the aggregates, same
        // as a dead rank's thread in the in-process runner.
        let mut ops = root_ops;
        let mut clocks = vec![ctx.clock];
        for r in 1..ranks {
            if fabric.is_dead(r) {
                continue;
            }
            match sup.recv_done(r, DONE_TIMEOUT).map_err(|e| e.to_string()).and_then(|body| {
                decode_done(&body).map_err(|e| format!("bad DONE frame: {e}"))
            }) {
                Ok(Some((o, clock))) => {
                    ops.add(&o);
                    clocks.push(clock);
                }
                Ok(None) => {}
                Err(detail) => {
                    fabric.mark_dead(r);
                    fabric.record_exit(r, detail);
                }
            }
        }

        // Reap every child; real OS exit statuses supersede the socket-
        // level details ("connection closed (EOF)") captured mid-run.
        let reaped = sup.reap(REAP_GRACE);
        for (r, status) in &reaped {
            if summary.dead.contains(r) {
                summary.exits.retain(|(er, _)| er != r);
                summary.exits.push((*r, status.clone()));
            }
        }
        summary.exits.sort_by_key(|(r, _)| *r);

        let time = clocks.iter().map(|c| c.total()).fold(0.0, f64::max);
        let compute = clocks.iter().map(|c| c.compute).fold(0.0, f64::max);
        let comm = clocks.iter().map(|c| c.comm).fold(0.0, f64::max);
        let wait = clocks.iter().map(|c| c.wait).fold(0.0, f64::max);
        let outcome = classify_outcome(&sys, &summary, ranks);

        Ok(RunReport {
            name: "OCT_MPI_PROC".into(),
            energy_kcal: crate::gb::epol_from_raw_sum(raw, params.eps_solvent),
            born_radii: sys.to_original_atom_order(&born_sorted),
            time,
            compute,
            comm,
            wait,
            ops,
            memory_per_process: sys.memory_bytes(),
            memory_arena_bytes: sys.arena_bytes(),
            cores: cluster.placement.total_cores(),
            wall_seconds: wall.elapsed().as_secs_f64(),
            phases: PhaseTimes::default(),
            outcome,
            ft: summary,
            lists_reused: 0,
            lists_rebuilt: 0,
        })
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_cluster::fault::{phase, FaultPlan};
    use polaroct_molecule::synth;

    fn job(n: usize, seed: u64) -> JobSpec {
        JobSpec {
            molecule: synth::protein("p", n, seed),
            params: ApproxParams::default(),
            cfg: DriverConfig::default(),
            workdiv: WorkDivision::AtomBased,
            recovery: crate::drivers::RecoveryMode::Degrade,
            plan: FaultPlan::new(7).kill(1, phase::INTEGRALS).delay(2, phase::EPOL, 0.5),
        }
    }

    #[test]
    fn job_roundtrips_bit_exact() {
        let j = job(40, 3);
        let body = encode_job(&j);
        let back = decode_job(&body).unwrap();
        assert_eq!(back.molecule.name, j.molecule.name);
        assert_eq!(back.molecule.positions.len(), j.molecule.positions.len());
        for (a, b) in back.molecule.positions.iter().zip(&j.molecule.positions) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        assert_eq!(back.molecule.elements, j.molecule.elements);
        assert_eq!(back.params.eps_born.to_bits(), j.params.eps_born.to_bits());
        assert_eq!(back.params.leaf_cap_atoms, j.params.leaf_cap_atoms);
        assert_eq!(back.workdiv, j.workdiv);
        assert_eq!(back.recovery, j.recovery);
        assert_eq!(back.plan.seed(), j.plan.seed());
        assert_eq!(
            back.plan.entries().collect::<Vec<_>>(),
            j.plan.entries().collect::<Vec<_>>()
        );
        assert_eq!(
            back.cfg.costs.born_near.to_bits(),
            j.cfg.costs.born_near.to_bits()
        );
    }

    #[test]
    fn job_decode_rejects_truncation_everywhere() {
        let body = encode_job(&job(12, 5));
        // Every proper prefix must fail with a typed error, not panic.
        for cut in 0..body.len() {
            assert!(
                decode_job(&body[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn job_decode_rejects_trailing_garbage() {
        let mut body = encode_job(&job(12, 5));
        body.push(0);
        assert!(decode_job(&body).is_err());
    }

    #[test]
    fn job_decode_rejects_bad_tags() {
        let j = job(8, 1);
        let body = encode_job(&j);
        // Workdiv tag lives right before the recovery tag and the plan;
        // find it by re-encoding with a poisoned value instead of byte
        // surgery: corrupt the element table (first element byte).
        let name_len = 8 + j.molecule.name.len();
        let n = j.molecule.positions.len();
        let elements_at = name_len + 8 + n * 24 + (8 + n * 8) * 2;
        let mut bad = body.clone();
        bad[elements_at] = 99;
        assert!(matches!(
            decode_job(&bad),
            Err(WireError::BadTag { what: "element", .. })
        ));
    }
}
