//! Batched multi-query perturbation evaluation: N independent queries
//! against one immutable cached base state, without apply→revert churn.
//!
//! [`DeltaEngine::apply_perturbation`] mutates the engine: it splices
//! fresh outputs into the cache, swaps the Born/bin generations and
//! pushes an undo record, so scoring N independent candidates against
//! the same base costs N applies *plus* N reverts, and every apply
//! clones the replaced state into the undo stack. For
//! mutation-screening workloads (ROADMAP item 1's requests/s primitive)
//! the base never changes — all that bookkeeping is waste.
//!
//! [`DeltaEngine::apply_batch`] evaluates each query as an **overlay**:
//!
//! * The per-query dirty units (entries or chunks, per the engine's
//!   effective granularity) are computed with exactly the same
//!   predicates as `apply_perturbation` — same coverage indexes, same
//!   bitwise Born diff, same bin-generation diff against the *base*
//!   generation.
//! * Fresh Phase-A outputs are fanned out on the [`WorkStealingPool`]
//!   and written into per-query **overlay copies of only the affected
//!   chunks' streams**; Phase B folds borrowed slices — overlay chunks
//!   where present, the shared base cache everywhere else (the generic
//!   [`crate::lists::BornLists::apply`] fold). The floats consumed are
//!   identical, in identical order, to what a sequential
//!   apply-then-revert loop folds, so each query's result is
//!   **bit-identical to the sequential loop by construction** — at any
//!   pool width, since Phase A is pure and Phase B stays serial and
//!   per-query.
//! * The k moved positions / mutated charges are written into the
//!   system arenas before the query's kernels and restored (absolute
//!   writes, bit-exact) immediately after its fold, so the engine state
//!   — positions, charges, caches, Born vector, bin generation, undo
//!   stack, energies — is unchanged after the batch returns.
//!
//! Boundary-crossing queries (max displacement past `skin/2`) cannot be
//! served as overlays; they fall back to an internal
//! apply-then-revert pair, which the engine's contract already makes
//! bit-identical to a fresh rebuild at the perturbed geometry.

use super::{run_dirty_units, DeltaEngine, DeltaEval, Granularity, Perturbation};
use crate::born::{push_integrals_to_atoms, BornAccumulators};
use crate::epol::ChargeBins;
use crate::gb::epol_from_raw_sum;
use crate::lists::{BornLists, EpolLists};
use crate::soa::StillScratch;
use polaroct_geom::Vec3;
use polaroct_sched::WorkStealingPool;

/// Per-query overlay over one cached Phase-A stream set: owned copies
/// of the affected chunks, `None` where the base cache is clean.
struct Overlay {
    chunks: Vec<Option<Vec<f64>>>,
}

impl Overlay {
    fn new(n_chunks: usize) -> Overlay {
        Overlay { chunks: vec![None; n_chunks] }
    }

    /// The chunk's owned overlay stream, cloned from the base cache on
    /// first touch.
    fn chunk_mut(&mut self, base: &[Vec<f64>], c: usize) -> &mut Vec<f64> {
        // PANIC-OK: c < n_chunks — chunk ids come from this engine's own tables.
        self.chunks[c].get_or_insert_with(|| base[c].clone())
    }

    /// Borrowed per-chunk slices for the Phase-B fold: overlay where
    /// touched, base cache everywhere else.
    fn slices<'a>(&'a self, base: &'a [Vec<f64>]) -> Vec<&'a [f64]> {
        self.chunks
            .iter()
            .zip(base)
            .map(|(over, b)| over.as_deref().unwrap_or(b))
            .collect()
    }
}

impl DeltaEngine {
    /// Evaluate N independent perturbation queries against the current
    /// (base) state and return one [`DeltaEval`] per query, in order.
    ///
    /// Results are bit-identical to a sequential
    /// `apply_perturbation` + `revert` loop over the same queries — at
    /// any pool width — and the engine's observable state (positions,
    /// charges, caches, energies, undo stack) is unchanged afterwards.
    /// See the module docs for the overlay protocol and the
    /// bit-identity argument.
    pub fn apply_batch(
        &mut self,
        queries: &[Perturbation],
        pool: Option<&WorkStealingPool>,
    ) -> Vec<DeltaEval> {
        let mut evals = Vec::with_capacity(queries.len());
        for q in queries {
            evals.push(self.apply_overlay(q, pool));
            self.queries_batched += 1;
        }
        evals
    }

    /// One overlay query (or the rebuild fallback past the skin
    /// boundary). Leaves `self` bit-identical to its entry state.
    fn apply_overlay(&mut self, q: &Perturbation, pool: Option<&WorkStealingPool>) -> DeltaEval {
        let n = self.positions.len();
        for &(oi, np) in &q.moves {
            // PANIC-OK: perturbation preconditions, checked before any state is touched.
            assert!(oi < n, "moved atom {oi} out of range ({n} atoms)");
            // PANIC-OK: non-finite positions would poison every downstream comparison.
            assert!(
                np.x.is_finite() && np.y.is_finite() && np.z.is_finite(),
                "non-finite target position for atom {oi}"
            );
        }
        for &(oi, nq) in &q.charges {
            // PANIC-OK: perturbation preconditions, checked before any state is touched.
            assert!(oi < n, "charged atom {oi} out of range ({n} atoms)");
            // PANIC-OK: non-finite charges would poison every downstream comparison.
            assert!(nq.is_finite(), "non-finite charge for atom {oi}");
        }

        // Per-query max displacement: every unmoved atom keeps its base
        // displacement; a moved atom contributes its *final* target's
        // distance to the scaffold (the last write wins, exactly as the
        // sequential apply's in-order writes resolve duplicates). max of
        // non-NaN floats is order-independent, so this equals the
        // sequential loop's fold bit-for-bit.
        let mut max_disp = 0.0f64;
        for (oi, &d) in self.disp.iter().enumerate() {
            let eff = q
                .moves
                .iter()
                .rev()
                .find(|&&(a, _)| a == oi)
                // PANIC-OK: oi < n; reference is n-length.
                .map(|&(_, np)| np.dist(self.base.reference[oi]))
                .unwrap_or(d);
            max_disp = max_disp.max(eff);
        }

        if max_disp > 0.5 * self.base.skin {
            // Boundary crossed: no overlay can serve this (the scaffold
            // itself is invalid). Fall back to the engine's own
            // apply + revert — bit-identical to the sequential loop by
            // definition, and the revert restores the base state
            // deterministically before the next query.
            let eval = self.apply_inner(q, pool, None);
            self.revert(pool);
            return eval;
        }

        // ---- Transient state: write the query's positions/charges into
        // the system arenas (absolute values), remembering what they
        // replaced. Restored bit-exactly below.
        let moved_m: Vec<usize> = q
            .moves
            .iter()
            .map(|&(oi, _)| self.inv_order[oi] as usize) // PANIC-OK: oi < n asserted above.
            .collect();
        let saved_pos: Vec<(usize, Vec3)> = moved_m
            .iter()
            // PANIC-OK: Morton ids index the n-length point arrays.
            .map(|&mi| (mi, self.base.sys.atoms.points[mi]))
            .collect();
        let subset: Vec<(usize, Vec3)> = moved_m
            .iter()
            .zip(&q.moves)
            .map(|(&mi, &(_, np))| (mi, np))
            .collect();
        self.base.sys.refresh_atom_subset(&subset);
        let charged_m: Vec<usize> = q
            .charges
            .iter()
            .map(|&(oi, _)| self.inv_order[oi] as usize) // PANIC-OK: oi < n asserted above.
            .collect();
        let saved_q: Vec<(usize, f64)> = charged_m
            .iter()
            .map(|&mi| (mi, self.base.sys.charge[mi])) // PANIC-OK: mi < n.
            .collect();
        for (&mi, &(_, nq)) in charged_m.iter().zip(&q.charges) {
            self.base.sys.set_atom_charge(mi, nq);
        }
        self.base.lists_reused += 1;

        // ---- Born phase over the overlay (same dirtiness predicates as
        // apply_inner, at the effective granularity).
        let entry_mode = self.mode == Granularity::Entry;
        let mut recovered = 0u32;
        let nb = self.base.born_lists.n_chunks();
        let mut born_over = Overlay::new(nb);
        let (born_chunks_redone, born_entries_redone) = if entry_mode {
            let mut dirty: Vec<u32> = moved_m
                .iter()
                .flat_map(|&mi| self.born_entry_touch.chunks_for(mi))
                .copied()
                .collect();
            dirty.sort_unstable();
            dirty.dedup();
            let base = &self.base;
            let dirty_ref = &dirty;
            let fresh: Vec<Vec<f64>> = run_dirty_units(
                pool,
                dirty.len(),
                None,
                |k| {
                    let mut out = Vec::new();
                    // PANIC-OK: k < dirty.len(); ids index the entry list.
                    let e = &base.born_lists.entries[dirty_ref[k] as usize];
                    BornLists::run_entry(&base.sys, e, &mut out);
                    out
                },
                &mut recovered,
            );
            let mut chunks = 0usize;
            let mut last_chunk = u32::MAX;
            for (&e, v) in dirty.iter().zip(&fresh) {
                let c = self.born_entry_chunk[e as usize]; // PANIC-OK: ids index the entry list.
                let off = self.born_entry_offset[e as usize] as usize; // PANIC-OK: same length.
                if c != last_chunk {
                    chunks += 1;
                    last_chunk = c;
                }
                let stream = born_over.chunk_mut(&self.born_outputs, c as usize);
                // PANIC-OK: the entry's span lies inside its chunk's stream by construction.
                stream[off..off + v.len()].copy_from_slice(v);
            }
            (chunks, dirty.len())
        } else {
            let mut bmask = vec![false; nb];
            for &mi in &moved_m {
                for &c in self.born_touch.chunks_for(mi) {
                    bmask[c as usize] = true; // PANIC-OK: index built over exactly nb chunks.
                }
            }
            let dirty: Vec<usize> = bmask
                .iter()
                .enumerate()
                .filter_map(|(c, &d)| d.then_some(c))
                .collect();
            let base = &self.base;
            let dirty_ref = &dirty;
            let fresh = run_dirty_units(
                pool,
                dirty.len(),
                None,
                // PANIC-OK: k < dirty.len() by the runner's index space.
                |k| base.born_lists.run_chunk(&base.sys, dirty_ref[k]),
                &mut recovered,
            );
            let entries: usize = dirty
                .iter()
                .map(|&c| self.base.born_lists.chunks[c].len()) // PANIC-OK: c < nb.
                .sum();
            for (&c, v) in dirty.iter().zip(fresh) {
                born_over.chunks[c] = Some(v); // PANIC-OK: c < nb.
            }
            (dirty.len(), entries)
        };

        // ---- Phase B (Born) over borrowed slices: overlay chunks where
        // touched, the shared base cache everywhere else. Identical
        // floats in identical order to the sequential loop's fold over
        // its spliced cache.
        let mut acc = BornAccumulators::zeros(&self.base.sys);
        let born_slices = born_over.slices(&self.born_outputs);
        self.base.born_lists.apply(&self.base.sys, &born_slices, &mut acc);
        let mut new_born = vec![0.0; n];
        let math = self.base.approx.math;
        push_integrals_to_atoms(&self.base.sys, &acc, 0..n, math, &mut new_born);
        let born_changed: Vec<usize> = self
            .base
            .born
            .iter()
            .zip(&new_born)
            .enumerate()
            .filter_map(|(mi, (a, b))| (a.to_bits() != b.to_bits()).then_some(mi))
            .collect();

        // ---- Bin generation diff against the *base* generation (the
        // same comparison the sequential loop performs, since every
        // preceding query was reverted there).
        let new_bins = ChargeBins::build(&self.base.sys, &new_born, self.base.approx.eps_epol);
        let ne = self.base.epol_lists.n_chunks();
        let mut emask = vec![false; if entry_mode { 0 } else { ne }];
        let mut dirty_epol_entries: Vec<u32> = Vec::new();
        for &mi in moved_m.iter().chain(&charged_m).chain(&born_changed) {
            if entry_mode {
                dirty_epol_entries.extend_from_slice(self.epol_entry_touch.chunks_for(mi));
            } else {
                for &c in self.epol_touch.chunks_for(mi) {
                    emask[c as usize] = true; // PANIC-OK: index built over exactly ne chunks.
                }
            }
        }
        let table_changed = new_bins.m_eps != self.bins.m_eps
            || new_bins.rr_table.len() != self.bins.rr_table.len()
            || new_bins
                .rr_table
                .iter()
                .zip(&self.bins.rr_table)
                .any(|(a, b)| a.to_bits() != b.to_bits());
        if table_changed {
            if entry_mode {
                dirty_epol_entries.extend_from_slice(&self.epol_far_entries);
            } else {
                for &c in &self.epol_far_chunks {
                    emask[c as usize] = true; // PANIC-OK: far-chunk list indexes the ne-chunk list.
                }
            }
        } else {
            let m = new_bins.m_eps.max(1);
            for (node, (a, b)) in new_bins
                .per_node
                .chunks(m)
                .zip(self.bins.per_node.chunks(m))
                .enumerate()
            {
                if a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits()) {
                    if entry_mode {
                        dirty_epol_entries
                            .extend_from_slice(self.epol_far_entry_nodes.chunks_for(node));
                    } else {
                        for &c in self.epol_far_nodes.chunks_for(node) {
                            emask[c as usize] = true; // PANIC-OK: index built over exactly ne chunks.
                        }
                    }
                }
            }
        }

        let mut epol_over = Overlay::new(ne);
        let (epol_chunks_redone, epol_entries_redone) = if entry_mode {
            let mut dirty = dirty_epol_entries;
            dirty.sort_unstable();
            dirty.dedup();
            let base = &self.base;
            let dirty_ref = &dirty;
            let fresh: Vec<f64> = match pool {
                None => {
                    let mut scratch = StillScratch::default();
                    dirty
                        .iter()
                        .map(|&e| {
                            EpolLists::run_entry(
                                &base.sys,
                                &new_bins,
                                &new_born,
                                math,
                                // PANIC-OK: ids come from indexes built over this entry list.
                                &base.epol_lists.entries[e as usize],
                                &mut scratch,
                            )
                        })
                        .collect()
                }
                Some(_) => run_dirty_units(
                    pool,
                    dirty.len(),
                    None,
                    |k| {
                        let mut scratch = StillScratch::default();
                        EpolLists::run_entry(
                            &base.sys,
                            &new_bins,
                            &new_born,
                            math,
                            // PANIC-OK: k < dirty.len(); ids index the entry list.
                            &base.epol_lists.entries[dirty_ref[k] as usize],
                            &mut scratch,
                        )
                    },
                    &mut recovered,
                ),
            };
            let mut chunks = 0usize;
            let mut last_chunk = u32::MAX;
            for (&e, &v) in dirty.iter().zip(&fresh) {
                let c = self.epol_entry_chunk[e as usize]; // PANIC-OK: ids index the entry list.
                // PANIC-OK: entry e lives in chunk c, so e >= chunk.start.
                let off = e as usize - self.base.epol_lists.chunks[c as usize].start;
                if c != last_chunk {
                    chunks += 1;
                    last_chunk = c;
                }
                epol_over.chunk_mut(&self.epol_outputs, c as usize)[off] = v; // PANIC-OK: off < chunk len.
            }
            (chunks, dirty.len())
        } else {
            let dirty: Vec<usize> = emask
                .iter()
                .enumerate()
                .filter_map(|(c, &d)| d.then_some(c))
                .collect();
            let base = &self.base;
            let dirty_ref = &dirty;
            let fresh = run_dirty_units(
                pool,
                dirty.len(),
                None,
                // PANIC-OK: k < dirty.len() by the runner's index space.
                |k| base.epol_lists.run_chunk(&base.sys, &new_bins, &new_born, math, dirty_ref[k]),
                &mut recovered,
            );
            let entries: usize = dirty
                .iter()
                .map(|&c| self.base.epol_lists.chunks[c].len()) // PANIC-OK: c < ne.
                .sum();
            for (&c, v) in dirty.iter().zip(fresh) {
                epol_over.chunks[c] = Some(v); // PANIC-OK: c < ne.
            }
            (dirty.len(), entries)
        };

        // ---- Phase B (E_pol): full sum-tree replay over the overlay.
        let epol_slices = epol_over.slices(&self.epol_outputs);
        let raw = self.base.epol_lists.apply(&epol_slices);
        let energy_kcal = epol_from_raw_sum(raw, self.base.approx.eps_solvent);

        // ---- Restore the transient arena writes (reverse order, so a
        // twice-written atom unwinds to the base value) — bit-exact
        // absolute writes; the engine is now in its entry state.
        let restore: Vec<(usize, Vec3)> = saved_pos.iter().rev().copied().collect();
        self.base.sys.refresh_atom_subset(&restore);
        for &(mi, oq) in saved_q.iter().rev() {
            self.base.sys.set_atom_charge(mi, oq);
        }

        let total = self.total_chunks();
        let total_entries = self.total_entries();
        let redone = born_chunks_redone + epol_chunks_redone;
        let entries_redone = born_entries_redone + epol_entries_redone;
        DeltaEval {
            energy_kcal,
            raw,
            rebuilt: false,
            max_disp,
            born_chunks_redone,
            epol_chunks_redone,
            chunks_redone: redone,
            chunks_cached: total - redone,
            total_chunks: total,
            entries_redone,
            entries_cached: total_entries - entries_redone,
            total_entries,
            recovered_chunks: recovered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ApproxParams;
    use polaroct_molecule::{synth, Molecule};

    fn mol(n: usize, seed: u64) -> Molecule {
        synth::protein("batch", n, seed)
    }

    fn queries(m: &Molecule, k: usize) -> Vec<Perturbation> {
        // Deterministic mixed move/charge queries around the base state.
        (0..k)
            .map(|qi| {
                let a = (qi * 37 + 11) % m.positions.len();
                let b = (qi * 53 + 29) % m.positions.len();
                Perturbation::default()
                    .move_atom(
                        a,
                        m.positions[a]
                            + Vec3::new(
                                0.05 + 0.01 * qi as f64,
                                -0.07,
                                0.03 * ((qi % 3) as f64 - 1.0),
                            ),
                    )
                    .set_charge(b, m.charges[b] + 0.5 + 0.125 * qi as f64)
            })
            .collect()
    }

    /// The reference semantics: a sequential apply → revert loop over
    /// the same engine.
    fn sequential(eng: &mut DeltaEngine, qs: &[Perturbation]) -> Vec<DeltaEval> {
        qs.iter()
            .map(|q| {
                let e = eng.apply_perturbation(q, None);
                assert!(eng.revert(None));
                e
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_apply_revert_bits() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let m = mol(150, 41);
        let mut eng = DeltaEngine::new(&m, &approx, skin);
        let qs = queries(&m, 6);
        let raw0 = eng.raw();
        let digest0 = eng.born_digest();
        let seq = sequential(&mut eng, &qs);
        let bat = eng.apply_batch(&qs, None);
        assert_eq!(seq.len(), bat.len());
        for (s, b) in seq.iter().zip(&bat) {
            assert_eq!(s.raw.to_bits(), b.raw.to_bits());
            assert_eq!(s.energy_kcal.to_bits(), b.energy_kcal.to_bits());
            assert_eq!(s.max_disp.to_bits(), b.max_disp.to_bits());
            assert_eq!(s.chunks_redone, b.chunks_redone);
            assert_eq!(s.entries_redone, b.entries_redone);
            assert_eq!(s.entries_cached, b.entries_cached);
            assert_eq!(s.rebuilt, b.rebuilt);
        }
        // The batch left the engine bit-identical to its base state.
        assert_eq!(eng.raw().to_bits(), raw0.to_bits());
        assert_eq!(eng.born_digest(), digest0);
        assert_eq!(eng.pending_perturbations(), 0);
        assert_eq!(eng.queries_batched, qs.len() as u64);
    }

    #[test]
    fn batch_matches_sequential_in_chunk_mode() {
        let approx = ApproxParams::default();
        let m = mol(120, 43);
        let mut eng = DeltaEngine::with_params(
            &m,
            &approx,
            1.0,
            super::super::DeltaParams {
                granularity: Granularity::Chunk,
                ..Default::default()
            },
        );
        let qs = queries(&m, 4);
        let seq = sequential(&mut eng, &qs);
        let bat = eng.apply_batch(&qs, None);
        for (s, b) in seq.iter().zip(&bat) {
            assert_eq!(s.raw.to_bits(), b.raw.to_bits());
            assert_eq!(s.chunks_redone, b.chunks_redone);
            assert_eq!(s.entries_redone, b.entries_redone);
        }
    }

    #[test]
    fn pooled_batch_matches_serial_batch_bits() {
        let approx = ApproxParams::default();
        let m = mol(140, 47);
        let qs = queries(&m, 5);
        let mut serial = DeltaEngine::new(&m, &approx, 1.0);
        let mut pooled = DeltaEngine::new(&m, &approx, 1.0);
        let pool = polaroct_sched::WorkStealingPool::new(4);
        let bs = serial.apply_batch(&qs, None);
        let bp = pooled.apply_batch(&qs, Some(&pool));
        for (s, p) in bs.iter().zip(&bp) {
            assert_eq!(s.raw.to_bits(), p.raw.to_bits());
            assert_eq!(s.entries_redone, p.entries_redone);
        }
        assert_eq!(serial.born_digest(), pooled.born_digest());
    }

    #[test]
    fn boundary_crossing_query_falls_back_and_leaves_base_intact() {
        let approx = ApproxParams::default();
        let skin = 0.4;
        let m = mol(100, 53);
        let mut eng = DeltaEngine::new(&m, &approx, skin);
        let raw0 = eng.raw();
        let crossing =
            Perturbation::default().move_atom(8, m.positions[8] + Vec3::new(1.5, 0.0, 0.0));
        let small =
            Perturbation::default().move_atom(30, m.positions[30] + Vec3::new(0.05, 0.0, 0.0));
        let qs = vec![small.clone(), crossing.clone(), small];
        let seq = sequential(&mut eng, &qs);
        let bat = eng.apply_batch(&qs, None);
        assert!(bat[1].rebuilt, "the crossing query must rebuild");
        for (s, b) in seq.iter().zip(&bat) {
            assert_eq!(s.raw.to_bits(), b.raw.to_bits());
            assert_eq!(s.rebuilt, b.rebuilt);
        }
        assert_eq!(eng.raw().to_bits(), raw0.to_bits());
        assert_eq!(eng.pending_perturbations(), 0);
    }

    #[test]
    fn duplicate_atom_writes_resolve_last_wins() {
        let approx = ApproxParams::default();
        let m = mol(90, 59);
        let mut eng = DeltaEngine::new(&m, &approx, 1.0);
        // One query moving the same atom twice and charging it twice:
        // the sequential apply resolves both last-wins, and so must the
        // overlay.
        let q = Perturbation::default()
            .move_atom(12, m.positions[12] + Vec3::new(0.3, 0.0, 0.0))
            .move_atom(12, m.positions[12] + Vec3::new(0.0, 0.1, 0.0))
            .set_charge(12, 2.0)
            .set_charge(12, -1.0);
        let qs = vec![q];
        let seq = sequential(&mut eng, &qs);
        let bat = eng.apply_batch(&qs, None);
        assert_eq!(seq[0].raw.to_bits(), bat[0].raw.to_bits());
        assert_eq!(seq[0].max_disp.to_bits(), bat[0].max_disp.to_bits());
        assert_eq!(eng.positions()[12], m.positions[12], "base must be restored");
        assert_eq!(eng.charges()[12], m.charges[12]);
    }

    #[test]
    fn empty_batch_and_empty_query_are_identities() {
        let approx = ApproxParams::default();
        let m = mol(80, 61);
        let mut eng = DeltaEngine::new(&m, &approx, 0.5);
        let raw0 = eng.raw();
        assert!(eng.apply_batch(&[], None).is_empty());
        let bat = eng.apply_batch(&[Perturbation::default()], None);
        assert_eq!(bat[0].raw.to_bits(), raw0.to_bits());
        assert_eq!(bat[0].entries_redone, 0);
        assert_eq!(bat[0].chunks_redone, 0);
    }
}
