//! Prepared GB system: surface + both octrees + Morton-ordered payloads.

use crate::params::ApproxParams;
use crate::soa::{AtomArena, AtomView, QArena, QView, StillScratch, CHUNK};
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;
use polaroct_octree::{build, BuildParams, Octree};
use polaroct_sched::WorkStealingPool;
use polaroct_surface::{surface_quadrature, QuadratureSet};
use std::ops::Range;

/// Everything the kernels need, laid out for traversal:
///
/// * `atoms` — octree over atom centers (`T_A`); `charge[i]`, `radius[i]`
///   are Morton-ordered alongside `atoms.points[i]`.
/// * `qtree` — octree over surface quadrature points (`T_Q`);
///   `q_normal[i]`, `q_weight[i]` Morton-ordered alongside
///   `qtree.points[i]`; `q_node_normal[n]` is the per-node
///   weight-weighted normal sum `ñ_Q = Σ_{q∈Q} w_q n_q` of Fig. 2.
///
/// Construction is the paper's pre-processing step (§IV.C Step 1): build
/// once, then reuse for any ε and any rigid pose.
#[derive(Clone, Debug)]
pub struct GbSystem {
    pub atoms: Octree,
    pub charge: Vec<f64>,
    pub radius: Vec<f64>,
    pub qtree: Octree,
    pub q_normal: Vec<Vec3>,
    pub q_weight: Vec<f64>,
    /// Per-qtree-node `Σ w_q n_q` (indexed by node id).
    pub q_node_normal: Vec<Vec3>,
    /// Persistent flat SoA arena over all q-points in Morton order
    /// (positions + weight-premultiplied normals). Immutable between
    /// rebuilds; any leaf or clipped leaf is a zero-copy slice.
    pub q_arena: QArena,
    /// Persistent flat SoA arena over all atoms in Morton order
    /// (positions + charges). Coordinates are rewritten in place by
    /// [`GbSystem::refresh_atom_positions`] on skin-reuse steps.
    pub atom_arena: AtomArena,
    /// Name carried over from the molecule.
    pub name: String,
}

impl GbSystem {
    /// Sample the surface and build both octrees.
    pub fn prepare(mol: &Molecule, params: &ApproxParams) -> GbSystem {
        Self::prepare_pooled(mol, params, None)
    }

    /// [`GbSystem::prepare`] with the octree builds optionally routed
    /// over a work-stealing pool. The trees (and therefore every
    /// downstream energy) are byte-identical with or without a pool at
    /// any width — parallel construction is a pure performance knob.
    pub fn prepare_pooled(
        mol: &Molecule,
        params: &ApproxParams,
        pool: Option<&WorkStealingPool>,
    ) -> GbSystem {
        let quad = surface_quadrature(mol, params.surface);
        Self::prepare_with_surface_pooled(mol, &quad, params, pool)
    }

    /// Build from an externally supplied surface (lets tests craft exact
    /// quadrature sets, and docking reuse a receptor surface).
    pub fn prepare_with_surface(
        mol: &Molecule,
        quad: &QuadratureSet,
        params: &ApproxParams,
    ) -> GbSystem {
        Self::prepare_with_surface_pooled(mol, quad, params, None)
    }

    /// [`GbSystem::prepare_with_surface`] with optionally-pooled octree
    /// builds (see [`GbSystem::prepare_pooled`]).
    pub fn prepare_with_surface_pooled(
        mol: &Molecule,
        quad: &QuadratureSet,
        params: &ApproxParams,
        pool: Option<&WorkStealingPool>,
    ) -> GbSystem {
        assert!(!mol.is_empty(), "empty molecule");
        assert!(!quad.is_empty(), "empty surface");

        let atoms = build(
            &mol.positions,
            BuildParams {
                leaf_capacity: params.leaf_cap_atoms,
                pool,
                ..Default::default()
            },
        );
        let charge = atoms.permute(&mol.charges);
        let radius = atoms.permute(&mol.radii);

        let qtree = build(
            &quad.positions,
            BuildParams {
                leaf_capacity: params.leaf_cap_qpoints,
                pool,
                ..Default::default()
            },
        );
        let q_normal = qtree.permute(&quad.normals);
        let q_weight = qtree.permute(&quad.weights);

        // Per-node weighted normal sums, O(N log N) total by summing each
        // node's range directly (ranges nest, total work = Σ node sizes).
        let mut q_node_normal = Vec::with_capacity(qtree.nodes.len());
        for node in &qtree.nodes {
            let mut s = Vec3::ZERO;
            for i in node.range() {
                s += q_normal[i] * q_weight[i];
            }
            q_node_normal.push(s);
        }

        // Flat leaf arenas (DESIGN.md §12): built once per prepare from
        // the already-permuted payloads, so list execution slices them
        // directly instead of re-gathering per chunk.
        let q_arena = QArena::build(&qtree.points, &q_normal, &q_weight);
        let atom_arena = AtomArena::build(&atoms.points, &charge);

        GbSystem {
            atoms,
            charge,
            radius,
            qtree,
            q_normal,
            q_weight,
            q_node_normal,
            q_arena,
            atom_arena,
            name: mol.name.clone(),
        }
    }

    /// Positions-only refresh for Verlet-skin reuse: rewrite the atom
    /// octree's Morton-ordered point copies *and* the flat atom arena
    /// from original-order positions. Topology, node bounds, `point_order`
    /// and every q-surface payload stay frozen — exactly the state a
    /// within-skin step is allowed to reuse (DESIGN.md §11).
    pub fn refresh_atom_positions(&mut self, positions: &[Vec3]) {
        self.atoms.refresh_positions(positions);
        self.atom_arena.refresh_positions(&self.atoms.points);
    }

    /// Subset form of [`GbSystem::refresh_atom_positions`] for
    /// perturbation queries: rewrite the octree point copy *and* the flat
    /// arena lanes of exactly the given Morton-indexed atoms, O(k) instead
    /// of O(N). Same frozen-topology contract as the full refresh — a
    /// full refresh to the same geometry produces bitwise-identical state.
    pub fn refresh_atom_subset(&mut self, moved: &[(usize, Vec3)]) {
        for &(mi, p) in moved {
            // PANIC-OK: perturbation indices are validated against the atom count on entry.
            assert!(mi < self.atoms.points.len(), "atom index out of range");
            self.atoms.points[mi] = p; // PANIC-OK: bounds asserted above.
            self.atom_arena.set_position(mi, p);
        }
    }

    /// Charge-mutation write: update the Morton-ordered charge payload and
    /// the flat arena lane of one atom. Charges are pure payload — no tree
    /// geometry or surface quantity depends on them — so this never
    /// invalidates the prepared scaffold.
    pub fn set_atom_charge(&mut self, mi: usize, q: f64) {
        // PANIC-OK: perturbation indices are validated against the atom count on entry.
        assert!(mi < self.charge.len(), "atom index out of range");
        self.charge[mi] = q; // PANIC-OK: bounds asserted above.
        self.atom_arena.set_charge(mi, q);
    }

    /// Leaf×leaf near-field Born terms, block-kernel form: the term of
    /// `qv` at every atom of the Morton range `ar`, delivered to
    /// `sink(atom_index, term)` in index order. Each term is bit-identical
    /// to `qv.born_term(position(ai))` — the CHUNK-sized blocking below
    /// only amortizes per-call overhead across the leaf — so every caller
    /// (recursions, list engine, benches) shares one kernel and one
    /// float-order story.
    #[inline]
    pub fn born_block_terms(
        &self,
        qv: QView<'_>,
        ar: Range<usize>,
        mut sink: impl FnMut(usize, f64),
    ) {
        let mut buf = [0.0f64; CHUNK];
        let mut base = ar.start;
        while base < ar.end {
            let m = CHUNK.min(ar.end - base);
            let (ax, ay, az) = self.atom_arena.pos_slices(base..base + m);
            qv.born_block(ax, ay, az, &mut buf[..m]);
            for (k, &t) in buf[..m].iter().enumerate() {
                sink(base + k, t);
            }
            base += m;
        }
    }

    /// Leaf×leaf near-field STILL contribution, block-kernel form:
    /// `Σ_{u∈ur} q_u · still_term(u → vv)` with the fold in Morton index
    /// order — exactly the historical per-atom loop (Eq. 2's ordered-pair
    /// leaf block), with per-call overhead amortized across the leaf and
    /// the transcendentals batched over whole u×v tiles. `scratch` is the
    /// tile staging, owned by the caller so one instance serves a whole
    /// sweep of leaf pairs.
    #[inline]
    pub fn still_block_raw(
        &self,
        born: &[f64],
        ur: Range<usize>,
        vv: AtomView<'_>,
        math: MathMode,
        scratch: &mut StillScratch,
    ) -> f64 {
        let mut raw = 0.0;
        let mut buf = [0.0f64; CHUNK];
        let mut base = ur.start;
        while base < ur.end {
            let m = CHUNK.min(ur.end - base);
            let uv = self.atom_arena.view(born, base..base + m);
            uv.still_block(vv, math, scratch, &mut buf[..m]);
            for (k, &t) in buf[..m].iter().enumerate() {
                raw += uv.q[k] * t;
            }
            base += m;
        }
        raw
    }

    /// Number of atoms `M`.
    #[inline]
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of quadrature points `N`.
    #[inline]
    pub fn n_qpoints(&self) -> usize {
        self.qtree.len()
    }

    /// Bytes one replica of this system occupies (molecule payloads +
    /// both trees + surface payloads + flat leaf arenas) — the
    /// per-process figure for the §V.B replication accounting.
    /// Capacity-based, like [`Octree::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        self.atoms.memory_bytes()
            + self.charge.capacity() * 8
            + self.radius.capacity() * 8
            + self.qtree.memory_bytes()
            + self.q_normal.capacity() * std::mem::size_of::<Vec3>()
            + self.q_weight.capacity() * 8
            + self.q_node_normal.capacity() * std::mem::size_of::<Vec3>()
            + self.arena_bytes()
    }

    /// Bytes held by the two persistent flat leaf arenas alone (broken
    /// out of [`GbSystem::memory_bytes`] for `RunReport`'s accounting).
    pub fn arena_bytes(&self) -> usize {
        self.q_arena.memory_bytes() + self.atom_arena.memory_bytes()
    }

    /// Map Morton-ordered per-atom values back to the molecule's original
    /// atom order (for reporting Born radii to callers).
    pub fn to_original_atom_order(&self, sorted: &[f64]) -> Vec<f64> {
        self.atoms.unpermute(sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_molecule::synth;

    fn system(n: usize) -> GbSystem {
        let mol = synth::protein("p", n, 42);
        GbSystem::prepare(&mol, &ApproxParams::default())
    }

    #[test]
    fn prepares_consistent_sizes() {
        let s = system(300);
        assert_eq!(s.n_atoms(), 300);
        assert_eq!(s.charge.len(), 300);
        assert_eq!(s.radius.len(), 300);
        assert!(s.n_qpoints() > 0);
        assert_eq!(s.q_normal.len(), s.n_qpoints());
        assert_eq!(s.q_weight.len(), s.n_qpoints());
        assert_eq!(s.q_node_normal.len(), s.qtree.nodes.len());
    }

    #[test]
    fn payloads_follow_morton_permutation() {
        let mol = synth::protein("p", 120, 7);
        let s = GbSystem::prepare(&mol, &ApproxParams::default());
        for i in 0..s.n_atoms() {
            let orig = s.atoms.point_order[i] as usize;
            assert_eq!(s.charge[i], mol.charges[orig]);
            assert_eq!(s.radius[i], mol.radii[orig]);
            assert_eq!(s.atoms.points[i], mol.positions[orig]);
        }
    }

    #[test]
    fn node_normals_match_direct_sums() {
        let s = system(150);
        // Root node's sum must equal the sum over all q-points.
        let mut total = Vec3::ZERO;
        for i in 0..s.n_qpoints() {
            total += s.q_normal[i] * s.q_weight[i];
        }
        let root_sum = s.q_node_normal[0];
        assert!((total - root_sum).norm() < 1e-9);
        // Internal node sums equal the sum of their children's sums.
        for node in &s.atoms.nodes {
            let _ = node; // atoms tree has no normal sums; check qtree:
        }
        for (id, node) in s.qtree.nodes.iter().enumerate() {
            if !node.is_leaf() {
                let mut kid_sum = Vec3::ZERO;
                for c in node.children() {
                    kid_sum += s.q_node_normal[c as usize];
                }
                assert!(
                    (kid_sum - s.q_node_normal[id]).norm() < 1e-9,
                    "node {id} normal sum mismatch"
                );
            }
        }
    }

    #[test]
    fn pooled_prepare_is_bit_identical_to_serial() {
        let mol = synth::protein("p", 400, 11);
        let params = ApproxParams::default();
        let serial = GbSystem::prepare(&mol, &params);
        for width in [1, 2, 4] {
            let pool = WorkStealingPool::new(width);
            let pooled = GbSystem::prepare_pooled(&mol, &params, Some(&pool));
            assert_eq!(
                serial.atoms.content_digest(),
                pooled.atoms.content_digest(),
                "atom tree differs at width {width}"
            );
            assert_eq!(
                serial.qtree.content_digest(),
                pooled.qtree.content_digest(),
                "q-point tree differs at width {width}"
            );
            assert_eq!(serial.charge, pooled.charge);
            assert_eq!(serial.q_weight, pooled.q_weight);
        }
    }

    #[test]
    fn unpermute_restores_original_order() {
        let mol = synth::protein("p", 80, 3);
        let s = GbSystem::prepare(&mol, &ApproxParams::default());
        let restored = s.to_original_atom_order(&s.charge);
        for (a, b) in restored.iter().zip(&mol.charges) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn arenas_mirror_morton_payloads() {
        let s = system(250);
        assert_eq!(s.q_arena.len(), s.n_qpoints());
        assert_eq!(s.atom_arena.len(), s.n_atoms());
        for i in 0..s.n_atoms() {
            assert_eq!(s.atom_arena.position(i), s.atoms.points[i]);
            assert_eq!(s.atom_arena.q[i], s.charge[i]);
        }
        for i in 0..s.n_qpoints() {
            let p = s.qtree.points[i];
            let wn = s.q_normal[i] * s.q_weight[i];
            assert_eq!(s.q_arena.x[i], p.x);
            assert_eq!(s.q_arena.y[i], p.y);
            assert_eq!(s.q_arena.z[i], p.z);
            assert_eq!(s.q_arena.wnx[i], wn.x);
            assert_eq!(s.q_arena.wny[i], wn.y);
            assert_eq!(s.q_arena.wnz[i], wn.z);
        }
        assert!(s.arena_bytes() > 0);
        assert!(s.memory_bytes() > s.arena_bytes());
    }

    #[test]
    fn refresh_atom_positions_tracks_tree_and_arena() {
        let mol = synth::protein("p", 90, 13);
        let mut s = GbSystem::prepare(&mol, &ApproxParams::default());
        let moved: Vec<Vec3> = mol
            .positions
            .iter()
            .map(|p| *p + Vec3::new(0.2, 0.1, -0.3))
            .collect();
        s.refresh_atom_positions(&moved);
        for i in 0..s.n_atoms() {
            let orig = s.atoms.point_order[i] as usize;
            assert_eq!(s.atoms.points[i], moved[orig]);
            assert_eq!(s.atom_arena.position(i), moved[orig]);
        }
        // Round-trip back to the build geometry is bit-exact.
        s.refresh_atom_positions(&mol.positions);
        let fresh = GbSystem::prepare(&mol, &ApproxParams::default());
        assert_eq!(s.atoms.content_digest(), fresh.atoms.content_digest());
        assert_eq!(s.atom_arena.x, fresh.atom_arena.x);
        assert_eq!(s.atom_arena.y, fresh.atom_arena.y);
        assert_eq!(s.atom_arena.z, fresh.atom_arena.z);
    }

    #[test]
    fn subset_refresh_matches_full_refresh_bitwise() {
        let mol = synth::protein("p", 110, 19);
        let mut subset = GbSystem::prepare(&mol, &ApproxParams::default());
        let mut full = subset.clone();
        // Move three atoms (original order) and mutate one charge.
        let mut moved_orig = mol.positions.clone();
        for (oi, d) in [(4usize, 0.3), (50, -0.2), (101, 0.1)] {
            moved_orig[oi] += Vec3::new(d, -d, 0.5 * d);
        }
        full.refresh_atom_positions(&moved_orig);
        // Subset path works in Morton indices: invert point_order.
        let mut inv = vec![0usize; subset.n_atoms()];
        for (mi, &oi) in subset.atoms.point_order.iter().enumerate() {
            inv[oi as usize] = mi;
        }
        let subset_moves: Vec<(usize, Vec3)> = [4usize, 50, 101]
            .iter()
            .map(|&oi| (inv[oi], moved_orig[oi]))
            .collect();
        subset.refresh_atom_subset(&subset_moves);
        assert_eq!(subset.atoms.points, full.atoms.points);
        assert_eq!(subset.atom_arena.x, full.atom_arena.x);
        assert_eq!(subset.atom_arena.y, full.atom_arena.y);
        assert_eq!(subset.atom_arena.z, full.atom_arena.z);
        subset.set_atom_charge(inv[50], -3.25);
        assert_eq!(subset.charge[inv[50]], -3.25);
        assert_eq!(subset.atom_arena.q[inv[50]], -3.25);
    }

    #[test]
    fn memory_scales_linearly() {
        let s1 = system(200);
        let s2 = system(800);
        let ratio = s2.memory_bytes() as f64 / s1.memory_bytes() as f64;
        assert!(ratio > 2.0 && ratio < 8.0, "memory ratio {ratio}");
    }
}
