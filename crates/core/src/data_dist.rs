//! Data-distributed variant — the paper's other deferred direction
//! (§IV.A lists "distribute both the data and work evenly among the
//! processes (each process gets only a part of the data)" but reports
//! only the replicated form; §VI: "Distributing data as well as
//! computation is also an interesting approach to explore").
//!
//! Each rank owns a contiguous Morton segment of atoms (a subtree forest)
//! and the quadrature points its atoms generated, plus a *halo*: remote
//! leaf aggregates (center, radius, ñ_Q, charge bins) needed for far-field
//! terms, and full remote leaf contents within the near-field horizon.
//! Memory per rank drops from one full replica to `replica/P + halo`,
//! which is the whole point; communication gains a halo-exchange term.
//!
//! This module provides the memory/communication *model* for that layout
//! plus an executable energy path (which, with all data in one address
//! space here, trivially matches the replicated drivers — the interesting
//! outputs are the per-rank memory and the extra comm volume).

use crate::params::ApproxParams;
use crate::system::GbSystem;
use polaroct_cluster::costmodel::CommCostModel;
use polaroct_cluster::machine::ClusterSpec;

/// Predicted footprint and comm volume of the data-distributed layout.
#[derive(Clone, Copy, Debug)]
pub struct DataDistPlan {
    /// Bytes of owned data per rank (atoms + q-points + tree slice).
    pub owned_bytes_per_rank: usize,
    /// Bytes of halo data per rank (remote aggregates + near-field leaf
    /// copies).
    pub halo_bytes_per_rank: usize,
    /// Bytes exchanged per energy evaluation (halo refresh).
    pub exchange_bytes: usize,
    /// Time of the halo exchange under the cluster's cost model (s).
    pub exchange_time: f64,
    /// Replicated-layout bytes per rank, for comparison.
    pub replicated_bytes: usize,
}

impl DataDistPlan {
    /// Memory saving factor vs full replication.
    pub fn memory_saving(&self) -> f64 {
        self.replicated_bytes as f64 / (self.owned_bytes_per_rank + self.halo_bytes_per_rank) as f64
    }
}

/// Plan the data-distributed layout of `sys` over `cluster`.
///
/// Halo size is derived from the actual tree geometry: a leaf is in some
/// rank's near field if its center lies within `mac · (r_leaf + r_max)` of
/// the rank's segment bounding sphere, with `mac` the E_pol acceptance
/// multiplier (the Born horizon is tighter).
pub fn plan_data_distribution(
    sys: &GbSystem,
    params: &ApproxParams,
    cluster: &ClusterSpec,
) -> DataDistPlan {
    let p = cluster.placement.processes;
    let replicated = sys.memory_bytes();
    let owned = replicated / p;

    // Per-rank segment bounding spheres over atom leaves.
    let ranges = sys.atoms.partition_leaves(p);
    let mac = params.epol_mac_multiplier();
    let mut max_halo_leaves = 0usize;
    for range in &ranges {
        if range.is_empty() {
            continue;
        }
        // Segment bounding sphere (approximate: centroid of leaf centers).
        let leaves = &sys.atoms.leaf_ids[range.clone()];
        let mut c = polaroct_geom::Vec3::ZERO;
        for &l in leaves {
            c += sys.atoms.node(l).center;
        }
        c = c / leaves.len() as f64;
        let mut seg_r: f64 = 0.0;
        for &l in leaves {
            let n = sys.atoms.node(l);
            seg_r = seg_r.max(c.dist(n.center) + n.radius);
        }
        // Count remote leaves within the near-field horizon.
        let mut halo = 0usize;
        for &l in &sys.atoms.leaf_ids {
            let n = sys.atoms.node(l);
            let d = c.dist(n.center);
            if d <= (seg_r + n.radius) * mac && !leaves.contains(&l) {
                halo += 1;
            }
        }
        max_halo_leaves = max_halo_leaves.max(halo);
    }
    // Halo bytes: near-field leaves ship full contents (~leaf_cap atoms ×
    // 40 B); every rank additionally holds all remote leaf aggregates
    // (56 B each: center+radius+bins digest).
    let leaf_bytes = 40 * 32;
    let halo_bytes = max_halo_leaves * leaf_bytes + sys.atoms.leaf_count() * 56;
    let exchange_bytes = halo_bytes * p;
    let cm = CommCostModel::for_cluster(cluster);
    let exchange_time = cm.allgatherv(exchange_bytes);

    DataDistPlan {
        owned_bytes_per_rank: owned,
        halo_bytes_per_rank: halo_bytes,
        exchange_bytes,
        exchange_time,
        replicated_bytes: replicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_cluster::machine::{MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn cluster(p: usize) -> ClusterSpec {
        ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p))
    }

    #[test]
    fn distribution_saves_memory_at_scale() {
        let mol = synth::capsid("c", 30_000, 3);
        let params = ApproxParams::default();
        let sys = GbSystem::prepare(&mol, &params);
        let plan = plan_data_distribution(&sys, &params, &cluster(12));
        assert!(
            plan.memory_saving() > 1.5,
            "saving {} (owned {} + halo {} vs replicated {})",
            plan.memory_saving(),
            plan.owned_bytes_per_rank,
            plan.halo_bytes_per_rank,
            plan.replicated_bytes
        );
    }

    #[test]
    fn more_ranks_means_less_owned_but_not_free() {
        let mol = synth::protein("p", 3_000, 5);
        let params = ApproxParams::default();
        let sys = GbSystem::prepare(&mol, &params);
        let p4 = plan_data_distribution(&sys, &params, &cluster(4));
        let p16 = plan_data_distribution(&sys, &params, &cluster(16));
        assert!(p16.owned_bytes_per_rank < p4.owned_bytes_per_rank);
        // Halo does not shrink proportionally — the tradeoff the paper
        // hints at when deferring this design.
        assert!(p16.halo_bytes_per_rank as f64 > 0.3 * p4.halo_bytes_per_rank as f64);
    }

    #[test]
    fn exchange_time_positive_and_bounded() {
        let mol = synth::protein("p", 2_000, 7);
        let params = ApproxParams::default();
        let sys = GbSystem::prepare(&mol, &params);
        let plan = plan_data_distribution(&sys, &params, &cluster(8));
        assert!(plan.exchange_time > 0.0);
        assert!(
            plan.exchange_time < 10.0,
            "exchange {}s",
            plan.exchange_time
        );
    }
}
