//! Explicit inter-node dynamic load balancing — the paper's stated future
//! work (§VI: "we are planning to incorporate explicit dynamic load
//! balancing techniques such as work-stealing to improve the performance
//! even further").
//!
//! The static node-based division assigns each rank a fixed leaf segment;
//! when leaf costs are skewed (e.g. a capsid's pole-dense Fibonacci
//! seams), the slowest rank dominates Fig. 4's bulk-synchronous phases.
//! This driver lets idle ranks *steal whole leaves* from loaded ranks
//! between phase boundaries. In the simulated cluster this is modeled by
//! measuring every leaf's actual kernel cost and re-scheduling leaves
//! across ranks with a greedy longest-processing-time (LPT) policy, each
//! migration charged one point-to-point message (the leaf id + its result
//! contribution is rank-local, so only the *task* moves — the data is
//! replicated anyway in the work-division-only scheme).
//!
//! Energies are bit-identical to `run_oct_mpi` with node-node division:
//! stealing only changes *who* computes a leaf, never *what* is computed.

use crate::born::{approx_integrals, push_integrals_to_atoms, BornAccumulators};
use crate::drivers::{validate_system, DriverConfig, DriverError, RunOutcome, RunReport};
use crate::epol::{approx_epol_leaf, ChargeBins};
use crate::gb::epol_from_raw_sum;
use crate::params::ApproxParams;
use crate::system::GbSystem;
use polaroct_cluster::costmodel::CommCostModel;
use polaroct_cluster::machine::ClusterSpec;
use polaroct_cluster::memory::MemoryModel;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::fastmath::MathMode;

/// Greedy LPT makespan over `ranks` machines; returns (makespan,
/// migrations) where `migrations` counts tasks placed on a rank other
/// than their static owner (each pays one steal message).
fn lpt_makespan(costs: &[f64], static_owner: &[usize], ranks: usize) -> (f64, usize) {
    assert_eq!(costs.len(), static_owner.len());
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]));
    let mut load = vec![0.0f64; ranks];
    let mut migrations = 0usize;
    for &t in &order {
        let (best, _) = load
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .unwrap();
        load[best] += costs[t];
        if best != static_owner[t] {
            migrations += 1;
        }
    }
    (load.iter().cloned().fold(0.0, f64::max), migrations)
}

/// `OCT_MPI` with inter-node leaf stealing. Same results as the static
/// node-node division; the timing reflects LPT-balanced phases plus one
/// p2p message per migrated leaf.
pub fn run_oct_mpi_steal(
    sys: &GbSystem,
    params: &ApproxParams,
    cfg: &DriverConfig,
    cluster: &ClusterSpec,
) -> Result<RunReport, DriverError> {
    assert_eq!(cluster.placement.threads_per_process, 1);
    validate_system(sys)?;
    let wall = std::time::Instant::now();
    let p = cluster.placement.processes;
    let mem = MemoryModel::new(sys.memory_bytes());
    let slowdown = mem.slowdown(cluster);
    let comm_model = CommCostModel::for_cluster(cluster);
    let approx_math = params.math == MathMode::Exact;
    let secs = |o: &OpCounts| cfg.costs.seconds(o, !approx_math) * slowdown;

    let mut total_ops = OpCounts::default();
    let mut time = 0.0;

    // ---- Phase 2: Born integrals, per-q-leaf costs.
    let mut acc = BornAccumulators::zeros(sys);
    let q_static = static_owners(&sys.qtree.partition_leaves(p), sys.qtree.leaf_count());
    let mut q_costs = Vec::with_capacity(sys.qtree.leaf_count());
    for &q in &sys.qtree.leaf_ids {
        let ops = approx_integrals(sys, q, params.eps_born, &mut acc);
        q_costs.push(secs(&ops));
        total_ops.add(&ops);
    }
    let (span2, steals2) = lpt_makespan(&q_costs, &q_static, p);
    time += span2 + steals2 as f64 * comm_model.p2p(16);
    // Step 3 allreduce.
    time += comm_model.allreduce((acc.node.len() + acc.atom.len()) * 8);

    // ---- Phase 4: push (atoms evenly; already balanced, no stealing).
    let mut born = vec![0.0; sys.n_atoms()];
    let push_ops = push_integrals_to_atoms(sys, &acc, 0..sys.n_atoms(), params.math, &mut born);
    total_ops.add(&push_ops);
    time += secs(&push_ops) / p as f64;
    // Step 5 allgather.
    time += comm_model.allgatherv(sys.n_atoms() * 8);

    // ---- Phase 6: E_pol, per-atom-leaf costs.
    let bins = ChargeBins::build(sys, &born, params.eps_epol);
    let a_static = static_owners(&sys.atoms.partition_leaves(p), sys.atoms.leaf_count());
    let mut raw = 0.0;
    let mut a_costs = Vec::with_capacity(sys.atoms.leaf_count());
    for &v in &sys.atoms.leaf_ids {
        let (r, ops) = approx_epol_leaf(sys, &bins, &born, v, params.eps_epol, params.math);
        raw += r;
        a_costs.push(secs(&ops));
        total_ops.add(&ops);
    }
    let (span6, steals6) = lpt_makespan(&a_costs, &a_static, p);
    time += span6 + steals6 as f64 * comm_model.p2p(16);
    // Step 7 reduce.
    time += comm_model.reduce(8);

    Ok(RunReport {
        name: "OCT_MPI+STEAL".into(),
        energy_kcal: epol_from_raw_sum(raw, params.eps_solvent),
        born_radii: sys.to_original_atom_order(&born),
        time,
        compute: span2 + span6,
        comm: time - span2 - span6,
        wait: 0.0,
        ops: total_ops,
        memory_per_process: sys.memory_bytes(),
        memory_arena_bytes: sys.arena_bytes(),
        cores: p,
        wall_seconds: wall.elapsed().as_secs_f64(),
        phases: crate::drivers::PhaseTimes::default(),
        outcome: RunOutcome::Completed,
        ft: polaroct_cluster::FtReport::default(),
        lists_reused: 0,
        lists_rebuilt: 0,
    })
}

fn static_owners(ranges: &[std::ops::Range<usize>], n: usize) -> Vec<usize> {
    let mut owner = vec![0usize; n];
    for (r, range) in ranges.iter().enumerate() {
        for o in owner.iter_mut().take(range.end).skip(range.start) {
            *o = r;
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::run_oct_mpi;
    use crate::workdiv::WorkDivision;
    use polaroct_cluster::machine::{MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn cluster(p: usize) -> ClusterSpec {
        ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p))
    }

    #[test]
    fn lpt_basics() {
        // Perfectly divisible loads.
        let costs = [1.0, 1.0, 1.0, 1.0];
        let owners = [0, 0, 1, 1];
        let (span, _) = lpt_makespan(&costs, &owners, 2);
        assert!((span - 2.0).abs() < 1e-12);
        // One giant task dominates regardless.
        let costs = [10.0, 1.0, 1.0];
        let (span, _) = lpt_makespan(&costs, &[0, 1, 1], 2);
        assert!((span - 10.0).abs() < 1e-12);
    }

    #[test]
    fn stealing_preserves_energy_exactly() {
        let mol = synth::protein("p", 350, 3);
        let params = ApproxParams::default();
        let sys = GbSystem::prepare(&mol, &params);
        let cfg = DriverConfig::default();
        let static_run =
            run_oct_mpi(&sys, &params, &cfg, &cluster(6), WorkDivision::NodeNode).unwrap();
        let steal_run = run_oct_mpi_steal(&sys, &params, &cfg, &cluster(6)).unwrap();
        assert!(
            ((static_run.energy_kcal - steal_run.energy_kcal) / static_run.energy_kcal).abs()
                < 1e-12
        );
    }

    #[test]
    fn stealing_never_slower_on_compute() {
        // LPT-balanced spans are at most the static max segment time.
        let mol = synth::capsid("c", 4_000, 5);
        let params = ApproxParams::default();
        let sys = GbSystem::prepare(&mol, &params);
        let cfg = DriverConfig::default();
        let static_run =
            run_oct_mpi(&sys, &params, &cfg, &cluster(8), WorkDivision::NodeNode).unwrap();
        let steal_run = run_oct_mpi_steal(&sys, &params, &cfg, &cluster(8)).unwrap();
        assert!(
            steal_run.compute <= static_run.compute * 1.05 + 1e-6,
            "steal compute {} vs static {}",
            steal_run.compute,
            static_run.compute
        );
    }
}
