//! Incremental ΔE_pol perturbation engine: recompute only what changed.
//!
//! PR 5's [`ListEngine`] already separates traversal from execution and
//! reuses lists while nothing moved past the Verlet skin — but every
//! `evaluate` still re-runs *all* Phase-A chunks. For mutation /
//! perturbation scans (ROADMAP item 3) that is the wrong cost model:
//! moving k atoms should cost O(k · affected-lists), not a full
//! re-execution.
//!
//! [`DeltaEngine`] upgrades a [`ListEngine`] with per-chunk output
//! caches for both lists and a chunk-dirtiness protocol (DESIGN.md §15):
//!
//! * **Inverted indexes** ([`polaroct_sched::CoverageIndex`], built once
//!   per scaffold): Morton atom → Born chunks whose near entries read
//!   that atom's position; Morton atom → E_pol chunks whose near entries
//!   read it; atoms-tree node → E_pol chunks holding a far entry on that
//!   node.
//! * A [`Perturbation`] query writes the moved positions / mutated
//!   charges through the O(k) subset-refresh paths
//!   ([`GbSystem::refresh_atom_subset`] / [`GbSystem::set_atom_charge`]),
//!   marks dirty chunks from the indexes, and re-executes **only those
//!   chunks** through the same pure Phase-A kernels
//!   ([`crate::lists::BornLists::run_chunk`] /
//!   [`crate::lists::EpolLists::run_chunk`]).
//! * Phase B then replays the serial fold over **all** chunks in
//!   emission order, splicing fresh outputs for dirty chunks and cached
//!   outputs for clean ones. A clean chunk's cached output is bitwise
//!   equal to what a fresh execution would produce (its entries read
//!   only unchanged inputs — that is what "clean" means), so the fold
//!   consumes identical floats in identical order and the perturbed
//!   energy is **bit-identical to a fresh full run by construction**.
//!
//! Two global couplings need care (both are diffed, not assumed):
//!
//! * Born radii: recomputed for every atom each query (the serial
//!   apply + push pass is O(M·depth), far below kernel cost). Changed
//!   radii are detected *bitwise* against the previous vector and feed
//!   the E_pol near-entry dirtiness set — no reliance on the "only
//!   moved atoms change" theorem, though it holds for this kernel.
//! * [`ChargeBins`]: the bin layout derives from the *global* Born-radius
//!   extremes, so one changed radius can relabel every node's bins.
//!   The engine rebuilds bins every query (O(M·M_ε), serial) and diffs
//!   the per-node bin vectors and the `rr_table` bitwise against the
//!   cached generation; far entries are dirty exactly where their
//!   endpoints' bins (or the shared table) changed.
//!
//! Queries whose cumulative displacement exceeds `skin/2` fall back to a
//! full rebuild at the perturbed geometry — the same boundary, and the
//! same resulting state, as [`ListEngine::evaluate`].
//!
//! [`DeltaEngine::revert`] pops the last perturbation: an incremental
//! query is undone by restoring the saved positions/charges, chunk
//! outputs, Born vector, bins and totals directly (bit-exact, no
//! recomputation); a rebuilt query is undone by deterministically
//! rebuilding the previous scaffold and re-executing (prepare is a pure
//! function, so the restored state is bit-identical too).
//!
//! The FT story carries over from PR 5 unchanged: dirty chunks fan out
//! over [`WorkStealingPool::try_map`], a poisoned chunk's panic is
//! contained, and the lost slot is re-executed serially by the same pure
//! kernel before the apply pass ([`DeltaEngine::apply_perturbation_ft`]).

use crate::born::{push_integrals_to_atoms, BornAccumulators};
use crate::epol::ChargeBins;
use crate::gb::epol_from_raw_sum;
use crate::lists::ListEngine;
use crate::params::ApproxParams;
use crate::system::GbSystem;
use polaroct_cluster::comm::checksum;
use polaroct_cluster::fault::{phase, FaultKind, FaultPlan};
use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;
use polaroct_sched::{CoverageIndex, WorkStealingPool};

/// One perturbation query: absolute new positions for k moved atoms and
/// absolute new charges for mutated atoms, both in the molecule's
/// **original** atom order (the engine translates to Morton internally).
#[derive(Clone, Debug, Default)]
pub struct Perturbation {
    /// `(atom, new_position)` — original-order index, absolute target.
    pub moves: Vec<(usize, Vec3)>,
    /// `(atom, new_charge)` — original-order index, absolute value.
    pub charges: Vec<(usize, f64)>,
}

impl Perturbation {
    /// Builder: move one atom to an absolute position.
    pub fn move_atom(mut self, atom: usize, to: Vec3) -> Self {
        self.moves.push((atom, to));
        self
    }

    /// Builder: set one atom's charge.
    pub fn set_charge(mut self, atom: usize, q: f64) -> Self {
        self.charges.push((atom, q));
        self
    }

    pub fn is_empty(&self) -> bool {
        self.moves.is_empty() && self.charges.is_empty()
    }
}

/// Result of one [`DeltaEngine::apply_perturbation`] query.
#[derive(Clone, Copy, Debug)]
pub struct DeltaEval {
    /// Polarization energy (kcal/mol) at the perturbed geometry/charges.
    pub energy_kcal: f64,
    /// Raw ordered-pair E_pol sum.
    pub raw: f64,
    /// Whether this query crossed the skin boundary and fully rebuilt.
    pub rebuilt: bool,
    /// Max cumulative displacement from the scaffold geometry (Å).
    pub max_disp: f64,
    /// Born chunks re-executed by this query.
    pub born_chunks_redone: usize,
    /// E_pol chunks re-executed by this query.
    pub epol_chunks_redone: usize,
    /// Total chunks re-executed (`born + epol`; equals `total_chunks`
    /// on a rebuild).
    pub chunks_redone: usize,
    /// Chunks served from the cache.
    pub chunks_cached: usize,
    /// Total chunks across both lists.
    pub total_chunks: usize,
    /// Poisoned chunks recovered by serial re-execution (FT path).
    pub recovered_chunks: u32,
}

/// Undo record for one applied perturbation (LIFO).
enum UndoRecord {
    /// Within-skin query: everything it replaced, restored directly.
    Incremental {
        /// Original-order `(atom, old_position)`, in application order.
        moves: Vec<(usize, Vec3)>,
        /// Original-order `(atom, old_charge)`, in application order.
        charges: Vec<(usize, f64)>,
        born_chunks: Vec<(usize, Vec<f64>)>,
        epol_chunks: Vec<(usize, Vec<f64>)>,
        born: Vec<f64>,
        bins: ChargeBins,
        raw: f64,
        energy_kcal: f64,
    },
    /// Boundary-crossing query: revert re-prepares the old scaffold.
    Rebuilt {
        moves: Vec<(usize, Vec3)>,
        charges: Vec<(usize, f64)>,
        /// The scaffold (reference geometry) that was discarded.
        scaffold: Vec<Vec3>,
    },
}

/// Incremental perturbation engine over a prepared [`ListEngine`]. See
/// the module docs for the dirtiness protocol and the bit-identity
/// argument.
pub struct DeltaEngine {
    base: ListEngine,
    /// Cached Phase-A outputs, one vector per chunk, for both lists.
    born_outputs: Vec<Vec<f64>>,
    epol_outputs: Vec<Vec<f64>>,
    /// Morton atom → Born chunks with a near entry reading it.
    born_touch: CoverageIndex,
    /// Morton atom → E_pol chunks with a near entry reading it.
    epol_touch: CoverageIndex,
    /// Atoms-tree node → E_pol chunks with a far entry on it.
    epol_far_nodes: CoverageIndex,
    /// E_pol chunks holding at least one far entry (for a global bin
    /// relayout).
    epol_far_chunks: Vec<u32>,
    /// Bin generation the cached far-entry outputs were computed with.
    bins: ChargeBins,
    raw: f64,
    energy_kcal: f64,
    /// Current positions / charges, original atom order.
    positions: Vec<Vec3>,
    charges: Vec<f64>,
    /// Per-atom displacement from the scaffold geometry (original order).
    disp: Vec<f64>,
    /// Original index → Morton index for the current scaffold.
    inv_order: Vec<u32>,
    undo: Vec<UndoRecord>,
    /// Queries served incrementally vs via full rebuild.
    pub queries_incremental: u64,
    pub queries_rebuilt: u64,
}

/// Execute the listed chunks through a pure chunk kernel, optionally over
/// a pool with one poisoned slot; a poisoned chunk's panic is contained
/// by `try_map` and the slot is re-executed serially by the same kernel
/// (`recovered` counts them). Returns outputs in `dirty` order.
fn run_dirty_chunks<F>(
    pool: Option<&WorkStealingPool>,
    dirty: &[usize],
    poison: Option<usize>,
    f: F,
    recovered: &mut u32,
) -> Vec<Vec<f64>>
where
    F: Fn(usize) -> Vec<f64> + Sync,
{
    match pool {
        Some(p) => {
            let (mut parts, _) = p.try_map(dirty.len(), |k| {
                if Some(k) == poison {
                    // PANIC-OK: deliberate fault injection; contained by the pool's try_map.
                    panic!("injected worker panic in delta chunk slot {k}");
                }
                f(dirty[k]) // PANIC-OK: k < dirty.len() by try_map's index space.
            });
            parts
                .iter_mut()
                .zip(dirty)
                .map(|(slot, &c)| {
                    slot.take().unwrap_or_else(|| {
                        *recovered += 1;
                        f(c)
                    })
                })
                .collect()
        }
        None => dirty.iter().map(|&c| f(c)).collect(),
    }
}

impl ListEngine {
    /// Upgrade this engine into the incremental perturbation engine
    /// (`core::delta`): caches every Phase-A chunk output, builds the
    /// dirtiness indexes, and serves [`DeltaEngine::apply_perturbation`]
    /// / [`DeltaEngine::revert`] queries from then on.
    pub fn into_delta(self) -> DeltaEngine {
        DeltaEngine::from_engine(self)
    }
}

impl DeltaEngine {
    /// Build a fresh engine at the molecule's geometry (counts as the
    /// first rebuild, like [`ListEngine::new`]).
    pub fn new(mol: &Molecule, approx: &ApproxParams, skin: f64) -> DeltaEngine {
        ListEngine::new(mol, approx, skin).into_delta()
    }

    /// Adopt a prepared [`ListEngine`]: recover its current positions
    /// from the Morton snapshot, then execute one full pass to populate
    /// the chunk caches.
    pub fn from_engine(base: ListEngine) -> DeltaEngine {
        let n = base.sys.n_atoms();
        let mut positions = vec![Vec3::ZERO; n];
        let mut charges = vec![0.0f64; n];
        for (mi, &oi) in base.sys.atoms.point_order.iter().enumerate() {
            // PANIC-OK: point_order is a permutation of 0..n by construction.
            positions[oi as usize] = base.sys.atoms.points[mi];
            charges[oi as usize] = base.sys.charge[mi]; // PANIC-OK: same permutation.
        }
        let mut engine = DeltaEngine {
            base,
            born_outputs: Vec::new(),
            epol_outputs: Vec::new(),
            born_touch: CoverageIndex::default(),
            epol_touch: CoverageIndex::default(),
            epol_far_nodes: CoverageIndex::default(),
            epol_far_chunks: Vec::new(),
            bins: ChargeBins::default(),
            raw: 0.0,
            energy_kcal: 0.0,
            positions,
            charges,
            disp: vec![0.0; n],
            inv_order: Vec::new(),
            undo: Vec::new(),
            queries_incremental: 0,
            queries_rebuilt: 0,
        };
        engine.rebuild_caches();
        engine.full_execute(None);
        engine
    }

    /// Rebuild the scaffold-derived caches (inverse permutation and the
    /// three inverted indexes) after a prepare.
    fn rebuild_caches(&mut self) {
        let sys = &self.base.sys;
        let n = sys.n_atoms();
        let mut inv = vec![0u32; n];
        for (mi, &oi) in sys.atoms.point_order.iter().enumerate() {
            // PANIC-OK: point_order is a permutation of 0..n by construction.
            inv[oi as usize] = mi as u32;
        }
        self.inv_order = inv;

        let born = &self.base.born_lists;
        self.born_touch = CoverageIndex::build(
            n,
            born.chunks.iter().enumerate().flat_map(|(c, range)| {
                born.entries[range.clone()]
                    .iter()
                    .filter(|e| !e.far)
                    .map(move |e| (sys.atoms.node(e.a).range(), c as u32))
            }),
        );

        let epol = &self.base.epol_lists;
        self.epol_touch = CoverageIndex::build(
            n,
            epol.chunks.iter().enumerate().flat_map(|(c, range)| {
                epol.entries[range.clone()].iter().filter(|e| !e.far).flat_map(move |e| {
                    [
                        (sys.atoms.node(e.a).range(), c as u32),
                        (sys.atoms.node(e.b).range(), c as u32),
                    ]
                })
            }),
        );
        self.epol_far_nodes = CoverageIndex::build(
            sys.atoms.nodes.len(),
            epol.chunks.iter().enumerate().flat_map(|(c, range)| {
                epol.entries[range.clone()].iter().filter(|e| e.far).flat_map(move |e| {
                    [
                        (e.a as usize..e.a as usize + 1, c as u32),
                        (e.b as usize..e.b as usize + 1, c as u32),
                    ]
                })
            }),
        );
        self.epol_far_chunks = epol
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, range)| epol.entries[(*range).clone()].iter().any(|e| e.far))
            .map(|(c, _)| c as u32)
            .collect();
    }

    /// Refresh all Morton positions to `self.positions` and execute every
    /// chunk of both lists from scratch (the rebuild / adopt path). Pure
    /// recomputation — produces exactly the state an incremental query
    /// sequence would have cached.
    fn full_execute(&mut self, pool: Option<&WorkStealingPool>) {
        self.base.sys.refresh_atom_positions(&self.positions);
        for (d, (p, r)) in self
            .disp
            .iter_mut()
            .zip(self.positions.iter().zip(&self.base.reference))
        {
            *d = p.dist(*r);
        }
        let nb = self.base.born_lists.n_chunks();
        let all_b: Vec<usize> = (0..nb).collect();
        let base = &self.base;
        let mut recovered = 0u32;
        self.born_outputs = run_dirty_chunks(
            pool,
            &all_b,
            None,
            |c| base.born_lists.run_chunk(&base.sys, c),
            &mut recovered,
        );
        let n = self.base.sys.n_atoms();
        let mut acc = BornAccumulators::zeros(&self.base.sys);
        self.base.born_lists.apply(&self.base.sys, &self.born_outputs, &mut acc);
        let mut born = vec![0.0; n];
        push_integrals_to_atoms(&self.base.sys, &acc, 0..n, self.base.approx.math, &mut born);
        self.bins = ChargeBins::build(&self.base.sys, &born, self.base.approx.eps_epol);

        let ne = self.base.epol_lists.n_chunks();
        let all_e: Vec<usize> = (0..ne).collect();
        let base = &self.base;
        let (bins, math) = (&self.bins, self.base.approx.math);
        self.epol_outputs = run_dirty_chunks(
            pool,
            &all_e,
            None,
            |c| base.epol_lists.run_chunk(&base.sys, bins, &born, math, c),
            &mut recovered,
        );
        self.raw = self.base.epol_lists.apply(&self.epol_outputs);
        self.energy_kcal = epol_from_raw_sum(self.raw, self.base.approx.eps_solvent);
        self.base.born = born;
    }

    /// Apply a perturbation and return the re-evaluated energy, bit-identical
    /// to a fresh full run (see the module docs for the exact contract).
    /// Dirty chunks run over `pool` when given, serially otherwise — the
    /// result is bitwise the same either way.
    pub fn apply_perturbation(
        &mut self,
        p: &Perturbation,
        pool: Option<&WorkStealingPool>,
    ) -> DeltaEval {
        self.apply_inner(p, pool, None)
    }

    /// [`DeltaEngine::apply_perturbation`] under fault injection: a
    /// `PanicWorker` entry at [`phase::INTEGRALS`] / [`phase::EPOL`]
    /// poisons one dirty chunk of the corresponding list; the pool
    /// contains the panic and the chunk is re-executed serially before
    /// the apply pass, so the query result is still bit-identical
    /// (`recovered_chunks` reports the retries).
    pub fn apply_perturbation_ft(
        &mut self,
        p: &Perturbation,
        pool: &WorkStealingPool,
        plan: &FaultPlan,
    ) -> DeltaEval {
        // Clone resets the one-shot fired flags (same convention as the
        // drivers), so one plan value can drive many queries.
        let plan = plan.clone();
        self.apply_inner(p, Some(pool), Some(&plan))
    }

    fn apply_inner(
        &mut self,
        p: &Perturbation,
        pool: Option<&WorkStealingPool>,
        plan: Option<&FaultPlan>,
    ) -> DeltaEval {
        let n = self.positions.len();
        let mut old_moves = Vec::with_capacity(p.moves.len());
        for &(oi, np) in &p.moves {
            // PANIC-OK: perturbation preconditions, checked before any state is touched.
            assert!(oi < n, "moved atom {oi} out of range ({n} atoms)");
            // PANIC-OK: non-finite positions would poison every downstream comparison.
            assert!(
                np.x.is_finite() && np.y.is_finite() && np.z.is_finite(),
                "non-finite target position for atom {oi}"
            );
            old_moves.push((oi, self.positions[oi])); // PANIC-OK: oi < n asserted above.
            self.positions[oi] = np; // PANIC-OK: oi < n asserted above.
        }
        let mut old_charges = Vec::with_capacity(p.charges.len());
        for &(oi, nq) in &p.charges {
            // PANIC-OK: perturbation preconditions, checked before any state is touched.
            assert!(oi < n, "charged atom {oi} out of range ({n} atoms)");
            // PANIC-OK: non-finite charges would poison every downstream comparison.
            assert!(nq.is_finite(), "non-finite charge for atom {oi}");
            old_charges.push((oi, self.charges[oi])); // PANIC-OK: oi < n asserted above.
            self.charges[oi] = nq; // PANIC-OK: oi < n asserted above.
        }
        for &(oi, _) in &p.moves {
            // PANIC-OK: oi < n asserted above; disp/reference are n-length.
            self.disp[oi] = self.positions[oi].dist(self.base.reference[oi]);
        }
        let max_disp = self.disp.iter().copied().fold(0.0f64, f64::max);
        let total = self.total_chunks();

        if max_disp > 0.5 * self.base.skin {
            // Skin boundary crossed: rebuild the scaffold at the
            // perturbed geometry — same fallback, same resulting state,
            // as ListEngine::evaluate past the boundary.
            let scaffold = self.base.reference.clone();
            self.base.work.charges.copy_from_slice(&self.charges);
            let positions = self.positions.clone();
            self.base.rebuild(&positions);
            self.rebuild_caches();
            self.full_execute(pool);
            self.base.lists_rebuilt += 1;
            self.queries_rebuilt += 1;
            self.undo.push(UndoRecord::Rebuilt {
                moves: old_moves,
                charges: old_charges,
                scaffold,
            });
            return DeltaEval {
                energy_kcal: self.energy_kcal,
                raw: self.raw,
                rebuilt: true,
                max_disp,
                born_chunks_redone: self.base.born_lists.n_chunks(),
                epol_chunks_redone: self.base.epol_lists.n_chunks(),
                chunks_redone: total,
                chunks_cached: 0,
                total_chunks: total,
                recovered_chunks: 0,
            };
        }

        // ---- Subset refresh: O(k) writes into the Morton tree copy,
        // the flat arena and the charge payload.
        let moved_m: Vec<usize> = p
            .moves
            .iter()
            .map(|&(oi, _)| self.inv_order[oi] as usize) // PANIC-OK: oi < n asserted above.
            .collect();
        let subset: Vec<(usize, Vec3)> = moved_m
            .iter()
            .zip(&p.moves)
            .map(|(&mi, &(_, np))| (mi, np))
            .collect();
        self.base.sys.refresh_atom_subset(&subset);
        let charged_m: Vec<usize> = p
            .charges
            .iter()
            .map(|&(oi, _)| self.inv_order[oi] as usize) // PANIC-OK: oi < n asserted above.
            .collect();
        for (&mi, &(_, nq)) in charged_m.iter().zip(&p.charges) {
            self.base.sys.set_atom_charge(mi, nq);
        }
        self.base.lists_reused += 1;

        // ---- Born dirtiness: a chunk is dirty iff one of its near
        // entries' atom ranges contains a moved atom (far entries read
        // only frozen node aggregates and can never go stale).
        let nb = self.base.born_lists.n_chunks();
        let mut bmask = vec![false; nb];
        for &mi in &moved_m {
            for &c in self.born_touch.chunks_for(mi) {
                bmask[c as usize] = true; // PANIC-OK: index built over exactly nb chunks.
            }
        }
        let dirty_born: Vec<usize> = bmask
            .iter()
            .enumerate()
            .filter_map(|(c, &d)| d.then_some(c))
            .collect();
        let poison_born = plan.and_then(|pl| match pl.fire_exec(0, phase::INTEGRALS) {
            Some(FaultKind::PanicWorker) => Some(pl.seed() as usize % dirty_born.len().max(1)),
            _ => None,
        });
        let mut recovered = 0u32;
        let base = &self.base;
        let fresh_born = run_dirty_chunks(
            pool,
            &dirty_born,
            poison_born,
            |c| base.born_lists.run_chunk(&base.sys, c),
            &mut recovered,
        );
        let mut undo_born_chunks = Vec::with_capacity(dirty_born.len());
        for (&c, v) in dirty_born.iter().zip(fresh_born) {
            // PANIC-OK: c < nb — it came from the nb-length dirty mask.
            undo_born_chunks.push((c, std::mem::replace(&mut self.born_outputs[c], v)));
        }

        // ---- Phase B (Born): full serial fold over all chunks in
        // emission order — cached outputs for clean chunks, fresh for
        // dirty — then the full push pass. Identical floats in identical
        // order to a fresh run.
        let mut acc = BornAccumulators::zeros(&self.base.sys);
        self.base.born_lists.apply(&self.base.sys, &self.born_outputs, &mut acc);
        let mut new_born = vec![0.0; n];
        push_integrals_to_atoms(&self.base.sys, &acc, 0..n, self.base.approx.math, &mut new_born);
        let born_changed: Vec<usize> = self
            .base
            .born
            .iter()
            .zip(&new_born)
            .enumerate()
            .filter_map(|(mi, (a, b))| (a.to_bits() != b.to_bits()).then_some(mi))
            .collect();

        // ---- Bin generation diff: rebuild (cheap, serial) and compare
        // bitwise. A changed rr_table or bin count invalidates every
        // far-bearing chunk; otherwise only chunks with a far entry on a
        // node whose bin vector changed.
        let new_bins = ChargeBins::build(&self.base.sys, &new_born, self.base.approx.eps_epol);
        let ne = self.base.epol_lists.n_chunks();
        let mut emask = vec![false; ne];
        for &mi in moved_m.iter().chain(&charged_m).chain(&born_changed) {
            for &c in self.epol_touch.chunks_for(mi) {
                emask[c as usize] = true; // PANIC-OK: index built over exactly ne chunks.
            }
        }
        let table_changed = new_bins.m_eps != self.bins.m_eps
            || new_bins.rr_table.len() != self.bins.rr_table.len()
            || new_bins
                .rr_table
                .iter()
                .zip(&self.bins.rr_table)
                .any(|(a, b)| a.to_bits() != b.to_bits());
        if table_changed {
            for &c in &self.epol_far_chunks {
                emask[c as usize] = true; // PANIC-OK: far-chunk list indexes the ne-chunk list.
            }
        } else {
            let m = new_bins.m_eps.max(1);
            for (node, (a, b)) in new_bins
                .per_node
                .chunks(m)
                .zip(self.bins.per_node.chunks(m))
                .enumerate()
            {
                if a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits()) {
                    for &c in self.epol_far_nodes.chunks_for(node) {
                        emask[c as usize] = true; // PANIC-OK: index built over exactly ne chunks.
                    }
                }
            }
        }
        let dirty_epol: Vec<usize> = emask
            .iter()
            .enumerate()
            .filter_map(|(c, &d)| d.then_some(c))
            .collect();
        let poison_epol = plan.and_then(|pl| match pl.fire_exec(0, phase::EPOL) {
            Some(FaultKind::PanicWorker) => Some(pl.seed() as usize % dirty_epol.len().max(1)),
            _ => None,
        });
        let base = &self.base;
        let math = base.approx.math;
        let fresh_epol = run_dirty_chunks(
            pool,
            &dirty_epol,
            poison_epol,
            |c| base.epol_lists.run_chunk(&base.sys, &new_bins, &new_born, math, c),
            &mut recovered,
        );
        let mut undo_epol_chunks = Vec::with_capacity(dirty_epol.len());
        for (&c, v) in dirty_epol.iter().zip(fresh_epol) {
            // PANIC-OK: c < ne — it came from the ne-length dirty mask.
            undo_epol_chunks.push((c, std::mem::replace(&mut self.epol_outputs[c], v)));
        }

        // ---- Phase B (E_pol): full sum-tree replay over all chunks.
        let raw = self.base.epol_lists.apply(&self.epol_outputs);
        let energy_kcal = epol_from_raw_sum(raw, self.base.approx.eps_solvent);

        let old_born = std::mem::replace(&mut self.base.born, new_born);
        let old_bins = std::mem::replace(&mut self.bins, new_bins);
        let old_raw = std::mem::replace(&mut self.raw, raw);
        let old_energy = std::mem::replace(&mut self.energy_kcal, energy_kcal);
        self.undo.push(UndoRecord::Incremental {
            moves: old_moves,
            charges: old_charges,
            born_chunks: undo_born_chunks,
            epol_chunks: undo_epol_chunks,
            born: old_born,
            bins: old_bins,
            raw: old_raw,
            energy_kcal: old_energy,
        });
        self.queries_incremental += 1;

        let redone = dirty_born.len() + dirty_epol.len();
        DeltaEval {
            energy_kcal,
            raw,
            rebuilt: false,
            max_disp,
            born_chunks_redone: dirty_born.len(),
            epol_chunks_redone: dirty_epol.len(),
            chunks_redone: redone,
            chunks_cached: total - redone,
            total_chunks: total,
            recovered_chunks: recovered,
        }
    }

    /// Undo the most recent perturbation; returns `false` when none is
    /// pending. An incremental query restores the saved state directly
    /// (bit-exact, no recomputation); a rebuilt query re-prepares the
    /// previous scaffold deterministically and re-executes over `pool`.
    pub fn revert(&mut self, pool: Option<&WorkStealingPool>) -> bool {
        let Some(rec) = self.undo.pop() else {
            return false;
        };
        match rec {
            UndoRecord::Incremental {
                moves,
                charges,
                born_chunks,
                epol_chunks,
                born,
                bins,
                raw,
                energy_kcal,
            } => {
                // Reverse application order, so repeated writes to one
                // atom unwind to the first saved value.
                for &(oi, op) in moves.iter().rev() {
                    self.positions[oi] = op; // PANIC-OK: saved from a validated query.
                }
                for &(oi, oq) in charges.iter().rev() {
                    self.charges[oi] = oq; // PANIC-OK: saved from a validated query.
                }
                let subset: Vec<(usize, Vec3)> = moves
                    .iter()
                    .map(|&(oi, _)| {
                        // PANIC-OK: saved from a validated query; inv_order is n-length.
                        (self.inv_order[oi] as usize, self.positions[oi])
                    })
                    .collect();
                self.base.sys.refresh_atom_subset(&subset);
                for &(oi, _) in &charges {
                    // PANIC-OK: saved from a validated query; inv_order is n-length.
                    let mi = self.inv_order[oi] as usize;
                    self.base.sys.set_atom_charge(mi, self.charges[oi]);
                }
                for &(oi, _) in &moves {
                    // PANIC-OK: saved from a validated query; disp/reference are n-length.
                    self.disp[oi] = self.positions[oi].dist(self.base.reference[oi]);
                }
                for (c, old) in born_chunks {
                    self.born_outputs[c] = old; // PANIC-OK: chunk id saved from this engine.
                }
                for (c, old) in epol_chunks {
                    self.epol_outputs[c] = old; // PANIC-OK: chunk id saved from this engine.
                }
                self.base.born = born;
                self.bins = bins;
                self.raw = raw;
                self.energy_kcal = energy_kcal;
            }
            UndoRecord::Rebuilt { moves, charges, scaffold } => {
                for &(oi, op) in moves.iter().rev() {
                    self.positions[oi] = op; // PANIC-OK: saved from a validated query.
                }
                for &(oi, oq) in charges.iter().rev() {
                    self.charges[oi] = oq; // PANIC-OK: saved from a validated query.
                }
                // Re-prepare the *old* scaffold (prepare is deterministic,
                // so trees/lists/indexes come back bit-identical), then
                // re-execute at the restored positions/charges.
                self.base.work.charges.copy_from_slice(&self.charges);
                self.base.rebuild(&scaffold);
                self.rebuild_caches();
                self.full_execute(pool);
                self.base.lists_rebuilt += 1;
            }
        }
        true
    }

    /// Polarization energy (kcal/mol) of the current state.
    pub fn energy_kcal(&self) -> f64 {
        self.energy_kcal
    }

    /// Raw ordered-pair E_pol sum of the current state.
    pub fn raw(&self) -> f64 {
        self.raw
    }

    /// Born radii of the current state (Morton order; pair with
    /// [`DeltaEngine::system`]).
    pub fn born(&self) -> &[f64] {
        self.base.born()
    }

    /// FNV-1a digest of the Born radii in original atom order — the
    /// order-independent fingerprint the differential harness compares.
    pub fn born_digest(&self) -> u64 {
        checksum(&self.base.sys.to_original_atom_order(self.base.born()))
    }

    /// The underlying system snapshot.
    pub fn system(&self) -> &GbSystem {
        &self.base.sys
    }

    /// The underlying [`ListEngine`] (counters, skin, lists).
    pub fn engine(&self) -> &ListEngine {
        &self.base
    }

    /// Current positions, original atom order.
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Current charges, original atom order.
    pub fn charges(&self) -> &[f64] {
        &self.charges
    }

    /// Scaffold (reference) geometry the current trees/lists were built
    /// at, original atom order.
    pub fn reference_positions(&self) -> &[Vec3] {
        &self.base.reference
    }

    /// Total chunks across both lists — the denominator of the
    /// `chunks_redone < total_chunks` op-accounting contract.
    pub fn total_chunks(&self) -> usize {
        self.base.born_lists.n_chunks() + self.base.epol_lists.n_chunks()
    }

    /// Perturbations currently on the undo stack.
    pub fn pending_perturbations(&self) -> usize {
        self.undo.len()
    }

    /// Resident bytes: the base engine plus the chunk caches, indexes
    /// and bin generation.
    pub fn memory_bytes(&self) -> usize {
        let outputs: usize = self
            .born_outputs
            .iter()
            .chain(&self.epol_outputs)
            .map(|v| v.capacity() * 8)
            .sum();
        self.base.memory_bytes()
            + outputs
            + self.born_touch.memory_bytes()
            + self.epol_touch.memory_bytes()
            + self.epol_far_nodes.memory_bytes()
            + self.bins.memory_bytes()
    }

    /// Test hook: additively corrupt every *cached* Phase-A Born output
    /// (dirty chunks recomputed by the next query overwrite their slots,
    /// so whatever stays cached stays corrupted). The golden recall test
    /// uses this to prove a stale cached chunk cannot survive the
    /// differential harness.
    #[doc(hidden)]
    pub fn debug_corrupt_cached_born_outputs(&mut self, delta: f64) {
        for out in &mut self.born_outputs {
            for v in out.iter_mut() {
                *v += delta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_molecule::synth;

    fn mol(n: usize, seed: u64) -> Molecule {
        synth::protein("delta", n, seed)
    }

    /// Fresh-reference energy for the engine's current state: an
    /// independent ListEngine prepared at the scaffold with the current
    /// charges, evaluated (full, all chunks) at the current positions.
    fn fresh_reference(eng: &DeltaEngine, approx: &ApproxParams, skin: f64) -> (f64, f64, u64) {
        let mut m = Molecule {
            positions: eng.reference_positions().to_vec(),
            charges: eng.charges().to_vec(),
            ..mol(eng.positions().len(), 0)
        };
        m.radii = eng
            .system()
            .to_original_atom_order(&eng.system().radius)
            .to_vec();
        let mut fresh = ListEngine::new(&m, approx, skin);
        let eval = fresh.evaluate(eng.positions());
        let digest = checksum(&fresh.system().to_original_atom_order(fresh.born()));
        (eval.raw, eval.energy_kcal, digest)
    }

    #[test]
    fn single_move_matches_fresh_engine_bits() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let mut eng = DeltaEngine::new(&mol(150, 3), &approx, skin);
        let p = Perturbation::default().move_atom(17, eng.positions()[17] + Vec3::new(0.2, -0.1, 0.15));
        let eval = eng.apply_perturbation(&p, None);
        assert!(!eval.rebuilt);
        assert!(eval.chunks_redone < eval.total_chunks, "no work was skipped");
        assert!(eval.chunks_redone > 0);
        let (raw, energy, digest) = fresh_reference(&eng, &approx, skin);
        assert_eq!(eval.raw.to_bits(), raw.to_bits());
        assert_eq!(eval.energy_kcal.to_bits(), energy.to_bits());
        assert_eq!(eng.born_digest(), digest);
    }

    #[test]
    fn charge_mutation_matches_fresh_engine_bits() {
        let approx = ApproxParams::default();
        let skin = 0.8;
        let mut eng = DeltaEngine::new(&mol(120, 9), &approx, skin);
        let p = Perturbation::default().set_charge(33, 2.5).set_charge(70, -1.25);
        let eval = eng.apply_perturbation(&p, None);
        assert!(!eval.rebuilt);
        // Charges don't feed Born radii at all.
        assert_eq!(eval.born_chunks_redone, 0);
        let (raw, energy, digest) = fresh_reference(&eng, &approx, skin);
        assert_eq!(eval.raw.to_bits(), raw.to_bits());
        assert_eq!(eval.energy_kcal.to_bits(), energy.to_bits());
        assert_eq!(eng.born_digest(), digest);
    }

    #[test]
    fn boundary_crossing_rebuilds_and_matches_fresh_prepare() {
        let approx = ApproxParams::default();
        let skin = 0.4;
        let m = mol(100, 5);
        let mut eng = DeltaEngine::new(&m, &approx, skin);
        let p = Perturbation::default().move_atom(8, m.positions[8] + Vec3::new(1.0, 0.0, 0.0));
        let eval = eng.apply_perturbation(&p, None);
        assert!(eval.rebuilt);
        assert_eq!(eval.chunks_cached, 0);
        // Past the boundary the scaffold is re-prepared at the perturbed
        // geometry, so the engine equals a fresh prepare of it.
        let mut pm = m.clone();
        pm.positions[8] += Vec3::new(1.0, 0.0, 0.0);
        let mut fresh = ListEngine::new(&pm, &approx, skin);
        let feval = fresh.evaluate(&pm.positions);
        assert_eq!(eval.raw.to_bits(), feval.raw.to_bits());
        assert_eq!(eval.energy_kcal.to_bits(), feval.energy_kcal.to_bits());
    }

    #[test]
    fn revert_restores_original_bits() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let m = mol(130, 7);
        let mut eng = DeltaEngine::new(&m, &approx, skin);
        let raw0 = eng.raw();
        let energy0 = eng.energy_kcal();
        let digest0 = eng.born_digest();
        let p1 = Perturbation::default()
            .move_atom(4, m.positions[4] + Vec3::new(0.1, 0.2, -0.1))
            .set_charge(60, 3.0);
        let p2 = Perturbation::default().move_atom(90, m.positions[90] + Vec3::new(-0.15, 0.0, 0.2));
        eng.apply_perturbation(&p1, None);
        eng.apply_perturbation(&p2, None);
        assert_eq!(eng.pending_perturbations(), 2);
        assert!(eng.revert(None));
        assert!(eng.revert(None));
        assert!(!eng.revert(None), "stack must be empty");
        assert_eq!(eng.raw().to_bits(), raw0.to_bits());
        assert_eq!(eng.energy_kcal().to_bits(), energy0.to_bits());
        assert_eq!(eng.born_digest(), digest0);
        for (a, b) in eng.positions().iter().zip(&m.positions) {
            assert_eq!(a, b);
        }
        for (a, b) in eng.charges().iter().zip(&m.charges) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pooled_queries_match_serial_bits() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let m = mol(140, 11);
        let mut serial = DeltaEngine::new(&m, &approx, skin);
        let mut pooled = DeltaEngine::new(&m, &approx, skin);
        let pool = WorkStealingPool::new(3);
        let p = Perturbation::default()
            .move_atom(10, m.positions[10] + Vec3::new(0.2, 0.1, 0.0))
            .move_atom(77, m.positions[77] + Vec3::new(0.0, -0.2, 0.1));
        let es = serial.apply_perturbation(&p, None);
        let ep = pooled.apply_perturbation(&p, Some(&pool));
        assert_eq!(es.raw.to_bits(), ep.raw.to_bits());
        assert_eq!(es.chunks_redone, ep.chunks_redone);
        assert_eq!(serial.born_digest(), pooled.born_digest());
    }

    #[test]
    fn empty_perturbation_is_identity() {
        let approx = ApproxParams::default();
        let mut eng = DeltaEngine::new(&mol(80, 13), &approx, 0.5);
        let raw0 = eng.raw();
        let eval = eng.apply_perturbation(&Perturbation::default(), None);
        assert_eq!(eval.chunks_redone, 0);
        assert_eq!(eval.raw.to_bits(), raw0.to_bits());
        assert!(eng.revert(None));
        assert_eq!(eng.raw().to_bits(), raw0.to_bits());
    }

    #[test]
    fn corrupted_cache_is_caught_by_the_differential_harness() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let mut eng = DeltaEngine::new(&mol(110, 17), &approx, skin);
        eng.debug_corrupt_cached_born_outputs(1e-3);
        // An identity query replays Phase B over the (corrupted) cache.
        let eval = eng.apply_perturbation(&Perturbation::default(), None);
        let (raw, _, _) = fresh_reference(&eng, &approx, skin);
        assert_ne!(
            eval.raw.to_bits(),
            raw.to_bits(),
            "a stale cached chunk must be visible to the harness"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_move_is_rejected() {
        let mut eng = DeltaEngine::new(&mol(40, 1), &ApproxParams::default(), 0.5);
        let p = Perturbation::default().move_atom(40, Vec3::ZERO);
        let _ = eng.apply_perturbation(&p, None);
    }
}
