//! Incremental ΔE_pol perturbation engine: recompute only what changed.
//!
//! PR 5's [`ListEngine`] already separates traversal from execution and
//! reuses lists while nothing moved past the Verlet skin — but every
//! `evaluate` still re-runs *all* Phase-A chunks. For mutation /
//! perturbation scans (ROADMAP item 3) that is the wrong cost model:
//! moving k atoms should cost O(k · affected-lists), not a full
//! re-execution.
//!
//! [`DeltaEngine`] upgrades a [`ListEngine`] with per-chunk output
//! caches for both lists and a dirtiness protocol at one of two
//! granularities (DESIGN.md §15–16):
//!
//! * **Inverted indexes** ([`polaroct_sched::CoverageIndex`], built once
//!   per scaffold): Morton atom → the Born *entries* (default,
//!   [`Granularity::Entry`]) or chunks ([`Granularity::Chunk`], PR 9's
//!   protocol and the [`DeltaParams::max_cache_bytes`] fallback) whose
//!   near records read that atom's position; the same two maps for the
//!   E_pol list; atoms-tree node → E_pol entries/chunks holding a far
//!   record on that node.
//! * A [`Perturbation`] query writes the moved positions / mutated
//!   charges through the O(k) subset-refresh paths
//!   ([`GbSystem::refresh_atom_subset`] / [`GbSystem::set_atom_charge`]),
//!   marks dirty entries (or chunks) from the indexes, and re-executes
//!   **only those** through the same pure Phase-A kernels
//!   ([`crate::lists::BornLists::run_entry`] /
//!   [`crate::lists::EpolLists::run_entry`], which `run_chunk` itself
//!   loops over). Entry granularity matters most for the E_pol list: its
//!   entries cannot be sorted by atom (Phase B replays the recursion's
//!   sum tree in emission order), so one moved atom touches a few
//!   entries in *most* chunks and chunk granularity re-executes nearly
//!   the whole list; entry granularity re-executes only those entries.
//! * Recomputed outputs are **spliced in place** into the cached
//!   per-chunk streams (each entry owns a fixed `[offset, offset+len)`
//!   span of its chunk's stream — [`crate::lists::BornLists::entry_out_len`]
//!   values
//!   for Born, exactly one for E_pol), and Phase B then replays the
//!   serial fold over **all** chunks in emission order. A clean entry's
//!   cached span is bitwise equal to what a fresh execution would
//!   produce (its operands read only unchanged inputs — that is what
//!   "clean" means), so the fold consumes identical floats in identical
//!   order and the perturbed energy is **bit-identical to a fresh full
//!   run by construction** — at either granularity, which is why the
//!   cache-cap fallback cannot change any result bits.
//!
//! [`DeltaEngine::apply_batch`] (the `batch` submodule) layers N
//! *independent* queries over one immutable cached base without the
//! apply→revert churn: per-query overlays over the shared base cache,
//! same dirtiness protocol, same bit-identity contract.
//!
//! Two global couplings need care (both are diffed, not assumed):
//!
//! * Born radii: recomputed for every atom each query (the serial
//!   apply + push pass is O(M·depth), far below kernel cost). Changed
//!   radii are detected *bitwise* against the previous vector and feed
//!   the E_pol near-entry dirtiness set — no reliance on the "only
//!   moved atoms change" theorem, though it holds for this kernel.
//! * [`ChargeBins`]: the bin layout derives from the *global* Born-radius
//!   extremes, so one changed radius can relabel every node's bins.
//!   The engine rebuilds bins every query (O(M·M_ε), serial) and diffs
//!   the per-node bin vectors and the `rr_table` bitwise against the
//!   cached generation; far entries are dirty exactly where their
//!   endpoints' bins (or the shared table) changed.
//!
//! Queries whose cumulative displacement exceeds `skin/2` fall back to a
//! full rebuild at the perturbed geometry — the same boundary, and the
//! same resulting state, as [`ListEngine::evaluate`].
//!
//! [`DeltaEngine::revert`] pops the last perturbation: an incremental
//! query is undone by restoring the saved positions/charges, chunk
//! outputs, Born vector, bins and totals directly (bit-exact, no
//! recomputation); a rebuilt query is undone by deterministically
//! rebuilding the previous scaffold and re-executing (prepare is a pure
//! function, so the restored state is bit-identical too).
//!
//! The FT story carries over from PR 5 unchanged: dirty chunks fan out
//! over [`WorkStealingPool::try_map`], a poisoned chunk's panic is
//! contained, and the lost slot is re-executed serially by the same pure
//! kernel before the apply pass ([`DeltaEngine::apply_perturbation_ft`]).

use crate::born::{push_integrals_to_atoms, BornAccumulators};
use crate::epol::ChargeBins;
use crate::gb::epol_from_raw_sum;
use crate::lists::ListEngine;
use crate::params::ApproxParams;
use crate::soa::StillScratch;
use crate::system::GbSystem;
use polaroct_cluster::comm::checksum;
use polaroct_cluster::fault::{phase, FaultKind, FaultPlan};
use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;
use polaroct_sched::{CoverageIndex, WorkStealingPool};

pub mod batch;

/// One perturbation query: absolute new positions for k moved atoms and
/// absolute new charges for mutated atoms, both in the molecule's
/// **original** atom order (the engine translates to Morton internally).
#[derive(Clone, Debug, Default)]
pub struct Perturbation {
    /// `(atom, new_position)` — original-order index, absolute target.
    pub moves: Vec<(usize, Vec3)>,
    /// `(atom, new_charge)` — original-order index, absolute value.
    pub charges: Vec<(usize, f64)>,
}

impl Perturbation {
    /// Builder: move one atom to an absolute position.
    pub fn move_atom(mut self, atom: usize, to: Vec3) -> Self {
        self.moves.push((atom, to));
        self
    }

    /// Builder: set one atom's charge.
    pub fn set_charge(mut self, atom: usize, q: f64) -> Self {
        self.charges.push((atom, q));
        self
    }

    pub fn is_empty(&self) -> bool {
        self.moves.is_empty() && self.charges.is_empty()
    }
}

/// Dirtiness granularity of a [`DeltaEngine`]'s incremental path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Re-execute only the list *entries* whose operands read a touched
    /// atom, splicing their output spans into the cached chunk streams
    /// (default). Strictly less Phase-A work than [`Granularity::Chunk`]
    /// for small-k queries, at the cost of per-entry index tables.
    Entry,
    /// PR 9's protocol: re-execute whole cost-balanced chunks. Smaller
    /// resident indexes; also the automatic fallback when the entry
    /// tables would exceed [`DeltaParams::max_cache_bytes`].
    Chunk,
}

/// Tuning knobs for [`DeltaEngine`] construction
/// ([`DeltaEngine::with_params`] / [`ListEngine::into_delta_with`]).
#[derive(Clone, Copy, Debug)]
pub struct DeltaParams {
    /// Requested dirtiness granularity. The *effective* granularity
    /// ([`DeltaEngine::effective_granularity`]) may be coarser if the
    /// cache cap below trips; it is re-decided after every scaffold
    /// rebuild (entry counts change with the geometry).
    pub granularity: Granularity,
    /// Cap (bytes) on the *extra* entry-granular index tables (entry →
    /// chunk/offset maps plus the three entry-level coverage indexes).
    /// When building them would exceed the cap, the engine falls back to
    /// [`Granularity::Chunk`] for that scaffold — results stay
    /// bit-identical (the granularity only decides how much clean work
    /// is redundantly re-executed), only the accounting and the speed
    /// change. `usize::MAX` (default) disables the cap.
    pub max_cache_bytes: usize,
}

impl Default for DeltaParams {
    fn default() -> Self {
        DeltaParams {
            granularity: Granularity::Entry,
            max_cache_bytes: usize::MAX,
        }
    }
}

/// Result of one [`DeltaEngine::apply_perturbation`] query.
#[derive(Clone, Copy, Debug)]
pub struct DeltaEval {
    /// Polarization energy (kcal/mol) at the perturbed geometry/charges.
    pub energy_kcal: f64,
    /// Raw ordered-pair E_pol sum.
    pub raw: f64,
    /// Whether this query crossed the skin boundary and fully rebuilt.
    pub rebuilt: bool,
    /// Max cumulative displacement from the scaffold geometry (Å).
    pub max_disp: f64,
    /// Born chunks re-executed by this query.
    pub born_chunks_redone: usize,
    /// E_pol chunks re-executed by this query.
    pub epol_chunks_redone: usize,
    /// Total chunks re-executed (`born + epol`; equals `total_chunks`
    /// on a rebuild).
    pub chunks_redone: usize,
    /// Chunks served from the cache.
    pub chunks_cached: usize,
    /// Total chunks across both lists.
    pub total_chunks: usize,
    /// List entries re-executed by this query (both lists). Under
    /// [`Granularity::Entry`] these are exactly the dirty entries; under
    /// [`Granularity::Chunk`] every entry of a dirty chunk counts.
    pub entries_redone: usize,
    /// List entries whose cached output spans were served as-is.
    pub entries_cached: usize,
    /// Total entries across both lists
    /// (`entries_redone + entries_cached`).
    pub total_entries: usize,
    /// Poisoned Phase-A work units (chunks or entries, per the effective
    /// granularity) recovered by serial re-execution (FT path).
    pub recovered_chunks: u32,
}

/// One replaced span of a cached Phase-A stream: `(chunk, offset, old
/// values)`. Entry-granular queries save exactly the spliced entry
/// spans; chunk-granular queries save whole streams as one span with
/// offset 0 — [`DeltaEngine::revert`] restores both the same way.
type UndoSpan = (u32, u32, Vec<f64>);

/// Undo record for one applied perturbation (LIFO).
enum UndoRecord {
    /// Within-skin query: everything it replaced, restored directly.
    Incremental {
        /// Original-order `(atom, old_position)`, in application order.
        moves: Vec<(usize, Vec3)>,
        /// Original-order `(atom, old_charge)`, in application order.
        charges: Vec<(usize, f64)>,
        born_spans: Vec<UndoSpan>,
        epol_spans: Vec<UndoSpan>,
        born: Vec<f64>,
        bins: ChargeBins,
        raw: f64,
        energy_kcal: f64,
    },
    /// Boundary-crossing query: revert re-prepares the old scaffold.
    Rebuilt {
        moves: Vec<(usize, Vec3)>,
        charges: Vec<(usize, f64)>,
        /// The scaffold (reference geometry) that was discarded.
        scaffold: Vec<Vec3>,
    },
}

/// Incremental perturbation engine over a prepared [`ListEngine`]. See
/// the module docs for the dirtiness protocol and the bit-identity
/// argument.
pub struct DeltaEngine {
    pub(crate) base: ListEngine,
    pub(crate) params: DeltaParams,
    /// Effective granularity for the current scaffold (the requested one
    /// unless the cache cap forced the chunk fallback).
    pub(crate) mode: Granularity,
    /// Cached Phase-A outputs, one vector per chunk, for both lists.
    pub(crate) born_outputs: Vec<Vec<f64>>,
    pub(crate) epol_outputs: Vec<Vec<f64>>,
    /// Morton atom → Born chunks with a near entry reading it
    /// (chunk mode only; empty in entry mode).
    pub(crate) born_touch: CoverageIndex,
    /// Morton atom → E_pol chunks with a near entry reading it.
    pub(crate) epol_touch: CoverageIndex,
    /// Atoms-tree node → E_pol chunks with a far entry on it.
    pub(crate) epol_far_nodes: CoverageIndex,
    /// E_pol chunks holding at least one far entry (for a global bin
    /// relayout).
    pub(crate) epol_far_chunks: Vec<u32>,
    /// Entry-granular tables (entry mode only; all empty in chunk mode).
    /// Born entry id → owning chunk / offset of its span in that chunk's
    /// cached stream; E_pol entry id → owning chunk (its span is always
    /// one value at `entry - chunk.start`).
    pub(crate) born_entry_chunk: Vec<u32>,
    pub(crate) born_entry_offset: Vec<u32>,
    pub(crate) epol_entry_chunk: Vec<u32>,
    /// Morton atom → Born entries with a near record reading it.
    pub(crate) born_entry_touch: CoverageIndex,
    /// Morton atom → E_pol entries with a near record reading it.
    pub(crate) epol_entry_touch: CoverageIndex,
    /// Atoms-tree node → E_pol entries holding a far record on it.
    pub(crate) epol_far_entry_nodes: CoverageIndex,
    /// E_pol entries that are far records (for a global bin relayout).
    pub(crate) epol_far_entries: Vec<u32>,
    /// Bin generation the cached far-entry outputs were computed with.
    pub(crate) bins: ChargeBins,
    pub(crate) raw: f64,
    pub(crate) energy_kcal: f64,
    /// Current positions / charges, original atom order.
    pub(crate) positions: Vec<Vec3>,
    pub(crate) charges: Vec<f64>,
    /// Per-atom displacement from the scaffold geometry (original order).
    pub(crate) disp: Vec<f64>,
    /// Original index → Morton index for the current scaffold.
    pub(crate) inv_order: Vec<u32>,
    undo: Vec<UndoRecord>,
    /// Queries served incrementally vs via full rebuild.
    pub queries_incremental: u64,
    pub queries_rebuilt: u64,
    /// Queries served through [`DeltaEngine::apply_batch`].
    pub queries_batched: u64,
}

/// Execute `n` dirty work units (chunks or entries) through a pure
/// kernel, optionally over a pool with one poisoned slot; a poisoned
/// unit's panic is contained by `try_map` and the slot is re-executed
/// serially by the same kernel (`recovered` counts them). Returns
/// outputs in slot order.
pub(crate) fn run_dirty_units<T, F>(
    pool: Option<&WorkStealingPool>,
    n: usize,
    poison: Option<usize>,
    f: F,
    recovered: &mut u32,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match pool {
        Some(p) => {
            let (mut parts, _) = p.try_map(n, |k| {
                if Some(k) == poison {
                    // PANIC-OK: deliberate fault injection; contained by the pool's try_map.
                    panic!("injected worker panic in delta work slot {k}");
                }
                f(k)
            });
            parts
                .iter_mut()
                .enumerate()
                .map(|(k, slot)| {
                    slot.take().unwrap_or_else(|| {
                        *recovered += 1;
                        f(k)
                    })
                })
                .collect()
        }
        None => (0..n).map(&f).collect(),
    }
}

impl ListEngine {
    /// Upgrade this engine into the incremental perturbation engine
    /// (`core::delta`): caches every Phase-A chunk output, builds the
    /// dirtiness indexes, and serves [`DeltaEngine::apply_perturbation`]
    /// / [`DeltaEngine::revert`] queries from then on.
    pub fn into_delta(self) -> DeltaEngine {
        DeltaEngine::from_engine(self)
    }

    /// [`ListEngine::into_delta`] with explicit [`DeltaParams`].
    pub fn into_delta_with(self, params: DeltaParams) -> DeltaEngine {
        DeltaEngine::from_engine_with(self, params)
    }
}

impl DeltaEngine {
    /// Build a fresh engine at the molecule's geometry (counts as the
    /// first rebuild, like [`ListEngine::new`]).
    pub fn new(mol: &Molecule, approx: &ApproxParams, skin: f64) -> DeltaEngine {
        ListEngine::new(mol, approx, skin).into_delta()
    }

    /// [`DeltaEngine::new`] with explicit [`DeltaParams`].
    pub fn with_params(
        mol: &Molecule,
        approx: &ApproxParams,
        skin: f64,
        params: DeltaParams,
    ) -> DeltaEngine {
        ListEngine::new(mol, approx, skin).into_delta_with(params)
    }

    /// Adopt a prepared [`ListEngine`]: recover its current positions
    /// from the Morton snapshot, then execute one full pass to populate
    /// the chunk caches.
    pub fn from_engine(base: ListEngine) -> DeltaEngine {
        DeltaEngine::from_engine_with(base, DeltaParams::default())
    }

    /// [`DeltaEngine::from_engine`] with explicit [`DeltaParams`].
    pub fn from_engine_with(base: ListEngine, params: DeltaParams) -> DeltaEngine {
        let n = base.sys.n_atoms();
        let mut positions = vec![Vec3::ZERO; n];
        let mut charges = vec![0.0f64; n];
        for (mi, &oi) in base.sys.atoms.point_order.iter().enumerate() {
            // PANIC-OK: point_order is a permutation of 0..n by construction.
            positions[oi as usize] = base.sys.atoms.points[mi];
            charges[oi as usize] = base.sys.charge[mi]; // PANIC-OK: same permutation.
        }
        let mut engine = DeltaEngine {
            base,
            params,
            mode: params.granularity,
            born_outputs: Vec::new(),
            epol_outputs: Vec::new(),
            born_touch: CoverageIndex::default(),
            epol_touch: CoverageIndex::default(),
            epol_far_nodes: CoverageIndex::default(),
            epol_far_chunks: Vec::new(),
            born_entry_chunk: Vec::new(),
            born_entry_offset: Vec::new(),
            epol_entry_chunk: Vec::new(),
            born_entry_touch: CoverageIndex::default(),
            epol_entry_touch: CoverageIndex::default(),
            epol_far_entry_nodes: CoverageIndex::default(),
            epol_far_entries: Vec::new(),
            bins: ChargeBins::default(),
            raw: 0.0,
            energy_kcal: 0.0,
            positions,
            charges,
            disp: vec![0.0; n],
            inv_order: Vec::new(),
            undo: Vec::new(),
            queries_incremental: 0,
            queries_rebuilt: 0,
            queries_batched: 0,
        };
        engine.rebuild_caches();
        engine.full_execute(None);
        engine
    }

    /// Rebuild the scaffold-derived caches (inverse permutation and the
    /// inverted indexes at the effective granularity) after a prepare.
    /// Decides the effective granularity: [`Granularity::Entry`] is
    /// requested, the entry tables are built and measured, and if they
    /// exceed [`DeltaParams::max_cache_bytes`] they are dropped in favor
    /// of the chunk-granular indexes (the documented fallback).
    fn rebuild_caches(&mut self) {
        let n = self.base.sys.n_atoms();
        let mut inv = vec![0u32; n];
        for (mi, &oi) in self.base.sys.atoms.point_order.iter().enumerate() {
            // PANIC-OK: point_order is a permutation of 0..n by construction.
            inv[oi as usize] = mi as u32;
        }
        self.inv_order = inv;

        self.mode = self.params.granularity;
        if self.mode == Granularity::Entry {
            self.build_entry_caches();
            if self.entry_cache_bytes() > self.params.max_cache_bytes {
                self.drop_entry_caches();
                self.mode = Granularity::Chunk;
            }
        }
        if self.mode == Granularity::Chunk {
            self.drop_entry_caches();
            self.build_chunk_caches();
        } else {
            self.drop_chunk_caches();
        }
    }

    /// Chunk-granular inverted indexes (PR 9's protocol; also the cache
    /// cap's fallback target).
    fn build_chunk_caches(&mut self) {
        let sys = &self.base.sys;
        let n = sys.n_atoms();
        let born = &self.base.born_lists;
        self.born_touch = CoverageIndex::build(
            n,
            born.chunks.iter().enumerate().flat_map(|(c, range)| {
                born.entries[range.clone()]
                    .iter()
                    .filter(|e| !e.far)
                    .map(move |e| (sys.atoms.node(e.a).range(), c as u32))
            }),
        );

        let epol = &self.base.epol_lists;
        self.epol_touch = CoverageIndex::build(
            n,
            epol.chunks.iter().enumerate().flat_map(|(c, range)| {
                epol.entries[range.clone()].iter().filter(|e| !e.far).flat_map(move |e| {
                    [
                        (sys.atoms.node(e.a).range(), c as u32),
                        (sys.atoms.node(e.b).range(), c as u32),
                    ]
                })
            }),
        );
        self.epol_far_nodes = CoverageIndex::build(
            sys.atoms.nodes.len(),
            epol.chunks.iter().enumerate().flat_map(|(c, range)| {
                epol.entries[range.clone()].iter().filter(|e| e.far).flat_map(move |e| {
                    [
                        (e.a as usize..e.a as usize + 1, c as u32),
                        (e.b as usize..e.b as usize + 1, c as u32),
                    ]
                })
            }),
        );
        self.epol_far_chunks = epol
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, range)| epol.entries[(*range).clone()].iter().any(|e| e.far))
            .map(|(c, _)| c as u32)
            .collect();
    }

    fn drop_chunk_caches(&mut self) {
        self.born_touch = CoverageIndex::default();
        self.epol_touch = CoverageIndex::default();
        self.epol_far_nodes = CoverageIndex::default();
        self.epol_far_chunks = Vec::new();
    }

    /// Entry-granular tables: entry → chunk/offset splice maps plus the
    /// entry-level coverage indexes (same predicates as the chunk-level
    /// ones, keyed by entry id instead of chunk id).
    fn build_entry_caches(&mut self) {
        let sys = &self.base.sys;
        let n = sys.n_atoms();
        let born = &self.base.born_lists;
        self.born_entry_chunk = polaroct_sched::chunk_lookup(&born.chunks, born.len());
        let mut offsets = vec![0u32; born.len()];
        for range in &born.chunks {
            let mut off = 0u32;
            for e in range.clone() {
                offsets[e] = off; // PANIC-OK: chunks tile 0..len() by construction.
                off += crate::lists::BornLists::entry_out_len(sys, &born.entries[e]) as u32;
            }
        }
        self.born_entry_offset = offsets;
        self.born_entry_touch = CoverageIndex::build(
            n,
            born.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.far)
                .map(|(i, e)| (sys.atoms.node(e.a).range(), i as u32)),
        );

        let epol = &self.base.epol_lists;
        self.epol_entry_chunk = polaroct_sched::chunk_lookup(&epol.chunks, epol.len());
        self.epol_entry_touch = CoverageIndex::build(
            n,
            epol.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.far)
                .flat_map(|(i, e)| {
                    [
                        (sys.atoms.node(e.a).range(), i as u32),
                        (sys.atoms.node(e.b).range(), i as u32),
                    ]
                }),
        );
        self.epol_far_entry_nodes = CoverageIndex::build(
            sys.atoms.nodes.len(),
            epol.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.far)
                .flat_map(|(i, e)| {
                    [
                        (e.a as usize..e.a as usize + 1, i as u32),
                        (e.b as usize..e.b as usize + 1, i as u32),
                    ]
                }),
        );
        self.epol_far_entries = epol
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.far)
            .map(|(i, _)| i as u32)
            .collect();
    }

    fn drop_entry_caches(&mut self) {
        self.born_entry_chunk = Vec::new();
        self.born_entry_offset = Vec::new();
        self.epol_entry_chunk = Vec::new();
        self.born_entry_touch = CoverageIndex::default();
        self.epol_entry_touch = CoverageIndex::default();
        self.epol_far_entry_nodes = CoverageIndex::default();
        self.epol_far_entries = Vec::new();
    }

    /// Resident bytes of the entry-granular tables alone — what
    /// [`DeltaParams::max_cache_bytes`] caps.
    pub fn entry_cache_bytes(&self) -> usize {
        (self.born_entry_chunk.capacity()
            + self.born_entry_offset.capacity()
            + self.epol_entry_chunk.capacity()
            + self.epol_far_entries.capacity())
            * std::mem::size_of::<u32>()
            + self.born_entry_touch.memory_bytes()
            + self.epol_entry_touch.memory_bytes()
            + self.epol_far_entry_nodes.memory_bytes()
    }

    /// Refresh all Morton positions to `self.positions` and execute every
    /// chunk of both lists from scratch (the rebuild / adopt path). Pure
    /// recomputation — produces exactly the state an incremental query
    /// sequence would have cached.
    fn full_execute(&mut self, pool: Option<&WorkStealingPool>) {
        self.base.sys.refresh_atom_positions(&self.positions);
        for (d, (p, r)) in self
            .disp
            .iter_mut()
            .zip(self.positions.iter().zip(&self.base.reference))
        {
            *d = p.dist(*r);
        }
        let nb = self.base.born_lists.n_chunks();
        let base = &self.base;
        let mut recovered = 0u32;
        self.born_outputs = run_dirty_units(
            pool,
            nb,
            None,
            |c| base.born_lists.run_chunk(&base.sys, c),
            &mut recovered,
        );
        let n = self.base.sys.n_atoms();
        let mut acc = BornAccumulators::zeros(&self.base.sys);
        self.base.born_lists.apply(&self.base.sys, &self.born_outputs, &mut acc);
        let mut born = vec![0.0; n];
        push_integrals_to_atoms(&self.base.sys, &acc, 0..n, self.base.approx.math, &mut born);
        self.bins = ChargeBins::build(&self.base.sys, &born, self.base.approx.eps_epol);

        let ne = self.base.epol_lists.n_chunks();
        let base = &self.base;
        let (bins, math) = (&self.bins, self.base.approx.math);
        self.epol_outputs = run_dirty_units(
            pool,
            ne,
            None,
            |c| base.epol_lists.run_chunk(&base.sys, bins, &born, math, c),
            &mut recovered,
        );
        self.raw = self.base.epol_lists.apply(&self.epol_outputs);
        self.energy_kcal = epol_from_raw_sum(self.raw, self.base.approx.eps_solvent);
        self.base.born = born;
    }

    /// Apply a perturbation and return the re-evaluated energy, bit-identical
    /// to a fresh full run (see the module docs for the exact contract).
    /// Dirty chunks run over `pool` when given, serially otherwise — the
    /// result is bitwise the same either way.
    pub fn apply_perturbation(
        &mut self,
        p: &Perturbation,
        pool: Option<&WorkStealingPool>,
    ) -> DeltaEval {
        self.apply_inner(p, pool, None)
    }

    /// [`DeltaEngine::apply_perturbation`] under fault injection: a
    /// `PanicWorker` entry at [`phase::INTEGRALS`] / [`phase::EPOL`]
    /// poisons one dirty chunk of the corresponding list; the pool
    /// contains the panic and the chunk is re-executed serially before
    /// the apply pass, so the query result is still bit-identical
    /// (`recovered_chunks` reports the retries).
    pub fn apply_perturbation_ft(
        &mut self,
        p: &Perturbation,
        pool: &WorkStealingPool,
        plan: &FaultPlan,
    ) -> DeltaEval {
        // Clone resets the one-shot fired flags (same convention as the
        // drivers), so one plan value can drive many queries.
        let plan = plan.clone();
        self.apply_inner(p, Some(pool), Some(&plan))
    }

    fn apply_inner(
        &mut self,
        p: &Perturbation,
        pool: Option<&WorkStealingPool>,
        plan: Option<&FaultPlan>,
    ) -> DeltaEval {
        let n = self.positions.len();
        let mut old_moves = Vec::with_capacity(p.moves.len());
        for &(oi, np) in &p.moves {
            // PANIC-OK: perturbation preconditions, checked before any state is touched.
            assert!(oi < n, "moved atom {oi} out of range ({n} atoms)");
            // PANIC-OK: non-finite positions would poison every downstream comparison.
            assert!(
                np.x.is_finite() && np.y.is_finite() && np.z.is_finite(),
                "non-finite target position for atom {oi}"
            );
            old_moves.push((oi, self.positions[oi])); // PANIC-OK: oi < n asserted above.
            self.positions[oi] = np; // PANIC-OK: oi < n asserted above.
        }
        let mut old_charges = Vec::with_capacity(p.charges.len());
        for &(oi, nq) in &p.charges {
            // PANIC-OK: perturbation preconditions, checked before any state is touched.
            assert!(oi < n, "charged atom {oi} out of range ({n} atoms)");
            // PANIC-OK: non-finite charges would poison every downstream comparison.
            assert!(nq.is_finite(), "non-finite charge for atom {oi}");
            old_charges.push((oi, self.charges[oi])); // PANIC-OK: oi < n asserted above.
            self.charges[oi] = nq; // PANIC-OK: oi < n asserted above.
        }
        for &(oi, _) in &p.moves {
            // PANIC-OK: oi < n asserted above; disp/reference are n-length.
            self.disp[oi] = self.positions[oi].dist(self.base.reference[oi]);
        }
        let max_disp = self.disp.iter().copied().fold(0.0f64, f64::max);
        let total = self.total_chunks();

        if max_disp > 0.5 * self.base.skin {
            // Skin boundary crossed: rebuild the scaffold at the
            // perturbed geometry — same fallback, same resulting state,
            // as ListEngine::evaluate past the boundary.
            let scaffold = self.base.reference.clone();
            self.base.work.charges.copy_from_slice(&self.charges);
            let positions = self.positions.clone();
            self.base.rebuild(&positions);
            self.rebuild_caches();
            self.full_execute(pool);
            self.base.lists_rebuilt += 1;
            self.queries_rebuilt += 1;
            self.undo.push(UndoRecord::Rebuilt {
                moves: old_moves,
                charges: old_charges,
                scaffold,
            });
            let total = self.total_chunks();
            let total_entries = self.total_entries();
            return DeltaEval {
                energy_kcal: self.energy_kcal,
                raw: self.raw,
                rebuilt: true,
                max_disp,
                born_chunks_redone: self.base.born_lists.n_chunks(),
                epol_chunks_redone: self.base.epol_lists.n_chunks(),
                chunks_redone: total,
                chunks_cached: 0,
                total_chunks: total,
                entries_redone: total_entries,
                entries_cached: 0,
                total_entries,
                recovered_chunks: 0,
            };
        }

        // ---- Subset refresh: O(k) writes into the Morton tree copy,
        // the flat arena and the charge payload.
        let moved_m: Vec<usize> = p
            .moves
            .iter()
            .map(|&(oi, _)| self.inv_order[oi] as usize) // PANIC-OK: oi < n asserted above.
            .collect();
        let subset: Vec<(usize, Vec3)> = moved_m
            .iter()
            .zip(&p.moves)
            .map(|(&mi, &(_, np))| (mi, np))
            .collect();
        self.base.sys.refresh_atom_subset(&subset);
        let charged_m: Vec<usize> = p
            .charges
            .iter()
            .map(|&(oi, _)| self.inv_order[oi] as usize) // PANIC-OK: oi < n asserted above.
            .collect();
        for (&mi, &(_, nq)) in charged_m.iter().zip(&p.charges) {
            self.base.sys.set_atom_charge(mi, nq);
        }
        self.base.lists_reused += 1;

        // ---- Born dirtiness: a unit (entry or chunk, per the effective
        // granularity) is dirty iff one of its near records' atom ranges
        // contains a moved atom (far records read only frozen node
        // aggregates and can never go stale). At either granularity the
        // *set of chunks containing dirty work* is identical — the
        // predicate is per-entry — which is why the chunk accounting
        // below is granularity-invariant (and the pinned golden lines
        // survive the default switch to entry mode).
        let poison_at = |len: usize, ph: u32| {
            plan.and_then(|pl| match pl.fire_exec(0, ph) {
                Some(FaultKind::PanicWorker) => Some(pl.seed() as usize % len.max(1)),
                _ => None,
            })
        };
        let mut recovered = 0u32;
        let entry_mode = self.mode == Granularity::Entry;
        let (undo_born_spans, born_chunks_redone, born_entries_redone) = if entry_mode {
            let mut dirty: Vec<u32> = moved_m
                .iter()
                .flat_map(|&mi| self.born_entry_touch.chunks_for(mi))
                .copied()
                .collect();
            dirty.sort_unstable();
            dirty.dedup();
            let poison = poison_at(dirty.len(), phase::INTEGRALS);
            let base = &self.base;
            let dirty_ref = &dirty;
            let fresh: Vec<Vec<f64>> = run_dirty_units(
                pool,
                dirty.len(),
                poison,
                |k| {
                    let mut out = Vec::new();
                    // PANIC-OK: k < dirty.len() by the runner's index space; ids index the entry list.
                    let e = &base.born_lists.entries[dirty_ref[k] as usize];
                    crate::lists::BornLists::run_entry(&base.sys, e, &mut out);
                    out
                },
                &mut recovered,
            );
            let (spans, chunks) = self.splice_born_entries(&dirty, fresh);
            (spans, chunks, dirty.len())
        } else {
            let nb = self.base.born_lists.n_chunks();
            let mut bmask = vec![false; nb];
            for &mi in &moved_m {
                for &c in self.born_touch.chunks_for(mi) {
                    bmask[c as usize] = true; // PANIC-OK: index built over exactly nb chunks.
                }
            }
            let dirty: Vec<usize> = bmask
                .iter()
                .enumerate()
                .filter_map(|(c, &d)| d.then_some(c))
                .collect();
            let poison = poison_at(dirty.len(), phase::INTEGRALS);
            let base = &self.base;
            let dirty_ref = &dirty;
            let fresh = run_dirty_units(
                pool,
                dirty.len(),
                poison,
                // PANIC-OK: k < dirty.len() by the runner's index space.
                |k| base.born_lists.run_chunk(&base.sys, dirty_ref[k]),
                &mut recovered,
            );
            let entries: usize = dirty
                .iter()
                .map(|&c| self.base.born_lists.chunks[c].len()) // PANIC-OK: c < nb.
                .sum();
            let mut spans = Vec::with_capacity(dirty.len());
            for (&c, v) in dirty.iter().zip(fresh) {
                // PANIC-OK: c < nb — it came from the nb-length dirty mask.
                spans.push((c as u32, 0u32, std::mem::replace(&mut self.born_outputs[c], v)));
            }
            let chunks = dirty.len();
            (spans, chunks, entries)
        };

        // ---- Phase B (Born): full serial fold over all chunks in
        // emission order — cached outputs for clean chunks, fresh for
        // dirty — then the full push pass. Identical floats in identical
        // order to a fresh run.
        let mut acc = BornAccumulators::zeros(&self.base.sys);
        self.base.born_lists.apply(&self.base.sys, &self.born_outputs, &mut acc);
        let mut new_born = vec![0.0; n];
        push_integrals_to_atoms(&self.base.sys, &acc, 0..n, self.base.approx.math, &mut new_born);
        let born_changed: Vec<usize> = self
            .base
            .born
            .iter()
            .zip(&new_born)
            .enumerate()
            .filter_map(|(mi, (a, b))| (a.to_bits() != b.to_bits()).then_some(mi))
            .collect();

        // ---- Bin generation diff: rebuild (cheap, serial) and compare
        // bitwise. A changed rr_table or bin count invalidates every
        // far-bearing chunk; otherwise only chunks with a far entry on a
        // node whose bin vector changed.
        let new_bins = ChargeBins::build(&self.base.sys, &new_born, self.base.approx.eps_epol);
        let ne = self.base.epol_lists.n_chunks();
        let mut emask = vec![false; if entry_mode { 0 } else { ne }];
        let mut dirty_epol_entries: Vec<u32> = Vec::new();
        for &mi in moved_m.iter().chain(&charged_m).chain(&born_changed) {
            if entry_mode {
                dirty_epol_entries.extend_from_slice(self.epol_entry_touch.chunks_for(mi));
            } else {
                for &c in self.epol_touch.chunks_for(mi) {
                    emask[c as usize] = true; // PANIC-OK: index built over exactly ne chunks.
                }
            }
        }
        let table_changed = new_bins.m_eps != self.bins.m_eps
            || new_bins.rr_table.len() != self.bins.rr_table.len()
            || new_bins
                .rr_table
                .iter()
                .zip(&self.bins.rr_table)
                .any(|(a, b)| a.to_bits() != b.to_bits());
        if table_changed {
            if entry_mode {
                dirty_epol_entries.extend_from_slice(&self.epol_far_entries);
            } else {
                for &c in &self.epol_far_chunks {
                    emask[c as usize] = true; // PANIC-OK: far-chunk list indexes the ne-chunk list.
                }
            }
        } else {
            let m = new_bins.m_eps.max(1);
            for (node, (a, b)) in new_bins
                .per_node
                .chunks(m)
                .zip(self.bins.per_node.chunks(m))
                .enumerate()
            {
                if a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits()) {
                    if entry_mode {
                        dirty_epol_entries
                            .extend_from_slice(self.epol_far_entry_nodes.chunks_for(node));
                    } else {
                        for &c in self.epol_far_nodes.chunks_for(node) {
                            emask[c as usize] = true; // PANIC-OK: index built over exactly ne chunks.
                        }
                    }
                }
            }
        }
        let math = self.base.approx.math;
        let (undo_epol_spans, epol_chunks_redone, epol_entries_redone) = if entry_mode {
            let mut dirty = dirty_epol_entries;
            dirty.sort_unstable();
            dirty.dedup();
            let poison = poison_at(dirty.len(), phase::EPOL);
            let base = &self.base;
            let dirty_ref = &dirty;
            let fresh: Vec<f64> = match pool {
                None => {
                    // Serial fast path: one scratch reused across entries
                    // (the kernels are write-before-read, so reuse cannot
                    // change bits — see the stale-scratch kernel tests).
                    let mut scratch = StillScratch::default();
                    dirty
                        .iter()
                        .map(|&e| {
                            crate::lists::EpolLists::run_entry(
                                &base.sys,
                                &new_bins,
                                &new_born,
                                math,
                                // PANIC-OK: ids come from indexes built over this entry list.
                                &base.epol_lists.entries[e as usize],
                                &mut scratch,
                            )
                        })
                        .collect()
                }
                Some(_) => run_dirty_units(
                    pool,
                    dirty.len(),
                    poison,
                    |k| {
                        let mut scratch = StillScratch::default();
                        crate::lists::EpolLists::run_entry(
                            &base.sys,
                            &new_bins,
                            &new_born,
                            math,
                            // PANIC-OK: k < dirty.len(); ids index the entry list.
                            &base.epol_lists.entries[dirty_ref[k] as usize],
                            &mut scratch,
                        )
                    },
                    &mut recovered,
                ),
            };
            let (spans, chunks) = self.splice_epol_entries(&dirty, &fresh);
            (spans, chunks, dirty.len())
        } else {
            let dirty: Vec<usize> = emask
                .iter()
                .enumerate()
                .filter_map(|(c, &d)| d.then_some(c))
                .collect();
            let poison = poison_at(dirty.len(), phase::EPOL);
            let base = &self.base;
            let dirty_ref = &dirty;
            let fresh = run_dirty_units(
                pool,
                dirty.len(),
                poison,
                // PANIC-OK: k < dirty.len() by the runner's index space.
                |k| base.epol_lists.run_chunk(&base.sys, &new_bins, &new_born, math, dirty_ref[k]),
                &mut recovered,
            );
            let entries: usize = dirty
                .iter()
                .map(|&c| self.base.epol_lists.chunks[c].len()) // PANIC-OK: c < ne.
                .sum();
            let mut spans = Vec::with_capacity(dirty.len());
            for (&c, v) in dirty.iter().zip(fresh) {
                // PANIC-OK: c < ne — it came from the ne-length dirty mask.
                spans.push((c as u32, 0u32, std::mem::replace(&mut self.epol_outputs[c], v)));
            }
            let chunks = dirty.len();
            (spans, chunks, entries)
        };

        // ---- Phase B (E_pol): full sum-tree replay over all chunks.
        let raw = self.base.epol_lists.apply(&self.epol_outputs);
        let energy_kcal = epol_from_raw_sum(raw, self.base.approx.eps_solvent);

        let old_born = std::mem::replace(&mut self.base.born, new_born);
        let old_bins = std::mem::replace(&mut self.bins, new_bins);
        let old_raw = std::mem::replace(&mut self.raw, raw);
        let old_energy = std::mem::replace(&mut self.energy_kcal, energy_kcal);
        self.undo.push(UndoRecord::Incremental {
            moves: old_moves,
            charges: old_charges,
            born_spans: undo_born_spans,
            epol_spans: undo_epol_spans,
            born: old_born,
            bins: old_bins,
            raw: old_raw,
            energy_kcal: old_energy,
        });
        self.queries_incremental += 1;

        let redone = born_chunks_redone + epol_chunks_redone;
        let entries_redone = born_entries_redone + epol_entries_redone;
        let total_entries = self.total_entries();
        DeltaEval {
            energy_kcal,
            raw,
            rebuilt: false,
            max_disp,
            born_chunks_redone,
            epol_chunks_redone,
            chunks_redone: redone,
            chunks_cached: total - redone,
            total_chunks: total,
            entries_redone,
            entries_cached: total_entries - entries_redone,
            total_entries,
            recovered_chunks: recovered,
        }
    }

    /// Splice freshly recomputed Born entry outputs into the cached
    /// per-chunk streams in place, returning the replaced spans (for
    /// undo) and the number of distinct chunks touched. `dirty` must be
    /// sorted — entry ids within a chunk are contiguous, so the touched
    /// chunk ids are non-decreasing and counted by a single scan.
    fn splice_born_entries(
        &mut self,
        dirty: &[u32],
        fresh: Vec<Vec<f64>>,
    ) -> (Vec<UndoSpan>, usize) {
        let mut spans = Vec::with_capacity(dirty.len());
        let mut chunks = 0usize;
        let mut last_chunk = u32::MAX;
        for (&e, v) in dirty.iter().zip(fresh) {
            let c = self.born_entry_chunk[e as usize]; // PANIC-OK: ids index the entry list.
            let off = self.born_entry_offset[e as usize] as usize; // PANIC-OK: same length.
            if c != last_chunk {
                chunks += 1;
                last_chunk = c;
            }
            // PANIC-OK: the entry's span lies inside its chunk's stream by construction.
            let dst = &mut self.born_outputs[c as usize][off..off + v.len()];
            spans.push((c, off as u32, dst.to_vec()));
            dst.copy_from_slice(&v); // PANIC-OK: fresh output has the entry's fixed span length.
        }
        (spans, chunks)
    }

    /// [`DeltaEngine::splice_born_entries`] for the E_pol list, where
    /// every entry's span is exactly one value at `entry - chunk.start`.
    fn splice_epol_entries(&mut self, dirty: &[u32], fresh: &[f64]) -> (Vec<UndoSpan>, usize) {
        let mut spans = Vec::with_capacity(dirty.len());
        let mut chunks = 0usize;
        let mut last_chunk = u32::MAX;
        for (&e, &v) in dirty.iter().zip(fresh) {
            let c = self.epol_entry_chunk[e as usize]; // PANIC-OK: ids index the entry list.
            // PANIC-OK: entry e lives in chunk c, so e >= chunk.start.
            let off = e as usize - self.base.epol_lists.chunks[c as usize].start;
            if c != last_chunk {
                chunks += 1;
                last_chunk = c;
            }
            // PANIC-OK: off < chunk len by construction.
            let slot = &mut self.epol_outputs[c as usize][off];
            spans.push((c, off as u32, vec![*slot]));
            *slot = v;
        }
        (spans, chunks)
    }

    /// Undo the most recent perturbation; returns `false` when none is
    /// pending. An incremental query restores the saved state directly
    /// (bit-exact, no recomputation); a rebuilt query re-prepares the
    /// previous scaffold deterministically and re-executes over `pool`.
    pub fn revert(&mut self, pool: Option<&WorkStealingPool>) -> bool {
        let Some(rec) = self.undo.pop() else {
            return false;
        };
        match rec {
            UndoRecord::Incremental {
                moves,
                charges,
                born_spans,
                epol_spans,
                born,
                bins,
                raw,
                energy_kcal,
            } => {
                // Reverse application order, so repeated writes to one
                // atom unwind to the first saved value.
                for &(oi, op) in moves.iter().rev() {
                    self.positions[oi] = op; // PANIC-OK: saved from a validated query.
                }
                for &(oi, oq) in charges.iter().rev() {
                    self.charges[oi] = oq; // PANIC-OK: saved from a validated query.
                }
                let subset: Vec<(usize, Vec3)> = moves
                    .iter()
                    .map(|&(oi, _)| {
                        // PANIC-OK: saved from a validated query; inv_order is n-length.
                        (self.inv_order[oi] as usize, self.positions[oi])
                    })
                    .collect();
                self.base.sys.refresh_atom_subset(&subset);
                for &(oi, _) in &charges {
                    // PANIC-OK: saved from a validated query; inv_order is n-length.
                    let mi = self.inv_order[oi] as usize;
                    self.base.sys.set_atom_charge(mi, self.charges[oi]);
                }
                for &(oi, _) in &moves {
                    // PANIC-OK: saved from a validated query; disp/reference are n-length.
                    self.disp[oi] = self.positions[oi].dist(self.base.reference[oi]);
                }
                // Spans within one record are disjoint (distinct dirty
                // units), so restore order is immaterial.
                for (c, off, old) in born_spans {
                    let off = off as usize;
                    // PANIC-OK: span saved from this engine's own streams.
                    self.born_outputs[c as usize][off..off + old.len()].copy_from_slice(&old);
                }
                for (c, off, old) in epol_spans {
                    let off = off as usize;
                    // PANIC-OK: span saved from this engine's own streams.
                    self.epol_outputs[c as usize][off..off + old.len()].copy_from_slice(&old);
                }
                self.base.born = born;
                self.bins = bins;
                self.raw = raw;
                self.energy_kcal = energy_kcal;
            }
            UndoRecord::Rebuilt { moves, charges, scaffold } => {
                for &(oi, op) in moves.iter().rev() {
                    self.positions[oi] = op; // PANIC-OK: saved from a validated query.
                }
                for &(oi, oq) in charges.iter().rev() {
                    self.charges[oi] = oq; // PANIC-OK: saved from a validated query.
                }
                // Re-prepare the *old* scaffold (prepare is deterministic,
                // so trees/lists/indexes come back bit-identical), then
                // re-execute at the restored positions/charges.
                self.base.work.charges.copy_from_slice(&self.charges);
                self.base.rebuild(&scaffold);
                self.rebuild_caches();
                self.full_execute(pool);
                self.base.lists_rebuilt += 1;
            }
        }
        true
    }

    /// Polarization energy (kcal/mol) of the current state.
    pub fn energy_kcal(&self) -> f64 {
        self.energy_kcal
    }

    /// Raw ordered-pair E_pol sum of the current state.
    pub fn raw(&self) -> f64 {
        self.raw
    }

    /// Born radii of the current state (Morton order; pair with
    /// [`DeltaEngine::system`]).
    pub fn born(&self) -> &[f64] {
        self.base.born()
    }

    /// FNV-1a digest of the Born radii in original atom order — the
    /// order-independent fingerprint the differential harness compares.
    pub fn born_digest(&self) -> u64 {
        checksum(&self.base.sys.to_original_atom_order(self.base.born()))
    }

    /// The underlying system snapshot.
    pub fn system(&self) -> &GbSystem {
        &self.base.sys
    }

    /// The underlying [`ListEngine`] (counters, skin, lists).
    pub fn engine(&self) -> &ListEngine {
        &self.base
    }

    /// Current positions, original atom order.
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Current charges, original atom order.
    pub fn charges(&self) -> &[f64] {
        &self.charges
    }

    /// Scaffold (reference) geometry the current trees/lists were built
    /// at, original atom order.
    pub fn reference_positions(&self) -> &[Vec3] {
        &self.base.reference
    }

    /// Total chunks across both lists — the denominator of the
    /// `chunks_redone < total_chunks` op-accounting contract.
    pub fn total_chunks(&self) -> usize {
        self.base.born_lists.n_chunks() + self.base.epol_lists.n_chunks()
    }

    /// Total list entries across both lists — the denominator of the
    /// `entries_redone` accounting.
    pub fn total_entries(&self) -> usize {
        self.base.born_lists.len() + self.base.epol_lists.len()
    }

    /// The granularity the current scaffold actually runs at: the
    /// requested [`DeltaParams::granularity`] unless the cache cap
    /// forced the chunk fallback. Re-decided after every rebuild.
    pub fn effective_granularity(&self) -> Granularity {
        self.mode
    }

    /// The construction-time knobs.
    pub fn params(&self) -> DeltaParams {
        self.params
    }

    /// Perturbations currently on the undo stack.
    pub fn pending_perturbations(&self) -> usize {
        self.undo.len()
    }

    /// Resident bytes: the base engine plus the output caches, the
    /// indexes of the effective granularity (the entry tables are
    /// [`DeltaEngine::entry_cache_bytes`]; whichever mode is inactive
    /// holds empty structures) and the bin generation.
    pub fn memory_bytes(&self) -> usize {
        let outputs: usize = self
            .born_outputs
            .iter()
            .chain(&self.epol_outputs)
            .map(|v| v.capacity() * 8)
            .sum();
        self.base.memory_bytes()
            + outputs
            + self.born_touch.memory_bytes()
            + self.epol_touch.memory_bytes()
            + self.epol_far_nodes.memory_bytes()
            + self.epol_far_chunks.capacity() * std::mem::size_of::<u32>()
            + self.entry_cache_bytes()
            + self.bins.memory_bytes()
    }

    /// Test hook: additively corrupt every *cached* Phase-A Born output
    /// (dirty chunks recomputed by the next query overwrite their slots,
    /// so whatever stays cached stays corrupted). The golden recall test
    /// uses this to prove a stale cached chunk cannot survive the
    /// differential harness.
    #[doc(hidden)]
    pub fn debug_corrupt_cached_born_outputs(&mut self, delta: f64) {
        for out in &mut self.born_outputs {
            for v in out.iter_mut() {
                *v += delta;
            }
        }
    }

    /// Test hook: locate one near Born entry and an original-order atom
    /// inside its node range — moving that atom must dirty exactly that
    /// entry (plus whatever else covers the atom). The entry-granular
    /// recall harness pairs this with
    /// [`DeltaEngine::debug_corrupt_cached_born_entry`].
    #[doc(hidden)]
    pub fn debug_near_born_entry_probe(&self) -> (usize, usize) {
        let born = &self.base.born_lists;
        let (i, e) = born
            .entries
            .iter()
            .enumerate()
            .find(|(_, e)| !e.far)
            .expect("interaction lists always hold near entries"); // PANIC-OK: test hook.
        let mi = self.base.sys.atoms.node(e.a).range().start;
        let oi = self.base.sys.atoms.point_order[mi] as usize; // PANIC-OK: test hook.
        (i, oi)
    }

    /// Test hook: additively corrupt exactly one cached Born *entry*'s
    /// output span (entry-granular recall test — proves a single stale
    /// entry span, the smallest corruptible unit the entry-granular
    /// cache manages, cannot survive the differential harness unless a
    /// query marks that very entry dirty).
    #[doc(hidden)]
    pub fn debug_corrupt_cached_born_entry(&mut self, entry: usize, delta: f64) {
        let born = &self.base.born_lists;
        assert!(entry < born.len(), "entry {entry} out of range"); // PANIC-OK: test hook.
        // Locate the entry's chunk and offset by scanning (works at
        // either granularity; this is a test-only path).
        let (c, range) = born
            .chunks
            .iter()
            .enumerate()
            .find(|(_, r)| r.contains(&entry))
            .expect("chunks tile the entry list"); // PANIC-OK: test hook.
        let mut off = 0usize;
        for e in range.start..entry {
            off += crate::lists::BornLists::entry_out_len(&self.base.sys, &born.entries[e]);
        }
        let len = crate::lists::BornLists::entry_out_len(&self.base.sys, &born.entries[entry]);
        for v in &mut self.born_outputs[c][off..off + len] {
            *v += delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_molecule::synth;

    fn mol(n: usize, seed: u64) -> Molecule {
        synth::protein("delta", n, seed)
    }

    /// Fresh-reference energy for the engine's current state: an
    /// independent ListEngine prepared at the scaffold with the current
    /// charges, evaluated (full, all chunks) at the current positions.
    fn fresh_reference(eng: &DeltaEngine, approx: &ApproxParams, skin: f64) -> (f64, f64, u64) {
        let mut m = Molecule {
            positions: eng.reference_positions().to_vec(),
            charges: eng.charges().to_vec(),
            ..mol(eng.positions().len(), 0)
        };
        m.radii = eng
            .system()
            .to_original_atom_order(&eng.system().radius)
            .to_vec();
        let mut fresh = ListEngine::new(&m, approx, skin);
        let eval = fresh.evaluate(eng.positions());
        let digest = checksum(&fresh.system().to_original_atom_order(fresh.born()));
        (eval.raw, eval.energy_kcal, digest)
    }

    #[test]
    fn single_move_matches_fresh_engine_bits() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let mut eng = DeltaEngine::new(&mol(150, 3), &approx, skin);
        let p = Perturbation::default().move_atom(17, eng.positions()[17] + Vec3::new(0.2, -0.1, 0.15));
        let eval = eng.apply_perturbation(&p, None);
        assert!(!eval.rebuilt);
        assert!(eval.chunks_redone < eval.total_chunks, "no work was skipped");
        assert!(eval.chunks_redone > 0);
        let (raw, energy, digest) = fresh_reference(&eng, &approx, skin);
        assert_eq!(eval.raw.to_bits(), raw.to_bits());
        assert_eq!(eval.energy_kcal.to_bits(), energy.to_bits());
        assert_eq!(eng.born_digest(), digest);
    }

    #[test]
    fn charge_mutation_matches_fresh_engine_bits() {
        let approx = ApproxParams::default();
        let skin = 0.8;
        let mut eng = DeltaEngine::new(&mol(120, 9), &approx, skin);
        let p = Perturbation::default().set_charge(33, 2.5).set_charge(70, -1.25);
        let eval = eng.apply_perturbation(&p, None);
        assert!(!eval.rebuilt);
        // Charges don't feed Born radii at all.
        assert_eq!(eval.born_chunks_redone, 0);
        let (raw, energy, digest) = fresh_reference(&eng, &approx, skin);
        assert_eq!(eval.raw.to_bits(), raw.to_bits());
        assert_eq!(eval.energy_kcal.to_bits(), energy.to_bits());
        assert_eq!(eng.born_digest(), digest);
    }

    #[test]
    fn boundary_crossing_rebuilds_and_matches_fresh_prepare() {
        let approx = ApproxParams::default();
        let skin = 0.4;
        let m = mol(100, 5);
        let mut eng = DeltaEngine::new(&m, &approx, skin);
        let p = Perturbation::default().move_atom(8, m.positions[8] + Vec3::new(1.0, 0.0, 0.0));
        let eval = eng.apply_perturbation(&p, None);
        assert!(eval.rebuilt);
        assert_eq!(eval.chunks_cached, 0);
        // Past the boundary the scaffold is re-prepared at the perturbed
        // geometry, so the engine equals a fresh prepare of it.
        let mut pm = m.clone();
        pm.positions[8] += Vec3::new(1.0, 0.0, 0.0);
        let mut fresh = ListEngine::new(&pm, &approx, skin);
        let feval = fresh.evaluate(&pm.positions);
        assert_eq!(eval.raw.to_bits(), feval.raw.to_bits());
        assert_eq!(eval.energy_kcal.to_bits(), feval.energy_kcal.to_bits());
    }

    #[test]
    fn revert_restores_original_bits() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let m = mol(130, 7);
        let mut eng = DeltaEngine::new(&m, &approx, skin);
        let raw0 = eng.raw();
        let energy0 = eng.energy_kcal();
        let digest0 = eng.born_digest();
        let p1 = Perturbation::default()
            .move_atom(4, m.positions[4] + Vec3::new(0.1, 0.2, -0.1))
            .set_charge(60, 3.0);
        let p2 = Perturbation::default().move_atom(90, m.positions[90] + Vec3::new(-0.15, 0.0, 0.2));
        eng.apply_perturbation(&p1, None);
        eng.apply_perturbation(&p2, None);
        assert_eq!(eng.pending_perturbations(), 2);
        assert!(eng.revert(None));
        assert!(eng.revert(None));
        assert!(!eng.revert(None), "stack must be empty");
        assert_eq!(eng.raw().to_bits(), raw0.to_bits());
        assert_eq!(eng.energy_kcal().to_bits(), energy0.to_bits());
        assert_eq!(eng.born_digest(), digest0);
        for (a, b) in eng.positions().iter().zip(&m.positions) {
            assert_eq!(a, b);
        }
        for (a, b) in eng.charges().iter().zip(&m.charges) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pooled_queries_match_serial_bits() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let m = mol(140, 11);
        let mut serial = DeltaEngine::new(&m, &approx, skin);
        let mut pooled = DeltaEngine::new(&m, &approx, skin);
        let pool = WorkStealingPool::new(3);
        let p = Perturbation::default()
            .move_atom(10, m.positions[10] + Vec3::new(0.2, 0.1, 0.0))
            .move_atom(77, m.positions[77] + Vec3::new(0.0, -0.2, 0.1));
        let es = serial.apply_perturbation(&p, None);
        let ep = pooled.apply_perturbation(&p, Some(&pool));
        assert_eq!(es.raw.to_bits(), ep.raw.to_bits());
        assert_eq!(es.chunks_redone, ep.chunks_redone);
        assert_eq!(serial.born_digest(), pooled.born_digest());
    }

    #[test]
    fn empty_perturbation_is_identity() {
        let approx = ApproxParams::default();
        let mut eng = DeltaEngine::new(&mol(80, 13), &approx, 0.5);
        let raw0 = eng.raw();
        let eval = eng.apply_perturbation(&Perturbation::default(), None);
        assert_eq!(eval.chunks_redone, 0);
        assert_eq!(eval.raw.to_bits(), raw0.to_bits());
        assert!(eng.revert(None));
        assert_eq!(eng.raw().to_bits(), raw0.to_bits());
    }

    #[test]
    fn corrupted_cache_is_caught_by_the_differential_harness() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let mut eng = DeltaEngine::new(&mol(110, 17), &approx, skin);
        eng.debug_corrupt_cached_born_outputs(1e-3);
        // An identity query replays Phase B over the (corrupted) cache.
        let eval = eng.apply_perturbation(&Perturbation::default(), None);
        let (raw, _, _) = fresh_reference(&eng, &approx, skin);
        assert_ne!(
            eval.raw.to_bits(),
            raw.to_bits(),
            "a stale cached chunk must be visible to the harness"
        );
    }

    #[test]
    fn chunk_mode_matches_entry_mode_bits() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let m = mol(140, 19);
        let mut entry = DeltaEngine::new(&m, &approx, skin);
        let mut chunk = DeltaEngine::with_params(
            &m,
            &approx,
            skin,
            DeltaParams { granularity: Granularity::Chunk, ..DeltaParams::default() },
        );
        assert_eq!(entry.effective_granularity(), Granularity::Entry);
        assert_eq!(chunk.effective_granularity(), Granularity::Chunk);
        let p = Perturbation::default()
            .move_atom(23, m.positions[23] + Vec3::new(0.2, -0.1, 0.15))
            .set_charge(50, 1.75);
        let ee = entry.apply_perturbation(&p, None);
        let ec = chunk.apply_perturbation(&p, None);
        // The granularity only decides how much clean work is redone:
        // bits and chunk accounting are invariant, entry accounting is
        // strictly finer (fewer entries redone).
        assert_eq!(ee.raw.to_bits(), ec.raw.to_bits());
        assert_eq!(ee.energy_kcal.to_bits(), ec.energy_kcal.to_bits());
        assert_eq!(entry.born_digest(), chunk.born_digest());
        assert_eq!(ee.chunks_redone, ec.chunks_redone);
        assert_eq!(ee.born_chunks_redone, ec.born_chunks_redone);
        assert!(
            ee.entries_redone < ec.entries_redone,
            "entry mode must redo strictly fewer entries ({} vs {})",
            ee.entries_redone,
            ec.entries_redone
        );
        assert_eq!(ee.total_entries, ec.total_entries);
        // And both reverts restore the base bits.
        assert!(entry.revert(None));
        assert!(chunk.revert(None));
        assert_eq!(entry.raw().to_bits(), chunk.raw().to_bits());
    }

    #[test]
    fn cache_cap_falls_back_to_chunk_mode_bit_identically() {
        let approx = ApproxParams::default();
        let skin = 1.0;
        let m = mol(120, 23);
        // A 1-byte cap can never hold the entry tables.
        let mut capped = DeltaEngine::with_params(
            &m,
            &approx,
            skin,
            DeltaParams { granularity: Granularity::Entry, max_cache_bytes: 1 },
        );
        assert_eq!(capped.effective_granularity(), Granularity::Chunk);
        assert_eq!(capped.entry_cache_bytes(), 0, "entry tables must be dropped");
        let mut entry = DeltaEngine::new(&m, &approx, skin);
        let p = Perturbation::default().move_atom(7, m.positions[7] + Vec3::new(0.1, 0.2, -0.1));
        let ec = capped.apply_perturbation(&p, None);
        let ee = entry.apply_perturbation(&p, None);
        assert_eq!(ec.raw.to_bits(), ee.raw.to_bits());
        assert_eq!(ec.energy_kcal.to_bits(), ee.energy_kcal.to_bits());
        assert_eq!(capped.born_digest(), entry.born_digest());
        // The capped engine reports chunk-granular accounting.
        assert!(ec.entries_redone > ee.entries_redone);
    }

    #[test]
    fn entry_tables_counted_in_memory_bytes() {
        let m = mol(100, 29);
        let eng = DeltaEngine::new(&m, &ApproxParams::default(), 0.8);
        assert!(eng.entry_cache_bytes() > 0);
        assert!(eng.memory_bytes() > eng.engine().memory_bytes() + eng.entry_cache_bytes());
    }

    #[test]
    #[should_panic]
    fn out_of_range_move_is_rejected() {
        let mut eng = DeltaEngine::new(&mol(40, 1), &ApproxParams::default(), 0.5);
        let p = Perturbation::default().move_atom(40, Vec3::ZERO);
        let _ = eng.apply_perturbation(&p, None);
    }
}
