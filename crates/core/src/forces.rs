//! Analytic gradients of the GB polarization energy.
//!
//! The paper's motivating applications — docking and "molecular dynamics
//! simulations for determining the molecular conformation with minimal
//! total free energy" (§I) — need forces, not just energies. This module
//! provides `−∂E_pol/∂x_i` under the standard *fixed-Born-radii*
//! approximation (radius derivatives neglected — what MD codes call the
//! "GB force, no dRᵢ/dx term"; the full chain rule would add the
//! descreening derivative, listed below as a future refinement).
//!
//! With `E = −(τ k /2) Σ_{i,j} q_i q_j / f_ij`,
//! `f² = r² + R_i R_j exp(−r²/(4 R_i R_j))`:
//!
//! ```text
//! ∂E/∂x_i = τ k Σ_{j≠i} q_i q_j · (1 − e_ij/4) / f_ij³ · (x_i − x_j)
//! e_ij    = exp(−r_ij² / (4 R_i R_j))
//! ```
//!
//! Verified against central finite differences in the tests.

use crate::gb::{tau, COULOMB_KCAL};
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;

/// Forces `F_i = −∂E_pol/∂x_i` (kcal/mol/Å) for all atoms, exact O(M²).
///
/// `born` must be the Born radii in the system's Morton atom order (as
/// produced by the Born kernels); the returned forces are in the same
/// order — use [`GbSystem::atoms`]'s `unpermute` (via
/// [`forces_original_order`]) for the molecule's original order.
pub fn forces_naive(
    sys: &GbSystem,
    born: &[f64],
    eps_solvent: f64,
    math: MathMode,
) -> (Vec<Vec3>, OpCounts) {
    let m = sys.n_atoms();
    assert_eq!(born.len(), m);
    let pref = tau(eps_solvent) * COULOMB_KCAL;
    let mut forces = vec![Vec3::ZERO; m];
    for i in 0..m {
        let xi = sys.atoms.points[i];
        let (qi, ri) = (sys.charge[i], born[i]);
        let mut fi = Vec3::ZERO;
        for j in (i + 1)..m {
            let dv = xi - sys.atoms.points[j];
            let r2 = dv.norm2();
            let rr = ri * born[j];
            let e = math.exp(-r2 / (4.0 * rr));
            let inner = r2 + rr * e;
            let inv_f = math.rsqrt(inner);
            let inv_f3 = inv_f * inv_f * inv_f;
            // dE/dx_i for the (i,j)+(j,i) ordered pair (factor 2 folded
            // into using the unordered loop with symmetric accumulation).
            let g = pref * qi * sys.charge[j] * (1.0 - 0.25 * e) * inv_f3;
            let contrib = dv * g;
            // F = −dE/dx: E's gradient along +dv is +g·dv, so force on i
            // is −g·dv... sign check: E = −(τk/2)·2·q_i q_j/f (pair both
            // orders), dE/dx_i = +τk q_i q_j (1−e/4) f⁻³ (x_i−x_j) ⇒
            // F_i = −that.
            fi -= contrib;
            forces[j] += contrib;
        }
        forces[i] += fi;
    }
    let ops = OpCounts {
        epol_near: (m * (m - 1) / 2) as u64,
        ..Default::default()
    };
    (forces, ops)
}

/// Forces restricted to pairs within `cutoff` (the production shortcut;
/// the GB force kernel decays like r⁻² × screening).
pub fn forces_cutoff(
    sys: &GbSystem,
    born: &[f64],
    eps_solvent: f64,
    cutoff: f64,
    math: MathMode,
) -> (Vec<Vec3>, OpCounts) {
    use polaroct_surface::CellList;
    let m = sys.n_atoms();
    // PANIC-OK: precondition assert — born must be per-atom; a mismatch is a caller bug.
    assert_eq!(born.len(), m);
    let pref = tau(eps_solvent) * COULOMB_KCAL;
    let cells = CellList::new(&sys.atoms.points, cutoff);
    let c2 = cutoff * cutoff;
    let mut forces = vec![Vec3::ZERO; m];
    let mut ops = 0u64;
    for i in 0..m {
        let xi = sys.atoms.points[i];
        let (qi, ri) = (sys.charge[i], born[i]);
        let mut fi = Vec3::ZERO;
        cells.for_neighbors(xi, cutoff, |j| {
            let j = j as usize;
            if j == i {
                return;
            }
            let dv = xi - sys.atoms.points[j];
            let r2 = dv.norm2();
            if r2 > c2 {
                return;
            }
            let rr = ri * born[j];
            let e = math.exp(-r2 / (4.0 * rr));
            let inner = r2 + rr * e;
            let inv_f = math.rsqrt(inner);
            let g = pref * qi * sys.charge[j] * (1.0 - 0.25 * e) * inv_f * inv_f * inv_f;
            fi -= dv * g;
            ops += 1;
        });
        forces[i] += fi;
    }
    (
        forces,
        OpCounts {
            epol_near: ops,
            ..Default::default()
        },
    )
}

/// Map Morton-ordered forces back to the molecule's original atom order.
pub fn forces_original_order(sys: &GbSystem, sorted: &[Vec3]) -> Vec<Vec3> {
    // PANIC-OK: precondition assert — sorted must be per-atom; a mismatch is a caller bug.
    assert_eq!(sorted.len(), sys.n_atoms());
    let mut out = vec![Vec3::ZERO; sorted.len()];
    for (i, &orig) in sys.atoms.point_order.iter().enumerate() {
        out[orig as usize] = sorted[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{born_radii_naive, epol_naive_raw};
    use crate::params::ApproxParams;
    use polaroct_molecule::synth;

    /// E_pol with atoms at given positions (helper for finite differences:
    /// Born radii held fixed, like the analytic gradient assumes).
    fn energy_at(sys: &GbSystem, positions: &[Vec3], born: &[f64], eps: f64) -> f64 {
        let mut raw = 0.0;
        let m = positions.len();
        for i in 0..m {
            let (qi, ri) = (sys.charge[i], born[i]);
            raw += qi * qi / ri;
            for j in (i + 1)..m {
                let r2 = positions[i].dist2(positions[j]);
                raw += 2.0
                    * qi
                    * sys.charge[j]
                    * crate::gb::inv_f_gb(r2, ri, born[j], MathMode::Exact);
            }
        }
        crate::gb::epol_from_raw_sum(raw, eps)
    }

    #[test]
    fn matches_finite_differences() {
        let mol = synth::protein("f", 60, 3);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let (forces, _) = forces_naive(&sys, &born, 80.0, MathMode::Exact);

        let h = 1e-5;
        for &atom in &[0usize, 17, 42] {
            // `ax` selects both the perturbed coordinate (the match) and
            // the compared force component, so a range loop is the
            // honest shape.
            #[allow(clippy::needless_range_loop)]
            for ax in 0..3 {
                let mut plus = sys.atoms.points.clone();
                let mut minus = sys.atoms.points.clone();
                match ax {
                    0 => {
                        plus[atom].x += h;
                        minus[atom].x -= h;
                    }
                    1 => {
                        plus[atom].y += h;
                        minus[atom].y -= h;
                    }
                    _ => {
                        plus[atom].z += h;
                        minus[atom].z -= h;
                    }
                }
                let de = (energy_at(&sys, &plus, &born, 80.0)
                    - energy_at(&sys, &minus, &born, 80.0))
                    / (2.0 * h);
                let analytic = -forces[atom][ax];
                assert!(
                    (de - analytic).abs() < 1e-4 * de.abs().max(1.0),
                    "atom {atom} axis {ax}: FD {de} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        // Newton's third law: internal forces cancel.
        let mol = synth::protein("f", 120, 7);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let (forces, _) = forces_naive(&sys, &born, 80.0, MathMode::Exact);
        let total: Vec3 = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
        assert!(total.norm() < 1e-8, "net force {total:?}");
    }

    #[test]
    fn cutoff_forces_approach_exact() {
        let mol = synth::protein("f", 150, 9);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let (exact, _) = forces_naive(&sys, &born, 80.0, MathMode::Exact);
        let (cut, ops) = forces_cutoff(&sys, &born, 80.0, 30.0, MathMode::Exact);
        let mut worst = 0.0f64;
        for (a, b) in exact.iter().zip(&cut) {
            worst = worst.max((*a - *b).norm() / a.norm().max(1e-3));
        }
        assert!(worst < 0.05, "cutoff force error {worst}");
        assert!(ops.epol_near > 0);
    }

    #[test]
    fn two_opposite_charges_attract_in_solvent_screening() {
        use polaroct_molecule::{Atom, Element, Molecule};
        let mol = Molecule::from_atoms(
            "pair",
            [
                Atom {
                    pos: Vec3::ZERO,
                    radius: 1.5,
                    charge: 1.0,
                    element: Element::N,
                },
                Atom {
                    pos: Vec3::new(6.0, 0.0, 0.0),
                    radius: 1.5,
                    charge: -1.0,
                    element: Element::O,
                },
            ],
        );
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let (forces, _) = forces_naive(&sys, &born, 80.0, MathMode::Exact);
        // E_pol becomes more negative as opposite charges separate? No:
        // the GB cross term −τk·q₁q₂/f with q₁q₂ < 0 *increases* |E| as f
        // shrinks... the polarization force on opposite charges is
        // repulsive (solvent screening pushes them apart); verify sign
        // against the energy slope instead of intuition:
        let e_near = energy_at(&sys, &sys.atoms.points, &born, 80.0);
        let mut apart = sys.atoms.points.clone();
        // Move atom with larger x further out.
        let far_idx = if sys.atoms.points[0].x > sys.atoms.points[1].x {
            0
        } else {
            1
        };
        apart[far_idx].x += 0.01;
        let e_far = energy_at(&sys, &apart, &born, 80.0);
        let fd_force_x = -(e_far - e_near) / 0.01;
        // Central differences with h = 0.01 Å carry O(h²·E''') truncation
        // error; 0.5% relative agreement is the right bar here.
        assert!(
            (forces[far_idx].x - fd_force_x).abs() < 5e-3 * fd_force_x.abs().max(1.0),
            "{} vs {}",
            forces[far_idx].x,
            fd_force_x
        );
    }

    #[test]
    fn original_order_mapping_roundtrips() {
        let mol = synth::protein("f", 80, 11);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let (forces, _) = forces_naive(&sys, &born, 80.0, MathMode::Exact);
        let orig = forces_original_order(&sys, &forces);
        // Spot-check through the permutation.
        for (i, &f) in forces.iter().enumerate() {
            let o = sys.atoms.point_order[i] as usize;
            assert_eq!(orig[o], f);
        }
    }

    #[test]
    fn energy_consistency_with_epol_kernel() {
        // The FD helper must agree with the production naive kernel.
        let mol = synth::protein("f", 90, 13);
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let (raw, _) = epol_naive_raw(&sys, &born, MathMode::Exact);
        let via_kernel = crate::gb::epol_from_raw_sum(raw, 80.0);
        let via_helper = energy_at(&sys, &sys.atoms.points, &born, 80.0);
        assert!(((via_kernel - via_helper) / via_kernel).abs() < 1e-12);
    }
}
