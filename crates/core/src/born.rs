//! `APPROX-INTEGRALS` and `PUSH-INTEGRALS-TO-ATOMS` (Fig. 2).
//!
//! For a quadrature-tree leaf `Q` and an atoms-tree node `A`:
//!
//! * **far** (`r_AQ > (r_A + r_Q)·(θ+1)/(θ−1)`, `θ = 1+ε` — see
//!   `ApproxParams::born_mac_multiplier` for why not the prose's
//!   `(1+ε)^{1/6}`): the
//!   whole leaf's contribution to every atom under `A` is approximated by
//!   one pseudo-particle term collected in `s_A`:
//!   `s_A += ñ_Q · (c_Q − c_A) / r_AQ⁶` with `ñ_Q = Σ_q w_q n_q`;
//! * **leaf–leaf**: exact `Σ_q w_q (n_q · (p_q − p_a)) / |p_q − p_a|⁶`
//!   added to each atom's `s_a`;
//! * otherwise recurse into `A`'s children.
//!
//! `PUSH-INTEGRALS-TO-ATOMS` then adds every ancestor's `s_A` into each
//! atom's total and converts to Born radii.
//!
//! Both functions take index subranges so the distributed drivers can
//! implement the paper's work divisions: node-based division passes whole
//! leaves; atom/q-point-based division passes clipped ranges, which is
//! precisely why its error drifts with `P` (partial leaves get different
//! pseudo-particle aggregates — §IV.A's observation).

use crate::naive::born_radii_from_integrals;
use crate::soa::{QView, CHUNK};
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;
use polaroct_octree::NodeId;
use std::ops::Range;

/// Partial-integral accumulators: `node[id]` is Fig. 2's `s_A`, `atom[i]`
/// is `s_a` (Morton atom order). Allreduced across ranks in Step 3.
#[derive(Clone, Debug)]
pub struct BornAccumulators {
    pub node: Vec<f64>,
    pub atom: Vec<f64>,
}

impl BornAccumulators {
    pub fn zeros(sys: &GbSystem) -> Self {
        BornAccumulators {
            node: vec![0.0; sys.atoms.nodes.len()],
            atom: vec![0.0; sys.n_atoms()],
        }
    }

    /// Flatten into one buffer for `MPI_Allreduce` (node sums first).
    pub fn to_flat(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.node.len() + self.atom.len());
        v.extend_from_slice(&self.node);
        v.extend_from_slice(&self.atom);
        v
    }

    /// Inverse of [`Self::to_flat`].
    pub fn from_flat(&mut self, flat: &[f64]) {
        // PANIC-OK: precondition assert — a mis-sized snapshot is a caller bug, not a runtime fault.
        assert_eq!(flat.len(), self.node.len() + self.atom.len());
        let n = self.node.len();
        // PANIC-OK: lengths match by the assert above.
        self.node.copy_from_slice(&flat[..n]);
        // PANIC-OK: atom.len() == flat.len() - n by the assert above.
        self.atom.copy_from_slice(&flat[n..]);
    }
}

/// Aggregates describing one (possibly clipped) quadrature leaf.
struct QLeafView {
    center: Vec3,
    radius: f64,
    normal_sum: Vec3,
    range: Range<usize>,
}

impl QLeafView {
    /// Whole-leaf view: uses the precomputed node aggregates (node-based
    /// work division — every rank sees identical aggregates, so the
    /// result is `P`-invariant).
    fn whole(sys: &GbSystem, leaf: NodeId) -> QLeafView {
        let n = sys.qtree.node(leaf);
        QLeafView {
            center: n.center,
            radius: n.radius,
            normal_sum: sys.q_node_normal[leaf as usize],
            range: n.range(),
        }
    }

    /// Clipped view covering only `clip ∩ leaf` (q-point-based division):
    /// aggregates are recomputed over the subset, so different clip
    /// boundaries yield different approximations.
    fn clipped(sys: &GbSystem, leaf: NodeId, clip: &Range<usize>) -> Option<QLeafView> {
        let n = sys.qtree.node(leaf);
        let lo = n.range().start.max(clip.start);
        let hi = n.range().end.min(clip.end);
        if lo >= hi {
            return None;
        }
        if lo == n.range().start && hi == n.range().end {
            return Some(QLeafView::whole(sys, leaf));
        }
        let mut c = Vec3::ZERO;
        let mut ns = Vec3::ZERO;
        for i in lo..hi {
            c += sys.qtree.points[i];
            ns += sys.q_normal[i] * sys.q_weight[i];
        }
        c = c / (hi - lo) as f64;
        let mut r2: f64 = 0.0;
        for i in lo..hi {
            r2 = r2.max(c.dist2(sys.qtree.points[i]));
        }
        Some(QLeafView {
            center: c,
            radius: r2.sqrt(),
            normal_sum: ns,
            range: lo..hi,
        })
    }
}

/// Fig. 2 `APPROX-INTEGRALS` for one whole quadrature leaf against the
/// atoms tree rooted at `a_node`. Returns op counts (the caller charges
/// them to its clock / task-cost vector). The leaf's SoA image is a
/// zero-copy slice of the persistent q-point arena — no gather.
pub fn approx_integrals(
    sys: &GbSystem,
    q_leaf: NodeId,
    eps_born: f64,
    acc: &mut BornAccumulators,
) -> OpCounts {
    let view = QLeafView::whole(sys, q_leaf);
    let qv = sys.q_arena.view(view.range.clone());
    let mut ops = OpCounts::default();
    let mac = mac_multiplier(eps_born);
    recurse(sys, 0, &view, qv, mac, acc, &mut ops);
    ops
}

/// `APPROX-INTEGRALS` with an explicit separation multiplier instead of
/// the ε-derived default — the MAC-variant ablation's entry point.
pub fn approx_integrals_custom_mac(
    sys: &GbSystem,
    q_leaf: NodeId,
    mac: f64,
    acc: &mut BornAccumulators,
) -> OpCounts {
    let view = QLeafView::whole(sys, q_leaf);
    let qv = sys.q_arena.view(view.range.clone());
    let mut ops = OpCounts::default();
    recurse(sys, 0, &view, qv, mac, acc, &mut ops);
    ops
}

/// `APPROX-INTEGRALS` over the intersection of a quadrature leaf with an
/// index range (q-point-based work division). The clipped range is still
/// contiguous in Morton order, so it too is a plain arena slice.
pub fn approx_integrals_clipped(
    sys: &GbSystem,
    q_leaf: NodeId,
    clip: &Range<usize>,
    eps_born: f64,
    acc: &mut BornAccumulators,
) -> OpCounts {
    let mut ops = OpCounts::default();
    if let Some(view) = QLeafView::clipped(sys, q_leaf, clip) {
        let qv = sys.q_arena.view(view.range.clone());
        let mac = mac_multiplier(eps_born);
        recurse(sys, 0, &view, qv, mac, acc, &mut ops);
    }
    ops
}

/// `(θ+1)/(θ−1)` with `θ = 1+ε` — the practical far-field threshold
/// (see `ApproxParams::born_mac_multiplier` for why not `(1+ε)^{1/6}`).
#[inline]
fn mac_multiplier(eps: f64) -> f64 {
    let theta = 1.0 + eps;
    (theta + 1.0) / (theta - 1.0)
}

fn recurse(
    sys: &GbSystem,
    a_id: NodeId,
    q: &QLeafView,
    qv: QView<'_>,
    mac: f64,
    acc: &mut BornAccumulators,
    ops: &mut OpCounts,
) {
    let a = sys.atoms.node(a_id);
    ops.nodes_visited += 1;
    let d = q.center - a.center;
    let r2 = d.norm2();
    let sep = (a.radius + q.radius) * mac;
    if r2 > sep * sep && r2 > 0.0 {
        // Far enough: one pseudo-particle term for the whole subtree.
        let inv2 = 1.0 / r2;
        acc.node[a_id as usize] += q.normal_sum.dot(d) * inv2 * inv2 * inv2;
        ops.born_far += 1;
        return;
    }
    if a.is_leaf() {
        // Exact leaf-leaf block over the flat SoA view of `q`.
        sys.born_block_terms(qv, a.range(), |ai, t| acc.atom[ai] += t);
        ops.born_near += (a.len() * q.range.len()) as u64;
        return;
    }
    for c in a.children() {
        recurse(sys, c, q, qv, mac, acc, ops);
    }
}

/// Fig. 2 `PUSH-INTEGRALS-TO-ATOMS`: add all ancestors' `s_A` to each
/// atom in `atom_range` (Morton order) and write Born radii there.
/// Subtrees disjoint from the range are pruned (the paper's
/// `[s_id, e_id]`). Returns op counts (node visits).
pub fn push_integrals_to_atoms(
    sys: &GbSystem,
    acc: &BornAccumulators,
    atom_range: Range<usize>,
    math: MathMode,
    out: &mut [f64],
) -> OpCounts {
    // PANIC-OK: precondition assert — a mis-sized output buffer is a caller bug, not a runtime fault.
    assert_eq!(out.len(), sys.n_atoms());
    let mut ops = OpCounts::default();
    push_recurse(sys, 0, 0.0, acc, &atom_range, math, out, &mut ops);
    ops
}

#[allow(clippy::too_many_arguments)]
fn push_recurse(
    sys: &GbSystem,
    id: NodeId,
    inherited: f64,
    acc: &BornAccumulators,
    range: &Range<usize>,
    math: MathMode,
    out: &mut [f64],
    ops: &mut OpCounts,
) {
    let node = sys.atoms.node(id);
    // Prune subtrees with no atoms in the assigned segment.
    if node.end as usize <= range.start || node.begin as usize >= range.end {
        return;
    }
    ops.nodes_visited += 1;
    let s = inherited + acc.node[id as usize];
    if node.is_leaf() {
        let lo = node.range().start.max(range.start);
        let hi = node.range().end.min(range.end);
        // Stage `per-atom integral + inherited ancestor sum` into chunk
        // blocks and finalize through the lane-batched invcbrt path —
        // bit-identical per element to the scalar finalization.
        let mut ib = [0.0f64; CHUNK];
        let mut base = lo;
        while base < hi {
            let m = CHUNK.min(hi - base);
            for (k, &a) in acc.atom[base..base + m].iter().enumerate() {
                ib[k] = a + s;
            }
            born_radii_from_integrals(
                &ib[..m],
                &sys.radius[base..base + m],
                math,
                &mut out[base..base + m],
            );
            base += m;
        }
        return;
    }
    for c in node.children() {
        push_recurse(sys, c, s, acc, range, math, out, ops);
    }
}

/// Full-tree Born radii via the octree approximation (single process):
/// `APPROX-INTEGRALS` over every quadrature leaf + one full push. The
/// building block for the serial and shared-memory drivers.
pub fn born_radii_octree(sys: &GbSystem, eps_born: f64, math: MathMode) -> (Vec<f64>, OpCounts) {
    let mut acc = BornAccumulators::zeros(sys);
    let mut ops = OpCounts::default();
    for &q_leaf in &sys.qtree.leaf_ids {
        ops.add(&approx_integrals(sys, q_leaf, eps_born, &mut acc));
    }
    let mut out = vec![0.0; sys.n_atoms()];
    ops.add(&push_integrals_to_atoms(
        sys,
        &acc,
        0..sys.n_atoms(),
        math,
        &mut out,
    ));
    (out, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::born_radii_naive;
    use crate::params::ApproxParams;
    use polaroct_molecule::synth;
    use polaroct_surface::SurfaceParams;

    fn system(n: usize, seed: u64) -> GbSystem {
        let mol = synth::protein("p", n, seed);
        GbSystem::prepare(&mol, &ApproxParams::default())
    }

    #[test]
    fn octree_born_matches_naive_within_eps() {
        let sys = system(500, 3);
        let (naive, _) = born_radii_naive(&sys, MathMode::Exact);
        let (approx, ops) = born_radii_octree(&sys, 0.9, MathMode::Exact);
        let mut worst = 0.0f64;
        for (n, a) in naive.iter().zip(&approx) {
            worst = worst.max(((n - a) / n).abs());
        }
        // ε bounds the kernel error; radius error is ~ε/3 at worst (cube
        // root); in practice far smaller. 1% is the paper's headline.
        assert!(worst < 0.01, "worst Born radius error {worst}");
        assert!(ops.born_far > 0, "approximation never triggered");
    }

    #[test]
    fn tighter_eps_is_more_accurate() {
        let sys = system(400, 9);
        let (naive, _) = born_radii_naive(&sys, MathMode::Exact);
        let err = |eps: f64| {
            let (b, _) = born_radii_octree(&sys, eps, MathMode::Exact);
            naive
                .iter()
                .zip(&b)
                .map(|(n, a)| ((n - a) / n).abs())
                .fold(0.0f64, f64::max)
        };
        let loose = err(0.9);
        let tight = err(0.05);
        assert!(tight <= loose + 1e-15, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn tighter_eps_costs_more_ops() {
        let sys = system(400, 9);
        let ops = |eps: f64| born_radii_octree(&sys, eps, MathMode::Exact).1;
        let loose = ops(0.9);
        let tight = ops(0.1);
        assert!(
            tight.born_near + tight.born_far >= loose.born_near + loose.born_far,
            "tight ε should do at least as much work"
        );
        assert!(
            tight.born_near > loose.born_near,
            "tight ε does more exact work"
        );
    }

    #[test]
    fn accumulators_flat_roundtrip() {
        let sys = system(100, 1);
        let mut acc = BornAccumulators::zeros(&sys);
        acc.node[0] = 1.5;
        acc.atom[7] = -2.5;
        let flat = acc.to_flat();
        let mut acc2 = BornAccumulators::zeros(&sys);
        acc2.from_flat(&flat);
        assert_eq!(acc2.node[0], 1.5);
        assert_eq!(acc2.atom[7], -2.5);
    }

    #[test]
    fn push_respects_atom_ranges() {
        let sys = system(200, 5);
        let mut acc = BornAccumulators::zeros(&sys);
        for &q in &sys.qtree.leaf_ids {
            approx_integrals(&sys, q, 0.9, &mut acc);
        }
        // Full push vs two half-pushes must agree exactly.
        let mut full = vec![0.0; 200];
        push_integrals_to_atoms(&sys, &acc, 0..200, MathMode::Exact, &mut full);
        let mut halves = vec![0.0; 200];
        push_integrals_to_atoms(&sys, &acc, 0..100, MathMode::Exact, &mut halves);
        push_integrals_to_atoms(&sys, &acc, 100..200, MathMode::Exact, &mut halves);
        assert_eq!(full, halves);
    }

    #[test]
    fn leaf_segments_partition_work_exactly() {
        // Summing accumulators from disjoint leaf segments equals the
        // all-at-once accumulators (the Step-2/Step-3 identity).
        let sys = system(300, 7);
        let mut all = BornAccumulators::zeros(&sys);
        for &q in &sys.qtree.leaf_ids {
            approx_integrals(&sys, q, 0.9, &mut all);
        }
        let ranges = sys.qtree.partition_leaves(3);
        let mut merged = BornAccumulators::zeros(&sys);
        for r in ranges {
            let mut part = BornAccumulators::zeros(&sys);
            for &q in &sys.qtree.leaf_ids[r] {
                approx_integrals(&sys, q, 0.9, &mut part);
            }
            for (m, p) in merged.node.iter_mut().zip(&part.node) {
                *m += p;
            }
            for (m, p) in merged.atom.iter_mut().zip(&part.atom) {
                *m += p;
            }
        }
        for (a, b) in all.node.iter().zip(&merged.node) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in all.atom.iter().zip(&merged.atom) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn clipped_views_cover_the_same_points() {
        // q-point-based division: union of clipped computations over a
        // partition of indices touches every q-point exactly once. The
        // *sum* differs from whole-leaf (different aggregates), but with
        // MAC disabled (ε→0 forces exact) results must match naive.
        let mol = synth::protein("p", 120, 13);
        let params = ApproxParams {
            surface: SurfaceParams {
                icosphere_level: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let sys = GbSystem::prepare(&mol, &params);
        let nq = sys.n_qpoints();
        let mid = nq / 2;
        let mut acc = BornAccumulators::zeros(&sys);
        let mut ops = OpCounts::default();
        for &q in &sys.qtree.leaf_ids {
            ops.add(&approx_integrals_clipped(
                &sys,
                q,
                &(0..mid),
                1e-7,
                &mut acc,
            ));
            ops.add(&approx_integrals_clipped(
                &sys,
                q,
                &(mid..nq),
                1e-7,
                &mut acc,
            ));
        }
        let mut out = vec![0.0; sys.n_atoms()];
        push_integrals_to_atoms(&sys, &acc, 0..sys.n_atoms(), MathMode::Exact, &mut out);
        let (naive, _) = born_radii_naive(&sys, MathMode::Exact);
        for (a, n) in out.iter().zip(&naive) {
            assert!(((a - n) / n).abs() < 1e-6, "{a} vs {n}");
        }
    }

    #[test]
    fn node_division_error_is_p_invariant() {
        // §IV.A: "for node-based work division, the error is constant"
        // — the Born radii must be bit-identical for any P.
        let sys = system(250, 21);
        let born_for = |parts: usize| {
            let ranges = sys.qtree.partition_leaves(parts);
            let mut acc = BornAccumulators::zeros(&sys);
            for r in ranges {
                for &q in &sys.qtree.leaf_ids[r] {
                    approx_integrals(&sys, q, 0.9, &mut acc);
                }
            }
            let mut out = vec![0.0; sys.n_atoms()];
            push_integrals_to_atoms(&sys, &acc, 0..sys.n_atoms(), MathMode::Exact, &mut out);
            out
        };
        let p1 = born_for(1);
        for parts in [2usize, 5, 13] {
            assert_eq!(p1, born_for(parts), "P={parts} changed the result");
        }
    }
}
