//! Error metrics against the naïve exact reference (Fig. 10's
//! "% of error in energy", reported as avg ± std over the suite).

/// Signed percentage difference of `approx` w.r.t. `reference`.
#[inline]
pub fn energy_error_pct(approx: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        return if approx == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (approx - reference) / reference * 100.0
}

/// Mean / standard deviation / extremes of a sample of errors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorStats {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub n: usize,
}

impl ErrorStats {
    /// Compute over a sample; empty samples give zeros.
    pub fn of(samples: &[f64]) -> ErrorStats {
        let n = samples.len();
        if n == 0 {
            return ErrorStats {
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        ErrorStats {
            mean,
            std: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:+.4}% ± {:.4}% (min {:+.4}%, max {:+.4}%, n={})",
            self.mean, self.std, self.min, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_pct_signs() {
        assert_eq!(energy_error_pct(-1.01, -1.0), 1.0000000000000009);
        assert!((energy_error_pct(-0.99, -1.0) + 1.0).abs() < 1e-9);
        assert_eq!(energy_error_pct(0.0, 0.0), 0.0);
        assert_eq!(energy_error_pct(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn stats_of_constant_sample() {
        let s = ErrorStats::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn stats_of_spread_sample() {
        let s = ErrorStats::of(&[-1.0, 1.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 1.0);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn stats_of_empty() {
        let s = ErrorStats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = ErrorStats::of(&[0.5, 1.5]);
        let line = s.to_string();
        assert!(line.contains("n=2"));
        assert!(line.contains('%'));
    }
}
