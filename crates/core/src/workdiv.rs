//! Work-division schemes for the distributed drivers (§IV.A).
//!
//! The paper explores distributing the Born and E_pol phases either by
//! octree **leaf nodes** (each rank gets whole leaves) or by **atoms /
//! q-points** (each rank gets index ranges, which may split leaves). It
//! settles on *node-node* ("performed better than other alternatives"),
//! with two observed properties our tests verify:
//!
//! * node-based division's error is **constant in P** (every rank sees
//!   whole tree nodes, so the approximation is partition-independent);
//! * atom-based division's error **drifts with P** ("different division
//!   boundaries can split the same treenode differently").

/// Which division the distributed drivers use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WorkDivision {
    /// Leaf segments for Step 2 (q-leaves) and Step 6 (atom leaves); atom
    /// index segments for the exact push in Step 4. The paper's default.
    #[default]
    NodeNode,
    /// Index ranges of q-points (Step 2) and atoms (Step 6), splitting
    /// leaves at rank boundaries.
    AtomBased,
}

impl WorkDivision {
    pub fn name(self) -> &'static str {
        match self {
            WorkDivision::NodeNode => "node-node",
            WorkDivision::AtomBased => "atom-based",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_node_node() {
        assert_eq!(WorkDivision::default(), WorkDivision::NodeNode);
    }

    #[test]
    fn names() {
        assert_eq!(WorkDivision::NodeNode.name(), "node-node");
        assert_eq!(WorkDivision::AtomBased.name(), "atom-based");
    }
}
