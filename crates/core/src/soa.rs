//! SoA (structure-of-arrays) leaf kernels, lane-batched, plus the
//! persistent flat leaf arenas that feed them.
//!
//! The octree traversals spend almost all of their near-field time in two
//! inner loops: the exact leaf–leaf block of `APPROX-INTEGRALS` (r⁶ surface
//! integrand) and the exact leaf block of `APPROX-E_pol` (STILL pair
//! kernel). Evaluating them through `Vec3`-of-structs accessors defeats
//! auto-vectorization: the lanes are interleaved in memory and the
//! transcendentals (`exp`, `rsqrt`) are emitted one call at a time.
//!
//! Two layers fix that (DESIGN.md §12):
//!
//! * **Lane-batched kernels** ([`born_term_lanes`], [`still_term_lanes`]):
//!   every element-wise stage (coordinate diffs, `d²`, reciprocals, dot
//!   products, the batched `exp`/`rsqrt` slice ops) runs as an independent
//!   elementwise loop over the lane-covered prefix of a stack chunk buffer
//!   (`W` lanes per block, scalar remainder), with FMA-shaped `a*b + c`
//!   expressions. The stages are expressed as plain counted loops over
//!   full buffers rather than manually unrolled `[f64; W]` blocks on
//!   purpose: LLVM's loop vectorizer turns the former into packed `pd`
//!   instructions, while hand-unrolled fixed-width blocks get scalarized
//!   (measured on the seed host — see `bench/bin/kernel_throughput`).
//!   Crucially the final accumulator fold stays **scalar and in gathered
//!   index order** — the per-element terms are staged into a buffer first,
//!   then summed one at a time. Per element the arithmetic is unchanged
//!   (same operations, same order), and a sequential in-order sum is the
//!   same float reduction regardless of how the terms were produced, so
//!   both kernels are bit-identical to the pre-lane scalar loops at every
//!   `W` (the width only moves the lane/tail boundary).
//!
//! * **Persistent arenas** ([`QArena`], [`AtomArena`]): because the linear
//!   octree stores points in Morton order and every leaf owns a contiguous
//!   `range()`, one full-length flat SoA array per field serves *all*
//!   leaves — a leaf view is plain slicing, no gather. `GbSystem` builds
//!   both arenas once at `prepare` time; `ListEngine`'s positions-only
//!   refresh rewrites the atom-arena coordinates in place on skin reuse.
//!
//! The gathered scratch types ([`QLeafSoa`], [`AtomSoa`]) remain as the
//! copy-in path for callers without an arena (and as an independent
//! reference in tests/benches); they delegate to the same lane kernels.

use crate::system::GbSystem;
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;
use std::ops::Range;

/// Chunk width for the batched STILL kernel. Wide enough to fill 512-bit
/// vector units several times over, small enough to live on the stack.
pub const CHUNK: usize = 64;

/// Default lane width for the batched kernels: 8 × f64 = one 512-bit
/// vector register (two 256-bit ops on AVX2). Bit-identity holds at every
/// width, so this is purely a throughput knob.
pub const LANES: usize = 8;

/// Borrowed flat view of a quadrature-point range: positions plus
/// weight-premultiplied normals (`w_q · n_q`), so the r⁶ integrand needs
/// one dot product and no extra scale per pair.
#[derive(Clone, Copy, Debug)]
pub struct QView<'a> {
    pub x: &'a [f64],
    pub y: &'a [f64],
    pub z: &'a [f64],
    pub wnx: &'a [f64],
    pub wny: &'a [f64],
    pub wnz: &'a [f64],
}

impl QView<'_> {
    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Exact r⁶ surface term of this range at one atom position:
    /// `Σ_q (w_q n_q)·(p_q − p_a) / |p_q − p_a|⁶`, in index order.
    #[inline]
    pub fn born_term(&self, xa: Vec3) -> f64 {
        born_term_lanes::<LANES>(*self, xa)
    }

    /// Block form at the default width: `out[k]` gets [`QView::born_term`]
    /// of this range at atom `k` of the position block. See
    /// [`born_block_lanes`].
    #[inline]
    pub fn born_block(&self, ax: &[f64], ay: &[f64], az: &[f64], out: &mut [f64]) {
        born_block_lanes::<LANES>(*self, ax, ay, az, out)
    }
}

/// Borrowed flat view of an atoms range: positions, charges and Born
/// radii — the operands of the STILL pair kernel.
#[derive(Clone, Copy, Debug)]
pub struct AtomView<'a> {
    pub x: &'a [f64],
    pub y: &'a [f64],
    pub z: &'a [f64],
    pub q: &'a [f64],
    pub r: &'a [f64],
}

impl AtomView<'_> {
    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Exact STILL sum of one source atom `(x_u, R_u)` against this range:
    /// `Σ_v q_v / f_GB(r_uv², R_u, R_v)`, accumulated in index order.
    #[inline]
    pub fn still_term(&self, xu: Vec3, ru: f64, math: MathMode) -> f64 {
        still_term_lanes::<LANES>(*self, xu, ru, math, CHUNK)
    }

    /// Block form at the default width, with `self` as the *source* block
    /// (`self.r` holds the sources' Born radii): `out[k]` gets
    /// [`AtomView::still_term`] of source atom `k` against `v`. See
    /// [`still_block_lanes`].
    #[inline]
    pub fn still_block(
        &self,
        v: AtomView<'_>,
        math: MathMode,
        scratch: &mut StillScratch,
        out: &mut [f64],
    ) {
        still_block_lanes::<LANES>(*self, v, math, CHUNK, scratch, out)
    }
}

/// Lane-batched r⁶ surface kernel over an explicit width `W`.
///
/// Stages diffs, `1/d²` and the weighted dot product through chunk-sized
/// stack buffers as independent elementwise loops over the lane-covered
/// prefix (`m - m % W`; the remainder uses the identical expressions in
/// scalar form), then folds the term buffer with a scalar in-order sum.
/// Per element this is exactly the historical scalar loop
/// (`d² = dx²+dy²+dz²`, `inv2 = 1/d²`, `term = (w·d)·inv2³`), and the
/// fold adds the same terms in the same order — so the result is
/// bit-identical to the scalar kernel for every `W ≥ 1`.
#[inline]
pub fn born_term_lanes<const W: usize>(q: QView<'_>, xa: Vec3) -> f64 {
    let mut out = [0.0f64];
    born_block_lanes::<W>(q, &[xa.x], &[xa.y], &[xa.z], &mut out);
    out[0]
}

/// Block form of the r⁶ surface kernel: the term of the whole q-range at
/// *each* atom of a position block, `out[k]` for atom `k`.
///
/// Per atom this executes exactly the [`born_term_lanes`] sequence (same
/// expressions, same chunking, same scalar in-order fold), so the block
/// form is bit-identical to calling the per-atom kernel in a loop. What
/// it changes is overhead: the chunk staging buffer, the bounds checks
/// and the call prologue are paid once per leaf×leaf block instead of
/// once per atom — which dominates at the 8–32-element leaves the octree
/// produces (measured ~1.6× on the STILL sweep at 200 atoms).
pub fn born_block_lanes<const W: usize>(
    q: QView<'_>,
    ax: &[f64],
    ay: &[f64],
    az: &[f64],
    out: &mut [f64],
) {
    let na = out.len();
    let n = q.len();
    debug_assert!(W >= 1);
    debug_assert!(ax.len() == na && ay.len() == na && az.len() == na);
    debug_assert!(q.y.len() == n && q.z.len() == n);
    debug_assert!(q.wnx.len() == n && q.wny.len() == n && q.wnz.len() == n);
    let mut tb = [0.0f64; CHUNK];
    for k in 0..na {
        let (pax, pay, paz) = (ax[k], ay[k], az[k]);
        let mut s = 0.0;
        let mut base = 0;
        while base < n {
            let m = CHUNK.min(n - base);
            let mb = m - m % W;
            let xs = &q.x[base..base + m];
            let ys = &q.y[base..base + m];
            let zs = &q.z[base..base + m];
            let wx = &q.wnx[base..base + m];
            let wy = &q.wny[base..base + m];
            let wz = &q.wnz[base..base + m];
            // One elementwise loop over the lane-covered prefix: the body
            // has no cross-iteration dependency, so the loop vectorizer
            // packs the whole thing (subs, the d² FMA chain, the divide,
            // the weighted dot) W/vector-width lanes at a time.
            for j in 0..mb {
                let dx = xs[j] - pax;
                let dy = ys[j] - pay;
                let dz = zs[j] - paz;
                let inv2 = 1.0 / (dx * dx + dy * dy + dz * dz);
                tb[j] = (wx[j] * dx + wy[j] * dy + wz[j] * dz) * (inv2 * inv2 * inv2);
            }
            for j in mb..m {
                let dx = xs[j] - pax;
                let dy = ys[j] - pay;
                let dz = zs[j] - paz;
                let inv2 = 1.0 / (dx * dx + dy * dy + dz * dz);
                tb[j] = (wx[j] * dx + wy[j] * dy + wz[j] * dz) * (inv2 * inv2 * inv2);
            }
            // Scalar in-order fold: this is the only stage whose shape
            // affects the reduction, and it is byte-for-byte the
            // historical `s += term`.
            for &t in &tb[..m] {
                s += t;
            }
            base += m;
        }
        out[k] = s;
    }
}

/// Lane-batched STILL kernel over an explicit width `W` and a runtime
/// chunk size (`1..=CHUNK`; the default path uses `CHUNK`).
///
/// Distances and exponent arguments are staged into chunk-sized stack
/// buffers as independent elementwise loops over the lane-covered prefix
/// (`m - m % W`, scalar remainder), then `exp` and `rsqrt` run over the
/// whole chunk via the batched [`MathMode`] slice ops. Per element the
/// arithmetic is exactly `crate::gb::inv_f_gb` (same operations, same
/// order) and the `acc += q·term` fold is scalar in index order, so the
/// result is bit-identical to the scalar loop for every `W` and chunk
/// size — the slice ops themselves are element-wise.
#[inline]
pub fn still_term_lanes<const W: usize>(
    a: AtomView<'_>,
    xu: Vec3,
    ru: f64,
    math: MathMode,
    chunk: usize,
) -> f64 {
    let u = AtomView {
        x: &[xu.x],
        y: &[xu.y],
        z: &[xu.z],
        q: &[0.0],
        r: &[ru],
    };
    let mut out = [0.0f64];
    let mut scratch = StillScratch::default();
    still_block_lanes::<W>(u, a, math, chunk, &mut scratch, &mut out);
    out[0]
}

/// Reusable heap staging for the tiled STILL kernel: grown once to the
/// sweep's largest u×v tile and then reused across every leaf×leaf
/// block, so the hot path pays no per-block allocation or zeroing.
/// Contents are scratch only — every staged element is written before it
/// is read, so a reused (stale) instance gives the same bits as a fresh
/// one.
#[derive(Default, Clone, Debug)]
pub struct StillScratch {
    d2: Vec<f64>,
    rr: Vec<f64>,
    e: Vec<f64>,
}

impl StillScratch {
    /// Grow (never shrink) each staging lane to at least `n` elements.
    fn ensure(&mut self, n: usize) {
        if self.e.len() < n {
            self.d2.resize(n, 0.0);
            self.rr.resize(n, 0.0);
            self.e.resize(n, 0.0);
        }
    }
}

/// Block form of the STILL kernel: `out[k]` gets the full sum of source
/// atom `k` of block `u` (position from `u.x/y/z`, Born radius from
/// `u.r`; `u.q` is the caller's to fold) against the target range `v`.
///
/// Per source atom this executes exactly the [`still_term_lanes`]
/// sequence — same staging expressions, same chunk walk, same fold order
/// (`out[k]` accumulates chunk after chunk, elements in index order) —
/// so the block form is bit-identical to calling the per-atom kernel in
/// a loop over `u`. What changes is batching: each v-chunk is staged for
/// *all* `u` rows into one flat `nu × m` tile, and the batched
/// [`MathMode`] slice ops run once over the whole tile instead of once
/// per source atom. The slice ops are element-wise, so tile-batching
/// them cannot move a bit — but it feeds `exp`/`rsqrt` vectors of
/// `nu·m` elements instead of the 8–32 a single octree leaf offers,
/// which is where small-leaf throughput was going to waste.
pub fn still_block_lanes<const W: usize>(
    u: AtomView<'_>,
    v: AtomView<'_>,
    math: MathMode,
    chunk: usize,
    scratch: &mut StillScratch,
    out: &mut [f64],
) {
    let nu = out.len();
    let n = v.len();
    debug_assert!(W >= 1);
    debug_assert!(u.len() == nu && u.y.len() == nu && u.z.len() == nu && u.r.len() == nu);
    debug_assert!(v.y.len() == n && v.z.len() == n && v.q.len() == n && v.r.len() == n);
    let chunk = chunk.clamp(1, CHUNK);
    scratch.ensure(nu * chunk);
    for o in out.iter_mut() {
        *o = 0.0;
    }
    let mut base = 0;
    while base < n {
        let m = chunk.min(n - base);
        let mb = m - m % W;
        let xs = &v.x[base..base + m];
        let ys = &v.y[base..base + m];
        let zs = &v.z[base..base + m];
        let rs = &v.r[base..base + m];
        let qs = &v.q[base..base + m];
        let d2b = &mut scratch.d2[..nu * m];
        let rrb = &mut scratch.rr[..nu * m];
        let eb = &mut scratch.e[..nu * m];
        // Stage row `k` (source atom k × this v-chunk) at tile offset
        // `k·m`. One elementwise loop per row over the lane-covered
        // prefix (no cross-iteration dependency → fully vectorized:
        // diffs, the d² FMA chain, the scaled divide for the exponent
        // argument).
        for k in 0..nu {
            let (pux, puy, puz) = (u.x[k], u.y[k], u.z[k]);
            let ru = u.r[k];
            let d2r = &mut d2b[k * m..k * m + m];
            let rrr = &mut rrb[k * m..k * m + m];
            let er = &mut eb[k * m..k * m + m];
            for j in 0..mb {
                let dx = xs[j] - pux;
                let dy = ys[j] - puy;
                let dz = zs[j] - puz;
                let d2 = dx * dx + dy * dy + dz * dz;
                let rr = ru * rs[j];
                d2r[j] = d2;
                rrr[j] = rr;
                er[j] = -d2 / (4.0 * rr);
            }
            for j in mb..m {
                let dx = xs[j] - pux;
                let dy = ys[j] - puy;
                let dz = zs[j] - puz;
                let d2 = dx * dx + dy * dy + dz * dz;
                let rr = ru * rs[j];
                d2r[j] = d2;
                rrr[j] = rr;
                er[j] = -d2 / (4.0 * rr);
            }
        }
        // Whole-tile batched transcendentals + f_GB recombination.
        math.exp_slice(eb);
        for i in 0..nu * m {
            eb[i] = d2b[i] + rrb[i] * eb[i];
        }
        math.rsqrt_slice(eb);
        // Per-row scalar fold in index order, carried across chunks via
        // `out[k]` — byte-for-byte the historical `acc += q·term` walk.
        for (k, o) in out.iter_mut().enumerate() {
            let er = &eb[k * m..k * m + m];
            let mut acc = *o;
            for j in 0..m {
                acc += qs[j] * er[j];
            }
            *o = acc;
        }
        base += m;
    }
}

/// Persistent flat arena over *all* quadrature points in Morton order:
/// positions plus weight-premultiplied normals. Built once per `prepare`;
/// any leaf (or clipped sub-range — both are contiguous) is a zero-copy
/// slice via [`QArena::view`]. The q surface never moves between rebuilds,
/// so this arena is immutable for the lifetime of the octree snapshot.
#[derive(Default, Clone, Debug)]
pub struct QArena {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    pub wnx: Vec<f64>,
    pub wny: Vec<f64>,
    pub wnz: Vec<f64>,
}

impl QArena {
    /// Build from Morton-ordered points, normals and weights. The stored
    /// product `w_q · n_q` uses the same expression as the historical
    /// gather path, so arena and gather views are bit-interchangeable.
    pub fn build(points: &[Vec3], normals: &[Vec3], weights: &[f64]) -> QArena {
        let n = points.len();
        assert!(normals.len() == n && weights.len() == n);
        let mut a = QArena {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            wnx: Vec::with_capacity(n),
            wny: Vec::with_capacity(n),
            wnz: Vec::with_capacity(n),
        };
        for ((p, nrm), &w) in points.iter().zip(normals).zip(weights) {
            let wn = *nrm * w;
            a.x.push(p.x);
            a.y.push(p.y);
            a.z.push(p.z);
            a.wnx.push(wn.x);
            a.wny.push(wn.y);
            a.wnz.push(wn.z);
        }
        a
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Zero-copy view of a contiguous Morton range (leaf or clipped leaf).
    pub fn view(&self, range: Range<usize>) -> QView<'_> {
        QView {
            x: &self.x[range.clone()],
            y: &self.y[range.clone()],
            z: &self.z[range.clone()],
            wnx: &self.wnx[range.clone()],
            wny: &self.wny[range.clone()],
            wnz: &self.wnz[range],
        }
    }

    /// r⁶ surface term of a range at one atom position (see
    /// [`QView::born_term`]).
    #[inline]
    pub fn born_term(&self, range: Range<usize>, xa: Vec3) -> f64 {
        self.view(range).born_term(xa)
    }

    /// Resident bytes (capacity-based, so reserved-but-unused space is
    /// counted too).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<f64>()
            * (self.x.capacity()
                + self.y.capacity()
                + self.z.capacity()
                + self.wnx.capacity()
                + self.wny.capacity()
                + self.wnz.capacity())
    }
}

/// Persistent flat arena over *all* atoms in Morton order: positions and
/// charges. Born radii live outside (they change per evaluation), so a
/// view borrows them alongside. Positions are rewritten in place by
/// [`AtomArena::refresh_positions`] on every skin-reuse step.
#[derive(Default, Clone, Debug)]
pub struct AtomArena {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    pub q: Vec<f64>,
}

impl AtomArena {
    /// Build from Morton-ordered points and charges.
    pub fn build(points: &[Vec3], charges: &[f64]) -> AtomArena {
        let n = points.len();
        assert!(charges.len() == n);
        let mut a = AtomArena {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            q: Vec::with_capacity(n),
        };
        for (p, &c) in points.iter().zip(charges) {
            a.x.push(p.x);
            a.y.push(p.y);
            a.z.push(p.z);
            a.q.push(c);
        }
        a
    }

    /// Overwrite the coordinate lanes from Morton-ordered points (the
    /// positions-only refresh path; charges are conformation-independent).
    pub fn refresh_positions(&mut self, points: &[Vec3]) {
        assert!(points.len() == self.x.len());
        for (i, p) in points.iter().enumerate() {
            self.x[i] = p.x;
            self.y[i] = p.y;
            self.z[i] = p.z;
        }
    }

    /// Overwrite the coordinate lanes of a single Morton-ordered atom —
    /// the subset-refresh path of the perturbation engine, which touches
    /// O(k) atoms instead of rewriting all N lanes.
    #[inline]
    pub fn set_position(&mut self, i: usize, p: Vec3) {
        // PANIC-OK: perturbation indices are validated against the atom count on entry.
        assert!(i < self.x.len(), "atom index out of range");
        self.x[i] = p.x; // PANIC-OK: bounds asserted above.
        self.y[i] = p.y; // PANIC-OK: lanes share one length invariant.
        self.z[i] = p.z; // PANIC-OK: lanes share one length invariant.
    }

    /// Overwrite the charge lane of a single Morton-ordered atom (charge
    /// mutation queries).
    #[inline]
    pub fn set_charge(&mut self, i: usize, q: f64) {
        // PANIC-OK: perturbation indices are validated against the atom count on entry.
        assert!(i < self.q.len(), "atom index out of range");
        self.q[i] = q; // PANIC-OK: bounds asserted above.
    }

    /// Position of Morton-ordered atom `i`, reassembled from the flat lanes.
    #[inline]
    pub fn position(&self, i: usize) -> Vec3 {
        Vec3::new(self.x[i], self.y[i], self.z[i])
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Coordinate lanes of a contiguous Morton range, for the position
    /// block of [`born_block_lanes`].
    #[inline]
    pub fn pos_slices(&self, range: Range<usize>) -> (&[f64], &[f64], &[f64]) {
        (
            &self.x[range.clone()],
            &self.y[range.clone()],
            &self.z[range],
        )
    }

    /// Zero-copy view of a contiguous Morton range, with Born radii
    /// borrowed from `born` over the same range.
    pub fn view<'a>(&'a self, born: &'a [f64], range: Range<usize>) -> AtomView<'a> {
        AtomView {
            x: &self.x[range.clone()],
            y: &self.y[range.clone()],
            z: &self.z[range.clone()],
            q: &self.q[range.clone()],
            r: &born[range],
        }
    }

    /// STILL sum of one source atom against a range (see
    /// [`AtomView::still_term`]).
    #[inline]
    pub fn still_term(
        &self,
        born: &[f64],
        range: Range<usize>,
        xu: Vec3,
        ru: f64,
        math: MathMode,
    ) -> f64 {
        self.view(born, range).still_term(xu, ru, math)
    }

    /// Resident bytes (capacity-based).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<f64>()
            * (self.x.capacity() + self.y.capacity() + self.z.capacity() + self.q.capacity())
    }
}

/// Gathered image of one quadrature-leaf range — the copy-in counterpart
/// of a [`QArena`] view, kept for arena-less callers and as an independent
/// reference path in tests/benches.
#[derive(Default, Clone, Debug)]
pub struct QLeafSoa {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    pub wnx: Vec<f64>,
    pub wny: Vec<f64>,
    pub wnz: Vec<f64>,
}

impl QLeafSoa {
    /// Refill from a q-point range. Reuses the allocations, so one scratch
    /// instance serves a whole sweep of leaves.
    pub fn gather(&mut self, sys: &GbSystem, range: Range<usize>) {
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.wnx.clear();
        self.wny.clear();
        self.wnz.clear();
        for i in range {
            let p = sys.qtree.points[i];
            let wn = sys.q_normal[i] * sys.q_weight[i];
            self.x.push(p.x);
            self.y.push(p.y);
            self.z.push(p.z);
            self.wnx.push(wn.x);
            self.wny.push(wn.y);
            self.wnz.push(wn.z);
        }
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Flat view of the gathered data.
    pub fn view(&self) -> QView<'_> {
        QView {
            x: &self.x,
            y: &self.y,
            z: &self.z,
            wnx: &self.wnx,
            wny: &self.wny,
            wnz: &self.wnz,
        }
    }

    /// Exact r⁶ surface term of this leaf at one atom position (see
    /// [`QView::born_term`]).
    #[inline]
    pub fn born_term(&self, xa: Vec3) -> f64 {
        self.view().born_term(xa)
    }
}

/// Gathered image of one atoms range — the copy-in counterpart of an
/// [`AtomArena`] view (Born radii are copied in rather than borrowed).
#[derive(Default, Clone, Debug)]
pub struct AtomSoa {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    pub q: Vec<f64>,
    pub r: Vec<f64>,
}

impl AtomSoa {
    /// Refill from an atom range (Morton order) and its Born radii.
    pub fn gather(&mut self, sys: &GbSystem, born: &[f64], range: Range<usize>) {
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.q.clear();
        self.r.clear();
        for i in range {
            let p = sys.atoms.points[i];
            self.x.push(p.x);
            self.y.push(p.y);
            self.z.push(p.z);
            self.q.push(sys.charge[i]);
            self.r.push(born[i]);
        }
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Flat view of the gathered data.
    pub fn view(&self) -> AtomView<'_> {
        AtomView {
            x: &self.x,
            y: &self.y,
            z: &self.z,
            q: &self.q,
            r: &self.r,
        }
    }

    /// Exact STILL sum of one source atom against this range (see
    /// [`AtomView::still_term`]).
    #[inline]
    pub fn still_term(&self, xu: Vec3, ru: f64, math: MathMode) -> f64 {
        self.view().still_term(xu, ru, math)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gb::inv_f_gb;
    use crate::naive::born_radii_naive;
    use crate::params::ApproxParams;
    use polaroct_molecule::synth;

    fn system(n: usize, seed: u64) -> GbSystem {
        GbSystem::prepare(&synth::protein("p", n, seed), &ApproxParams::default())
    }

    #[test]
    fn still_term_bit_identical_to_scalar_kernel() {
        let sys = system(200, 17);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        for math in [MathMode::Exact, MathMode::Approx] {
            let mut soa = AtomSoa::default();
            // Range longer than one chunk to exercise the chunk loop.
            soa.gather(&sys, &born, 0..sys.n_atoms());
            for ui in [0usize, 57, 199] {
                let xu = sys.atoms.points[ui];
                let ru = born[ui];
                let mut scalar = 0.0;
                for ((&xv, &qv), &rv) in sys.atoms.points.iter().zip(&sys.charge).zip(&born) {
                    let d2 = xu.dist2(xv);
                    scalar += qv * inv_f_gb(d2, ru, rv, math);
                }
                let batched = soa.still_term(xu, ru, math);
                assert_eq!(
                    scalar.to_bits(),
                    batched.to_bits(),
                    "u={ui} {math:?}: {scalar} vs {batched}"
                );
            }
        }
    }

    #[test]
    fn lane_widths_are_bit_identical() {
        // The W=1 instantiation *is* the historical scalar loop; every
        // other width must reproduce it bit-for-bit at awkward lengths
        // (remainders of every size around the lane and chunk boundaries).
        let sys = system(150, 41);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let mut qsoa = QLeafSoa::default();
        let mut asoa = AtomSoa::default();
        for len in [0usize, 1, 3, 7, 8, 9, 15, 63, 64, 65, 130] {
            qsoa.gather(&sys, 0..len.min(sys.n_qpoints()));
            asoa.gather(&sys, &born, 0..len.min(sys.n_atoms()));
            let xa = sys.atoms.points[10];
            let b1 = born_term_lanes::<1>(qsoa.view(), xa);
            for math in [MathMode::Exact, MathMode::Approx] {
                let s1 = still_term_lanes::<1>(asoa.view(), xa, born[10], math, CHUNK);
                macro_rules! check_w {
                    ($w:literal) => {
                        assert_eq!(
                            born_term_lanes::<$w>(qsoa.view(), xa).to_bits(),
                            b1.to_bits(),
                            "born W={} len={len}",
                            $w
                        );
                        assert_eq!(
                            still_term_lanes::<$w>(asoa.view(), xa, born[10], math, CHUNK)
                                .to_bits(),
                            s1.to_bits(),
                            "still W={} len={len} {math:?}",
                            $w
                        );
                    };
                }
                check_w!(2);
                check_w!(4);
                check_w!(5);
                check_w!(8);
                check_w!(16);
            }
        }
    }

    #[test]
    fn arena_views_match_gather_bitwise() {
        let sys = system(180, 29);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        // Arenas as `prepare` builds them.
        let qa = QArena::build(&sys.qtree.points, &sys.q_normal, &sys.q_weight);
        let aa = AtomArena::build(&sys.atoms.points, &sys.charge);
        assert_eq!(qa.len(), sys.n_qpoints());
        assert_eq!(aa.len(), sys.n_atoms());
        let mut qsoa = QLeafSoa::default();
        let mut asoa = AtomSoa::default();
        for range in [0..sys.n_qpoints(), 5..97, 11..11] {
            qsoa.gather(&sys, range.clone());
            let xa = sys.atoms.points[3];
            assert_eq!(
                qa.born_term(range.clone(), xa).to_bits(),
                qsoa.born_term(xa).to_bits(),
                "q range {range:?}"
            );
        }
        for range in [0..sys.n_atoms(), 7..133, 20..20] {
            asoa.gather(&sys, &born, range.clone());
            let xu = sys.atoms.points[42];
            for math in [MathMode::Exact, MathMode::Approx] {
                assert_eq!(
                    aa.still_term(&born, range.clone(), xu, born[42], math)
                        .to_bits(),
                    asoa.still_term(xu, born[42], math).to_bits(),
                    "atom range {range:?} {math:?}"
                );
            }
        }
        for i in [0usize, 17, 179] {
            assert_eq!(aa.position(i), sys.atoms.points[i]);
        }
        assert!(qa.memory_bytes() >= 6 * 8 * qa.len());
        assert!(aa.memory_bytes() >= 4 * 8 * aa.len());
    }

    #[test]
    fn arena_refresh_overwrites_positions_only() {
        let sys = system(60, 7);
        let mut aa = AtomArena::build(&sys.atoms.points, &sys.charge);
        let shifted: Vec<Vec3> = sys
            .atoms
            .points
            .iter()
            .map(|p| *p + Vec3::new(0.25, -0.5, 1.0))
            .collect();
        aa.refresh_positions(&shifted);
        for (i, s) in shifted.iter().enumerate() {
            assert_eq!(aa.position(i), *s);
            assert_eq!(aa.q[i], sys.charge[i]);
        }
    }

    #[test]
    fn arena_subset_setters_touch_only_their_atom() {
        let sys = system(50, 11);
        let mut aa = AtomArena::build(&sys.atoms.points, &sys.charge);
        let before = aa.clone();
        let p = Vec3::new(1.5, -2.0, 0.25);
        aa.set_position(7, p);
        aa.set_charge(13, 42.0);
        for i in 0..aa.len() {
            let want_p = if i == 7 { p } else { before.position(i) };
            let want_q = if i == 13 { 42.0 } else { before.q[i] };
            assert_eq!(aa.position(i), want_p, "atom {i}");
            assert_eq!(aa.q[i], want_q, "atom {i}");
        }
    }

    #[test]
    #[should_panic]
    fn arena_set_position_rejects_out_of_range() {
        let sys = system(10, 1);
        let mut aa = AtomArena::build(&sys.atoms.points, &sys.charge);
        aa.set_position(10, Vec3::ZERO);
    }

    #[test]
    fn born_term_matches_scalar_reference() {
        let sys = system(150, 23);
        let mut soa = QLeafSoa::default();
        let nq = sys.n_qpoints();
        soa.gather(&sys, 0..nq);
        assert_eq!(soa.len(), nq);
        let xa = sys.atoms.points[31];
        let mut scalar = 0.0;
        for qi in 0..nq {
            let dv = sys.qtree.points[qi] - xa;
            let d2 = dv.norm2();
            let inv2 = 1.0 / d2;
            scalar += sys.q_weight[qi] * sys.q_normal[qi].dot(dv) * inv2 * inv2 * inv2;
        }
        let batched = soa.born_term(xa);
        // Weight premultiplication reassociates one product per term —
        // equal to roundoff, not bitwise.
        assert!(
            ((scalar - batched) / scalar).abs() < 1e-12,
            "{scalar} vs {batched}"
        );
    }

    #[test]
    fn gather_reuses_and_empties() {
        let sys = system(64, 3);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let mut soa = AtomSoa::default();
        soa.gather(&sys, &born, 0..10);
        assert_eq!(soa.len(), 10);
        soa.gather(&sys, &born, 5..5);
        assert!(soa.is_empty());
        assert_eq!(soa.still_term(Vec3::ZERO, 1.0, MathMode::Exact), 0.0);
    }
}
