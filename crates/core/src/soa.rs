//! SoA (structure-of-arrays) leaf kernels.
//!
//! The octree traversals spend almost all of their near-field time in two
//! inner loops: the exact leaf–leaf block of `APPROX-INTEGRALS` (r⁶ surface
//! integrand) and the exact leaf block of `APPROX-E_pol` (STILL pair
//! kernel). Evaluating them through `Vec3`-of-structs accessors defeats
//! auto-vectorization: the lanes are interleaved in memory and the
//! transcendentals (`exp`, `rsqrt`) are emitted one call at a time.
//!
//! This module gathers a leaf's ranges once into flat, reusable scratch
//! arrays and evaluates the kernels over fixed-width chunks, with the
//! `exp`/`rsqrt` batched through `MathMode::{exp_slice, rsqrt_slice}` so
//! LLVM sees straight-line loops over independent lanes. Both the serial
//! and the threaded drivers route through these kernels, which also makes
//! their per-leaf partial sums identical by construction (term order is
//! the gathered index order — see `run_oct_threads`' determinism note).

use crate::system::GbSystem;
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;
use std::ops::Range;

/// Chunk width for the batched STILL kernel. Wide enough to fill 512-bit
/// vector units several times over, small enough to live on the stack.
pub const CHUNK: usize = 64;

/// Gathered image of one quadrature-leaf range: positions plus
/// weight-premultiplied normals (`w_q · n_q`), so the r⁶ integrand needs
/// one dot product and no extra scale per pair.
#[derive(Default, Clone, Debug)]
pub struct QLeafSoa {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    pub wnx: Vec<f64>,
    pub wny: Vec<f64>,
    pub wnz: Vec<f64>,
}

impl QLeafSoa {
    /// Refill from a q-point range. Reuses the allocations, so one scratch
    /// instance serves a whole sweep of leaves.
    pub fn gather(&mut self, sys: &GbSystem, range: Range<usize>) {
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.wnx.clear();
        self.wny.clear();
        self.wnz.clear();
        for i in range {
            let p = sys.qtree.points[i];
            let wn = sys.q_normal[i] * sys.q_weight[i];
            self.x.push(p.x);
            self.y.push(p.y);
            self.z.push(p.z);
            self.wnx.push(wn.x);
            self.wny.push(wn.y);
            self.wnz.push(wn.z);
        }
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Exact r⁶ surface term of this leaf at one atom position:
    /// `Σ_q (w_q n_q)·(p_q − p_a) / |p_q − p_a|⁶`, in gathered order.
    ///
    /// Pure mul/add/div — no transcendentals — so a single flat loop
    /// auto-vectorizes as-is.
    #[inline]
    pub fn born_term(&self, xa: Vec3) -> f64 {
        let n = self.len();
        let (xs, ys, zs) = (&self.x[..n], &self.y[..n], &self.z[..n]);
        let (wx, wy, wz) = (&self.wnx[..n], &self.wny[..n], &self.wnz[..n]);
        let mut s = 0.0;
        for i in 0..n {
            let dx = xs[i] - xa.x;
            let dy = ys[i] - xa.y;
            let dz = zs[i] - xa.z;
            let d2 = dx * dx + dy * dy + dz * dz;
            let inv2 = 1.0 / d2;
            s += (wx[i] * dx + wy[i] * dy + wz[i] * dz) * (inv2 * inv2 * inv2);
        }
        s
    }
}

/// Gathered image of one atoms range: positions, charges and Born radii —
/// the operands of the STILL pair kernel.
#[derive(Default, Clone, Debug)]
pub struct AtomSoa {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    pub q: Vec<f64>,
    pub r: Vec<f64>,
}

impl AtomSoa {
    /// Refill from an atom range (Morton order) and its Born radii.
    pub fn gather(&mut self, sys: &GbSystem, born: &[f64], range: Range<usize>) {
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.q.clear();
        self.r.clear();
        for i in range {
            let p = sys.atoms.points[i];
            self.x.push(p.x);
            self.y.push(p.y);
            self.z.push(p.z);
            self.q.push(sys.charge[i]);
            self.r.push(born[i]);
        }
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Exact STILL sum of one source atom `(x_u, R_u)` against this range:
    /// `Σ_v q_v / f_GB(r_uv², R_u, R_v)`, accumulated in gathered order.
    ///
    /// Works chunk-by-chunk: distances and exponent arguments are staged
    /// into stack buffers, then `exp` and `rsqrt` run over the whole chunk
    /// via the batched [`MathMode`] slice ops. Per element the arithmetic
    /// is exactly `crate::gb::inv_f_gb` (same operations, same order), so
    /// the result is bit-identical to the scalar loop.
    #[inline]
    pub fn still_term(&self, xu: Vec3, ru: f64, math: MathMode) -> f64 {
        let n = self.len();
        let mut acc = 0.0;
        let mut d2b = [0.0f64; CHUNK];
        let mut rrb = [0.0f64; CHUNK];
        let mut eb = [0.0f64; CHUNK];
        let mut base = 0;
        while base < n {
            let m = CHUNK.min(n - base);
            let xs = &self.x[base..base + m];
            let ys = &self.y[base..base + m];
            let zs = &self.z[base..base + m];
            let rs = &self.r[base..base + m];
            let qs = &self.q[base..base + m];
            for i in 0..m {
                let dx = xs[i] - xu.x;
                let dy = ys[i] - xu.y;
                let dz = zs[i] - xu.z;
                let d2 = dx * dx + dy * dy + dz * dz;
                let rr = ru * rs[i];
                d2b[i] = d2;
                rrb[i] = rr;
                eb[i] = -d2 / (4.0 * rr);
            }
            math.exp_slice(&mut eb[..m]);
            for i in 0..m {
                eb[i] = d2b[i] + rrb[i] * eb[i];
            }
            math.rsqrt_slice(&mut eb[..m]);
            for i in 0..m {
                acc += qs[i] * eb[i];
            }
            base += m;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gb::inv_f_gb;
    use crate::naive::born_radii_naive;
    use crate::params::ApproxParams;
    use polaroct_molecule::synth;

    fn system(n: usize, seed: u64) -> GbSystem {
        GbSystem::prepare(&synth::protein("p", n, seed), &ApproxParams::default())
    }

    #[test]
    fn still_term_bit_identical_to_scalar_kernel() {
        let sys = system(200, 17);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        for math in [MathMode::Exact, MathMode::Approx] {
            let mut soa = AtomSoa::default();
            // Range longer than one chunk to exercise the chunk loop.
            soa.gather(&sys, &born, 0..sys.n_atoms());
            for ui in [0usize, 57, 199] {
                let xu = sys.atoms.points[ui];
                let ru = born[ui];
                let mut scalar = 0.0;
                for ((&xv, &qv), &rv) in sys.atoms.points.iter().zip(&sys.charge).zip(&born) {
                    let d2 = xu.dist2(xv);
                    scalar += qv * inv_f_gb(d2, ru, rv, math);
                }
                let batched = soa.still_term(xu, ru, math);
                assert_eq!(
                    scalar.to_bits(),
                    batched.to_bits(),
                    "u={ui} {math:?}: {scalar} vs {batched}"
                );
            }
        }
    }

    #[test]
    fn born_term_matches_scalar_reference() {
        let sys = system(150, 23);
        let mut soa = QLeafSoa::default();
        let nq = sys.n_qpoints();
        soa.gather(&sys, 0..nq);
        assert_eq!(soa.len(), nq);
        let xa = sys.atoms.points[31];
        let mut scalar = 0.0;
        for qi in 0..nq {
            let dv = sys.qtree.points[qi] - xa;
            let d2 = dv.norm2();
            let inv2 = 1.0 / d2;
            scalar += sys.q_weight[qi] * sys.q_normal[qi].dot(dv) * inv2 * inv2 * inv2;
        }
        let batched = soa.born_term(xa);
        // Weight premultiplication reassociates one product per term —
        // equal to roundoff, not bitwise.
        assert!(
            ((scalar - batched) / scalar).abs() < 1e-12,
            "{scalar} vs {batched}"
        );
    }

    #[test]
    fn gather_reuses_and_empties() {
        let sys = system(64, 3);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let mut soa = AtomSoa::default();
        soa.gather(&sys, &born, 0..10);
        assert_eq!(soa.len(), 10);
        soa.gather(&sys, &born, 5..5);
        assert!(soa.is_empty());
        assert_eq!(soa.still_term(Vec3::ZERO, 1.0, MathMode::Exact), 0.0);
    }
}
