//! Minimal molecular-dynamics loop over the GB polarization forces.
//!
//! The paper situates its algorithm inside "molecular dynamics simulations
//! for determining the molecular conformation with minimal total free
//! energy" (§I). This module closes that loop at demonstration scale: a
//! velocity-Verlet integrator driven by [`crate::forces`] (plus an
//! optional harmonic restraint so a bare polarization surface — which is
//! not a full force field — stays bounded). It is the consumer that makes
//! the force API's contract concrete and testable (energy drift, time
//! reversibility).
//!
//! Energies and Born radii come from a persistent
//! [`crate::lists::ListEngine`]: octrees and interaction lists are built
//! with node bounds inflated by [`MdParams::skin`] and reused across
//! steps, rebuilt only when the tracked max displacement from the build
//! geometry exceeds `skin / 2` (the Verlet-list protocol, DESIGN.md §11).

use crate::forces::forces_cutoff;
use crate::lists::ListEngine;
use crate::params::ApproxParams;
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;

/// Integrator settings.
#[derive(Clone, Copy, Debug)]
pub struct MdParams {
    /// Time step (fs). GB-only surfaces are smooth; 1–2 fs is safe.
    pub dt_fs: f64,
    /// Pair cutoff for the force kernel (Å).
    pub cutoff: f64,
    /// Steps between Born-radius refreshes. Retained for configuration
    /// compatibility; the list engine now refreshes radii every step
    /// (cheap: a flat kernel sweep over prebuilt lists) and rebuilds the
    /// octrees/lists only on skin violation, superseding this schedule.
    pub born_refresh_every: usize,
    /// Harmonic restraint to each atom's start position
    /// (kcal/mol/Å²; 0 disables).
    pub restraint_k: f64,
    /// Verlet skin (Å): node bounds are inflated by this margin at build
    /// time, so octrees and interaction lists stay valid until any atom
    /// drifts more than `skin / 2` from the build geometry. `0.0`
    /// rebuilds whenever the geometry changes at all.
    pub skin: f64,
}

impl Default for MdParams {
    fn default() -> Self {
        MdParams {
            dt_fs: 1.0,
            cutoff: 20.0,
            born_refresh_every: 5,
            restraint_k: 1.0,
            skin: 0.5,
        }
    }
}

/// Trajectory statistics returned by [`run_md`].
#[derive(Clone, Debug)]
pub struct MdReport {
    /// Polarization energy after each step (kcal/mol).
    pub energies: Vec<f64>,
    /// Max displacement of any atom from its start (Å).
    pub max_displacement: f64,
    /// Final positions.
    pub positions: Vec<Vec3>,
    /// Steps whose energy was served by previously built interaction
    /// lists (Verlet-skin hit count).
    pub lists_reused: u64,
    /// Octree + list rebuilds over the trajectory (includes the initial
    /// build before step 0).
    pub lists_rebuilt: u64,
    /// Total kernel ops across all energy evaluations.
    pub ops: OpCounts,
    /// Bytes held by the list engine at the end of the trajectory
    /// (prepared system incl. persistent leaf arenas, plus both
    /// interaction lists).
    pub memory_bytes: usize,
}

/// Run `steps` of velocity Verlet on `mol` (masses from the element
/// table). Returns per-step polarization energies and the final geometry.
pub fn run_md(mol: &Molecule, approx: &ApproxParams, md: &MdParams, steps: usize) -> MdReport {
    // Unit bookkeeping: x in Å, t in fs, m in Da, E in kcal/mol.
    // F [kcal/mol/Å] → a [Å/fs²] via the standard conversion 4.184e-4.
    const ACC: f64 = 4.184e-4;
    let n = mol.len();
    let masses: Vec<f64> = mol.elements.iter().map(|e| e.mass()).collect();
    let start = mol.positions.clone();
    let mut pos = mol.positions.clone();
    let mut vel = vec![Vec3::ZERO; n];
    let mut energies = Vec::with_capacity(steps);
    let mut ops = OpCounts::default();

    let mut engine = ListEngine::new(mol, approx, md.skin);
    let mut forces = force_field(engine.system(), engine.born(), &pos, &start, approx, md);

    for _ in 0..steps {
        let dt = md.dt_fs;
        // Kick-drift.
        for i in 0..n {
            vel[i] += forces[i] * (0.5 * dt * ACC / masses[i]);
            pos[i] += vel[i] * dt;
        }
        // Refresh radii + energy through the list engine: lists are
        // reused while max displacement stays within skin/2, rebuilt
        // (with the octrees) the moment it does not.
        let eval = engine.evaluate(&pos);
        ops.add(&eval.ops);
        forces = force_field(engine.system(), engine.born(), &pos, &start, approx, md);
        // Second kick.
        for i in 0..n {
            vel[i] += forces[i] * (0.5 * dt * ACC / masses[i]);
        }
        energies.push(eval.energy_kcal);
    }

    let max_displacement = pos
        .iter()
        .zip(&start)
        .map(|(p, s)| p.dist(*s))
        .fold(0.0f64, f64::max);
    MdReport {
        energies,
        max_displacement,
        positions: pos,
        lists_reused: engine.lists_reused,
        lists_rebuilt: engine.lists_rebuilt,
        ops,
        memory_bytes: engine.memory_bytes(),
    }
}

/// GB forces at `pos` (approximating with the radii/octree snapshot from
/// the last refresh) plus the harmonic restraint.
fn force_field(
    sys: &GbSystem,
    born: &[f64],
    pos: &[Vec3],
    start: &[Vec3],
    approx: &ApproxParams,
    md: &MdParams,
) -> Vec<Vec3> {
    // Forces are computed on the snapshot geometry inside `sys` (the list
    // engine refreshes its Morton-ordered positions every evaluate, so
    // only node bounds/aggregates lag by at most skin/2); the restraint
    // follows the live positions.
    let (sorted, _) = forces_cutoff(sys, born, approx.eps_solvent, md.cutoff, approx.math);
    let mut f = crate::forces::forces_original_order(sys, &sorted);
    if md.restraint_k > 0.0 {
        for i in 0..pos.len() {
            f[i] += (start[i] - pos[i]) * md.restraint_k;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_molecule::synth;

    #[test]
    fn md_runs_and_stays_bounded() {
        let mol = synth::ligand("md", 30, 5);
        let report = run_md(&mol, &ApproxParams::default(), &MdParams::default(), 10);
        assert_eq!(report.energies.len(), 10);
        for e in &report.energies {
            assert!(e.is_finite());
        }
        // Restrained demo dynamics must not explode.
        assert!(
            report.max_displacement < 5.0,
            "atoms flew {} Å in 10 fs",
            report.max_displacement
        );
        // Every step either reused or rebuilt, plus the initial build.
        assert_eq!(report.lists_reused + report.lists_rebuilt, 11);
        assert!(report.ops.total() > 0);
        assert!(report.memory_bytes > 0);
    }

    #[test]
    fn zero_steps_is_empty_report() {
        let mol = synth::ligand("md", 10, 1);
        let report = run_md(&mol, &ApproxParams::default(), &MdParams::default(), 0);
        assert!(report.energies.is_empty());
        assert_eq!(report.max_displacement, 0.0);
        assert_eq!(report.positions, mol.positions);
        assert_eq!(report.lists_reused, 0);
        assert_eq!(report.lists_rebuilt, 1);
    }

    #[test]
    fn stronger_restraint_moves_less() {
        let mol = synth::ligand("md", 25, 9);
        let loose = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                restraint_k: 0.1,
                ..Default::default()
            },
            15,
        );
        let tight = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                restraint_k: 20.0,
                ..Default::default()
            },
            15,
        );
        assert!(
            tight.max_displacement <= loose.max_displacement + 1e-9,
            "tight {} vs loose {}",
            tight.max_displacement,
            loose.max_displacement
        );
    }

    #[test]
    fn skin_reuses_lists_on_most_steps() {
        // Restrained ligand dynamics moves ≪ 0.25 Å/step, so a 0.5 Å
        // skin must serve the majority of steps from prebuilt lists.
        let mol = synth::ligand("md", 30, 5);
        let report = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                skin: 0.5,
                ..Default::default()
            },
            12,
        );
        assert!(
            report.lists_reused > report.lists_rebuilt,
            "reused {} vs rebuilt {}",
            report.lists_reused,
            report.lists_rebuilt
        );
    }

    #[test]
    fn zero_skin_rebuilds_every_step() {
        let mol = synth::ligand("md", 20, 3);
        let steps = 6;
        let report = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                skin: 0.0,
                ..Default::default()
            },
            steps,
        );
        // Atoms move every step (forces are nonzero), so skin 0 rebuilds
        // on every evaluate plus the initial build.
        assert_eq!(report.lists_rebuilt, steps as u64 + 1);
        assert_eq!(report.lists_reused, 0);
    }
}
