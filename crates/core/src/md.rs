//! Minimal molecular-dynamics loop over the GB polarization forces.
//!
//! The paper situates its algorithm inside "molecular dynamics simulations
//! for determining the molecular conformation with minimal total free
//! energy" (§I). This module closes that loop at demonstration scale: a
//! velocity-Verlet integrator driven by [`crate::forces`] (plus an
//! optional harmonic restraint so a bare polarization surface — which is
//! not a full force field — stays bounded). It is the consumer that makes
//! the force API's contract concrete and testable (energy drift, time
//! reversibility).
//!
//! Energies and Born radii come from a persistent
//! [`crate::lists::ListEngine`]: octrees and interaction lists are built
//! with node bounds inflated by [`MdParams::skin`] and reused across
//! steps, rebuilt only when the tracked max displacement from the build
//! geometry exceeds `skin / 2` (the Verlet-list protocol, DESIGN.md §11).

use crate::delta::{DeltaEngine, Perturbation};
use crate::forces::forces_cutoff;
use crate::lists::ListEngine;
use crate::params::ApproxParams;
use crate::system::GbSystem;
use polaroct_cluster::simtime::OpCounts;
use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;

/// Integrator settings.
#[derive(Clone, Copy, Debug)]
pub struct MdParams {
    /// Time step (fs). GB-only surfaces are smooth; 1–2 fs is safe.
    pub dt_fs: f64,
    /// Pair cutoff for the force kernel (Å).
    pub cutoff: f64,
    /// Steps between Born-radius refreshes. Retained for configuration
    /// compatibility; the list engine now refreshes radii every step
    /// (cheap: a flat kernel sweep over prebuilt lists) and rebuilds the
    /// octrees/lists only on skin violation, superseding this schedule.
    pub born_refresh_every: usize,
    /// Harmonic restraint to each atom's start position
    /// (kcal/mol/Å²; 0 disables).
    pub restraint_k: f64,
    /// Verlet skin (Å): node bounds are inflated by this margin at build
    /// time, so octrees and interaction lists stay valid until any atom
    /// drifts more than `skin / 2` from the build geometry. `0.0`
    /// rebuilds whenever the geometry changes at all.
    pub skin: f64,
}

impl Default for MdParams {
    fn default() -> Self {
        MdParams {
            dt_fs: 1.0,
            cutoff: 20.0,
            born_refresh_every: 5,
            restraint_k: 1.0,
            skin: 0.5,
        }
    }
}

/// Trajectory statistics returned by [`run_md`].
#[derive(Clone, Debug)]
pub struct MdReport {
    /// Polarization energy after each step (kcal/mol).
    pub energies: Vec<f64>,
    /// Max displacement of any atom from its start (Å).
    pub max_displacement: f64,
    /// Final positions.
    pub positions: Vec<Vec3>,
    /// Steps whose energy was served by previously built interaction
    /// lists (Verlet-skin hit count).
    pub lists_reused: u64,
    /// Octree + list rebuilds over the trajectory (includes the initial
    /// build before step 0).
    pub lists_rebuilt: u64,
    /// Total kernel ops across all energy evaluations.
    pub ops: OpCounts,
    /// Bytes held by the list engine at the end of the trajectory
    /// (prepared system incl. persistent leaf arenas, plus both
    /// interaction lists).
    pub memory_bytes: usize,
}

/// Run `steps` of velocity Verlet on `mol` (masses from the element
/// table). Returns per-step polarization energies and the final geometry.
pub fn run_md(mol: &Molecule, approx: &ApproxParams, md: &MdParams, steps: usize) -> MdReport {
    // Unit bookkeeping: x in Å, t in fs, m in Da, E in kcal/mol.
    // F [kcal/mol/Å] → a [Å/fs²] via the standard conversion 4.184e-4.
    const ACC: f64 = 4.184e-4;
    let n = mol.len();
    let masses: Vec<f64> = mol.elements.iter().map(|e| e.mass()).collect();
    let start = mol.positions.clone();
    let mut pos = mol.positions.clone();
    let mut vel = vec![Vec3::ZERO; n];
    let mut energies = Vec::with_capacity(steps);
    let mut ops = OpCounts::default();

    let mut engine = ListEngine::new(mol, approx, md.skin);
    let mut forces = force_field(engine.system(), engine.born(), &pos, &start, approx, md);

    for _ in 0..steps {
        let dt = md.dt_fs;
        // Kick-drift.
        for i in 0..n {
            vel[i] += forces[i] * (0.5 * dt * ACC / masses[i]);
            pos[i] += vel[i] * dt;
        }
        // Refresh radii + energy through the list engine: lists are
        // reused while max displacement stays within skin/2, rebuilt
        // (with the octrees) the moment it does not.
        let eval = engine.evaluate(&pos);
        ops.add(&eval.ops);
        forces = force_field(engine.system(), engine.born(), &pos, &start, approx, md);
        // Second kick.
        for i in 0..n {
            vel[i] += forces[i] * (0.5 * dt * ACC / masses[i]);
        }
        energies.push(eval.energy_kcal);
    }

    let max_displacement = pos
        .iter()
        .zip(&start)
        .map(|(p, s)| p.dist(*s))
        .fold(0.0f64, f64::max);
    MdReport {
        energies,
        max_displacement,
        positions: pos,
        lists_reused: engine.lists_reused,
        lists_rebuilt: engine.lists_rebuilt,
        ops,
        memory_bytes: engine.memory_bytes(),
    }
}

/// Settings for [`run_perturbation_scan`].
#[derive(Clone, Copy, Debug)]
pub struct PerturbationScanParams {
    /// Verlet skin handed to the underlying [`DeltaEngine`] (Å).
    pub skin: f64,
    /// Atoms moved per query (`k`).
    pub moves_per_query: usize,
    /// Number of perturbation queries.
    pub queries: usize,
    /// Per-component displacement amplitude (Å). Keep below `skin / 2`
    /// to stay on the incremental path; larger amplitudes exercise the
    /// rebuild fallback.
    pub amplitude: f64,
    /// Deterministic stream seed for atom choice and displacements.
    pub seed: u64,
    /// Revert each query after recording its energy (mutation-screening
    /// mode: every query is scored against the same base state).
    pub revert_each: bool,
    /// Engine knobs (granularity / cache cap) — the energies are bitwise
    /// independent of them, only the accounting and speed change.
    pub delta: crate::delta::DeltaParams,
}

impl Default for PerturbationScanParams {
    fn default() -> Self {
        PerturbationScanParams {
            skin: 0.8,
            moves_per_query: 4,
            queries: 16,
            amplitude: 0.15,
            seed: 1,
            revert_each: true,
            delta: crate::delta::DeltaParams::default(),
        }
    }
}

/// Scan statistics returned by [`run_perturbation_scan`] — the delta
/// analog of [`MdReport`]'s list-reuse accounting.
#[derive(Clone, Debug)]
pub struct PerturbationScanReport {
    /// Polarization energy after each query (kcal/mol).
    pub energies: Vec<f64>,
    /// Chunks re-executed across all queries.
    pub chunks_redone: u64,
    /// Chunks served from the Phase-A output cache across all queries.
    pub chunks_cached: u64,
    /// Chunks per full evaluation (both lists).
    pub total_chunks: usize,
    /// Queries served incrementally vs via scaffold rebuild.
    pub queries_incremental: u64,
    pub queries_rebuilt: u64,
    /// List entries re-executed / served from cache across all queries
    /// (the entry-granular accounting; under [`Granularity::Chunk`]
    /// every entry of a dirty chunk counts as redone).
    ///
    /// [`Granularity::Chunk`]: crate::delta::Granularity::Chunk
    pub entries_redone: u64,
    pub entries_cached: u64,
    /// Entries per full evaluation (both lists).
    pub total_entries: usize,
    /// Wall time spent inside `apply_perturbation` (excludes setup and
    /// reverts).
    pub delta_wall: std::time::Duration,
    /// Reverts performed (= queries when `revert_each`).
    pub reverted: u64,
    /// Bytes held by the delta engine at the end of the scan.
    pub memory_bytes: usize,
}

/// Drive a [`DeltaEngine`] through a deterministic random perturbation
/// scan: each query moves `k` atoms by up to `amplitude` per component,
/// re-evaluates incrementally (bit-identical to a full run by the
/// engine's contract) and optionally reverts. `pool` parallelizes the
/// dirty-chunk re-execution; the energies are bitwise independent of it.
pub fn run_perturbation_scan(
    mol: &Molecule,
    approx: &ApproxParams,
    scan: &PerturbationScanParams,
    pool: Option<&polaroct_sched::WorkStealingPool>,
) -> PerturbationScanReport {
    // splitmix64: deterministic, dependency-free stream.
    let mut state = scan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    // Uniform in [-1, 1).
    let mut unit = move || (next() >> 11) as f64 / (1u64 << 52) as f64 - 1.0;

    let n = mol.len();
    let mut engine = DeltaEngine::with_params(mol, approx, scan.skin, scan.delta);
    let mut energies = Vec::with_capacity(scan.queries);
    let (mut redone, mut cached, mut reverted) = (0u64, 0u64, 0u64);
    let (mut e_redone, mut e_cached) = (0u64, 0u64);
    let mut delta_wall = std::time::Duration::ZERO;

    for _ in 0..scan.queries {
        let mut p = Perturbation::default();
        for _ in 0..scan.moves_per_query.min(n) {
            let atom = (unit() * 0.5 + 0.5) * n as f64;
            let atom = (atom as usize).min(n - 1);
            let d = Vec3::new(
                unit() * scan.amplitude,
                unit() * scan.amplitude,
                unit() * scan.amplitude,
            );
            // PANIC-OK: atom < n by the clamp above.
            p = p.move_atom(atom, engine.positions()[atom] + d);
        }
        let t0 = std::time::Instant::now();
        let eval = engine.apply_perturbation(&p, pool);
        delta_wall += t0.elapsed();
        redone += eval.chunks_redone as u64;
        cached += eval.chunks_cached as u64;
        e_redone += eval.entries_redone as u64;
        e_cached += eval.entries_cached as u64;
        energies.push(eval.energy_kcal);
        if scan.revert_each && engine.revert(pool) {
            reverted += 1;
        }
    }

    PerturbationScanReport {
        energies,
        chunks_redone: redone,
        chunks_cached: cached,
        total_chunks: engine.total_chunks(),
        queries_incremental: engine.queries_incremental,
        queries_rebuilt: engine.queries_rebuilt,
        entries_redone: e_redone,
        entries_cached: e_cached,
        total_entries: engine.total_entries(),
        delta_wall,
        reverted,
        memory_bytes: engine.memory_bytes(),
    }
}

/// Settings for [`run_perturbation_batch`].
#[derive(Clone, Copy, Debug)]
pub struct BatchScanParams {
    /// Verlet skin handed to the underlying [`DeltaEngine`] (Å).
    pub skin: f64,
    /// Atoms moved per query (`k`).
    pub moves_per_query: usize,
    /// Charges mutated per query.
    pub charges_per_query: usize,
    /// Independent queries in the batch (`N`).
    pub batch: usize,
    /// Per-component displacement amplitude (Å); keep below `skin / 2`
    /// so every query stays on the overlay path.
    pub amplitude: f64,
    /// Deterministic stream seed for atom choice and displacements.
    pub seed: u64,
    /// Engine knobs (granularity / cache cap).
    pub delta: crate::delta::DeltaParams,
}

impl Default for BatchScanParams {
    fn default() -> Self {
        BatchScanParams {
            skin: 0.8,
            moves_per_query: 4,
            charges_per_query: 1,
            batch: 16,
            amplitude: 0.15,
            seed: 1,
            delta: crate::delta::DeltaParams::default(),
        }
    }
}

/// Statistics from one [`run_perturbation_batch`] call.
#[derive(Clone, Debug)]
pub struct BatchScanReport {
    /// Polarization energy of each query (kcal/mol), batch order.
    pub energies: Vec<f64>,
    /// Chunk accounting summed over the batch.
    pub chunks_redone: u64,
    pub chunks_cached: u64,
    pub total_chunks: usize,
    /// Entry accounting summed over the batch (per-query values are in
    /// `per_query_entries_redone`).
    pub entries_redone: u64,
    pub entries_cached: u64,
    pub total_entries: usize,
    /// Entries re-executed by each query, batch order.
    pub per_query_entries_redone: Vec<usize>,
    /// Queries the engine served through the batch overlay path.
    pub queries_batched: u64,
    /// Wall time of the single `apply_batch` call.
    pub batch_wall: std::time::Duration,
    /// Bytes held by the delta engine after the batch.
    pub memory_bytes: usize,
}

/// Drive [`DeltaEngine::apply_batch`]: build `N` deterministic mixed
/// move/charge queries against one prepared base state and score them
/// all in one batch call (no apply→revert churn). Each energy is
/// bit-identical to what a sequential `apply_perturbation` + `revert`
/// loop — or a fresh full run per query — would produce, at any pool
/// width; the engine ends bit-identical to its base state.
pub fn run_perturbation_batch(
    mol: &Molecule,
    approx: &ApproxParams,
    scan: &BatchScanParams,
    pool: Option<&polaroct_sched::WorkStealingPool>,
) -> BatchScanReport {
    // Same splitmix64 stream discipline as `run_perturbation_scan`.
    let mut state = scan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut unit = move || (next() >> 11) as f64 / (1u64 << 52) as f64 - 1.0;

    let n = mol.len();
    let mut engine = DeltaEngine::with_params(mol, approx, scan.skin, scan.delta);
    let queries: Vec<Perturbation> = (0..scan.batch)
        .map(|_| {
            let mut p = Perturbation::default();
            for _ in 0..scan.moves_per_query.min(n) {
                let atom = (unit() * 0.5 + 0.5) * n as f64;
                let atom = (atom as usize).min(n - 1);
                let d = Vec3::new(
                    unit() * scan.amplitude,
                    unit() * scan.amplitude,
                    unit() * scan.amplitude,
                );
                // PANIC-OK: atom < n by the clamp above.
                p = p.move_atom(atom, engine.positions()[atom] + d);
            }
            for _ in 0..scan.charges_per_query.min(n) {
                let atom = (unit() * 0.5 + 0.5) * n as f64;
                let atom = (atom as usize).min(n - 1);
                // PANIC-OK: atom < n by the clamp above.
                p = p.set_charge(atom, engine.charges()[atom] + unit() * 0.5);
            }
            p
        })
        .collect();

    let t0 = std::time::Instant::now();
    let evals = engine.apply_batch(&queries, pool);
    let batch_wall = t0.elapsed();

    BatchScanReport {
        energies: evals.iter().map(|e| e.energy_kcal).collect(),
        chunks_redone: evals.iter().map(|e| e.chunks_redone as u64).sum(),
        chunks_cached: evals.iter().map(|e| e.chunks_cached as u64).sum(),
        total_chunks: engine.total_chunks(),
        entries_redone: evals.iter().map(|e| e.entries_redone as u64).sum(),
        entries_cached: evals.iter().map(|e| e.entries_cached as u64).sum(),
        total_entries: engine.total_entries(),
        per_query_entries_redone: evals.iter().map(|e| e.entries_redone).collect(),
        queries_batched: engine.queries_batched,
        batch_wall,
        memory_bytes: engine.memory_bytes(),
    }
}

/// GB forces at `pos` (approximating with the radii/octree snapshot from
/// the last refresh) plus the harmonic restraint.
fn force_field(
    sys: &GbSystem,
    born: &[f64],
    pos: &[Vec3],
    start: &[Vec3],
    approx: &ApproxParams,
    md: &MdParams,
) -> Vec<Vec3> {
    // Forces are computed on the snapshot geometry inside `sys` (the list
    // engine refreshes its Morton-ordered positions every evaluate, so
    // only node bounds/aggregates lag by at most skin/2); the restraint
    // follows the live positions.
    let (sorted, _) = forces_cutoff(sys, born, approx.eps_solvent, md.cutoff, approx.math);
    let mut f = crate::forces::forces_original_order(sys, &sorted);
    if md.restraint_k > 0.0 {
        for i in 0..pos.len() {
            f[i] += (start[i] - pos[i]) * md.restraint_k;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_molecule::synth;

    #[test]
    fn md_runs_and_stays_bounded() {
        let mol = synth::ligand("md", 30, 5);
        let report = run_md(&mol, &ApproxParams::default(), &MdParams::default(), 10);
        assert_eq!(report.energies.len(), 10);
        for e in &report.energies {
            assert!(e.is_finite());
        }
        // Restrained demo dynamics must not explode.
        assert!(
            report.max_displacement < 5.0,
            "atoms flew {} Å in 10 fs",
            report.max_displacement
        );
        // Every step either reused or rebuilt, plus the initial build.
        assert_eq!(report.lists_reused + report.lists_rebuilt, 11);
        assert!(report.ops.total() > 0);
        assert!(report.memory_bytes > 0);
    }

    #[test]
    fn zero_steps_is_empty_report() {
        let mol = synth::ligand("md", 10, 1);
        let report = run_md(&mol, &ApproxParams::default(), &MdParams::default(), 0);
        assert!(report.energies.is_empty());
        assert_eq!(report.max_displacement, 0.0);
        assert_eq!(report.positions, mol.positions);
        assert_eq!(report.lists_reused, 0);
        assert_eq!(report.lists_rebuilt, 1);
    }

    #[test]
    fn stronger_restraint_moves_less() {
        let mol = synth::ligand("md", 25, 9);
        let loose = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                restraint_k: 0.1,
                ..Default::default()
            },
            15,
        );
        let tight = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                restraint_k: 20.0,
                ..Default::default()
            },
            15,
        );
        assert!(
            tight.max_displacement <= loose.max_displacement + 1e-9,
            "tight {} vs loose {}",
            tight.max_displacement,
            loose.max_displacement
        );
    }

    #[test]
    fn skin_reuses_lists_on_most_steps() {
        // Restrained ligand dynamics moves ≪ 0.25 Å/step, so a 0.5 Å
        // skin must serve the majority of steps from prebuilt lists.
        let mol = synth::ligand("md", 30, 5);
        let report = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                skin: 0.5,
                ..Default::default()
            },
            12,
        );
        assert!(
            report.lists_reused > report.lists_rebuilt,
            "reused {} vs rebuilt {}",
            report.lists_reused,
            report.lists_rebuilt
        );
    }

    #[test]
    fn perturbation_scan_is_deterministic_and_incremental() {
        let mol = synth::protein("scan", 140, 21);
        let approx = ApproxParams::default();
        let scan = PerturbationScanParams::default();
        let a = run_perturbation_scan(&mol, &approx, &scan, None);
        let b = run_perturbation_scan(&mol, &approx, &scan, None);
        assert_eq!(a.energies.len(), scan.queries);
        for (x, y) in a.energies.iter().zip(&b.energies) {
            assert_eq!(x.to_bits(), y.to_bits(), "scan must be deterministic");
        }
        // 0.15 Å amplitude against a 0.8 Å skin stays incremental.
        assert_eq!(a.queries_rebuilt, 0);
        assert_eq!(a.queries_incremental, scan.queries as u64);
        assert_eq!(a.reverted, scan.queries as u64);
        assert!(
            a.chunks_redone < scan.queries as u64 * a.total_chunks as u64,
            "redone {} of {} available",
            a.chunks_redone,
            scan.queries * a.total_chunks
        );
        assert!(a.chunks_redone + a.chunks_cached == scan.queries as u64 * a.total_chunks as u64);
        assert!(a.memory_bytes > 0);
    }

    #[test]
    fn perturbation_batch_matches_scan_energies_bitwise() {
        // Same seed + same query-generation stream (batch draws extra
        // charge mutations, so compare with charges_per_query: 0).
        let mol = synth::protein("batch", 130, 31);
        let approx = ApproxParams::default();
        let scan = PerturbationScanParams {
            queries: 8,
            ..Default::default()
        };
        let batch = BatchScanParams {
            batch: 8,
            charges_per_query: 0,
            ..Default::default()
        };
        let a = run_perturbation_scan(&mol, &approx, &scan, None);
        let b = run_perturbation_batch(&mol, &approx, &batch, None);
        assert_eq!(a.energies.len(), b.energies.len());
        for (x, y) in a.energies.iter().zip(&b.energies) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "batch must score the same queries to the same bits"
            );
        }
        assert_eq!(a.chunks_redone, b.chunks_redone);
        assert_eq!(a.entries_redone, b.entries_redone);
        assert_eq!(b.queries_batched, 8);
        assert_eq!(b.per_query_entries_redone.len(), 8);
        assert!(b.entries_redone + b.entries_cached == 8 * b.total_entries as u64);
        assert!(b.memory_bytes > 0);
    }

    #[test]
    fn perturbation_batch_pool_and_granularity_invariance() {
        let mol = synth::protein("batch", 110, 37);
        let approx = ApproxParams::default();
        let batch = BatchScanParams {
            batch: 6,
            ..Default::default()
        };
        let serial = run_perturbation_batch(&mol, &approx, &batch, None);
        let pool = polaroct_sched::WorkStealingPool::new(3);
        let pooled = run_perturbation_batch(&mol, &approx, &batch, Some(&pool));
        let chunked = run_perturbation_batch(
            &mol,
            &approx,
            &BatchScanParams {
                delta: crate::delta::DeltaParams {
                    granularity: crate::delta::Granularity::Chunk,
                    ..Default::default()
                },
                ..batch
            },
            None,
        );
        for (x, y) in serial.energies.iter().zip(&pooled.energies) {
            assert_eq!(x.to_bits(), y.to_bits(), "pool must not change bits");
        }
        for (x, y) in serial.energies.iter().zip(&chunked.energies) {
            assert_eq!(x.to_bits(), y.to_bits(), "granularity must not change bits");
        }
        assert_eq!(serial.chunks_redone, chunked.chunks_redone);
        assert!(
            serial.entries_redone < chunked.entries_redone,
            "entry mode must redo strictly fewer entries"
        );
    }

    #[test]
    fn perturbation_scan_pool_matches_serial_bits() {
        let mol = synth::protein("scan", 120, 8);
        let approx = ApproxParams::default();
        let scan = PerturbationScanParams {
            queries: 6,
            ..Default::default()
        };
        let serial = run_perturbation_scan(&mol, &approx, &scan, None);
        let pool = polaroct_sched::WorkStealingPool::new(3);
        let pooled = run_perturbation_scan(&mol, &approx, &scan, Some(&pool));
        for (x, y) in serial.energies.iter().zip(&pooled.energies) {
            assert_eq!(x.to_bits(), y.to_bits(), "pool must not change bits");
        }
        assert_eq!(serial.chunks_redone, pooled.chunks_redone);
    }

    #[test]
    fn zero_skin_rebuilds_every_step() {
        let mol = synth::ligand("md", 20, 3);
        let steps = 6;
        let report = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                skin: 0.0,
                ..Default::default()
            },
            steps,
        );
        // Atoms move every step (forces are nonzero), so skin 0 rebuilds
        // on every evaluate plus the initial build.
        assert_eq!(report.lists_rebuilt, steps as u64 + 1);
        assert_eq!(report.lists_reused, 0);
    }
}
