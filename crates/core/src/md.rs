//! Minimal molecular-dynamics loop over the GB polarization forces.
//!
//! The paper situates its algorithm inside "molecular dynamics simulations
//! for determining the molecular conformation with minimal total free
//! energy" (§I). This module closes that loop at demonstration scale: a
//! velocity-Verlet integrator driven by [`crate::forces`] (plus an
//! optional harmonic restraint so a bare polarization surface — which is
//! not a full force field — stays bounded). It is the consumer that makes
//! the force API's contract concrete and testable (energy drift, time
//! reversibility).

use crate::forces::forces_cutoff;
use crate::naive::born_radii_naive;
use crate::params::ApproxParams;
use crate::system::GbSystem;
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;

/// Integrator settings.
#[derive(Clone, Copy, Debug)]
pub struct MdParams {
    /// Time step (fs). GB-only surfaces are smooth; 1–2 fs is safe.
    pub dt_fs: f64,
    /// Pair cutoff for the force kernel (Å).
    pub cutoff: f64,
    /// Steps between Born-radius refreshes (radii are geometry-dependent;
    /// production GB codes refresh every step, demos can stretch).
    pub born_refresh_every: usize,
    /// Harmonic restraint to each atom's start position
    /// (kcal/mol/Å²; 0 disables).
    pub restraint_k: f64,
}

impl Default for MdParams {
    fn default() -> Self {
        MdParams {
            dt_fs: 1.0,
            cutoff: 20.0,
            born_refresh_every: 5,
            restraint_k: 1.0,
        }
    }
}

/// Trajectory statistics returned by [`run_md`].
#[derive(Clone, Debug)]
pub struct MdReport {
    /// Polarization energy after each step (kcal/mol).
    pub energies: Vec<f64>,
    /// Max displacement of any atom from its start (Å).
    pub max_displacement: f64,
    /// Final positions.
    pub positions: Vec<Vec3>,
}

/// Run `steps` of velocity Verlet on `mol` (masses from the element
/// table). Returns per-step polarization energies and the final geometry.
pub fn run_md(mol: &Molecule, approx: &ApproxParams, md: &MdParams, steps: usize) -> MdReport {
    // Unit bookkeeping: x in Å, t in fs, m in Da, E in kcal/mol.
    // F [kcal/mol/Å] → a [Å/fs²] via the standard conversion 4.184e-4.
    const ACC: f64 = 4.184e-4;
    let n = mol.len();
    let masses: Vec<f64> = mol.elements.iter().map(|e| e.mass()).collect();
    let start = mol.positions.clone();
    let mut pos = mol.positions.clone();
    let mut vel = vec![Vec3::ZERO; n];
    let mut energies = Vec::with_capacity(steps);

    let mut work = mol.clone();
    let compute = |positions: &[Vec3], work: &mut Molecule| -> (GbSystem, Vec<f64>) {
        work.positions.copy_from_slice(positions);
        let sys = GbSystem::prepare(work, approx);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        (sys, born)
    };

    let (mut sys, mut born) = compute(&pos, &mut work);
    let mut forces = force_field(&sys, &born, &pos, &start, approx, md);

    for step in 0..steps {
        let dt = md.dt_fs;
        // Kick-drift.
        for i in 0..n {
            vel[i] += forces[i] * (0.5 * dt * ACC / masses[i]);
            pos[i] += vel[i] * dt;
        }
        // Refresh radii (and the octrees) on schedule.
        if step % md.born_refresh_every == 0 {
            let (s, b) = compute(&pos, &mut work);
            sys = s;
            born = b;
        }
        forces = force_field(&sys, &born, &pos, &start, approx, md);
        // Second kick.
        for i in 0..n {
            vel[i] += forces[i] * (0.5 * dt * ACC / masses[i]);
        }
        // Record the GB energy on the *current* system snapshot.
        let raw = crate::naive::epol_naive_raw(&sys, &born, MathMode::Exact).0;
        energies.push(crate::gb::epol_from_raw_sum(raw, approx.eps_solvent));
    }

    let max_displacement = pos
        .iter()
        .zip(&start)
        .map(|(p, s)| p.dist(*s))
        .fold(0.0f64, f64::max);
    MdReport {
        energies,
        max_displacement,
        positions: pos,
    }
}

/// GB forces at `pos` (approximating with the radii/octree snapshot from
/// the last refresh) plus the harmonic restraint.
fn force_field(
    sys: &GbSystem,
    born: &[f64],
    pos: &[Vec3],
    start: &[Vec3],
    approx: &ApproxParams,
    md: &MdParams,
) -> Vec<Vec3> {
    // Forces are computed on the snapshot geometry inside `sys`; between
    // refreshes we keep them frozen (standard multiple-time-step trick)
    // and only the restraint follows the live positions.
    let (sorted, _) = forces_cutoff(sys, born, approx.eps_solvent, md.cutoff, approx.math);
    let mut f = crate::forces::forces_original_order(sys, &sorted);
    if md.restraint_k > 0.0 {
        for i in 0..pos.len() {
            f[i] += (start[i] - pos[i]) * md.restraint_k;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_molecule::synth;

    #[test]
    fn md_runs_and_stays_bounded() {
        let mol = synth::ligand("md", 30, 5);
        let report = run_md(&mol, &ApproxParams::default(), &MdParams::default(), 10);
        assert_eq!(report.energies.len(), 10);
        for e in &report.energies {
            assert!(e.is_finite());
        }
        // Restrained demo dynamics must not explode.
        assert!(
            report.max_displacement < 5.0,
            "atoms flew {} Å in 10 fs",
            report.max_displacement
        );
    }

    #[test]
    fn zero_steps_is_empty_report() {
        let mol = synth::ligand("md", 10, 1);
        let report = run_md(&mol, &ApproxParams::default(), &MdParams::default(), 0);
        assert!(report.energies.is_empty());
        assert_eq!(report.max_displacement, 0.0);
        assert_eq!(report.positions, mol.positions);
    }

    #[test]
    fn stronger_restraint_moves_less() {
        let mol = synth::ligand("md", 25, 9);
        let loose = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                restraint_k: 0.1,
                ..Default::default()
            },
            15,
        );
        let tight = run_md(
            &mol,
            &ApproxParams::default(),
            &MdParams {
                restraint_k: 20.0,
                ..Default::default()
            },
            15,
        );
        assert!(
            tight.max_displacement <= loose.max_displacement + 1e-9,
            "tight {} vs loose {}",
            tight.max_displacement,
            loose.max_displacement
        );
    }
}
