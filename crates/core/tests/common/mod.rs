//! Shared test support for the core property suites.
//!
//! Every suite used to open with the same boilerplate — synthesize a
//! molecule, take `ApproxParams::default()`, `GbSystem::prepare` /
//! `ListEngine::new` — and `lists_match_recursion` privately owned the
//! pool-width sweep and the push-phase helper that other suites want
//! too. This module is that boilerplate, factored once, with **zero
//! behavior change**: the helpers perform exactly the calls the inline
//! code performed (suites keep their historical molecule name strings by
//! passing them in).

// Each suite is its own crate and uses its own subset of these helpers.
#![allow(dead_code)]

use polaroct_cluster::simtime::OpCounts;
use polaroct_core::born::{push_integrals_to_atoms, BornAccumulators};
use polaroct_core::lists::ListEngine;
use polaroct_core::{ApproxParams, GbSystem};
use polaroct_geom::fastmath::MathMode;
use polaroct_molecule::{synth, Molecule};

/// Pool widths the determinism sweeps execute under: serial, and real
/// work-stealing pools of 1, 3 and 8 workers.
pub const WIDTHS: [Option<usize>; 4] = [None, Some(1), Some(3), Some(8)];

/// Synthetic protein + default approximation + prepared system.
pub fn prepared_protein(name: &str, n: usize, seed: u64) -> (Molecule, ApproxParams, GbSystem) {
    let mol = synth::protein(name, n, seed);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    (mol, params, sys)
}

/// Synthetic ligand + default approximation + prepared system.
pub fn prepared_ligand(name: &str, n: usize, seed: u64) -> (Molecule, ApproxParams, GbSystem) {
    let mol = synth::ligand(name, n, seed);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    (mol, params, sys)
}

/// Synthetic ligand + a default-params [`ListEngine`] at `skin`.
pub fn ligand_engine(name: &str, n: usize, seed: u64, skin: f64) -> (Molecule, ListEngine) {
    let mol = synth::ligand(name, n, seed);
    let engine = ListEngine::new(&mol, &ApproxParams::default(), skin);
    (mol, engine)
}

/// Run the push phase and fold its op counts into `ops`, mirroring what
/// `born_radii_octree` / `born_radii_dual` report.
pub fn push(sys: &GbSystem, acc: &BornAccumulators, ops: &mut OpCounts) -> Vec<f64> {
    let mut out = vec![0.0; sys.n_atoms()];
    ops.add(&push_integrals_to_atoms(
        sys,
        acc,
        0..sys.n_atoms(),
        MathMode::Exact,
        &mut out,
    ));
    out
}
