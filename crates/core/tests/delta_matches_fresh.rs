//! Differential bit-identity harness for the incremental ΔE_pol engine
//! (`core::delta`, DESIGN.md §15).
//!
//! The contract under test: every [`DeltaEngine::apply_perturbation`]
//! result — raw sum, energy, Born radii — is **bit-identical** to a
//! fresh, from-scratch full run of the list pipeline at the same state:
//!
//! * an *incremental* query equals a fresh [`ListEngine`] prepared at
//!   the engine's scaffold geometry (with the current charges) and
//!   evaluated at the perturbed positions — exactly the computation the
//!   engine claims to be skipping chunks of;
//! * a *rebuilt* query (skin boundary crossed) equals a fresh engine
//!   prepared directly at the perturbed geometry.
//!
//! On top of that: reverting a chain restores the original bits exactly,
//! incremental queries with few moved atoms must actually skip work
//! (`chunks_redone < total_chunks`), and the FT path (a poisoned dirty
//! chunk recovered by serial re-execution) changes no bits either.

mod common;

use polaroct_cluster::comm::checksum;
use polaroct_cluster::fault::{phase, FaultPlan};
use polaroct_core::delta::{DeltaEngine, Perturbation};
use polaroct_core::lists::ListEngine;
use polaroct_core::ApproxParams;
use polaroct_geom::Vec3;
use polaroct_molecule::{synth, Molecule};
use polaroct_sched::WorkStealingPool;
use proptest::prelude::*;

/// Full-pipeline reference for the engine's current state: a fresh
/// engine prepared at the scaffold with the current charges, evaluated
/// at the current positions. Returns `(raw, energy, born_digest)` bits.
fn fresh_reference(
    eng: &DeltaEngine,
    mol: &Molecule,
    approx: &ApproxParams,
    skin: f64,
) -> (u64, u64, u64) {
    let mut m = mol.clone();
    m.positions = eng.reference_positions().to_vec();
    m.charges = eng.charges().to_vec();
    let mut fresh = ListEngine::new(&m, approx, skin);
    let eval = fresh.evaluate(eng.positions());
    let digest = checksum(&fresh.system().to_original_atom_order(fresh.born()));
    (eval.raw.to_bits(), eval.energy_kcal.to_bits(), digest)
}

/// splitmix64 — deterministic perturbation stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [-1, 1).
fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Molecules × ε × skin × k-atom moves × charge mutations × a
    /// 3-query chain with full revert: every query bit-matches its fresh
    /// reference, incremental queries skip work, the revert chain
    /// restores the original bits.
    #[test]
    fn delta_matches_fresh(
        n in 60usize..160,
        seed in 0u64..1000,
        eps_i in 0usize..3,
        skin_i in 0usize..3,
        k in 1usize..6,
        n_charges in 0usize..3,
        pert_seed in 0u64..1000,
    ) {
        let eps = [0.9, 0.5, 0.25][eps_i];
        let skin = [0.5, 0.8, 1.2][skin_i];
        let approx = ApproxParams::default().with_eps(eps, eps);
        let mol = synth::protein("delta", n, seed);
        let mut eng = DeltaEngine::new(&mol, &approx, skin);

        let raw0 = eng.raw().to_bits();
        let energy0 = eng.energy_kcal().to_bits();
        let digest0 = eng.born_digest();

        let mut rng = pert_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
        for query in 0..3usize {
            let mut p = Perturbation::default();
            // Moves stay inside 0.2·skin per component, so the first
            // query is incremental; cumulative drift across the chain
            // may legally cross the boundary and exercise the rebuild.
            for _ in 0..k {
                let atom = (mix(&mut rng) % n as u64) as usize;
                let d = Vec3::new(
                    unit(&mut rng) * 0.2 * skin,
                    unit(&mut rng) * 0.2 * skin,
                    unit(&mut rng) * 0.2 * skin,
                );
                p = p.move_atom(atom, eng.positions()[atom] + d);
            }
            for _ in 0..n_charges {
                let atom = (mix(&mut rng) % n as u64) as usize;
                p = p.set_charge(atom, unit(&mut rng) * 2.0);
            }
            let eval = eng.apply_perturbation(&p, None);

            let (raw, energy, digest) = fresh_reference(&eng, &mol, &approx, skin);
            prop_assert_eq!(eval.raw.to_bits(), raw,
                "query {} raw mismatch (rebuilt={})", query, eval.rebuilt);
            prop_assert_eq!(eval.energy_kcal.to_bits(), energy);
            prop_assert_eq!(eng.born_digest(), digest);

            prop_assert_eq!(
                eval.chunks_redone + eval.chunks_cached,
                eval.total_chunks
            );
            if !eval.rebuilt {
                // Few moved atoms ⇒ work actually skipped: far-only
                // chunks (and near chunks whose leaves hold no touched
                // atom) must be served from the cache.
                prop_assert!(
                    eval.chunks_redone < eval.total_chunks,
                    "query {} redid all {} chunks for k={} moves",
                    query, eval.total_chunks, k
                );
            } else {
                prop_assert_eq!(eval.chunks_cached, 0);
            }
        }

        // Unwind the whole chain: bits must come back exactly.
        prop_assert_eq!(eng.pending_perturbations(), 3);
        for _ in 0..3 {
            prop_assert!(eng.revert(None));
        }
        prop_assert!(!eng.revert(None));
        prop_assert_eq!(eng.raw().to_bits(), raw0);
        prop_assert_eq!(eng.energy_kcal().to_bits(), energy0);
        prop_assert_eq!(eng.born_digest(), digest0);
        for (a, b) in eng.positions().iter().zip(&mol.positions) {
            prop_assert_eq!(a, b);
        }
        for (a, b) in eng.charges().iter().zip(&mol.charges) {
            prop_assert_eq!(a, b);
        }
    }
}

/// A deliberately stale cached chunk cannot survive the harness: corrupt
/// every cached Phase-A Born output, run an identity query (nothing is
/// dirty, so nothing is recomputed), and the result must *differ* from
/// the fresh reference — proving the differential comparison has recall,
/// not just precision.
#[test]
fn stale_cached_chunk_is_caught() {
    let approx = ApproxParams::default();
    let skin = 1.0;
    let mol = synth::protein("stale", 130, 23);
    let mut eng = DeltaEngine::new(&mol, &approx, skin);
    eng.debug_corrupt_cached_born_outputs(1e-3);
    let eval = eng.apply_perturbation(&Perturbation::default(), None);
    let (raw, _, _) = fresh_reference(&eng, &mol, &approx, skin);
    assert_ne!(
        eval.raw.to_bits(),
        raw,
        "corrupted cache produced the reference bits — the harness has no recall"
    );
}

/// FT: a worker panic poisoning one dirty Born chunk is contained by the
/// pool and the chunk re-executes serially — same bits as a clean run.
#[test]
fn poisoned_born_chunk_recovers_bit_identically() {
    let approx = ApproxParams::default();
    let skin = 1.0;
    let mol = synth::protein("deltaft", 150, 4);
    let mut clean = DeltaEngine::new(&mol, &approx, skin);
    let mut faulty = DeltaEngine::new(&mol, &approx, skin);
    let pool = WorkStealingPool::new(3);
    let p = Perturbation::default()
        .move_atom(12, mol.positions[12] + Vec3::new(0.2, -0.1, 0.1))
        .move_atom(90, mol.positions[90] + Vec3::new(-0.1, 0.2, 0.0));
    let ec = clean.apply_perturbation(&p, Some(&pool));
    assert!(!ec.rebuilt && ec.born_chunks_redone > 0);

    let plan = FaultPlan::new(7).panic_worker(0, phase::INTEGRALS);
    let ef = faulty.apply_perturbation_ft(&p, &pool, &plan);
    assert_eq!(ef.recovered_chunks, 1, "exactly one poisoned chunk");
    assert_eq!(ef.raw.to_bits(), ec.raw.to_bits());
    assert_eq!(ef.energy_kcal.to_bits(), ec.energy_kcal.to_bits());
    assert_eq!(faulty.born_digest(), clean.born_digest());
}

/// Same containment for a poisoned E_pol chunk.
#[test]
fn poisoned_epol_chunk_recovers_bit_identically() {
    let approx = ApproxParams::default();
    let skin = 1.0;
    let mol = synth::protein("deltaft", 150, 4);
    let mut clean = DeltaEngine::new(&mol, &approx, skin);
    let mut faulty = DeltaEngine::new(&mol, &approx, skin);
    let pool = WorkStealingPool::new(3);
    let p = Perturbation::default()
        .move_atom(33, mol.positions[33] + Vec3::new(0.15, 0.1, -0.2))
        .set_charge(70, 2.0);
    let ec = clean.apply_perturbation(&p, Some(&pool));
    assert!(!ec.rebuilt && ec.epol_chunks_redone > 0);

    let plan = FaultPlan::new(11).panic_worker(0, phase::EPOL);
    let ef = faulty.apply_perturbation_ft(&p, &pool, &plan);
    assert_eq!(ef.recovered_chunks, 1, "exactly one poisoned chunk");
    assert_eq!(ef.raw.to_bits(), ec.raw.to_bits());
    assert_eq!(ef.energy_kcal.to_bits(), ec.energy_kcal.to_bits());
    assert_eq!(faulty.born_digest(), clean.born_digest());
}
