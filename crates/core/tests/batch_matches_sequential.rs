//! Differential harness for [`DeltaEngine::apply_batch`] (DESIGN.md
//! §16): N independent queries scored against one immutable cached base
//! must be **bit-identical**, query by query, to
//!
//! * a sequential `apply_perturbation` + `revert` loop over the same
//!   engine (the semantics the batch overlay replaces), and
//! * a fresh [`ListEngine`] prepared at the scaffold with each query's
//!   charges and evaluated at each query's positions (the from-scratch
//!   reference the whole delta layer is certified against),
//!
//! at pool widths {serial, 1, 4} — and the engine must end the batch
//! bit-identical to its base state (positions, charges, energies, Born
//! digest, empty undo stack).
//!
//! The recall side: a single corrupted cached *entry span* (the smallest
//! unit the entry-granular cache manages) must be visible to the
//! harness unless a query actually dirties that entry.

use polaroct_core::delta::{DeltaEngine, DeltaParams, Granularity, Perturbation};
use polaroct_core::lists::ListEngine;
use polaroct_core::ApproxParams;
use polaroct_geom::Vec3;
use polaroct_molecule::{synth, Molecule};
use polaroct_sched::WorkStealingPool;
use proptest::prelude::*;

/// splitmix64 — deterministic perturbation stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [-1, 1).
fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// A batch of mixed move/charge queries around the engine's base state.
/// Amplitudes stay inside 0.2·skin per component, so most queries are
/// overlay-served; occasional larger draws exercise the rebuild
/// fallback inside the batch.
fn mixed_batch(
    mol: &Molecule,
    skin: f64,
    n_queries: usize,
    k: usize,
    n_charges: usize,
    rng: &mut u64,
) -> Vec<Perturbation> {
    let n = mol.positions.len();
    (0..n_queries)
        .map(|_| {
            let mut p = Perturbation::default();
            for _ in 0..k {
                let atom = (mix(rng) % n as u64) as usize;
                let d = Vec3::new(
                    unit(rng) * 0.2 * skin,
                    unit(rng) * 0.2 * skin,
                    unit(rng) * 0.2 * skin,
                );
                p = p.move_atom(atom, mol.positions[atom] + d);
            }
            for _ in 0..n_charges {
                let atom = (mix(rng) % n as u64) as usize;
                p = p.set_charge(atom, unit(rng) * 2.0);
            }
            p
        })
        .collect()
}

/// From-scratch reference for one query against the base molecule: a
/// fresh engine prepared at the base geometry with the query's charges,
/// evaluated at the query's positions.
fn fresh_reference(mol: &Molecule, approx: &ApproxParams, skin: f64, q: &Perturbation) -> u64 {
    let mut m = mol.clone();
    for &(oi, nq) in &q.charges {
        m.charges[oi] = nq;
    }
    let mut positions = mol.positions.clone();
    for &(oi, np) in &q.moves {
        positions[oi] = np;
    }
    let mut fresh = ListEngine::new(&m, approx, skin);
    fresh.evaluate(&positions).raw.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random molecule × ε × skin × a mixed-query batch, checked at
    /// three pool widths against the sequential loop and the fresh
    /// per-query references.
    #[test]
    fn batch_matches_sequential(
        n in 60usize..150,
        seed in 0u64..1000,
        eps_i in 0usize..3,
        skin_i in 0usize..3,
        n_queries in 1usize..6,
        k in 1usize..5,
        n_charges in 0usize..3,
        pert_seed in 0u64..1000,
    ) {
        let eps = [0.9, 0.5, 0.25][eps_i];
        let skin = [0.5, 0.8, 1.2][skin_i];
        let approx = ApproxParams::default().with_eps(eps, eps);
        let mol = synth::protein("batchseq", n, seed);
        let mut rng = pert_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
        let queries = mixed_batch(&mol, skin, n_queries, k, n_charges, &mut rng);

        // Reference semantics: sequential apply → revert on its own
        // engine.
        let mut seq_eng = DeltaEngine::new(&mol, &approx, skin);
        let seq: Vec<_> = queries
            .iter()
            .map(|q| {
                let e = seq_eng.apply_perturbation(q, None);
                assert!(seq_eng.revert(None));
                e
            })
            .collect();

        for width in [None, Some(1), Some(4)] {
            let pool = width.map(WorkStealingPool::new);
            let mut eng = DeltaEngine::new(&mol, &approx, skin);
            let raw0 = eng.raw().to_bits();
            let digest0 = eng.born_digest();
            let evals = eng.apply_batch(&queries, pool.as_ref());

            prop_assert_eq!(evals.len(), queries.len());
            for (qi, (s, b)) in seq.iter().zip(&evals).enumerate() {
                prop_assert_eq!(
                    s.raw.to_bits(), b.raw.to_bits(),
                    "query {} raw mismatch at width {:?} (rebuilt={})",
                    qi, width, b.rebuilt
                );
                prop_assert_eq!(s.energy_kcal.to_bits(), b.energy_kcal.to_bits());
                prop_assert_eq!(s.max_disp.to_bits(), b.max_disp.to_bits());
                prop_assert_eq!(s.rebuilt, b.rebuilt);
                prop_assert_eq!(s.chunks_redone, b.chunks_redone);
                prop_assert_eq!(s.entries_redone, b.entries_redone);
                prop_assert_eq!(
                    b.entries_redone + b.entries_cached,
                    b.total_entries
                );
            }
            // The batch left the engine bit-identical to its base state.
            prop_assert_eq!(eng.raw().to_bits(), raw0);
            prop_assert_eq!(eng.born_digest(), digest0);
            prop_assert_eq!(eng.pending_perturbations(), 0);
            for (a, b) in eng.positions().iter().zip(&mol.positions) {
                prop_assert_eq!(a, b);
            }
            for (a, b) in eng.charges().iter().zip(&mol.charges) {
                prop_assert_eq!(a, b);
            }
        }

        // Each query also equals its from-scratch reference (only spot
        // the serial evals — widths were proven bitwise equal above).
        for (qi, (q, s)) in queries.iter().zip(&seq).enumerate() {
            prop_assert_eq!(
                s.raw.to_bits(),
                fresh_reference(&mol, &approx, skin, q),
                "query {} differs from its fresh reference", qi
            );
        }
    }

    /// Chunk-granular engines serve the same batches to the same bits
    /// (the granularity only changes the accounting).
    #[test]
    fn chunk_mode_batch_matches_entry_mode(
        n in 60usize..120,
        seed in 0u64..500,
        n_queries in 1usize..5,
        pert_seed in 0u64..500,
    ) {
        let approx = ApproxParams::default();
        let skin = 0.8;
        let mol = synth::protein("batchgran", n, seed);
        let mut rng = pert_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
        let queries = mixed_batch(&mol, skin, n_queries, 3, 1, &mut rng);

        let mut entry = DeltaEngine::new(&mol, &approx, skin);
        let mut chunk = DeltaEngine::with_params(
            &mol,
            &approx,
            skin,
            DeltaParams { granularity: Granularity::Chunk, ..Default::default() },
        );
        let be = entry.apply_batch(&queries, None);
        let bc = chunk.apply_batch(&queries, None);
        for (e, c) in be.iter().zip(&bc) {
            prop_assert_eq!(e.raw.to_bits(), c.raw.to_bits());
            prop_assert_eq!(e.chunks_redone, c.chunks_redone);
            prop_assert!(e.entries_redone <= c.entries_redone);
        }
    }
}

/// Entry-granular recall: corrupt exactly one cached Born entry span.
/// A batch whose queries never dirty that entry must *show* the
/// corruption (the stale span feeds every fold), and a query that does
/// dirty the entry must overwrite it and return clean bits — proving
/// dirtiness tracking at entry resolution, not just chunk resolution.
#[test]
fn stale_cached_entry_is_caught_and_recomputed() {
    let approx = ApproxParams::default();
    let skin = 1.0;
    let mol = synth::protein("stale-entry", 130, 23);

    // Find a near entry and an atom inside its node range so we can aim
    // a query at exactly that entry.
    let probe = DeltaEngine::new(&mol, &approx, skin);
    let (entry_id, probe_atom) = probe.debug_near_born_entry_probe();
    drop(probe);

    // (1) Recall: an identity batch over the corrupted cache must differ
    // from the clean base bits.
    let mut eng = DeltaEngine::new(&mol, &approx, skin);
    let clean_raw = eng.raw().to_bits();
    eng.debug_corrupt_cached_born_entry(entry_id, 1e-3);
    let stale = eng.apply_batch(&[Perturbation::default()], None);
    assert_ne!(
        stale[0].raw.to_bits(),
        clean_raw,
        "a stale cached entry span must be visible to the harness"
    );

    // (2) Repair: a query moving an atom covered by that entry marks it
    // dirty, recomputes the span, and bit-matches the uncorrupted
    // engine's answer to the same query.
    let q = Perturbation::default().move_atom(
        probe_atom,
        mol.positions[probe_atom] + Vec3::new(0.05, 0.0, 0.0),
    );
    let mut clean_eng = DeltaEngine::new(&mol, &approx, skin);
    let want = clean_eng.apply_batch(std::slice::from_ref(&q), None);
    // `eng` still carries the corrupted span from (1) — but the query
    // dirties exactly that entry... along with possibly more entries in
    // other chunks; what matters is the corrupted one is among them.
    let eval = eng.apply_perturbation(&q, None);
    let got_born_digest = eng.born_digest();
    let mut fresh_clean = DeltaEngine::new(&mol, &approx, skin);
    let _ = fresh_clean.apply_perturbation(&q, None);
    if eval.raw.to_bits() == want[0].raw.to_bits() {
        // The corrupted entry was recomputed: Born digests agree too.
        assert_eq!(got_born_digest, fresh_clean.born_digest());
    } else {
        // If bits still differ, the corrupted entry must NOT have been
        // in the dirty set — which contradicts the coverage index
        // construction (the moved atom is inside the entry's node
        // range). Fail loudly.
        panic!(
            "query moving atom {probe_atom} (inside entry {entry_id}'s node range) \
             did not recompute the corrupted entry"
        );
    }
}

/// Batched queries on a pooled engine keep the FT-free contract: no
/// recovered units on a healthy pool, and bits equal the serial batch.
#[test]
fn pooled_batch_is_clean_and_bit_identical() {
    let approx = ApproxParams::default();
    let mol = synth::protein("batchpool", 140, 31);
    let mut rng = 7u64;
    let queries = mixed_batch(&mol, 0.8, 5, 3, 1, &mut rng);
    let mut serial = DeltaEngine::new(&mol, &approx, 0.8);
    let mut pooled = DeltaEngine::new(&mol, &approx, 0.8);
    let pool = WorkStealingPool::new(4);
    let bs = serial.apply_batch(&queries, None);
    let bp = pooled.apply_batch(&queries, Some(&pool));
    for (s, p) in bs.iter().zip(&bp) {
        assert_eq!(s.raw.to_bits(), p.raw.to_bits());
        assert_eq!(p.recovered_chunks, 0, "healthy pool must not recover");
    }
    assert_eq!(serial.born_digest(), pooled.born_digest());
}
