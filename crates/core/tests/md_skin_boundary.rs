//! Property: the Verlet-skin revalidation protocol never serves stale
//! interaction lists past its contract. The [`ListEngine`] may reuse
//! lists only while `max_disp <= skin/2` (the boundary itself is a legal
//! reuse — the inflation covers it); the moment the tracked displacement
//! exceeds the threshold it must rebuild, and a rebuild must leave the
//! engine bit-identical to a freshly constructed one at the same
//! geometry (no state leaks across the rebuild).

mod common;

use polaroct_core::lists::ListEngine;
use polaroct_core::ApproxParams;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn skin_boundary_is_exact_and_rebuilds_match_fresh_engines(
        n in 15usize..40,
        seed in 0u64..500,
        skin_i in 0usize..3,
        atom_sel in 0usize..1000,
    ) {
        let skin = [0.6, 1.0, 1.6][skin_i];
        let (mol, mut engine) = common::ligand_engine("prop", n, seed, skin);
        let approx = ApproxParams::default();
        prop_assert_eq!(engine.lists_rebuilt, 1);

        let mut pos = mol.positions.clone();
        let k = atom_sel % n;
        let anchor = mol.positions[k].x;

        // 1. Jitter one atom to *exactly* the rebuild boundary: the
        //    largest representable coordinate whose displacement is
        //    still <= skin/2 (`anchor + skin/2` rounds, so walk the last
        //    ulps explicitly). Boundary reuse is legal — the skin
        //    inflation covers a displacement of exactly skin/2 — and
        //    must be taken.
        let mut cand = anchor + skin * 0.5;
        for _ in 0..4 {
            if cand - anchor <= skin * 0.5 {
                break;
            }
            cand = cand.next_down();
        }
        prop_assert!(cand - anchor <= skin * 0.5 && cand > anchor);
        pos[k].x = cand;
        let eval = engine.evaluate(&pos);
        prop_assert!(!eval.rebuilt,
            "boundary displacement {} rebuilt at skin {}", eval.max_disp, skin);
        prop_assert!(eval.max_disp <= skin * 0.5);
        prop_assert!(eval.max_disp > 0.49 * skin, "jitter missed the boundary region");
        prop_assert!(eval.energy_kcal.is_finite());

        // 2. The smallest step past the boundary: lists are now stale
        //    and must NOT be used — the engine has to rebuild.
        let mut past = cand;
        for _ in 0..4 {
            past = past.next_up();
            if past - anchor > skin * 0.5 {
                break;
            }
        }
        prop_assert!(past - anchor > skin * 0.5);
        pos[k].x = past;
        let eval = engine.evaluate(&pos);
        prop_assert!(eval.rebuilt,
            "displacement {} > skin/2 {} served stale lists", eval.max_disp, skin * 0.5);

        // 3. The rebuild must match a fresh engine at the same geometry
        //    bit-for-bit: energy, raw sum, and Born radii.
        let mut fresh_mol = mol.clone();
        fresh_mol.positions.copy_from_slice(&pos);
        let mut fresh = ListEngine::new(&fresh_mol, &approx, skin);
        let fresh_eval = fresh.evaluate(&pos);
        prop_assert!(!fresh_eval.rebuilt); // unmoved since its own build
        prop_assert_eq!(eval.raw.to_bits(), fresh_eval.raw.to_bits(),
            "rebuilt raw {} vs fresh {}", eval.raw, fresh_eval.raw);
        prop_assert_eq!(eval.energy_kcal.to_bits(), fresh_eval.energy_kcal.to_bits());
        for (a, b) in engine.born().iter().zip(fresh.born()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "born radius {} vs {}", a, b);
        }

        // 4. After the rebuild the reference geometry has been reset:
        //    small drift reuses again, drift past skin/2 rebuilds again —
        //    the protocol is stateless across rebuilds.
        let rebuilds_before = engine.lists_rebuilt;
        pos[k].y += skin * 0.25;
        let eval = engine.evaluate(&pos);
        prop_assert!(!eval.rebuilt);
        pos[k].y += skin * 0.5;
        let eval = engine.evaluate(&pos);
        prop_assert!(eval.rebuilt);
        prop_assert_eq!(engine.lists_rebuilt, rebuilds_before + 1);
        prop_assert_eq!(engine.lists_reused, 2);
    }
}
