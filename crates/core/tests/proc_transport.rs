//! Process-transport integration tests (`harness = false`): this binary
//! re-execs **itself** as worker processes, so `main` must route worker
//! invocations into `maybe_worker` before any test logic runs.
//!
//! The suite pins the tentpole contract: the same molecule + seed +
//! fault plan yields **byte-identical** energies and Born radii on the
//! in-process channel transport and the multi-process socket transport —
//! including runs where a worker is killed by a real `SIGKILL`. A
//! watchdog aborts the whole binary if anything hangs: no test here is
//! allowed to block CI.

fn main() {
    polaroct_core::maybe_worker();
    run_all();
}

#[cfg(not(unix))]
fn run_all() {
    println!("proc_transport: skipped (process transport is unix-only)");
}

#[cfg(unix)]
fn run_all() {
    // No test may hang: every blocking read in the transport is
    // deadline-bounded, and this watchdog enforces it end to end.
    std::thread::spawn(|| {
        std::thread::sleep(std::time::Duration::from_secs(420));
        eprintln!("proc_transport: watchdog expired — aborting");
        std::process::abort();
    });
    let tests: &[(&str, fn())] = &[
        (
            "clean_run_matches_inprocess_bitwise",
            tests::clean_run_matches_inprocess_bitwise,
        ),
        (
            "real_sigkill_recovered_bit_identically",
            tests::real_sigkill_recovered_bit_identically,
        ),
        (
            "worker_dead_before_handshake_surfaces_lost",
            tests::worker_dead_before_handshake_surfaces_lost,
        ),
        (
            "kill_mid_send_no_poisoned_channel",
            tests::kill_mid_send_no_poisoned_channel,
        ),
        ("transports_match", tests::transports_match),
    ];
    let mut failed = 0usize;
    for (name, f) in tests {
        println!("test {name} ...");
        match std::panic::catch_unwind(f) {
            Ok(()) => println!("test {name} ... ok"),
            Err(_) => {
                println!("test {name} ... FAILED");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("proc_transport: {failed} test(s) failed");
        std::process::exit(1);
    }
    println!("proc_transport: all tests passed");
}

#[cfg(unix)]
mod tests {
    use polaroct_cluster::fault::{phase, FaultPlan, FtPolicy};
    use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
    use polaroct_core::drivers::{DriverConfig, FtConfig, RecoveryMode, RunOutcome, RunReport};
    use polaroct_core::procexec::ENV_SELFTEST;
    use polaroct_core::{
        run_oct_mpi_ft, run_oct_mpi_proc_ft, ApproxParams, GbSystem, WorkDivision,
    };
    use polaroct_molecule::{synth, Molecule};
    use proptest::prelude::*;
    use std::time::Duration;

    fn molecule(n: usize, seed: u64) -> Molecule {
        synth::protein("pt", n, seed)
    }

    fn mpi_cluster(p: usize) -> ClusterSpec {
        ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p))
    }

    /// Generous next to the in-process suite's 400–500 ms: worker
    /// *processes* contend for cores instead of sharing one address
    /// space, so compute skew between ranks is larger.
    fn policy() -> FtPolicy {
        FtPolicy::with_timeout(Duration::from_secs(3))
    }

    fn ftc(plan: FaultPlan) -> FtConfig {
        FtConfig { plan, policy: policy(), recovery: RecoveryMode::Reexecute }
    }

    /// Run the same configuration on both transports.
    fn both(mol: &Molecule, ranks: usize, plan: &FaultPlan) -> (RunReport, RunReport) {
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let sys = GbSystem::prepare(mol, &params);
        let inproc = run_oct_mpi_ft(
            &sys,
            &params,
            &cfg,
            &mpi_cluster(ranks),
            WorkDivision::NodeNode,
            &ftc(plan.clone()),
        )
        .expect("in-process run failed");
        let proc = run_oct_mpi_proc_ft(
            mol,
            &params,
            &cfg,
            ranks,
            WorkDivision::NodeNode,
            &ftc(plan.clone()),
        )
        .expect("process-transport run failed");
        (inproc, proc)
    }

    fn assert_bit_identical(a: &RunReport, b: &RunReport, what: &str) {
        assert_eq!(
            a.energy_kcal.to_bits(),
            b.energy_kcal.to_bits(),
            "{what}: energies differ: {} vs {}",
            a.energy_kcal,
            b.energy_kcal
        );
        assert_eq!(a.born_radii.len(), b.born_radii.len(), "{what}: radii length");
        for (i, (x, y)) in a.born_radii.iter().zip(&b.born_radii).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: born radius {i}: {x} vs {y}");
        }
    }

    /// Outcome equality modulo wall-time fields (the classification and
    /// its parameters must match; measured host seconds may not).
    fn assert_same_outcome(a: &RunReport, b: &RunReport, what: &str) {
        assert_eq!(a.outcome, b.outcome, "{what}: outcomes differ");
    }

    pub fn clean_run_matches_inprocess_bitwise() {
        let mol = molecule(220, 11);
        let (inproc, proc) = both(&mol, 3, &FaultPlan::none());
        assert_bit_identical(&inproc, &proc, "clean run");
        assert_same_outcome(&inproc, &proc, "clean run");
        assert_eq!(inproc.outcome, RunOutcome::Completed);
        // The virtual clocks are deterministic functions of op counts,
        // so even simulated *time* matches across transports.
        assert_eq!(inproc.time.to_bits(), proc.time.to_bits(), "simulated time");
        assert_eq!(inproc.ops.total(), proc.ops.total(), "op totals");
        assert!(proc.ft.exits.is_empty(), "clean run captured exits: {:?}", proc.ft.exits);
    }

    pub fn real_sigkill_recovered_bit_identically() {
        let mol = molecule(220, 11);
        let clean = {
            let params = ApproxParams::default();
            let sys = GbSystem::prepare(&mol, &params);
            run_oct_mpi_ft(
                &sys,
                &params,
                &DriverConfig::default(),
                &mpi_cluster(3),
                WorkDivision::NodeNode,
                &ftc(FaultPlan::none()),
            )
            .unwrap()
        };
        let plan = FaultPlan::new(17).kill(1, phase::INTEGRALS);
        let (inproc, proc) = both(&mol, 3, &plan);
        // The worker really died: the supervisor captured SIGKILL.
        assert!(
            proc.ft.exits.iter().any(|(r, s)| *r == 1 && s.contains("signal 9")),
            "expected a SIGKILL exit status for rank 1, got {:?}",
            proc.ft.exits
        );
        assert!(
            matches!(proc.outcome, RunOutcome::Recovered { .. }),
            "expected Recovered, got {:?}",
            proc.outcome
        );
        assert_same_outcome(&inproc, &proc, "sigkill run");
        assert_bit_identical(&inproc, &proc, "sigkill run");
        // Recovery is exact: bit-identical to the fault-free energy too.
        assert_eq!(clean.energy_kcal.to_bits(), proc.energy_kcal.to_bits());
    }

    pub fn worker_dead_before_handshake_surfaces_lost() {
        let mol = molecule(160, 23);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        std::env::set_var(ENV_SELFTEST, "exit:3:1");
        // Recovery disabled: the startup loss must surface as a typed
        // error carrying the captured exit status — never a hang.
        let err = run_oct_mpi_proc_ft(
            &mol,
            &params,
            &cfg,
            3,
            WorkDivision::NodeNode,
            &FtConfig {
                plan: FaultPlan::none(),
                policy: policy(),
                recovery: RecoveryMode::Disabled,
            },
        )
        .expect_err("startup loss with recovery disabled must fail");
        let msg = err.to_string();
        assert!(
            msg.contains("exited with code 3"),
            "error should carry the worker's exit status, got: {msg}"
        );
        // Recovery enabled: the dead-at-startup rank is recovered like
        // any other lost rank, bit-identically.
        let rec = run_oct_mpi_proc_ft(
            &mol,
            &params,
            &cfg,
            3,
            WorkDivision::NodeNode,
            &ftc(FaultPlan::none()),
        )
        .unwrap();
        std::env::remove_var(ENV_SELFTEST);
        assert!(
            matches!(rec.outcome, RunOutcome::Recovered { .. }),
            "expected Recovered, got {:?}",
            rec.outcome
        );
        assert!(
            rec.ft.exits.iter().any(|(r, s)| *r == 1 && s.contains("exited with code 3")),
            "expected rank 1's exit status in the report, got {:?}",
            rec.ft.exits
        );
        let sys = GbSystem::prepare(&mol, &params);
        let clean = run_oct_mpi_ft(
            &sys,
            &params,
            &cfg,
            &mpi_cluster(3),
            WorkDivision::NodeNode,
            &ftc(FaultPlan::none()),
        )
        .unwrap();
        assert_eq!(clean.energy_kcal.to_bits(), rec.energy_kcal.to_bits());
    }

    pub fn kill_mid_send_no_poisoned_channel() {
        // The regression this guards: a rank killed *immediately after*
        // shipping its payload must leave no poisoned stream behind —
        // the root uses the orphaned frame, survivors see the rank dead
        // at the *next* collective, and both transports classify and
        // compute identically.
        let mol = molecule(200, 29);
        let plan = FaultPlan::new(31).kill_mid_send(1, phase::REDUCE_INTEGRALS);
        let (inproc, proc) = both(&mol, 3, &plan);
        assert!(
            matches!(proc.outcome, RunOutcome::Recovered { .. }),
            "expected Recovered, got {:?}",
            proc.outcome
        );
        assert_same_outcome(&inproc, &proc, "kill-mid-send run");
        assert_bit_identical(&inproc, &proc, "kill-mid-send run");
        // The orphaned contribution was used, and the dead rank is on
        // exactly one dead list (no double counting across collectives).
        assert_eq!(proc.ft.dead, vec![1]);
        assert_eq!(inproc.ft.dead, vec![1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Random molecules × fault plans × rank counts: bitwise-equal
        /// energies and Born radii, and equal outcome classification,
        /// across both transports.
        fn prop_transports_match(
            seed in 1u64..5_000,
            n in 120usize..260,
            ranks in 2usize..5,
            fault_roll in 0u32..2,
        ) {
            let mol = molecule(n, seed);
            let plan = if fault_roll == 1 {
                FaultPlan::random(seed, ranks, 0.3)
            } else {
                FaultPlan::none()
            };
            let (inproc, proc) = both(&mol, ranks, &plan);
            prop_assert_eq!(
                inproc.energy_kcal.to_bits(),
                proc.energy_kcal.to_bits(),
                "seed {} n {} ranks {}: {} vs {}",
                seed, n, ranks, inproc.energy_kcal, proc.energy_kcal
            );
            for (x, y) in inproc.born_radii.iter().zip(&proc.born_radii) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            prop_assert_eq!(&inproc.outcome, &proc.outcome);
        }
    }

    pub fn transports_match() {
        prop_transports_match();
    }
}
