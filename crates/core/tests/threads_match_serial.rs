//! Property: the real-thread driver agrees with the serial driver on
//! randomly sized/seeded molecules, for every thread count — the block
//! reduction may reassociate floating-point sums but must never change
//! what is computed.

mod common;

use polaroct_core::drivers::DriverConfig;
use polaroct_core::{run_oct_threads, run_serial};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn threads_match_serial_for_random_molecules(n in 60usize..220, seed in 0u64..1000) {
        let (_mol, params, sys) = common::prepared_protein("prop", n, seed);
        let cfg = DriverConfig::default();
        let serial = run_serial(&sys, &params, &cfg).unwrap();
        let mut first_bits = None;
        for threads in [1usize, 2, 4, 8] {
            let thr = run_oct_threads(&sys, &params, &cfg, threads).unwrap();
            let rel = ((thr.energy_kcal - serial.energy_kcal) / serial.energy_kcal).abs();
            prop_assert!(
                rel <= 1e-12,
                "threads={} energy {} vs serial {} (rel {})",
                threads, thr.energy_kcal, serial.energy_kcal, rel
            );
            // And bit-identical across widths (deterministic reduction).
            let bits = thr.energy_kcal.to_bits();
            prop_assert_eq!(*first_bits.get_or_insert(bits), bits);
        }
    }
}
