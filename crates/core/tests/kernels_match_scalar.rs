//! Property: the lane-batched SoA kernels are **bit-identical** to the
//! straight scalar loops they replaced — for every lane width, every
//! runtime chunk size, both [`MathMode`]s, and random molecule sizes —
//! and the persistent flat leaf arenas are bit-interchangeable with the
//! historical per-chunk gathers, including across the positions-only
//! refresh path.
//!
//! The scalar references below are written out longhand in this file on
//! purpose: they are the pre-batching kernel bodies (same operations,
//! same order), independent of `core::soa`, so a regression in the lane
//! staging cannot hide by changing both sides at once. Combined with
//! the repo-level golden suite (`tests/golden_values.rs`, which runs
//! the full pipeline with arenas on against committed snapshots), this
//! pins the determinism contract of DESIGN.md §12.

mod common;

use polaroct_core::soa::{
    born_block_lanes, born_term_lanes, still_block_lanes, still_term_lanes, AtomView, QView,
    StillScratch, CHUNK,
};
use polaroct_core::{ApproxParams, ListEngine};
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;
use polaroct_molecule::synth;
use proptest::prelude::*;

/// Historical scalar r⁶ surface kernel: `Σ (w·d) / d⁶` in index order.
fn born_term_scalar(q: QView<'_>, xa: Vec3) -> f64 {
    let mut s = 0.0;
    for i in 0..q.len() {
        let dx = q.x[i] - xa.x;
        let dy = q.y[i] - xa.y;
        let dz = q.z[i] - xa.z;
        let inv2 = 1.0 / (dx * dx + dy * dy + dz * dz);
        s += (q.wnx[i] * dx + q.wny[i] * dy + q.wnz[i] * dz) * (inv2 * inv2 * inv2);
    }
    s
}

/// Historical scalar STILL kernel: `Σ q_v / f_GB(d², R_u, R_v)` in index
/// order, with per-element `exp`/`rsqrt` through the scalar `MathMode`
/// dispatch (the slice ops are element-wise over the same functions).
fn still_term_scalar(a: AtomView<'_>, xu: Vec3, ru: f64, math: MathMode) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len() {
        let dx = a.x[i] - xu.x;
        let dy = a.y[i] - xu.y;
        let dz = a.z[i] - xu.z;
        let d2 = dx * dx + dy * dy + dz * dz;
        let rr = ru * a.r[i];
        let e = math.exp(-d2 / (4.0 * rr));
        let f = d2 + rr * e;
        acc += a.q[i] * math.rsqrt(f);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lane width × chunk size × MathMode × molecule size sweep: both
    /// kernels, over arbitrary contiguous arena sub-ranges (a superset
    /// of the leaf/clip ranges the engines slice), must reproduce the
    /// scalar reference bit-for-bit.
    #[test]
    fn kernels_match_scalar(
        n in 20usize..90,
        seed in 0u64..1000,
        math_i in 0usize..2,
        chunk in 1usize..CHUNK + 1,
        lo_sel in 0usize..1000,
        len_sel in 0usize..1000,
        src_sel in 0usize..1000,
    ) {
        let math = [MathMode::Exact, MathMode::Approx][math_i];
        let (_mol, _params, sys) = common::prepared_ligand("kernels", n, seed);

        // Arbitrary contiguous q-arena range (includes empty).
        let qn = sys.q_arena.len();
        let lo = lo_sel % (qn + 1);
        let hi = (lo + len_sel % (qn + 1 - lo)).min(qn);
        let qv = sys.q_arena.view(lo..hi);
        let xa = sys.atom_arena.position(src_sel % sys.n_atoms());
        let want = born_term_scalar(qv, xa);
        macro_rules! check_born {
            ($w:literal) => {
                let got = born_term_lanes::<$w>(qv, xa);
                prop_assert_eq!(got.to_bits(), want.to_bits(),
                    "born_term W={} range {}..{}: {} vs {}", $w, lo, hi, got, want);
            };
        }
        check_born!(1);
        check_born!(2);
        check_born!(3);
        check_born!(4);
        check_born!(8);
        check_born!(16);

        // Block form over a random atom sub-range: every out[k] must be
        // bit-equal to the scalar reference at that atom.
        let an = sys.n_atoms();
        let alo = lo_sel % (an + 1);
        let ahi = (alo + len_sel % (an + 1 - alo)).min(an);
        let (bx, by, bz) = sys.atom_arena.pos_slices(alo..ahi);
        let mut blk = vec![0.0f64; ahi - alo];
        macro_rules! check_born_block {
            ($w:literal) => {
                born_block_lanes::<$w>(qv, bx, by, bz, &mut blk);
                for (k, &got) in blk.iter().enumerate() {
                    let want = born_term_scalar(qv, sys.atom_arena.position(alo + k));
                    prop_assert_eq!(got.to_bits(), want.to_bits(),
                        "born_block W={} atom {}: {} vs {}", $w, alo + k, got, want);
                }
            };
        }
        check_born_block!(1);
        check_born_block!(2);
        check_born_block!(3);
        check_born_block!(4);
        check_born_block!(8);
        check_born_block!(16);

        // Arbitrary contiguous atom-arena range; intrinsic radii stand in
        // for Born radii (any positive values exercise the same bits).
        let av = sys.atom_arena.view(&sys.radius, alo..ahi);
        let ui = src_sel % an;
        let (xu, ru) = (sys.atom_arena.position(ui), sys.radius[ui]);
        let want = still_term_scalar(av, xu, ru, math);
        macro_rules! check_still {
            ($w:literal) => {
                let got = still_term_lanes::<$w>(av, xu, ru, math, chunk);
                prop_assert_eq!(got.to_bits(), want.to_bits(),
                    "still_term W={} chunk={} range {}..{} {:?}: {} vs {}",
                    $w, chunk, alo, ahi, math, got, want);
            };
        }
        check_still!(1);
        check_still!(2);
        check_still!(3);
        check_still!(4);
        check_still!(8);
        check_still!(16);

        // Tiled block form, u-block = the same sub-range as a source
        // block (self pairs included — exactly the ordered-pair leaf
        // semantics). One scratch instance is reused across all widths on
        // purpose: stale staging contents must not leak into results.
        let uv = sys.atom_arena.view(&sys.radius, alo..ahi);
        let mut scratch = StillScratch::default();
        let mut sblk = vec![0.0f64; ahi - alo];
        macro_rules! check_still_block {
            ($w:literal) => {
                still_block_lanes::<$w>(uv, av, math, chunk, &mut scratch, &mut sblk);
                for (k, &got) in sblk.iter().enumerate() {
                    let want = still_term_scalar(
                        av,
                        sys.atom_arena.position(alo + k),
                        sys.radius[alo + k],
                        math,
                    );
                    prop_assert_eq!(got.to_bits(), want.to_bits(),
                        "still_block W={} chunk={} atom {} {:?}: {} vs {}",
                        $w, chunk, alo + k, math, got, want);
                }
            };
        }
        check_still_block!(1);
        check_still_block!(2);
        check_still_block!(3);
        check_still_block!(4);
        check_still_block!(8);
        check_still_block!(16);
    }

    /// Arena refresh: reusing lists with positions moved and then moved
    /// back must reproduce the original full energy bit-for-bit — the
    /// positions-only refresh (octree point copies + flat atom arena)
    /// carries no hidden state. A fresh engine at the same geometry
    /// agrees too (prepare → arena build is deterministic).
    #[test]
    fn arena_refresh_is_exact_and_reversible(
        n in 15usize..40,
        seed in 0u64..500,
        math_i in 0usize..2,
    ) {
        let mol = synth::ligand("refresh", n, seed);
        let approx = ApproxParams {
            math: [MathMode::Exact, MathMode::Approx][math_i],
            ..Default::default()
        };
        let skin = 1.0;
        let mut engine = ListEngine::new(&mol, &approx, skin);
        let e0 = engine.evaluate(&mol.positions);
        prop_assert!(!e0.rebuilt);

        let mut fresh = ListEngine::new(&mol, &approx, skin);
        let ef = fresh.evaluate(&mol.positions);
        prop_assert_eq!(e0.energy_kcal.to_bits(), ef.energy_kcal.to_bits(),
            "fresh prepare disagrees: {} vs {}", e0.energy_kcal, ef.energy_kcal);

        // Perturb every atom within the reuse envelope, then return.
        let jit = 0.4 * skin;
        let moved: Vec<Vec3> = mol
            .positions
            .iter()
            .enumerate()
            .map(|(i, p)| Vec3::new(p.x + jit * (-1.0f64).powi(i as i32), p.y, p.z))
            .collect();
        let e1 = engine.evaluate(&moved);
        prop_assert!(!e1.rebuilt, "jitter {} left the skin envelope", e1.max_disp);
        let e2 = engine.evaluate(&mol.positions);
        prop_assert!(!e2.rebuilt);
        prop_assert_eq!(e0.energy_kcal.to_bits(), e2.energy_kcal.to_bits(),
            "refresh round-trip drifted: {} vs {}", e0.energy_kcal, e2.energy_kcal);
        prop_assert_eq!(e0.raw.to_bits(), e2.raw.to_bits());
        prop_assert_eq!(engine.lists_reused, 3);
        prop_assert_eq!(engine.lists_rebuilt, 1);
    }
}
