//! Property: interaction-list execution is **bit-identical** to the
//! recursive traversals it flattens — energies, Born radii, and kernel
//! pair counts — for random molecules, approximation parameters, pool
//! widths, and Verlet-skin inflations (including `skin = 0`, which must
//! be a bit-level no-op on the tree bounds).
//!
//! This is the determinism contract of `core::lists` (DESIGN.md §11):
//! Phase A computes pure per-entry outputs, Phase B replays the
//! recursion's floating-point add sequence in emission order, so the
//! thread count and the cost-balanced chunk boundaries cannot leak into
//! a single output bit.

mod common;

use common::{push, WIDTHS};
use polaroct_core::born::{born_radii_octree, BornAccumulators};
use polaroct_core::dual::{born_radii_dual, epol_dual_raw};
use polaroct_core::epol::{epol_octree_raw, ChargeBins};
use polaroct_core::lists::{BornLists, EpolLists};
use polaroct_geom::fastmath::MathMode;
use polaroct_sched::WorkStealingPool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lists_bit_identical_to_recursion(
        n in 80usize..240,
        seed in 0u64..1000,
        eps_i in 0usize..3,
        skin_i in 0usize..3,
    ) {
        let eps = [0.9, 0.5, 0.25][eps_i];
        let skin = [0.0, 0.7, 1.5][skin_i];
        let (_mol, _params, mut sys) = common::prepared_protein("prop", n, seed);
        // Recursion and list build read the same (inflated) bounds, so
        // bit-identity must hold at any skin — skin only changes *which*
        // pairs are classified far, identically for both paths.
        sys.atoms.inflate_radii(skin);
        sys.qtree.inflate_radii(skin);

        // --- Single-tree Born (Fig. 2 traversal).
        let (born_ref, born_rops) = born_radii_octree(&sys, eps, MathMode::Exact);
        let blists = BornLists::build_single(&sys, eps);
        for width in WIDTHS {
            let pool = width.map(WorkStealingPool::new);
            let mut acc = BornAccumulators::zeros(&sys);
            let mut ops = blists.execute(&sys, pool.as_ref(), &mut acc);
            let born = push(&sys, &acc, &mut ops);
            for (i, (a, b)) in born.iter().zip(&born_ref).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "single Born radius {} differs at width {:?}: {} vs {}", i, width, a, b);
            }
            prop_assert_eq!(ops.born_near, born_rops.born_near);
            prop_assert_eq!(ops.born_far, born_rops.born_far);
            prop_assert_eq!(ops.nodes_visited, born_rops.nodes_visited);
        }

        // --- Single-tree E_pol (Fig. 3 traversal), on the recursion's radii.
        let bins = ChargeBins::build(&sys, &born_ref, eps);
        let (raw_ref, epol_rops) = epol_octree_raw(&sys, &bins, &born_ref, eps, MathMode::Exact);
        let elists = EpolLists::build_single(&sys, &bins, eps);
        for width in WIDTHS {
            let pool = width.map(WorkStealingPool::new);
            let (raw, ops) = elists.execute(&sys, &bins, &born_ref, MathMode::Exact, pool.as_ref());
            prop_assert_eq!(raw.to_bits(), raw_ref.to_bits(),
                "single E_pol differs at width {:?}: {} vs {}", width, raw, raw_ref);
            prop_assert_eq!(ops.epol_near, epol_rops.epol_near);
            prop_assert_eq!(ops.epol_far, epol_rops.epol_far);
        }

        // --- Dual-tree Born ([6]'s OCT_CILK traversal).
        let (dual_ref, dual_rops) = born_radii_dual(&sys, eps, MathMode::Exact);
        let dlists = BornLists::build_dual(&sys, eps);
        for width in WIDTHS {
            let pool = width.map(WorkStealingPool::new);
            let mut acc = BornAccumulators::zeros(&sys);
            let mut ops = dlists.execute(&sys, pool.as_ref(), &mut acc);
            let born = push(&sys, &acc, &mut ops);
            for (a, b) in born.iter().zip(&dual_ref) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "dual Born radius differs at width {:?}: {} vs {}", width, a, b);
            }
            prop_assert_eq!(ops.born_near, dual_rops.born_near);
            prop_assert_eq!(ops.born_far, dual_rops.born_far);
        }

        // --- Dual-tree E_pol.
        let dbins = ChargeBins::build(&sys, &dual_ref, eps);
        let (draw_ref, depol_rops) = epol_dual_raw(&sys, &dbins, &dual_ref, eps, MathMode::Exact);
        let delists = EpolLists::build_dual(&sys, &dbins, eps);
        for width in WIDTHS {
            let pool = width.map(WorkStealingPool::new);
            let (raw, ops) = delists.execute(&sys, &dbins, &dual_ref, MathMode::Exact, pool.as_ref());
            prop_assert_eq!(raw.to_bits(), draw_ref.to_bits(),
                "dual E_pol differs at width {:?}: {} vs {}", width, raw, draw_ref);
            prop_assert_eq!(ops.epol_near, depol_rops.epol_near);
            prop_assert_eq!(ops.epol_far, depol_rops.epol_far);
        }
    }
}
