//! Fault-injection integration tests: the ISSUE's acceptance scenarios
//! plus a property test that *any* random fault plan — kills, delays,
//! dropped/corrupted payloads, rank panics — recovers to the fault-free
//! energy bit-for-bit when re-execute recovery is on.

use polaroct_cluster::fault::{phase, FaultPlan, FtPolicy};
use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
use polaroct_core::drivers::{DriverConfig, FtConfig, RecoveryMode, RunOutcome};
use polaroct_core::{
    run_oct_hybrid, run_oct_hybrid_ft, run_oct_mpi, run_oct_mpi_ft, ApproxParams, DriverError,
    GbSystem, WorkDivision,
};
use polaroct_molecule::synth;
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn system(n: usize, seed: u64) -> GbSystem {
    let mol = synth::protein("ft", n, seed);
    GbSystem::prepare(&mol, &ApproxParams::default())
}

fn mpi_cluster(p: usize) -> ClusterSpec {
    ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(p))
}

fn hybrid_cluster(cores: usize) -> ClusterSpec {
    let m = MachineSpec::lonestar4();
    ClusterSpec::new(m, Placement::hybrid_per_socket(cores, &m))
}

/// ISSUE acceptance scenario: a `FaultPlan` that kills one rank in
/// phase 2 and delays another in phase 4 must yield
/// `RunOutcome::Recovered` from `run_oct_hybrid` with an `E_pol`
/// bit-identical to the fault-free run.
#[test]
fn hybrid_kill_phase2_delay_phase4_recovers_bit_identically() {
    let sys = system(260, 5);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();
    let cluster = hybrid_cluster(24); // 4 ranks x 6 threads

    let clean = run_oct_hybrid(&sys, &params, &cfg, &cluster).unwrap();

    let ftc = FtConfig {
        plan: FaultPlan::new(7).kill(2, phase::INTEGRALS).delay(3, phase::PUSH, 0.25),
        policy: FtPolicy::with_timeout(Duration::from_millis(500)),
        recovery: RecoveryMode::Reexecute,
    };
    let rec = run_oct_hybrid_ft(&sys, &params, &cfg, &cluster, &ftc).unwrap();

    assert!(
        matches!(rec.outcome, RunOutcome::Recovered { n_retries } if n_retries >= 1),
        "expected Recovered, got {:?}",
        rec.outcome
    );
    assert_eq!(
        rec.energy_kcal.to_bits(),
        clean.energy_kcal.to_bits(),
        "recovered energy must be bit-identical: {} vs {}",
        rec.energy_kcal,
        clean.energy_kcal
    );
    for (i, (a, b)) in rec.born_radii.iter().zip(&clean.born_radii).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "born radius {i} differs");
    }
    // The delayed rank stretches the simulated makespan.
    assert!(rec.time > clean.time, "delay must show up in simulated time");
}

/// ISSUE acceptance scenario, flip side: with recovery disabled the same
/// kill must fail within the collective timeout — an error, not a hang.
#[test]
fn hybrid_kill_without_recovery_fails_within_timeout() {
    let sys = system(150, 6);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();
    let cluster = hybrid_cluster(18); // 3 ranks x 6 threads
    let ftc = FtConfig {
        plan: FaultPlan::new(9).kill(1, phase::INTEGRALS),
        policy: FtPolicy::with_timeout(Duration::from_millis(200)),
        recovery: RecoveryMode::Disabled,
    };
    let t = Instant::now();
    let err = run_oct_hybrid_ft(&sys, &params, &cfg, &cluster, &ftc).unwrap_err();
    assert!(matches!(err, DriverError::Failed { .. }), "{err}");
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "must fail fast, took {:?}",
        t.elapsed()
    );
}

/// Regression: before the FT collectives, a killed rank left the star's
/// root blocked forever in `recv` — allreduce deadlocked the whole run.
/// Even the legacy non-FT entry point now sits on the timeout path, so a
/// dead rank with recovery on is invisible to the caller.
#[test]
fn killed_rank_no_longer_deadlocks_allreduce() {
    let sys = system(140, 3);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();
    let clean =
        run_oct_mpi(&sys, &params, &cfg, &mpi_cluster(3), WorkDivision::NodeNode).unwrap();

    for ph in [phase::REDUCE_INTEGRALS, phase::GATHER_RADII, phase::REDUCE_EPOL] {
        let ftc = FtConfig {
            plan: FaultPlan::new(u64::from(ph)).kill(1, ph),
            policy: FtPolicy::with_timeout(Duration::from_millis(300)),
            recovery: RecoveryMode::Reexecute,
        };
        let t = Instant::now();
        let rec = run_oct_mpi_ft(&sys, &params, &cfg, &mpi_cluster(3), WorkDivision::NodeNode, &ftc)
            .unwrap();
        assert!(
            t.elapsed() < Duration::from_secs(30),
            "collective at phase {ph} hung: {:?}",
            t.elapsed()
        );
        assert_eq!(
            rec.energy_kcal.to_bits(),
            clean.energy_kcal.to_bits(),
            "phase {ph}: recovery changed the energy"
        );
    }
}

/// Degraded recovery: when the lost segment is regenerated with the
/// far-field-only approximation, the run must say so and bound the
/// error estimate — and the energy stays finite and close.
#[test]
fn degraded_recovery_reports_error_estimate() {
    let sys = system(220, 11);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();
    let clean =
        run_oct_mpi(&sys, &params, &cfg, &mpi_cluster(4), WorkDivision::NodeNode).unwrap();
    let ftc = FtConfig {
        plan: FaultPlan::new(13).kill(2, phase::INTEGRALS),
        policy: FtPolicy::with_timeout(Duration::from_millis(400)),
        recovery: RecoveryMode::Degrade,
    };
    let rec = run_oct_mpi_ft(&sys, &params, &cfg, &mpi_cluster(4), WorkDivision::NodeNode, &ftc)
        .unwrap();
    match rec.outcome {
        RunOutcome::Degraded { est_error_pct } => {
            assert!(est_error_pct > 0.0 && est_error_pct < 100.0, "{est_error_pct}");
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    assert!(rec.energy_kcal.is_finite());
    let rel = ((rec.energy_kcal - clean.energy_kcal) / clean.energy_kcal).abs();
    assert!(rel < 0.2, "degraded energy off by {:.1}%", rel * 100.0);
}

proptest! {
    // Each case runs a 4-rank simulated cluster twice; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any random fault plan — whatever mix of kills, delays, payload
    /// drops/corruptions and rank panics it drew — must recover to the
    /// fault-free energy bit-for-bit under re-execute recovery.
    #[test]
    fn any_random_plan_recovers_bit_identically(
        seed in 1u64..10_000,
        n in 80usize..200,
        rate in 0.05f64..0.55,
    ) {
        let sys = system(n, seed);
        let params = ApproxParams::default();
        let cfg = DriverConfig::default();
        let clean = run_oct_mpi(&sys, &params, &cfg, &mpi_cluster(4), WorkDivision::NodeNode)
            .unwrap();
        let ftc = FtConfig {
            plan: FaultPlan::random(seed, 4, rate),
            policy: FtPolicy::with_timeout(Duration::from_millis(500)),
            recovery: RecoveryMode::Reexecute,
        };
        let faulty = run_oct_mpi_ft(&sys, &params, &cfg, &mpi_cluster(4), WorkDivision::NodeNode, &ftc)
            .unwrap();
        prop_assert!(faulty.outcome.is_exact(), "outcome {:?}", faulty.outcome);
        prop_assert_eq!(
            faulty.energy_kcal.to_bits(),
            clean.energy_kcal.to_bits(),
            "seed {} rate {:.2}: {} vs {}",
            seed, rate, faulty.energy_kcal, clean.energy_kcal
        );
    }
}
