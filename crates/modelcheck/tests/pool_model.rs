//! Exhaustive model of the work-stealing pool's termination and
//! exactly-once protocol (`polaroct-sched/src/pool.rs`).
//!
//! The model mirrors the real structure move for move: per-worker
//! deques and a global injector are `Mutex<VecDeque<Chunk>>` — exactly
//! what the vendored `crossbeam-deque` shim is — with lazy binary
//! splitting, LIFO own-pops, FIFO steals, a `done` counter published
//! with the same load/fetch_add pattern, and the idle path's
//! `yield_now` spin. Two workers over `n = 3` indices is small enough
//! to enumerate completely and large enough to contain every protocol
//! interaction: split-then-steal, steal-from-splitter, double-steal,
//! and the termination read racing a final `done` increment.
//!
//! Checked properties, over every interleaving:
//! * every index is executed **exactly once** ([`WriteOnce`] slots);
//! * the pool **terminates** (no lost-work spin: a livelock shows up as
//!   a deadlock of yield-parked workers);
//! * a poisoned (panicking) task is contained: it still advances `done`
//!   so sibling workers never hang, and only its own slot stays empty.
//!
//! A deliberately broken variant (poisoned task forgets the `done`
//! increment) must be caught — that guards the model's teeth.
//!
//! The suites run preemption-bounded (≤ 2 preemptive switches, the
//! CHESS bound): every schedule reachable with at most two adversarial
//! preemptions is covered; switches forced by blocking are free and
//! unlimited. The engine's own tests verify full exhaustiveness on
//! smaller models with the bound disabled.

use polaroct_modelcheck::cell::WriteOnce;
use polaroct_modelcheck::sync::atomic::{AtomicUsize, Ordering};
use polaroct_modelcheck::sync::Mutex;
use polaroct_modelcheck::{explore, model_with, thread, Config, Failure};
use std::collections::VecDeque;
use std::sync::Arc;

type Chunk = (usize, usize);

struct PoolState {
    injector: Mutex<VecDeque<Chunk>>,
    deques: Vec<Mutex<VecDeque<Chunk>>>,
    done: AtomicUsize,
    panics: AtomicUsize,
    slots: Vec<WriteOnce<usize>>,
    n: usize,
    /// Index whose task "panics" (contained, like `catch_unwind`).
    poison: Option<usize>,
    /// Bug injection: poisoned task skips the `done` increment.
    poison_skips_done: bool,
}

fn new_pool(workers: usize, n: usize, poison: Option<usize>, poison_skips_done: bool) -> PoolState {
    let mut injector = VecDeque::new();
    injector.push_back((0, n));
    PoolState {
        injector: Mutex::new(injector),
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        done: AtomicUsize::new(0),
        panics: AtomicUsize::new(0),
        slots: (0..n).map(|_| WriteOnce::new()).collect(),
        n,
        poison,
        poison_skips_done,
    }
}

fn worker(st: &PoolState, wid: usize) {
    let width = st.deques.len();
    loop {
        // 1. Own deque, LIFO (bottom).
        let mut chunk = st.deques[wid].lock().pop_back();
        // 2. Global injector, FIFO.
        if chunk.is_none() {
            chunk = st.injector.lock().pop_front();
        }
        // 3. Steal from the victims' top, FIFO (deterministic order in
        //    the model; the real pool randomizes, which only permutes
        //    schedules the explorer enumerates anyway).
        if chunk.is_none() {
            for v in 0..width {
                if v == wid {
                    continue;
                }
                chunk = st.deques[v].lock().pop_front();
                if chunk.is_some() {
                    break;
                }
            }
        }
        match chunk {
            Some((lo, hi)) => {
                // Lazy binary splitting: keep half for thieves.
                let mut hi = hi;
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    st.deques[wid].lock().push_back((mid, hi));
                    hi = mid;
                }
                // Execute index `lo` (grain 1 ⇒ hi == lo + 1).
                if st.poison == Some(lo) {
                    st.panics.fetch_add(1, Ordering::SeqCst);
                    if st.poison_skips_done {
                        continue; // BUG variant: lost completion credit
                    }
                } else {
                    st.slots[lo].set(wid);
                }
                st.done.fetch_add(1, Ordering::SeqCst);
            }
            None => {
                if st.done.load(Ordering::SeqCst) >= st.n {
                    break;
                }
                thread::yield_now();
            }
        }
    }
}

fn run_pool(workers: usize, n: usize, poison: Option<usize>, poison_skips_done: bool) {
    let st = Arc::new(new_pool(workers, n, poison, poison_skips_done));
    let handles: Vec<_> = (0..workers)
        .map(|wid| {
            let st = Arc::clone(&st);
            thread::spawn(move || worker(&st, wid))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Joins publish the workers' writes to this thread.
    assert_eq!(st.done.load(Ordering::SeqCst), n, "termination credit");
    let expected_panics = usize::from(poison.is_some());
    assert_eq!(st.panics.load(Ordering::SeqCst), expected_panics);
    for (i, slot) in st.slots.iter().enumerate() {
        if poison == Some(i) {
            assert!(!slot.is_set(), "poisoned slot {i} must stay empty");
        } else {
            assert!(slot.is_set(), "index {i} never executed");
        }
    }
}

#[test]
fn two_workers_execute_every_index_exactly_once() {
    model_with(
        Config {
            max_executions: 400_000,
            max_preemptions: Some(2),
            ..Config::default()
        },
        || run_pool(2, 3, None, false),
    );
}

#[test]
fn poisoned_task_is_contained_and_pool_still_terminates() {
    model_with(
        Config {
            max_executions: 400_000,
            max_preemptions: Some(2),
            ..Config::default()
        },
        || run_pool(2, 3, Some(1), false),
    );
}

#[test]
fn losing_the_done_credit_for_a_poisoned_task_hangs_the_pool() {
    // The bug the containment design exists to prevent: if a panicking
    // task does not advance `done`, idle workers spin forever. With two
    // spinners each re-check wakes the other, so the hang surfaces as a
    // livelock (step-bound blowup); a single stuck spinner would be a
    // yield-deadlock. Either way the explorer must flag it.
    let report = explore(
        Config {
            max_executions: 400_000,
            max_preemptions: Some(2),
            ..Config::default()
        },
        || run_pool(2, 3, Some(1), true),
    );
    match report.failure {
        Some(Failure::Deadlock { .. }) | Some(Failure::StepBound { .. }) => {}
        other => panic!("expected the lost-credit hang to be caught, got {other:?}"),
    }
}
