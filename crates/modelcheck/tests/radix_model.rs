//! Model of the radix-sort scatter partition protocol
//! (`polaroct-sched/src/radix.rs`).
//!
//! The real scatter writes `(key, payload)` pairs through a `SyncSlice`
//! with no per-slot synchronization; soundness rests on the
//! histogram/prefix-sum construction: the column-major exclusive scan
//! hands every `(chunk, bucket)` cell a start offset such that the
//! cells are **disjoint and tile `0..n`**, and each cell is written
//! only by its own chunk's task, exactly `hist[chunk][bucket]` times.
//!
//! The model is a miniature of that protocol (the real code cannot be
//! imported — `sched` depends on this crate for its shims): workers
//! claim chunks from a shared counter (exactly-once delivery is
//! `pool_model.rs`'s claim), replay their chunk through per-cell
//! cursors, and write `RaceCell` slots. The explorer's vector clocks
//! verify the disjointness claim on every interleaving; the negative
//! tests break the offset table the two ways that matter — overlapping
//! cells and a stale cursor — and both must surface as data races.

use polaroct_modelcheck::cell::RaceCell;
use polaroct_modelcheck::sync::atomic::{AtomicUsize, Ordering};
use polaroct_modelcheck::{explore, model, thread, Config, Failure};
use std::sync::Arc;

const BUCKETS: usize = 2;

/// How the per-(chunk, bucket) offset table is derived.
#[derive(Clone, Copy)]
enum Offsets {
    /// The real protocol: column-major exclusive prefix sum over the
    /// per-chunk histograms (bucket-major, chunk-minor).
    PrefixSum,
    /// Bug injection: every chunk uses the *bucket base* offset,
    /// ignoring the counts of preceding chunks — cells overlap.
    OverlappingBucketBase,
    /// Bug injection: chunk 0's cursor advances by 2 per write, so its
    /// writes spill past its cell into a neighbor chunk's cell.
    OverAdvancingCursor,
}

/// Scatter `chunks` (each element = its bucket id) into one output
/// array, `workers` tasks claiming chunks from a shared counter.
fn scatter_model(chunks: &[Vec<usize>], workers: usize, offsets_mode: Offsets) {
    let n: usize = chunks.iter().map(|c| c.len()).sum();

    // Per-chunk histograms (serial in the model; each is a pure
    // function of one chunk).
    let hists: Vec<[usize; BUCKETS]> = chunks
        .iter()
        .map(|c| {
            let mut h = [0usize; BUCKETS];
            for &b in c {
                h[b] += 1;
            }
            h
        })
        .collect();

    // Offset table under test.
    let mut offsets = vec![[0usize; BUCKETS]; chunks.len()];
    {
        let mut cursor = 0usize;
        let mut bucket_base = [0usize; BUCKETS];
        for b in 0..BUCKETS {
            bucket_base[b] = cursor;
            for (c, h) in hists.iter().enumerate() {
                offsets[c][b] = cursor;
                cursor += h[b];
            }
        }
        assert_eq!(cursor, n, "cells tile 0..n");
        if let Offsets::OverlappingBucketBase = offsets_mode {
            offsets.fill(bucket_base);
        }
    }

    type Slot = RaceCell<Option<(usize, usize)>>;
    let slots: Arc<Vec<Slot>> = Arc::new((0..n).map(|_| RaceCell::new(None)).collect());
    let next = Arc::new(AtomicUsize::new(0));
    let chunks: Arc<Vec<Vec<usize>>> = Arc::new(chunks.to_vec());
    let offsets = Arc::new(offsets);

    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let slots = Arc::clone(&slots);
            let next = Arc::clone(&next);
            let chunks = Arc::clone(&chunks);
            let offsets = Arc::clone(&offsets);
            thread::spawn(move || loop {
                let c = next.fetch_add(1, Ordering::SeqCst);
                if c >= chunks.len() {
                    break;
                }
                let mut cursor = offsets[c];
                for (k, &b) in chunks[c].iter().enumerate() {
                    slots[cursor[b]].set(Some((c, k)));
                    cursor[b] += match offsets_mode {
                        Offsets::OverAdvancingCursor if c == 0 => 2,
                        _ => 1,
                    };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    if let Offsets::PrefixSum = offsets_mode {
        // Exactly-once: every slot written, and by the (chunk, element)
        // the serial replay of the protocol would place there.
        let mut expect: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut cursor: Vec<[usize; BUCKETS]> = (0..chunks.len()).map(|c| offsets[c]).collect();
        for (c, chunk) in chunks.iter().enumerate() {
            for (k, &b) in chunk.iter().enumerate() {
                assert!(expect[cursor[c][b]].is_none(), "cells are disjoint");
                expect[cursor[c][b]] = Some((c, k));
                cursor[c][b] += 1;
            }
        }
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.get(), expect[i], "slot {i}");
            assert!(slot.get().is_some(), "slot {i} written exactly once");
        }
    }
}

/// Two chunks with different bucket mixes: chunk 0 = [b0, b1],
/// chunk 1 = [b1, b1]. Skewed on purpose — bucket 1's cells from the
/// two chunks abut, the configuration an off-by-one in the prefix sum
/// would break first.
fn skewed_chunks() -> Vec<Vec<usize>> {
    vec![vec![0, 1], vec![1, 1]]
}

#[test]
fn prefix_sum_scatter_is_race_free_and_exactly_once() {
    model(|| scatter_model(&skewed_chunks(), 2, Offsets::PrefixSum));
}

#[test]
fn single_worker_scatter_is_trivially_correct() {
    model(|| scatter_model(&skewed_chunks(), 1, Offsets::PrefixSum));
}

#[test]
fn overlapping_offsets_are_reported_as_a_race() {
    // Both chunks write bucket 1 starting at the bucket base — their
    // cells overlap, so two unordered writes hit the same slot in some
    // (in fact every) interleaving.
    let report = explore(Config::default(), || {
        scatter_model(&skewed_chunks(), 2, Offsets::OverlappingBucketBase)
    });
    match report.failure {
        Some(Failure::Race { description, .. }) => {
            assert!(description.contains("write"), "description: {description}");
        }
        other => panic!("expected a data race, got {other:?}"),
    }
}

#[test]
fn cursor_spilling_past_its_cell_is_reported_as_a_race() {
    // Chunk 0 = [b1, b1] owns slots {0, 1} of bucket 1; the
    // over-advancing cursor sends its second write to slot 2, which is
    // chunk 1's cell — an unordered cross-thread write pair.
    let chunks = vec![vec![1, 1], vec![1]];
    let report =
        explore(Config::default(), move || scatter_model(&chunks, 2, Offsets::OverAdvancingCursor));
    match report.failure {
        Some(Failure::Race { description, .. }) => {
            assert!(description.contains("write"), "description: {description}");
        }
        other => panic!("expected a data race, got {other:?}"),
    }
}
