//! Self-tests for the exploration engine: known-good models must pass
//! exhaustively, and known-bad models must be caught — with pruning on
//! (the default) and off (plain DFS) agreeing on both.

use polaroct_modelcheck::cell::{RaceCell, WriteOnce};
use polaroct_modelcheck::sync::atomic::{AtomicUsize, Ordering};
use polaroct_modelcheck::sync::{channel, Mutex};
use polaroct_modelcheck::{explore, model, model_with, thread, Config, Failure};
use std::sync::Arc;

fn cfg(dpor: bool) -> Config {
    Config {
        dpor,
        ..Config::default()
    }
}

// ---------------------------------------------------------------------------
// Known-good models pass
// ---------------------------------------------------------------------------

#[test]
fn atomic_counter_is_exact() {
    model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn mutex_guards_plain_memory() {
    // A RaceCell protected by a Mutex must never report a race: the
    // lock's vector-clock edges order every access pair.
    model(|| {
        let m = Arc::new(Mutex::new(()));
        let c = Arc::new(RaceCell::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let _g = m.lock();
                    let v = c.get();
                    c.set(v + 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 2);
    });
}

#[test]
fn channel_delivers_in_order() {
    model(|| {
        let (tx, rx) = channel::unbounded();
        let t = thread::spawn(move || {
            tx.send(1);
            tx.send(2);
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    });
}

#[test]
fn recv_timeout_fires_when_no_sender_will_send() {
    // The sender side stays alive but never sends: a blocking recv
    // would deadlock, recv_timeout must time out instead.
    model(|| {
        let (tx, rx) = channel::unbounded::<u8>();
        let got = rx.recv_timeout(std::time::Duration::from_millis(1));
        assert_eq!(got, Err(channel::RecvTimeoutError::Timeout));
        drop(tx);
    });
}

#[test]
fn yielding_spin_loop_terminates() {
    // The pool's "spin until work appears" idiom: yield_now parks the
    // spinner until another thread steps, so exploration terminates.
    model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
        });
        while flag.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        t.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// Known-bad models are caught (with and without pruning)
// ---------------------------------------------------------------------------

#[test]
fn unsynchronized_writes_race() {
    for dpor in [true, false] {
        let report = explore(cfg(dpor), || {
            let c = Arc::new(RaceCell::new(0u32));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || c2.set(1));
            c.set(2);
            t.join().unwrap();
        });
        match report.failure {
            Some(Failure::Race { .. }) => {}
            other => panic!("expected a data race (dpor={dpor}), got {other:?}"),
        }
    }
}

#[test]
fn lost_update_read_modify_write_is_caught() {
    // Classic lost update: load + store instead of fetch_add. Some
    // interleaving makes the final count 1; the assert catches it.
    for dpor in [true, false] {
        let report = explore(cfg(dpor), || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        match report.failure {
            Some(Failure::Panic { message, .. }) => {
                assert!(message.contains("lost update"), "message: {message}")
            }
            other => panic!("expected the lost-update assert (dpor={dpor}), got {other:?}"),
        }
    }
}

#[test]
fn ab_ba_lock_order_deadlocks() {
    for dpor in [true, false] {
        let report = explore(cfg(dpor), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            t.join().unwrap();
        });
        match report.failure {
            Some(Failure::Deadlock { .. }) => {}
            other => panic!("expected a deadlock (dpor={dpor}), got {other:?}"),
        }
    }
}

#[test]
fn blocking_recv_with_live_idle_sender_deadlocks() {
    // The blind-recv shape: the sender is alive (no disconnect) but
    // never sends — a plain `recv` hangs forever.
    let report = explore(cfg(true), || {
        let (tx, rx) = channel::unbounded::<u8>();
        let _ = rx.recv();
        drop(tx);
    });
    match report.failure {
        Some(Failure::Deadlock { waiting, .. }) => {
            assert!(waiting.iter().any(|w| w.contains("ChanRecv")));
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

#[test]
fn write_once_double_write_is_caught() {
    let report = explore(cfg(true), || {
        let w = Arc::new(Mutex::new(()));
        let slot = Arc::new(WriteOnce::new());
        let (w2, s2) = (Arc::clone(&w), Arc::clone(&slot));
        let t = thread::spawn(move || {
            let _g = w2.lock();
            s2.set(1u32);
        });
        {
            let _g = w.lock();
            slot.set(2u32);
        }
        t.join().unwrap();
    });
    match report.failure {
        Some(Failure::Panic { message, .. }) => {
            assert!(message.contains("exactly-once"), "message: {message}")
        }
        other => panic!("expected the WriteOnce assert, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Exploration quality
// ---------------------------------------------------------------------------

#[test]
fn sc_interleavings_are_exhaustive() {
    // Dekker-style: both threads store their flag, then read the other.
    // Under sequential consistency (0,0) is impossible; the other three
    // outcomes must all be observed.
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;
    let outcomes = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let report = explore(cfg(false), move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r0 = x.load(Ordering::SeqCst);
        let r1 = t.join().unwrap();
        sink.lock().unwrap().insert((r0, r1));
    });
    assert!(report.failure.is_none(), "failure: {:?}", report.failure);
    assert!(report.complete, "exploration did not finish");
    let seen = outcomes.lock().unwrap().clone();
    let expected: std::collections::BTreeSet<_> =
        [(0usize, 1usize), (1, 0), (1, 1)].into_iter().collect();
    assert_eq!(seen, expected, "SC outcome set mismatch");
}

#[test]
fn sleep_sets_prune_without_losing_outcomes() {
    // Two threads on two *independent* atomics: pruning should cut the
    // schedule count strictly, and both runs must be complete and pass.
    let run = |dpor: bool| {
        let report = explore(cfg(dpor), || {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                a2.store(1, Ordering::SeqCst);
                a2.store(2, Ordering::SeqCst);
            });
            b.store(1, Ordering::SeqCst);
            b.store(2, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
            assert_eq!(b.load(Ordering::SeqCst), 2);
        });
        assert!(report.failure.is_none(), "dpor={dpor}: {:?}", report.failure);
        assert!(report.complete, "dpor={dpor} did not finish");
        report.executions
    };
    let with_dpor = run(true);
    let without = run(false);
    assert!(
        with_dpor < without,
        "sleep sets did not prune: {with_dpor} vs {without}"
    );
}

#[test]
fn nondet_timeouts_explore_spurious_expiry() {
    // With nondeterministic timeouts, recv_timeout may fire even though
    // the sender eventually sends: both outcomes must be explored.
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;
    let outcomes = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let config = Config {
        nondet_timeouts: true,
        ..Config::default()
    };
    let report = explore(config, move || {
        let (tx, rx) = channel::unbounded();
        let t = thread::spawn(move || {
            tx.send(7u8);
        });
        let got = rx.recv_timeout(std::time::Duration::from_millis(1));
        sink.lock().unwrap().insert(got.is_ok());
        t.join().unwrap();
    });
    assert!(report.failure.is_none(), "failure: {:?}", report.failure);
    let seen = outcomes.lock().unwrap().clone();
    assert!(
        seen.contains(&true) && seen.contains(&false),
        "expected both delivery and timeout, saw {seen:?}"
    );
}

#[test]
fn replay_is_deterministic() {
    let count = || {
        let report = explore(cfg(true), || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        });
        assert!(report.complete && report.failure.is_none());
        report.executions
    };
    assert_eq!(count(), count());
}

#[test]
fn model_with_reports_budget_exhaustion() {
    let tight = Config {
        max_executions: 1,
        ..Config::default()
    };
    let result = std::panic::catch_unwind(|| {
        model_with(tight, || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        });
    });
    assert!(result.is_err(), "a 1-execution budget cannot be exhaustive");
}
