//! Model of the `SyncSlice` write-once disjointness contract
//! (`polaroct-sched/src/pool.rs`).
//!
//! `SyncSlice` lets pool workers write `out[i]` through a raw pointer
//! with no per-slot synchronization; soundness rests on two claims:
//!
//! 1. the index space is partitioned — no two tasks share an `i`
//!    (exactly-once execution, checked by `pool_model.rs`);
//! 2. the writes are published to the reader by the scoped-thread
//!    joins, not by any per-slot ordering.
//!
//! Here each slot is a [`RaceCell`] — the model-world equivalent of an
//! unsynchronized memory location — so the explorer's vector clocks
//! check claim 2 directly: if join edges were not sufficient, reading
//! the slots after the join would race. The negative test drops
//! claim 1 (two tasks write the same slot) and must be caught as a
//! data race.

use polaroct_modelcheck::cell::RaceCell;
use polaroct_modelcheck::sync::atomic::{AtomicUsize, Ordering};
use polaroct_modelcheck::{explore, model, thread, Config, Failure};
use std::sync::Arc;

/// try_map in miniature: workers claim indices from a shared counter
/// (a stand-in for the deque protocol, which `pool_model.rs` verifies
/// delivers exactly-once) and write their slot with no further sync.
fn try_map_model(n: usize, workers: usize, collide: Option<(usize, usize)>) {
    let slots: Arc<Vec<RaceCell<Option<usize>>>> =
        Arc::new((0..n).map(|_| RaceCell::new(None)).collect());
    let next = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..workers)
        .map(|wid| {
            let slots = Arc::clone(&slots);
            let next = Arc::clone(&next);
            thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                // Bug injection: worker also writes a slot it does not
                // own, breaking disjointness.
                if let Some((at, victim)) = collide {
                    if i == at {
                        slots[victim].set(Some(wid + 100));
                    }
                }
                slots[i].set(Some(i * 7));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // The joins are the only ordering between the workers' raw writes
    // and these reads — exactly the real try_map publication argument.
    for (i, slot) in slots.iter().enumerate() {
        if collide.is_none() {
            assert_eq!(slot.get(), Some(i * 7), "slot {i}");
        }
    }
}

#[test]
fn disjoint_writes_join_publication_is_race_free() {
    model(|| try_map_model(3, 2, None));
}

#[test]
fn overlapping_writes_are_reported_as_a_race() {
    // Worker handling index 1 also stomps slot 2 — some interleaving
    // has two unordered writes (or a write racing the other worker's
    // write) on slot 2.
    let report = explore(Config::default(), || try_map_model(3, 2, Some((1, 2))));
    match report.failure {
        Some(Failure::Race { description, .. }) => {
            assert!(description.contains("write"), "description: {description}");
        }
        // Depending on schedule the collision may also surface as the
        // final-value assert — but a race must be found first because
        // race checking is schedule-independent (clock-based).
        other => panic!("expected a data race, got {other:?}"),
    }
}

#[test]
fn panicking_task_slot_stays_unwritten_without_racing() {
    // try_map's panic path: f(i) panics ⇒ the write is skipped, the
    // slot stays None, and nothing races. (catch_unwind is modeled by
    // simply skipping the write.)
    model(|| {
        let n = 3;
        let poisoned = 1usize;
        let slots: Arc<Vec<RaceCell<Option<usize>>>> =
            Arc::new((0..n).map(|_| RaceCell::new(None)).collect());
        let next = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let slots = Arc::clone(&slots);
                let next = Arc::clone(&next);
                thread::spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    if i == poisoned {
                        continue; // body panicked: no write happens
                    }
                    slots[i].set(Some(i));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, slot) in slots.iter().enumerate() {
            if i == poisoned {
                assert_eq!(slot.get(), None);
            } else {
                assert_eq!(slot.get(), Some(i));
            }
        }
    });
}
