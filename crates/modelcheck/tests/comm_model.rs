//! Model of the cluster communicator's two-round fault-tolerant gather
//! handshake (`polaroct-cluster/src/comm.rs::ft_exchange`).
//!
//! The model reproduces the protocol's moving parts 1:1, on the shimmed
//! channels (bounded(1), like the real fabric):
//!
//! * round 1 — every member `try_send`s its contribution up; the root
//!   gathers with `recv_timeout`, marking silent ranks dead;
//! * recovery rounds — lost contributions are re-assigned round-robin
//!   over the survivors (rotated per attempt); members answer
//!   `Down::Recover` with `Up::Recovered`; stale `Up::Data` arriving
//!   after a timeout is dropped, not double-installed;
//! * round 2 — the root `try_send`s `Down::Final` to survivors and
//!   `Down::Abort` to dead-but-listening ranks; members wait out a
//!   widened window.
//!
//! Checked properties, per interleaving: the handshake never deadlocks,
//! every contribution is installed exactly once (the folded sum is
//! exact even under faults, because Exact recovery regenerates the true
//! value), and every surviving rank returns the same sum. The
//! acceptance-criterion test re-introduces the blind-`recv` bug (a
//! plain `recv` where the timeout belongs) and proves the model catches
//! it as a deadlock.

use polaroct_modelcheck::sync::atomic::{AtomicUsize, Ordering};
use polaroct_modelcheck::sync::channel::{self, Receiver, RecvTimeoutError, Sender};
use polaroct_modelcheck::{explore, model_with, thread, Config, Failure};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
enum Up {
    /// Round-1 contribution; `ok = false` models a corrupt payload
    /// (CRC mismatch at the root: contribution lost, rank alive).
    Data { value: u64, ok: bool },
    Recovered { parts: Vec<(usize, u64)> },
}

#[derive(Debug)]
enum Down {
    Recover { assignments: Vec<usize> },
    Final { sum: u64 },
    Abort,
}

/// Per-rank fault injection for one collective.
#[derive(Clone, Copy, PartialEq)]
enum Fault {
    None,
    /// Rank dies before the collective: sends nothing, listens to
    /// nothing. The fabric keeps its channel ends alive, so the root
    /// sees silence — not disconnection (the real failure mode).
    Kill,
    /// Payload corrupted in flight: arrives, fails the checksum.
    Corrupt,
}

struct Fabric {
    size: usize,
    up_tx: Vec<Sender<Up>>,
    up_rx: Vec<Receiver<Up>>,
    down_tx: Vec<Sender<Down>>,
    down_rx: Vec<Receiver<Down>>,
    dead: Vec<AtomicUsize>,
}

impl Fabric {
    fn new(size: usize) -> Self {
        let (mut up_tx, mut up_rx, mut down_tx, mut down_rx) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for _ in 0..size {
            let (t, r) = channel::bounded(1);
            up_tx.push(t);
            up_rx.push(r);
            let (t, r) = channel::bounded(1);
            down_tx.push(t);
            down_rx.push(r);
        }
        Fabric {
            size,
            up_tx,
            up_rx,
            down_tx,
            down_rx,
            dead: (0..size).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    fn is_dead(&self, r: usize) -> bool {
        self.dead[r].load(Ordering::SeqCst) != 0
    }

    fn mark_dead(&self, r: usize) {
        self.dead[r].store(1, Ordering::SeqCst);
    }
}

/// Rank r's true contribution (what Exact recovery regenerates).
fn contrib(r: usize) -> u64 {
    (r as u64 + 1) * 10
}

const TIMEOUT: Duration = Duration::from_millis(1);
const MAX_ATTEMPTS: usize = 4;

/// Root half of the handshake. `blind_recv` re-introduces the bug the
/// protocol exists to avoid: a plain `recv` instead of `recv_timeout`.
fn root(fab: &Fabric, blind_recv: bool) -> Result<u64, &'static str> {
    let p = fab.size;
    let mut entries: Vec<Option<u64>> = vec![None; p];
    entries[0] = Some(contrib(0));
    let mut missing: Vec<usize> = Vec::new();
    // `r` indexes the fabric's channel arrays and `entries` in parallel,
    // mirroring the real root loop in comm.rs.
    #[allow(clippy::needless_range_loop)]
    for r in 1..p {
        if fab.is_dead(r) {
            missing.push(r);
            continue;
        }
        let got = if blind_recv {
            // BUG variant: waits forever on a silent rank.
            fab.up_rx[r].recv().map_err(|_| RecvTimeoutError::Disconnected)
        } else {
            fab.up_rx[r].recv_timeout(TIMEOUT)
        };
        match got {
            Ok(Up::Data { value, ok: true }) => entries[r] = Some(value),
            Ok(Up::Data { ok: false, .. }) => missing.push(r), // corrupt: alive, lost
            Ok(Up::Recovered { .. }) => missing.push(r),       // stale: drop
            Err(_) => {
                fab.mark_dead(r);
                missing.push(r);
            }
        }
    }

    let mut attempt = 0usize;
    while !missing.is_empty() {
        attempt += 1;
        if attempt > MAX_ATTEMPTS {
            for r in 1..p {
                if !fab.is_dead(r) {
                    let _ = fab.down_tx[r].try_send(Down::Abort);
                }
            }
            return Err("recovery exhausted");
        }
        let alive: Vec<usize> = (0..p).filter(|&r| !fab.is_dead(r)).collect();
        // Round-robin assignment, rotated per attempt (as in comm.rs).
        let mut assign: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
        for (i, &lost) in missing.iter().enumerate() {
            assign[alive[(i + attempt - 1) % alive.len()]].push(lost);
        }
        for &r in &alive {
            if r == 0 {
                continue;
            }
            let msg = Down::Recover {
                assignments: assign[r].clone(),
            };
            if fab.down_tx[r].try_send(msg).is_err() {
                fab.mark_dead(r);
            }
        }
        for &lost in &assign[0] {
            entries[lost] = Some(contrib(lost));
        }
        for &r in &alive {
            if r == 0 || fab.is_dead(r) {
                continue;
            }
            match fab.up_rx[r].recv_timeout(TIMEOUT) {
                Ok(Up::Recovered { parts }) => {
                    for (lost, v) in parts {
                        entries[lost] = Some(v);
                    }
                }
                Ok(Up::Data { .. }) => { /* stale round-1 message: drop */ }
                Err(_) => fab.mark_dead(r),
            }
        }
        missing = (0..p).filter(|&r| entries[r].is_none()).collect();
    }

    let sum: u64 = entries.iter().map(|e| e.expect("no rank missing")).sum();
    for r in 1..p {
        if fab.is_dead(r) {
            let _ = fab.down_tx[r].try_send(Down::Abort);
        } else if fab.down_tx[r].try_send(Down::Final { sum }).is_err() {
            fab.mark_dead(r);
        }
    }
    Ok(sum)
}

/// Member half of the handshake.
fn member(fab: &Fabric, rank: usize, fault: Fault) -> Result<u64, &'static str> {
    if fault == Fault::Kill {
        return Err("killed");
    }
    let _ = fab.up_tx[rank].try_send(Up::Data {
        value: contrib(rank),
        ok: fault != Fault::Corrupt,
    });
    // The root may serially wait TIMEOUT per rank, so the member's
    // window covers the whole pass (size+1 slots in the real code; the
    // model's timeouts are semantic, the width is symbolic).
    let window = TIMEOUT * (fab.size as u32 + 1);
    loop {
        match fab.down_rx[rank].recv_timeout(window) {
            Ok(Down::Final { sum }) => return Ok(sum),
            Ok(Down::Recover { assignments }) => {
                let parts: Vec<(usize, u64)> =
                    assignments.into_iter().map(|lost| (lost, contrib(lost))).collect();
                let _ = fab.up_tx[rank].try_send(Up::Recovered { parts });
            }
            Ok(Down::Abort) => return Err("aborted"),
            Err(RecvTimeoutError::Timeout) => return Err("window expired"),
            Err(RecvTimeoutError::Disconnected) => return Err("disconnected"),
        }
    }
}

/// Run one collective over `faults.len() + 1` ranks; returns
/// (root result, member results).
#[allow(clippy::type_complexity)]
fn run_collective(
    faults: &[Fault],
    blind_recv: bool,
) -> (Result<u64, &'static str>, Vec<Result<u64, &'static str>>) {
    let size = faults.len() + 1;
    let fab = Arc::new(Fabric::new(size));
    let handles: Vec<_> = faults
        .iter()
        .enumerate()
        .map(|(i, &fault)| {
            let fab = Arc::clone(&fab);
            let rank = i + 1;
            thread::spawn(move || member(&fab, rank, fault))
        })
        .collect();
    let got = root(&fab, blind_recv);
    let members: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    (got, members)
}

fn cfg() -> Config {
    Config {
        max_executions: 400_000,
        max_preemptions: Some(3),
        ..Config::default()
    }
}

#[test]
fn fault_free_gather_agrees_on_the_exact_sum() {
    model_with(cfg(), || {
        let (root_sum, members) = run_collective(&[Fault::None, Fault::None], false);
        let want = contrib(0) + contrib(1) + contrib(2);
        assert_eq!(root_sum, Ok(want));
        for (i, m) in members.iter().enumerate() {
            assert_eq!(*m, Ok(want), "rank {}", i + 1);
        }
    });
}

#[test]
fn killed_rank_is_recovered_and_survivors_agree() {
    model_with(cfg(), || {
        let (root_sum, members) = run_collective(&[Fault::None, Fault::Kill], false);
        // Exact recovery regenerates rank 2's true value: the sum is
        // the *full* sum even though rank 2 never spoke.
        let want = contrib(0) + contrib(1) + contrib(2);
        assert_eq!(root_sum, Ok(want));
        assert_eq!(members[0], Ok(want), "surviving rank must get Final");
        assert_eq!(members[1], Err("killed"));
    });
}

#[test]
fn two_corrupt_payloads_trigger_member_side_recovery() {
    // Both members' payloads fail the checksum: the root stays in
    // contact with both (alive, contribution lost) and the round-robin
    // assignment hands one regeneration to a *member* — exercising
    // Down::Recover with work, Up::Recovered, and install.
    model_with(cfg(), || {
        let (root_sum, members) = run_collective(&[Fault::Corrupt, Fault::Corrupt], false);
        let want = contrib(0) + contrib(1) + contrib(2);
        assert_eq!(root_sum, Ok(want));
        for (i, m) in members.iter().enumerate() {
            assert_eq!(*m, Ok(want), "rank {}", i + 1);
        }
    });
}

#[test]
fn blind_recv_bug_is_caught_as_a_deadlock() {
    // The acceptance-criterion regression: replace the root's
    // recv_timeout with a blocking recv and kill a rank. The fabric
    // holds the dead rank's sender, so the recv can never error — the
    // explorer must report the root stuck on ChanRecv.
    let report = explore(cfg(), || {
        let _ = run_collective(&[Fault::None, Fault::Kill], true);
    });
    match report.failure {
        Some(Failure::Deadlock { waiting, .. }) => {
            assert!(
                waiting.iter().any(|w| w.contains("ChanRecv")),
                "deadlock should pin the blind recv, waiting: {waiting:?}"
            );
        }
        other => panic!("expected the blind-recv deadlock, got {other:?}"),
    }
}

#[test]
fn spurious_timeouts_never_corrupt_the_sum() {
    // Nondeterministic timeouts model slow senders: the root may give
    // up on a rank whose Data is still in flight. Whatever the
    // schedule, Exact recovery keeps the folded sum exact, the
    // handshake terminates, and the stale Data is dropped (never
    // double-installed).
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;
    let member_outcomes = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = Arc::clone(&member_outcomes);
    let config = Config {
        nondet_timeouts: true,
        max_executions: 400_000,
        max_preemptions: Some(2),
        ..Config::default()
    };
    let report = explore(config, move || {
        let (root_sum, members) = run_collective(&[Fault::None], false);
        let want = contrib(0) + contrib(1);
        // The root must always terminate with the exact sum — recovery
        // absorbs any spurious timeout.
        assert_eq!(root_sum, Ok(want), "root sum corrupted");
        // The member either got Final or was (spuriously) aborted /
        // timed out — but never a wrong sum.
        if let Ok(s) = members[0] {
            assert_eq!(s, want, "member sum corrupted");
        }
        sink.lock().unwrap().insert(members[0].is_ok());
    });
    assert!(
        report.failure.is_none(),
        "handshake failed under spurious timeouts: {:?}",
        report.failure
    );
    let seen = member_outcomes.lock().unwrap().clone();
    assert!(
        seen.contains(&true),
        "the happy path was never explored: {seen:?}"
    );
}
