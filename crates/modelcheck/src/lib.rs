//! # polaroct-modelcheck
//!
//! A vendored, dependency-free, loom-style **bounded interleaving
//! explorer** for the workspace's concurrency protocols (the
//! work-stealing pool's termination/exactly-once protocol, the
//! `SyncSlice` disjoint-write invariant, and the cluster communicator's
//! two-round fault-tolerant gather handshake).
//!
//! ## How it works
//!
//! A model is a closure run many times under [`model`] (or the
//! non-panicking [`explore`]). Inside the closure, code uses the shimmed
//! primitives from this crate — [`sync::atomic`], [`sync::Mutex`],
//! [`sync::channel`], [`thread::spawn`], [`cell::RaceCell`] — instead of
//! `std`'s. Every operation on a shimmed primitive is a *schedule point*:
//! the runtime parks the OS thread and a central scheduler decides which
//! model thread moves next. A depth-first search over those decisions
//! enumerates every interleaving (up to the configured bounds), so a bug
//! that needs one adversarial preemption in a million is found
//! deterministically instead of probabilistically.
//!
//! What the explorer checks, per interleaving:
//!
//! * **assertions** — any panic in model code fails the exploration and
//!   reports the schedule that produced it;
//! * **deadlocks** — a state where live threads exist but none can move
//!   (the classic lost-wakeup / blind-`recv` shape) is reported with
//!   every thread's pending operation;
//! * **data races** — [`cell::RaceCell`] accesses are checked for
//!   happens-before ordering with vector clocks (synchronization flows
//!   through the shimmed atomics, locks, channels, spawn and join);
//! * **livelock / runaway** — executions exceeding the step bound fail
//!   loudly rather than spinning CI forever.
//!
//! ## Pruning
//!
//! Exhaustive enumeration is factorial; two standard reductions keep the
//! suites tractable with **no loss of coverage**:
//!
//! * only *visible* operations (shimmed primitives) are schedule points —
//!   thread-local compute never branches the search;
//! * **sleep sets** (the classic DPOR ingredient, Godefroid '96): after a
//!   subtree rooted at choice `t` has been fully explored, `t` is put to
//!   sleep for the sibling subtrees and only woken by an operation that
//!   *depends* on `t`'s pending operation (same object, not both reads).
//!   Sleep sets prune provably-equivalent interleavings only; every
//!   Mazurkiewicz trace keeps at least one representative. Disable with
//!   [`Config::dpor`]` = false` to cross-check (the engine's own test
//!   suite does).
//!
//! ## Timeout semantics
//!
//! `recv_timeout` on a shimmed channel models the timeout as *fires only
//! when it must*: the receive is eligible to time out when the system is
//! otherwise stuck (every other thread blocked or finished), which
//! abstracts "the timeout outlives any finite amount of other work".
//! With [`Config::nondet_timeouts`]` = true` a timeout may additionally
//! fire *any* time the queue is empty — that explores spurious/early
//! expiry (a straggler whose message arrives after the deadline) at the
//! cost of a larger search space. A blocking `recv` against a sender
//! that died is the deadlock the fault-tolerant communicator exists to
//! avoid — the explorer reports exactly that if a model (re)introduces
//! it.
//!
//! ## Rules for model code
//!
//! * Models must be deterministic: no wall-clock, no OS randomness, no
//!   real I/O. Schedules are replayed; nondeterminism is detected and
//!   reported as [`Failure::Nondeterminism`].
//! * Create shimmed objects *inside* the model closure; do not smuggle
//!   them across executions through statics.
//! * Atomics are explored under **sequential consistency** (every atomic
//!   op is a full acquire+release sync). That over-synchronizes relative
//!   to `Relaxed`-heavy code: a bug that needs weak-memory reordering is
//!   out of scope of this checker (Miri and careful `Ordering` review
//!   cover that axis; see DESIGN.md §9).
//!
//! The crate is `#![forbid(unsafe_code)]`: the runtime serializes model
//! threads, so everything — including the `Mutex`/`RaceCell` interiors —
//! is expressible with safe `std` primitives.

#![forbid(unsafe_code)]

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::{explore, model, model_with, Config, Failure, Report};
