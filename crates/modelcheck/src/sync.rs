//! Shimmed synchronization primitives.
//!
//! Inside a model every operation here is a schedule point; outside a
//! model each type falls back to its real `std` behavior, so code
//! compiled against the shims (e.g. `polaroct-sched` under
//! `--cfg modelcheck`) still runs normally in plain unit tests.

use crate::rt::{self, Grant, ObjectKind, Op};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Schedule an op against `id` if we're in a model *and* the object was
/// registered in this execution; `None` means "do the real thing".
fn point(id: Option<usize>, mk: impl FnOnce(usize) -> Op) -> Option<Grant> {
    let obj = id?;
    rt::schedule(move || mk(obj))
}

fn lock_clean<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Drop-in subset of [`std::sync::atomic`]. Orderings are accepted and
/// forwarded to the fallback path; under the model every access is
/// explored as sequentially consistent (see the crate docs).
pub mod atomic {
    use super::point;
    use crate::rt::{self, ObjectKind, Op};
    pub use std::sync::atomic::Ordering;

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Model-checked counterpart of the `std` atomic of the
            /// same name.
            #[derive(Debug)]
            pub struct $name {
                inner: $std,
                id: Option<usize>,
            }

            impl $name {
                pub fn new(v: $int) -> Self {
                    Self {
                        inner: <$std>::new(v),
                        id: rt::register_object(ObjectKind::Atomic),
                    }
                }

                pub fn load(&self, order: Ordering) -> $int {
                    point(self.id, |obj| Op::AtomicLoad { obj });
                    self.inner.load(order)
                }

                pub fn store(&self, v: $int, order: Ordering) {
                    point(self.id, |obj| Op::AtomicStore { obj });
                    self.inner.store(v, order);
                }

                pub fn swap(&self, v: $int, order: Ordering) -> $int {
                    point(self.id, |obj| Op::AtomicRmw { obj });
                    self.inner.swap(v, order)
                }

                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    point(self.id, |obj| Op::AtomicRmw { obj });
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                    point(self.id, |obj| Op::AtomicRmw { obj });
                    self.inner.fetch_sub(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    point(self.id, |obj| Op::AtomicRmw { obj });
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    // The model explores a deterministic machine; weak
                    // spurious failure is not simulated.
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

    /// Model-checked counterpart of `std::sync::atomic::AtomicBool`.
    #[derive(Debug)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
        id: Option<usize>,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
                id: rt::register_object(ObjectKind::Atomic),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            point(self.id, |obj| Op::AtomicLoad { obj });
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            point(self.id, |obj| Op::AtomicStore { obj });
            self.inner.store(v, order);
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            point(self.id, |obj| Op::AtomicRmw { obj });
            self.inner.swap(v, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            point(self.id, |obj| Op::AtomicRmw { obj });
            self.inner.compare_exchange(current, new, success, failure)
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-checked mutex. `lock` is a schedule point that blocks (in
/// model time) while another model thread holds the lock; the inner
/// `std` mutex is then always uncontended because model threads are
/// serialized.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
    id: Option<usize>,
}

/// Guard for [`Mutex`]; releases the model-level lock on drop.
pub struct MutexGuard<'a, T> {
    guard: Option<StdMutexGuard<'a, T>>,
    id: Option<usize>,
}

impl<T> Mutex<T> {
    pub fn new(v: T) -> Self {
        Self {
            inner: StdMutex::new(v),
            id: rt::register_object(ObjectKind::Mutex),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        point(self.id, |obj| Op::Lock { obj });
        MutexGuard {
            guard: Some(lock_clean(&self.inner)),
            id: self.id,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Free the real lock first so the model-level Unlock (which may
        // immediately enable another thread's Lock) finds it available.
        self.guard.take();
        if let Some(obj) = self.id {
            rt::schedule_in_drop(move || Op::Unlock { obj });
        }
    }
}

// ---------------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------------

/// Crossbeam-flavoured MPSC channels (`unbounded` / `bounded`) with
/// model-aware blocking, `try_send`, and semantic `recv_timeout`.
pub mod channel {
    use super::{lock_clean, point};
    use crate::rt::{self, Grant, ObjectKind, Op};
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar};
    use std::time::Duration;

    struct Inner<T> {
        q: super::StdMutex<VecDeque<T>>,
        cv: Condvar,
        cap: Option<usize>,
        /// Fallback-path sender count (model path uses shadow state).
        senders: AtomicUsize,
        id: Option<usize>,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiver outlived every sender and the queue drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why `recv_timeout` returned without a message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Why `try_send` could not enqueue.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            q: super::StdMutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            id: rt::register_object(ObjectKind::Chan { cap }),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Channel with unlimited queueing.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    impl<T> Sender<T> {
        /// Blocking send (blocks in model time when bounded and full).
        pub fn send(&self, v: T) {
            match point(self.inner.id, |obj| Op::ChanSend { obj }) {
                Some(_) => {
                    lock_clean(&self.inner.q).push_back(v);
                }
                None => {
                    let mut q = lock_clean(&self.inner.q);
                    while self.inner.cap.map(|c| q.len() >= c).unwrap_or(false) {
                        q = self.inner.cv.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    q.push_back(v);
                    self.inner.cv.notify_all();
                }
            }
        }

        /// Non-blocking send; fails immediately at capacity.
        pub fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
            match point(self.inner.id, |obj| Op::ChanTrySend { obj }) {
                Some(Grant::Full) => Err(TrySendError::Full(v)),
                Some(_) => {
                    lock_clean(&self.inner.q).push_back(v);
                    Ok(())
                }
                None => {
                    let mut q = lock_clean(&self.inner.q);
                    if self.inner.cap.map(|c| q.len() >= c).unwrap_or(false) {
                        return Err(TrySendError::Full(v));
                    }
                    q.push_back(v);
                    self.inner.cv.notify_all();
                    Ok(())
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            rt::note_sender_clone(self.inner.id);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.inner.senders.fetch_sub(1, Ordering::SeqCst);
            if let Some(obj) = self.inner.id {
                rt::schedule_in_drop(move || Op::ChanSenderDrop { obj });
            }
            self.inner.cv.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive. In a model this is only granted when a
        /// message exists or every sender has dropped — a receive that
        /// can never be satisfied is reported as a deadlock.
        pub fn recv(&self) -> Result<T, RecvError> {
            match point(self.inner.id, |obj| Op::ChanRecv { obj, timeout: None }) {
                Some(Grant::Deliver) => Ok(lock_clean(&self.inner.q)
                    .pop_front()
                    .expect("model granted Deliver on an empty queue")),
                Some(_) => Err(RecvError),
                None => {
                    let mut q = lock_clean(&self.inner.q);
                    loop {
                        if let Some(v) = q.pop_front() {
                            self.inner.cv.notify_all();
                            return Ok(v);
                        }
                        if self.inner.senders.load(Ordering::SeqCst) == 0 {
                            return Err(RecvError);
                        }
                        q = self.inner.cv.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }

        /// Receive with a timeout. The model does not simulate real
        /// time — timeouts fire *semantically* (see crate docs) — but
        /// the duration's relative magnitude is honoured: when several
        /// threads are timeout-blocked at once, only the shortest
        /// windows may fire. The fallback path uses the real clock.
        pub fn recv_timeout(&self, dur: Duration) -> Result<T, RecvTimeoutError> {
            let ms = u64::try_from(dur.as_millis()).unwrap_or(u64::MAX);
            match point(self.inner.id, |obj| Op::ChanRecv { obj, timeout: Some(ms) }) {
                Some(Grant::Deliver) => Ok(lock_clean(&self.inner.q)
                    .pop_front()
                    // PANIC-OK: the model granted Deliver only with a non-empty queue; an empty pop is a checker bug.
                    .expect("model granted Deliver on an empty queue")),
                Some(Grant::Timeout) => Err(RecvTimeoutError::Timeout),
                Some(_) => Err(RecvTimeoutError::Disconnected),
                None => {
                    let deadline = std::time::Instant::now() + dur;
                    let mut q = lock_clean(&self.inner.q);
                    loop {
                        if let Some(v) = q.pop_front() {
                            self.inner.cv.notify_all();
                            return Ok(v);
                        }
                        if self.inner.senders.load(Ordering::SeqCst) == 0 {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        let (g, _) = self
                            .inner
                            .cv
                            .wait_timeout(q, deadline - now)
                            .unwrap_or_else(|e| e.into_inner());
                        q = g;
                    }
                }
            }
        }
    }
}

// Compile-time check that the shims stay Send/Sync like the real
// primitives they stand in for.
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<atomic::AtomicUsize>();
    check::<Mutex<Vec<u8>>>();
    check::<channel::Sender<u32>>();
    check::<channel::Receiver<u32>>();
}
