//! Shimmed threads: [`spawn`] / [`JoinHandle::join`] / [`yield_now`].
//!
//! Inside a model, spawned closures become model threads scheduled by
//! the explorer, and `yield_now` means "park me until some other thread
//! takes a step" — the semantics a work-stealing spin loop relies on.
//! Outside a model everything delegates to real `std::thread`.

use crate::rt::{self, Op};
use std::sync::{Arc, Mutex as StdMutex};

enum Mode {
    Model { tid: usize },
    Real { handle: std::thread::JoinHandle<()> },
}

/// Handle to a spawned (model or real) thread.
pub struct JoinHandle<T> {
    slot: Arc<StdMutex<Option<T>>>,
    mode: Mode,
}

/// Spawn a thread running `f`; model-scheduled inside a model, real
/// otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let body = move || {
        let r = f();
        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
    };
    let mode = if rt::in_model() {
        Mode::Model {
            tid: rt::spawn_thread(Box::new(body)),
        }
    } else {
        Mode::Real {
            handle: std::thread::spawn(body),
        }
    };
    JoinHandle { slot, mode }
}

impl<T> JoinHandle<T> {
    /// Wait (in model time or real time) for the thread to finish and
    /// return its result.
    pub fn join(self) -> std::thread::Result<T> {
        match self.mode {
            Mode::Model { tid } => {
                rt::schedule(|| Op::Join { thread: tid });
                match self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    // The child terminated without producing a value ⇒ it
                    // panicked; the explorer reports that as the failure.
                    None => Err(Box::new("model thread panicked before returning")),
                }
            }
            Mode::Real { handle } => {
                handle.join()?;
                match self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("thread finished without a result")),
                }
            }
        }
    }
}

/// Cooperative yield. In a model the calling thread is parked until
/// another thread performs an operation (so pure spin loops terminate
/// instead of exploding the schedule space); outside a model this is
/// `std::thread::yield_now`.
pub fn yield_now() {
    if rt::schedule(|| Op::Yield).is_none() {
        std::thread::yield_now();
    }
}
