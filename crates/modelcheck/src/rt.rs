//! Explorer runtime: the central scheduler, the DFS over schedules, and
//! the shadow state (vector clocks, object enabledness) it maintains.
//!
//! One *execution* runs the model closure on real OS threads that are
//! strictly serialized: every shimmed operation parks its thread and
//! hands control to the scheduler, which applies the operation's shadow
//! effects (clock joins, queue lengths, lock flags) and grants exactly
//! one thread at a time. Between executions a decision path drives a
//! depth-first search; replaying a prefix is exact because model code is
//! required to be deterministic.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

pub(crate) type Clock = Vec<u32>;

fn clock_join(into: &mut Clock, from: &Clock) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (a, &b) in into.iter_mut().zip(from.iter()) {
        *a = (*a).max(b);
    }
}

/// `earlier` happens-before (or equals) `later`.
fn clock_le(earlier: &Clock, later: &Clock) -> bool {
    earlier
        .iter()
        .enumerate()
        .all(|(i, &c)| c <= later.get(i).copied().unwrap_or(0))
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// A schedule-point descriptor. Carries only what the scheduler needs:
/// the object acted on and the operation's kind; payload values stay in
/// the shim objects (typed, behind uncontended `std` mutexes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Op {
    /// Implicit first op of every thread (parks until first grant).
    Start,
    /// `thread::yield_now`: blocked until some *other* thread steps.
    Yield,
    /// Parent-side schedule point right after registering a child.
    Spawn { child: usize },
    /// Blocked until `thread` has terminated.
    Join { thread: usize },
    AtomicLoad { obj: usize },
    AtomicStore { obj: usize },
    AtomicRmw { obj: usize },
    Lock { obj: usize },
    Unlock { obj: usize },
    /// Blocking send: enabled while the queue is below capacity.
    ChanSend { obj: usize },
    /// Never blocks; granted `Full` at capacity.
    ChanTrySend { obj: usize },
    /// `timeout` is `Some(millis)` for a `recv_timeout` (eligible for
    /// timeout firing). Durations are not simulated as real time, but
    /// when the whole system is stuck only the *shortest* pending
    /// timeouts are promoted — preserving protocols whose correctness
    /// rests on one window being wider than another.
    ChanRecv { obj: usize, timeout: Option<u64> },
    ChanSenderDrop { obj: usize },
    CellRead { obj: usize },
    CellWrite { obj: usize },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Access {
    Read,
    Write,
}

impl Op {
    fn key(self) -> (Option<usize>, Access) {
        match self {
            Op::AtomicLoad { obj } | Op::CellRead { obj } => (Some(obj), Access::Read),
            Op::AtomicStore { obj }
            | Op::AtomicRmw { obj }
            | Op::Lock { obj }
            | Op::Unlock { obj }
            | Op::ChanSend { obj }
            | Op::ChanTrySend { obj }
            | Op::ChanRecv { obj, .. }
            | Op::ChanSenderDrop { obj }
            | Op::CellWrite { obj } => (Some(obj), Access::Write),
            Op::Start | Op::Yield | Op::Spawn { .. } | Op::Join { .. } => (None, Access::Write),
        }
    }
}

/// Dependence relation for sleep sets. Conservative: anything without an
/// object id (spawn/join/yield/start) depends on everything, so pruning
/// around it is disabled rather than unsound.
fn independent(a: Op, b: Op) -> bool {
    match (a.key(), b.key()) {
        ((Some(x), ax), (Some(y), ay)) => {
            x != y || (ax == Access::Read && ay == Access::Read)
        }
        _ => false,
    }
}

/// Outcome handed back to the parked thread. The thread applies the
/// matching data effect (pop/push/lock) on its typed shim state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Grant {
    Proceed,
    /// `recv`: a message is ready to pop.
    Deliver,
    /// `recv_timeout`: the timeout fired.
    Timeout,
    /// `recv`: queue empty and every sender dropped.
    Disconnected,
    /// `try_send`: queue at capacity.
    Full,
}

// ---------------------------------------------------------------------------
// Shadow state
// ---------------------------------------------------------------------------

pub(crate) enum ObjectKind {
    Atomic,
    Mutex,
    Chan { cap: Option<usize> },
    Cell,
}

struct ChanState {
    cap: Option<usize>,
    len: usize,
    senders: usize,
    /// Per-message clock snapshots, parallel to the shim's value queue.
    msg_clocks: VecDeque<Clock>,
    /// Release clock for sender-drop (so observing `Disconnected`
    /// happens-after the drop).
    clock: Clock,
}

struct CellState {
    last_write: Option<(usize, Clock)>,
    reads: Vec<(usize, Clock)>,
}

enum ObjectState {
    Atomic { clock: Clock },
    Mutex { locked: bool, clock: Clock },
    Chan(ChanState),
    Cell(CellState),
}

enum Status {
    /// Executing model code between schedule points.
    Running,
    /// Parked at a schedule point, waiting for a grant.
    Parked(Op),
    Terminated,
}

struct ThreadState {
    status: Status,
    grant: Option<Grant>,
    clock: Clock,
    final_clock: Option<Clock>,
}

struct SchedState {
    threads: Vec<ThreadState>,
    objects: Vec<ObjectState>,
    /// `yielded[t]`: `t` parked at a `Yield` and no other thread has
    /// stepped since.
    yielded: Vec<bool>,
    /// Set during teardown; parked threads unwind with a quiet sentinel.
    aborting: bool,
    /// First non-sentinel panic out of model code: (thread, message).
    user_panic: Option<(usize, String)>,
    /// Granted ops, for failure reports.
    trace: Vec<String>,
    steps: usize,
}

pub(crate) struct Rt {
    state: Mutex<SchedState>,
    cv: Condvar,
    nondet_timeouts: bool,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

// ---------------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------------

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

fn with_ctx<R>(f: impl FnOnce(&Arc<Rt>, usize) -> R) -> Option<R> {
    CONTEXT.with(|c| c.borrow().as_ref().map(|(rt, tid)| f(rt, *tid)))
}

/// Quiet unwinding sentinel used to tear down parked threads without
/// tripping the panic hook (`resume_unwind` skips the hook).
struct AbortSentinel;

fn resume_abort() -> ! {
    panic::resume_unwind(Box::new(AbortSentinel))
}

// ---------------------------------------------------------------------------
// Shim entry points (crate-internal API used by sync/thread/cell)
// ---------------------------------------------------------------------------

/// True while inside a model execution on a model thread.
pub(crate) fn in_model() -> bool {
    with_ctx(|_, _| ()).is_some()
}

/// Register a shim object; `None` outside a model (shims then run on
/// their real `std` fallback path).
pub(crate) fn register_object(kind: ObjectKind) -> Option<usize> {
    with_ctx(|rt, _| {
        let mut st = rt.state.lock().unwrap_or_else(|e| e.into_inner());
        let id = st.objects.len();
        st.objects.push(match kind {
            ObjectKind::Atomic => ObjectState::Atomic { clock: Vec::new() },
            ObjectKind::Mutex => ObjectState::Mutex {
                locked: false,
                clock: Vec::new(),
            },
            ObjectKind::Chan { cap } => ObjectState::Chan(ChanState {
                cap,
                len: 0,
                senders: 1,
                msg_clocks: VecDeque::new(),
                clock: Vec::new(),
            }),
            ObjectKind::Cell => ObjectState::Cell(CellState {
                last_write: None,
                reads: Vec::new(),
            }),
        });
        id
    })
}

/// Bump the shadow sender count (Sender::clone — not a schedule point;
/// only the active thread runs, so the mutation is race-free and
/// deterministic).
pub(crate) fn note_sender_clone(id: Option<usize>) {
    if let Some(obj) = id {
        with_ctx(|rt, _| {
            let mut st = rt.state.lock().unwrap_or_else(|e| e.into_inner());
            if let ObjectState::Chan(ch) = &mut st.objects[obj] {
                ch.senders += 1;
            }
        });
    }
}

/// Park at a schedule point and wait for the scheduler's grant.
/// Returns `None` when not inside a model (fallback path) — callers
/// then perform the real `std` operation instead.
pub(crate) fn schedule(mk: impl FnOnce() -> Op) -> Option<Grant> {
    with_ctx(|rt, tid| {
        let op = mk();
        let mut st = rt.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.aborting {
            drop(st);
            resume_abort();
        }
        st.threads[tid].status = Status::Parked(op);
        if matches!(op, Op::Yield) {
            st.yielded[tid] = true;
        }
        rt.cv.notify_all();
        loop {
            if st.aborting {
                drop(st);
                resume_abort();
            }
            if let Some(g) = st.threads[tid].grant.take() {
                // Status was already set to Running by the scheduler at
                // grant time.
                return g;
            }
            // DEADLINE-OK: model-checker scheduler condvar; every blocked thread is granted or aborted within the exploration budget.
            st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    })
}

/// Like [`schedule`] but safe to call during unwinding (drop impls):
/// never parks once teardown has begun.
pub(crate) fn schedule_in_drop(mk: impl FnOnce() -> Op) {
    let aborting = with_ctx(|rt, _| {
        rt.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .aborting
    });
    match aborting {
        Some(false) if !std::thread::panicking() => {
            schedule(mk);
        }
        _ => {}
    }
}

/// Spawn a model thread running `body`. Must be called from inside a
/// model; returns the new thread id.
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send>) -> usize {
    with_ctx(|rt, parent| {
        let child = {
            let mut st = rt.state.lock().unwrap_or_else(|e| e.into_inner());
            let id = st.threads.len();
            // Child inherits the parent's clock (spawn edge).
            let parent_clock = st.threads[parent].clock.clone();
            st.threads.push(ThreadState {
                status: Status::Running,
                grant: None,
                clock: parent_clock,
                final_clock: None,
            });
            st.yielded.push(false);
            id
        };
        let rt2 = Arc::clone(rt);
        let handle = std::thread::spawn(move || run_model_thread(rt2, child, body));
        rt.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        // Parent yields a decision so "child runs first" is explored.
        schedule(|| Op::Spawn { child });
        child
    })
    .expect("modelcheck: thread::spawn outside a model must use the fallback path")
}

fn run_model_thread(rt: Arc<Rt>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), tid)));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        // Park until the scheduler first picks this thread.
        schedule(|| Op::Start);
        body();
    }));
    CONTEXT.with(|c| *c.borrow_mut() = None);
    let mut st = rt.state.lock().unwrap_or_else(|e| e.into_inner());
    if let Err(payload) = result {
        if !payload.is::<AbortSentinel>() && st.user_panic.is_none() {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            st.user_panic = Some((tid, msg));
        }
    }
    st.threads[tid].final_clock = Some(st.threads[tid].clock.clone());
    st.threads[tid].status = Status::Terminated;
    rt.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Enabledness + effect application (scheduler side)
// ---------------------------------------------------------------------------

fn op_enabled(st: &SchedState, tid: usize, op: Op, nondet_timeouts: bool) -> bool {
    match op {
        Op::Start
        | Op::Spawn { .. }
        | Op::AtomicLoad { .. }
        | Op::AtomicStore { .. }
        | Op::AtomicRmw { .. }
        | Op::Unlock { .. }
        | Op::ChanTrySend { .. }
        | Op::ChanSenderDrop { .. }
        | Op::CellRead { .. }
        | Op::CellWrite { .. } => true,
        Op::Yield => !st.yielded[tid],
        Op::Join { thread } => matches!(st.threads[thread].status, Status::Terminated),
        Op::Lock { obj } => match &st.objects[obj] {
            ObjectState::Mutex { locked, .. } => !locked,
            _ => true,
        },
        Op::ChanSend { obj } => match &st.objects[obj] {
            ObjectState::Chan(ch) => ch.cap.map(|c| ch.len < c).unwrap_or(true),
            _ => true,
        },
        Op::ChanRecv { obj, timeout } => match &st.objects[obj] {
            ObjectState::Chan(ch) => {
                ch.len > 0 || ch.senders == 0 || (timeout.is_some() && nondet_timeouts)
            }
            _ => true,
        },
    }
}

/// A `recv_timeout` with an empty queue and live senders — the candidate
/// set for stuck-state timeout promotion. Returns the pending duration
/// in millis so promotion can favour the shortest windows.
fn op_timeout_blocked(st: &SchedState, op: Op) -> Option<u64> {
    match op {
        Op::ChanRecv {
            obj,
            timeout: Some(ms),
        } => match &st.objects[obj] {
            ObjectState::Chan(ch) if ch.len == 0 && ch.senders > 0 => Some(ms),
            _ => None,
        },
        _ => None,
    }
}

/// Apply `op`'s shadow effects for thread `tid` and compute its grant.
/// Runs in the scheduler with the state lock held.
fn apply(st: &mut SchedState, tid: usize, op: Op, promoted: bool) -> Result<Grant, Failure> {
    // Tick the actor's own clock component first.
    {
        let clk = &mut st.threads[tid].clock;
        if clk.len() <= tid {
            clk.resize(tid + 1, 0);
        }
        clk[tid] += 1;
    }
    let thread_clock = st.threads[tid].clock.clone();
    let grant = match op {
        Op::Start | Op::Yield | Op::Spawn { .. } => Grant::Proceed,
        Op::Join { thread } => {
            let child = st.threads[thread].final_clock.clone().unwrap_or_default();
            clock_join(&mut st.threads[tid].clock, &child);
            Grant::Proceed
        }
        Op::AtomicLoad { obj } | Op::AtomicStore { obj } | Op::AtomicRmw { obj } => {
            // SC modeling: every atomic op is a full acquire+release.
            if let ObjectState::Atomic { clock } = &mut st.objects[obj] {
                clock_join(clock, &thread_clock);
                let oc = clock.clone();
                clock_join(&mut st.threads[tid].clock, &oc);
            }
            Grant::Proceed
        }
        Op::Lock { obj } => {
            if let ObjectState::Mutex { locked, clock } = &mut st.objects[obj] {
                *locked = true;
                let oc = clock.clone();
                clock_join(&mut st.threads[tid].clock, &oc);
            }
            Grant::Proceed
        }
        Op::Unlock { obj } => {
            if let ObjectState::Mutex { locked, clock } = &mut st.objects[obj] {
                *locked = false;
                clock_join(clock, &thread_clock);
            }
            Grant::Proceed
        }
        Op::ChanSend { obj } | Op::ChanTrySend { obj } => {
            if let ObjectState::Chan(ch) = &mut st.objects[obj] {
                if matches!(op, Op::ChanTrySend { .. })
                    && ch.cap.map(|c| ch.len >= c).unwrap_or(false)
                {
                    Grant::Full
                } else {
                    ch.len += 1;
                    ch.msg_clocks.push_back(thread_clock.clone());
                    Grant::Proceed
                }
            } else {
                Grant::Proceed
            }
        }
        Op::ChanRecv { obj, .. } => {
            if let ObjectState::Chan(ch) = &mut st.objects[obj] {
                if promoted || (ch.len == 0 && ch.senders > 0) {
                    // Granted while empty: the timeout fires.
                    Grant::Timeout
                } else if ch.len == 0 {
                    let oc = ch.clock.clone();
                    clock_join(&mut st.threads[tid].clock, &oc);
                    Grant::Disconnected
                } else {
                    ch.len -= 1;
                    let mc = ch.msg_clocks.pop_front().unwrap_or_default();
                    clock_join(&mut st.threads[tid].clock, &mc);
                    Grant::Deliver
                }
            } else {
                Grant::Proceed
            }
        }
        Op::ChanSenderDrop { obj } => {
            if let ObjectState::Chan(ch) = &mut st.objects[obj] {
                ch.senders = ch.senders.saturating_sub(1);
                clock_join(&mut ch.clock, &thread_clock);
            }
            Grant::Proceed
        }
        Op::CellRead { obj } => {
            if let ObjectState::Cell(cell) = &mut st.objects[obj] {
                if let Some((wt, wc)) = &cell.last_write {
                    if *wt != tid && !clock_le(wc, &thread_clock) {
                        return Err(Failure::Race {
                            description: format!(
                                "RaceCell #{obj}: read by thread {tid} races with write by thread {wt}"
                            ),
                            trace: st.trace.clone(),
                        });
                    }
                }
                cell.reads.push((tid, thread_clock.clone()));
            }
            Grant::Proceed
        }
        Op::CellWrite { obj } => {
            if let ObjectState::Cell(cell) = &mut st.objects[obj] {
                if let Some((wt, wc)) = &cell.last_write {
                    if *wt != tid && !clock_le(wc, &thread_clock) {
                        return Err(Failure::Race {
                            description: format!(
                                "RaceCell #{obj}: write by thread {tid} races with write by thread {wt}"
                            ),
                            trace: st.trace.clone(),
                        });
                    }
                }
                for (rt_, rc) in &cell.reads {
                    if *rt_ != tid && !clock_le(rc, &thread_clock) {
                        return Err(Failure::Race {
                            description: format!(
                                "RaceCell #{obj}: write by thread {tid} races with read by thread {rt_}"
                            ),
                            trace: st.trace.clone(),
                        });
                    }
                }
                cell.last_write = Some((tid, thread_clock.clone()));
                cell.reads.clear();
            }
            Grant::Proceed
        }
    };
    st.trace.push(format!("t{tid}: {op:?} -> {grant:?}"));
    st.steps += 1;
    // Any step wakes every spinning (yielded) thread except the actor.
    for y in st.yielded.iter_mut() {
        *y = false;
    }
    Ok(grant)
}

// ---------------------------------------------------------------------------
// Public API: Config / Report / Failure
// ---------------------------------------------------------------------------

/// Exploration bounds and options.
#[derive(Clone, Debug)]
pub struct Config {
    /// Hard cap on explored executions; exceeded ⇒ `complete = false`.
    pub max_executions: usize,
    /// Per-execution schedule-point cap (livelock backstop).
    pub max_steps: usize,
    /// Allow `recv_timeout` to fire whenever its queue is empty (models
    /// spurious expiry / slow senders) instead of only when the system
    /// is otherwise stuck.
    pub nondet_timeouts: bool,
    /// Sleep-set pruning. `false` ⇒ plain exhaustive DFS (for
    /// cross-checking the pruner).
    pub dpor: bool,
    /// CHESS-style preemption bounding: `Some(k)` explores every
    /// schedule with at most `k` *preemptive* context switches (a
    /// switch away from a thread that could have kept running; switches
    /// forced by blocking are free). `None` ⇒ unbounded (full
    /// exhaustiveness, feasible only for small models). Empirically
    /// (CHESS, loom practice) almost all concurrency bugs manifest
    /// within 2 preemptions.
    pub max_preemptions: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_executions: 100_000,
            max_steps: 5_000,
            nondet_timeouts: false,
            dpor: true,
            max_preemptions: None,
        }
    }
}

/// What the exploration found.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run (including the failing one).
    pub executions: usize,
    /// Executions cut short by sleep-set pruning.
    pub pruned: usize,
    /// Whole schedule space covered within the budget.
    pub complete: bool,
    pub failure: Option<Failure>,
}

/// A bug found by the explorer, with the schedule that produced it.
#[derive(Clone, Debug)]
pub enum Failure {
    /// Model code panicked (assertion failure or explicit panic).
    Panic {
        thread: usize,
        message: String,
        trace: Vec<String>,
    },
    /// Live threads exist but none can make progress.
    Deadlock {
        waiting: Vec<String>,
        trace: Vec<String>,
    },
    /// Happens-before violation on a [`crate::cell::RaceCell`].
    Race {
        description: String,
        trace: Vec<String>,
    },
    /// An execution exceeded [`Config::max_steps`].
    StepBound { steps: usize, trace: Vec<String> },
    /// Replay diverged: the model is not deterministic.
    Nondeterminism { detail: String },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn tail(f: &mut fmt::Formatter<'_>, trace: &[String]) -> fmt::Result {
            writeln!(f, "  schedule ({} steps, tail):", trace.len())?;
            for line in trace.iter().rev().take(16).rev() {
                writeln!(f, "    {line}")?;
            }
            Ok(())
        }
        match self {
            Failure::Panic {
                thread,
                message,
                trace,
            } => {
                writeln!(f, "model thread {thread} panicked: {message}")?;
                tail(f, trace)
            }
            Failure::Deadlock { waiting, trace } => {
                writeln!(f, "deadlock: no thread can make progress")?;
                for w in waiting {
                    writeln!(f, "  blocked: {w}")?;
                }
                tail(f, trace)
            }
            Failure::Race { description, trace } => {
                writeln!(f, "data race: {description}")?;
                tail(f, trace)
            }
            Failure::StepBound { steps, trace } => {
                writeln!(f, "execution exceeded the step bound ({steps} steps) — livelock?")?;
                tail(f, trace)
            }
            Failure::Nondeterminism { detail } => {
                writeln!(f, "model is nondeterministic: {detail}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DFS explorer
// ---------------------------------------------------------------------------

/// One decision node on the DFS path.
struct Node {
    /// Enabled (thread, pending-op) pairs, ascending thread id.
    enabled: Vec<(usize, Op)>,
    /// Threads asleep at this node (sleep-set pruning).
    sleep: Vec<usize>,
    /// Choices whose subtrees are fully explored.
    tried: Vec<usize>,
    chosen: usize,
    /// Node created by timeout promotion (sleep sets not applied).
    promoted: bool,
}

enum RunOutcome {
    Done,
    Pruned,
    Failed(Failure),
}

/// Explore all schedules of `f` under `config`; never panics on model
/// bugs — returns them in the [`Report`]. Use this to assert that a
/// *known-bad* model is caught.
pub fn explore<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut path: Vec<Node> = Vec::new();
    let mut executions = 0usize;
    let mut pruned = 0usize;
    loop {
        if executions >= config.max_executions {
            return Report {
                executions,
                pruned,
                complete: false,
                failure: None,
            };
        }
        executions += 1;
        let outcome = run_one(&config, &f, &mut path);
        match outcome {
            RunOutcome::Done => {}
            RunOutcome::Pruned => pruned += 1,
            RunOutcome::Failed(failure) => {
                return Report {
                    executions,
                    pruned,
                    complete: false,
                    failure: Some(failure),
                }
            }
        }
        if !advance(&mut path) {
            return Report {
                executions,
                pruned,
                complete: true,
                failure: None,
            };
        }
    }
}

/// Explore all schedules of `f`; panic with a full schedule report if
/// any interleaving fails, or if the budget was too small to finish.
pub fn model_with<F>(config: Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(config, f);
    if let Some(failure) = &report.failure {
        panic!(
            "modelcheck failed after {} executions ({} pruned):\n{failure}",
            report.executions, report.pruned
        );
    }
    assert!(
        report.complete,
        "modelcheck did not finish within max_executions={} (pruned {}); raise the budget",
        report.executions, report.pruned
    );
}

/// [`model_with`] under the default [`Config`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f);
}

/// Move to the next unexplored branch; `false` when the space is done.
fn advance(path: &mut Vec<Node>) -> bool {
    while let Some(node) = path.last_mut() {
        node.tried.push(node.chosen);
        let next = node
            .enabled
            .iter()
            .map(|&(t, _)| t)
            .find(|t| !node.tried.contains(t) && (node.promoted || !node.sleep.contains(t)));
        if let Some(t) = next {
            node.chosen = t;
            return true;
        }
        path.pop();
    }
    false
}

/// Run a single execution, replaying `path` and extending it with fresh
/// decisions. `path[depth]` for `depth < path.len()` is replayed; new
/// nodes are appended with their first candidate chosen.
fn run_one<F>(config: &Config, f: &Arc<F>, path: &mut Vec<Node>) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let rt = Arc::new(Rt {
        state: Mutex::new(SchedState {
            threads: Vec::new(),
            objects: Vec::new(),
            yielded: Vec::new(),
            aborting: false,
            user_panic: None,
            trace: Vec::new(),
            steps: 0,
        }),
        cv: Condvar::new(),
        nondet_timeouts: config.nondet_timeouts,
        handles: Mutex::new(Vec::new()),
    });

    // Thread 0 runs the model closure itself.
    {
        let mut st = rt.state.lock().unwrap_or_else(|e| e.into_inner());
        st.threads.push(ThreadState {
            status: Status::Running,
            grant: None,
            clock: Vec::new(),
            final_clock: None,
        });
        st.yielded.push(false);
    }
    let f2 = Arc::clone(f);
    let rt0 = Arc::clone(&rt);
    let h0 = std::thread::spawn(move || {
        run_model_thread(rt0, 0, Box::new(move || f2()));
    });
    rt.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(h0);

    let outcome = schedule_loop(config, &rt, path);

    // Teardown: release every parked thread, then join all OS threads.
    {
        let mut st = rt.state.lock().unwrap_or_else(|e| e.into_inner());
        st.aborting = true;
        rt.cv.notify_all();
    }
    let handles = std::mem::take(&mut *rt.handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    outcome
}

/// The scheduler proper: wait for quiescence, pick, grant, repeat.
fn schedule_loop(config: &Config, rt: &Arc<Rt>, path: &mut Vec<Node>) -> RunOutcome {
    let mut depth = 0usize;
    // Sleep set carried into the next decision node.
    let mut cur_sleep: Vec<usize> = Vec::new();
    // Preemption-bounding state (recomputed identically on replay).
    let mut prev_chosen: Option<usize> = None;
    let mut preemptions = 0usize;
    let mut st = rt.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        // Quiescence: no thread mid-flight.
        while st
            .threads
            .iter()
            .any(|t| matches!(t.status, Status::Running))
        {
            st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if let Some((thread, message)) = st.user_panic.take() {
            let trace = st.trace.clone();
            drop(st);
            return RunOutcome::Failed(Failure::Panic {
                thread,
                message,
                trace,
            });
        }
        if st.steps >= config.max_steps {
            let failure = Failure::StepBound {
                steps: st.steps,
                trace: st.trace.clone(),
            };
            drop(st);
            return RunOutcome::Failed(failure);
        }
        let live: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, Status::Parked(_)))
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            drop(st);
            return RunOutcome::Done;
        }
        let pending = |st: &SchedState, t: usize| -> Op {
            match st.threads[t].status {
                Status::Parked(op) => op,
                _ => unreachable!("live thread must be parked"),
            }
        };
        let mut enabled: Vec<(usize, Op)> = live
            .iter()
            .map(|&t| (t, pending(&st, t)))
            .filter(|&(t, op)| op_enabled(&st, t, op, rt.nondet_timeouts))
            .collect();
        let mut promoted = false;
        if enabled.is_empty() {
            // Stuck: promote timeout-blocked receives — only the ones
            // with the *shortest* pending window, since those expire
            // first in any real-time execution.
            let blocked: Vec<(usize, Op, u64)> = live
                .iter()
                .map(|&t| (t, pending(&st, t)))
                .filter_map(|(t, op)| op_timeout_blocked(&st, op).map(|ms| (t, op, ms)))
                .collect();
            let shortest = blocked.iter().map(|&(_, _, ms)| ms).min();
            enabled = blocked
                .into_iter()
                .filter(|&(_, _, ms)| Some(ms) == shortest)
                .map(|(t, op, _)| (t, op))
                .collect();
            promoted = true;
            if enabled.is_empty() {
                let waiting: Vec<String> = live
                    .iter()
                    .map(|&t| format!("t{t}: {:?}", pending(&st, t)))
                    .collect();
                let failure = Failure::Deadlock {
                    waiting,
                    trace: st.trace.clone(),
                };
                drop(st);
                return RunOutcome::Failed(failure);
            }
        }
        // Preemption bounding: once the budget is spent, keep running
        // the previous thread while it remains enabled.
        let full_enabled = enabled.clone();
        if !promoted {
            if let (Some(k), Some(p)) = (config.max_preemptions, prev_chosen) {
                if preemptions >= k && enabled.iter().any(|&(t, _)| t == p) {
                    enabled.retain(|&(t, _)| t == p);
                }
            }
        }

        // Resolve this depth against the DFS path.
        let chosen = if depth < path.len() {
            let node = &path[depth];
            if node.enabled != enabled || node.promoted != promoted {
                drop(st);
                return RunOutcome::Failed(Failure::Nondeterminism {
                    detail: format!(
                        "replay diverged at depth {depth}: expected enabled set {:?}, got {:?}",
                        path[depth].enabled, enabled
                    ),
                });
            }
            node.chosen
        } else {
            let sleep: Vec<usize> = if config.dpor && !promoted {
                cur_sleep
                    .iter()
                    .copied()
                    .filter(|s| live.contains(s))
                    .collect()
            } else {
                Vec::new()
            };
            let candidate = enabled
                .iter()
                .map(|&(t, _)| t)
                .find(|t| promoted || !sleep.contains(t));
            let Some(first) = candidate else {
                // Every enabled move is asleep: this state is covered by
                // an already-explored equivalent interleaving.
                drop(st);
                return RunOutcome::Pruned;
            };
            path.push(Node {
                enabled: enabled.clone(),
                sleep,
                tried: Vec::new(),
                chosen: first,
                promoted,
            });
            first
        };
        if let Some(p) = prev_chosen {
            if chosen != p && full_enabled.iter().any(|&(t, _)| t == p) {
                preemptions += 1;
            }
        }
        prev_chosen = Some(chosen);
        let node = &path[depth];
        let chosen_op = pending(&st, chosen);

        // Sleep set for the child state: previously-explored and still-
        // sleeping siblings stay asleep unless the chosen op wakes them.
        cur_sleep = if config.dpor {
            node.sleep
                .iter()
                .chain(node.tried.iter())
                .copied()
                .filter(|&s| s != chosen)
                .filter(|&s| {
                    matches!(st.threads[s].status, Status::Parked(_))
                        && independent(pending(&st, s), chosen_op)
                })
                .collect()
        } else {
            Vec::new()
        };
        depth += 1;

        match apply(&mut st, chosen, chosen_op, promoted) {
            Ok(grant) => {
                // Mark Running here (not when the thread wakes) so the
                // quiescence check can't double-schedule it.
                st.threads[chosen].status = Status::Running;
                st.threads[chosen].grant = Some(grant);
                rt.cv.notify_all();
            }
            Err(failure) => {
                drop(st);
                return RunOutcome::Failed(failure);
            }
        }
    }
}
