//! Race-detecting cells.
//!
//! [`RaceCell`] models a plain (non-atomic) memory location: the
//! explorer checks every access pair for a happens-before edge via
//! vector clocks and reports a data race when two threads touch the
//! cell concurrently (unless both accesses are reads). This is the
//! model-world stand-in for what `unsafe` raw-pointer writes (e.g.
//! `SyncSlice` in `polaroct-sched`) do in the real code.
//!
//! [`WriteOnce`] adds the pool's exactly-once delivery invariant on
//! top: a second write to the same slot fails the model even if the
//! two writes happen to be ordered.

use crate::rt::{self, ObjectKind, Op};
use std::sync::Mutex as StdMutex;

/// A shared memory location with happens-before race checking.
#[derive(Debug)]
pub struct RaceCell<T> {
    inner: StdMutex<T>,
    id: Option<usize>,
}

impl<T> RaceCell<T> {
    pub fn new(v: T) -> Self {
        Self {
            inner: StdMutex::new(v),
            id: rt::register_object(ObjectKind::Cell),
        }
    }

    fn read_point(&self) {
        if let Some(obj) = self.id {
            rt::schedule(move || Op::CellRead { obj });
        }
    }

    fn write_point(&self) {
        if let Some(obj) = self.id {
            rt::schedule(move || Op::CellWrite { obj });
        }
    }

    /// Read access (checked against concurrent writes).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.read_point();
        f(&self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Write access (checked against concurrent reads and writes).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.write_point();
        f(&mut self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Copy> RaceCell<T> {
    pub fn get(&self) -> T {
        self.with(|v| *v)
    }

    pub fn set(&self, v: T) {
        self.with_mut(|slot| *slot = v);
    }
}

/// A slot that must be written exactly once (and is race-checked like
/// [`RaceCell`]). Mirrors `SyncSlice`'s contract: disjoint indices,
/// one writer per index.
#[derive(Debug)]
pub struct WriteOnce<T> {
    cell: RaceCell<Option<T>>,
}

impl<T> WriteOnce<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            cell: RaceCell::new(None),
        }
    }

    /// Store the value; panics (failing the model) if already written.
    pub fn set(&self, v: T) {
        self.cell.with_mut(|slot| {
            assert!(
                slot.is_none(),
                "WriteOnce written twice: exactly-once invariant violated"
            );
            *slot = Some(v);
        });
    }

    /// True once a value has been stored (read access, race-checked).
    pub fn is_set(&self) -> bool {
        self.cell.with(|slot| slot.is_some())
    }

    /// Consume, returning the value if one was written.
    pub fn into_inner(self) -> Option<T> {
        self.cell.into_inner()
    }
}

impl<T: Copy> WriteOnce<T> {
    /// Read the value (read access, race-checked).
    pub fn get(&self) -> Option<T> {
        self.cell.get()
    }
}
