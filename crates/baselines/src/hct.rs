//! HCT (Hawkins–Cramer–Truhlar 1996) pairwise-descreening Born radii —
//! the GB model of Amber 12 and Gromacs 4.5.3 (Table II).
//!
//! The inverse Born radius starts at the inverse intrinsic radius and is
//! reduced by an analytic descreening integral over every neighbor `j`
//! (each neighbor's sphere, scaled by `S_j`, excludes solvent):
//!
//! ```text
//! 1/R_i = 1/ρ_i − ½ Σ_j H(r_ij, S_j ρ_j)
//! ```
//!
//! with the standard closed form for `H` below. Radii only need neighbors
//! within a cutoff (the integrand decays like `r⁻⁴`), which is why these
//! packages pair the model with an nblist.

use crate::nblist::NbList;
use polaroct_molecule::Molecule;

/// Default HCT scaling factor applied to descreener radii. The published
/// parameterization uses per-element values near 0.8 tuned against PB on
/// real proteins; on this workspace's synthetic globules 0.70 brings the
/// HCT energies into line with the exact surface-r⁶ reference (the Fig. 9
/// "match closely" behaviour) — the same kind of re-fit every GB flavor
/// does against its own reference.
pub const HCT_SCALE: f64 = 0.70;

/// Offset subtracted from intrinsic radii (Å) before descreening
/// (Amber's `offset`, 0.09 Å).
pub const HCT_OFFSET: f64 = 0.09;

/// The pairwise descreening integral `H(r, s)` for a descreening sphere
/// of radius `s` at center distance `r` from a solute sphere of radius
/// `rho` (already offset). Hawkins et al. 1996, Eq. 15 family.
pub fn descreen_integral(rho: f64, r: f64, s: f64) -> f64 {
    if r + s <= rho {
        // Descreener completely inside the solute sphere: no effect.
        return 0.0;
    }
    let l = if r - s <= rho { rho } else { r - s };
    let u = r + s;
    let inv_l = 1.0 / l;
    let inv_u = 1.0 / u;
    // H = 1/L − 1/U + (r/4)(1/U² − 1/L²) + (1/(2r)) ln(L/U)
    //     + (s²/(4r))(1/L² − 1/U²)
    inv_l - inv_u + 0.25 * r * (inv_u * inv_u - inv_l * inv_l)
        + (0.5 / r) * (l / u).ln()
        + (0.25 * s * s / r) * (inv_l * inv_l - inv_u * inv_u)
}

/// HCT Born radii using an nblist for the descreening sums. Returns radii
/// (same order as `mol`) and the number of pair evaluations.
pub fn born_radii_hct(mol: &Molecule, nb: &NbList, scale: f64) -> (Vec<f64>, u64) {
    let m = mol.len();
    let mut ops = 0u64;
    let mut out = Vec::with_capacity(m);
    for i in 0..m {
        let rho_i = (mol.radii[i] - HCT_OFFSET).max(0.5);
        let mut inv_r = 1.0 / rho_i;
        for &j in nb.of(i) {
            let j = j as usize;
            let r = mol.positions[i].dist(mol.positions[j]);
            let s = scale * (mol.radii[j] - HCT_OFFSET).max(0.5);
            inv_r -= 0.5 * descreen_integral(rho_i, r, s);
            ops += 1;
        }
        // Descreening can numerically overshoot for tightly packed
        // synthetic structures; clamp like production codes do.
        let r = if inv_r <= 1e-6 { crate::package::BORN_MAX } else { 1.0 / inv_r };
        out.push(r.clamp(rho_i, crate::package::BORN_MAX));
    }
    (out, ops)
}

/// HCT Born radii computed by streaming pairs out of a cell list (no
/// stored neighbor list — how Amber's GB path works: `sander` recomputes
/// pair interactions on the fly instead of materializing a pairlist).
/// Returns radii and pair-evaluation count.
pub fn born_radii_hct_stream(mol: &Molecule, cutoff: f64, scale: f64) -> (Vec<f64>, u64) {
    use polaroct_surface::CellList;
    let cells = CellList::new(&mol.positions, cutoff);
    let c2 = cutoff * cutoff;
    let m = mol.len();
    let mut ops = 0u64;
    let mut out = Vec::with_capacity(m);
    for i in 0..m {
        let rho_i = (mol.radii[i] - HCT_OFFSET).max(0.5);
        let mut inv_r = 1.0 / rho_i;
        let pi = mol.positions[i];
        cells.for_neighbors(pi, cutoff, |j| {
            let j = j as usize;
            if j == i {
                return;
            }
            let d2 = pi.dist2(mol.positions[j]);
            if d2 > c2 {
                return;
            }
            let r = d2.sqrt();
            let s = scale * (mol.radii[j] - HCT_OFFSET).max(0.5);
            inv_r -= 0.5 * descreen_integral(rho_i, r, s);
            ops += 1;
        });
        let r = if inv_r <= 1e-6 { crate::package::BORN_MAX } else { 1.0 / inv_r };
        out.push(r.clamp(rho_i, crate::package::BORN_MAX));
    }
    (out, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_geom::Vec3;
    use polaroct_molecule::{synth, Atom, Element, Molecule};

    #[test]
    fn isolated_atom_radius_is_intrinsic_minus_offset() {
        let mol = Molecule::from_atoms(
            "one",
            [Atom { pos: Vec3::ZERO, radius: 1.7, charge: 0.0, element: Element::C }],
        );
        let nb = NbList::build(&mol, 10.0);
        let (r, ops) = born_radii_hct(&mol, &nb, HCT_SCALE);
        assert!((r[0] - (1.7 - HCT_OFFSET)).abs() < 1e-12);
        assert_eq!(ops, 0);
    }

    #[test]
    fn descreening_grows_the_radius() {
        let mol = Molecule::from_atoms(
            "pair",
            [
                Atom { pos: Vec3::ZERO, radius: 1.7, charge: 0.0, element: Element::C },
                Atom {
                    pos: Vec3::new(3.0, 0.0, 0.0),
                    radius: 1.7,
                    charge: 0.0,
                    element: Element::C,
                },
            ],
        );
        let nb = NbList::build(&mol, 10.0);
        let (r, _) = born_radii_hct(&mol, &nb, HCT_SCALE);
        assert!(r[0] > 1.7 - HCT_OFFSET, "neighbor must descreen: {}", r[0]);
        assert!((r[0] - r[1]).abs() < 1e-12, "symmetric pair");
    }

    #[test]
    fn integral_is_zero_for_fully_buried_descreener() {
        assert_eq!(descreen_integral(2.0, 0.5, 1.0), 0.0);
    }

    #[test]
    fn integral_decays_with_distance() {
        let h2 = descreen_integral(1.5, 3.0, 1.3);
        let h4 = descreen_integral(1.5, 6.0, 1.3);
        let h8 = descreen_integral(1.5, 12.0, 1.3);
        assert!(h2 > h4 && h4 > h8);
        assert!(h8 > 0.0);
        // Far field: H ~ 2s³/(3 r⁴), so that the ½H used in 1/R matches
        // the volume integral s³/(3r⁴) of the Coulomb-field kernel.
        let expect = 2.0 * 1.3f64.powi(3) / (3.0 * 12.0f64.powi(4));
        assert!((h8 - expect).abs() / expect < 0.05, "{h8} vs {expect}");
    }

    #[test]
    fn buried_atoms_get_larger_radii_than_surface_atoms() {
        let mol = synth::protein("p", 400, 3);
        let nb = NbList::build(&mol, 12.0);
        let (r, _) = born_radii_hct(&mol, &nb, HCT_SCALE);
        let c = mol.centroid();
        let mut pairs: Vec<(f64, f64)> =
            mol.positions.iter().map(|p| p.dist(c)).zip(r.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let q = pairs.len() / 4;
        let inner: f64 = pairs[..q].iter().map(|x| x.1).sum::<f64>() / q as f64;
        let outer: f64 = pairs[pairs.len() - q..].iter().map(|x| x.1).sum::<f64>() / q as f64;
        assert!(inner > outer, "buried {inner} <= surface {outer}");
    }

    #[test]
    fn stream_variant_matches_nblist_variant() {
        let mol = synth::protein("p", 250, 13);
        let cutoff = 10.0;
        let nb = NbList::build(&mol, cutoff);
        let (a, ops_a) = born_radii_hct(&mol, &nb, HCT_SCALE);
        let (b, ops_b) = born_radii_hct_stream(&mol, cutoff, HCT_SCALE);
        assert_eq!(ops_a, ops_b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn radii_clamped_to_physical_range() {
        let mol = synth::protein("p", 300, 11);
        let nb = NbList::build(&mol, 10.0);
        let (r, _) = born_radii_hct(&mol, &nb, HCT_SCALE);
        for (i, &ri) in r.iter().enumerate() {
            assert!((0.5..=crate::package::BORN_MAX).contains(&ri), "atom {i}: {ri}");
        }
    }
}
